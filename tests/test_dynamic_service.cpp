// DynamicSsspService end-to-end: live weight updates against a running
// daemon.
//
//  * apply_updates republishes: the very next serve matches Dijkstra on
//    the mutated graph and carries the bumped epoch;
//  * staged updates are invisible to the daemon (old epoch keeps serving
//    exactly) while serve_corrected answers from the STAGED weights —
//    equal to Dijkstra on the staged graph, including re-updates of the
//    same edge across stage calls;
//  * epoch-swapped serving under load: client threads race update/flush
//    cycles and every response is consistent with the single epoch it is
//    stamped with — no torn reads;
//  * the fragment substrate and the result cache both survive swaps
//    (kFragment keeps serving; stale rows never answer a new epoch);
//  * adversarial (directed/multigraph) inputs stay exact through the
//    kNone heuristic, which preserves the graph as built.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "graph/update.hpp"
#include "serve/dynamic.hpp"
#include "test_util.hpp"

namespace rs::serve {
namespace {

using test::GraphCase;

DynamicSsspService::Options small_options() {
  DynamicSsspService::Options o;
  o.preprocess.rho = 8;
  o.preprocess.k = 2;
  return o;
}

QueryRequest targeted(Vertex source, std::vector<Vertex> targets,
                      QueryEngine engine = QueryEngine::kFlat) {
  QueryRequest req;
  req.source = source;
  req.targets = std::move(targets);
  req.engine = engine;
  return req;
}

std::vector<Vertex> spread_targets(const Graph& g, std::size_t count) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>(((i + 1) * n) / (count + 1)));
  }
  return out;
}

void expect_matches_dijkstra(const QueryResponse& resp, const Graph& g,
                             Vertex source, const char* label) {
  const std::vector<Dist> want = dijkstra(g, source);
  for (const TargetResult& tr : resp.targets) {
    ASSERT_EQ(tr.dist, want[tr.target])
        << label << " source=" << source << " target=" << tr.target;
  }
}

TEST(DynamicService, ApplyUpdatesRepublishesAndBumpsEpoch) {
  const Graph g = test::weighted_suite(61)[0].graph;
  DynamicSsspService svc(g, small_options());
  const Vertex source = 3;
  const auto targets = spread_targets(g, 5);

  const QueryResponse before =
      svc.server().serve_sync(targeted(source, targets));
  EXPECT_EQ(before.graph_epoch, 1u);
  expect_matches_dijkstra(before, g, source, "before");

  // Shadow the mutation locally for the expected distances.
  const std::vector<WeightUpdate> batch = {
      {targets[0], g.arc_target(g.first_arc(targets[0])), 1},
      {source, g.arc_target(g.first_arc(source)), 140}};
  const Graph mutated = apply_weight_updates(g, batch).graph;

  const UpdateReport report = svc.apply_updates(batch);
  EXPECT_EQ(report.epoch, 2u);
  EXPECT_GT(report.dirty_balls, 0u);
  EXPECT_EQ(report.staged, 0u);
  EXPECT_FALSE(svc.has_staged());

  const QueryResponse after =
      svc.server().serve_sync(targeted(source, targets));
  EXPECT_EQ(after.graph_epoch, 2u);
  expect_matches_dijkstra(after, mutated, source, "after");
}

TEST(DynamicService, StagedUpdatesServeOldEpochUntilFlush) {
  const Graph g = test::weighted_suite(62)[2].graph;
  DynamicSsspService svc(g, small_options());
  const Vertex source = 1;
  const auto targets = spread_targets(g, 6);

  std::vector<WeightUpdate> batch = {
      {0, g.arc_target(g.first_arc(0)), 120},
      {targets[1], g.arc_target(g.first_arc(targets[1])), 1}};
  Graph staged = apply_weight_updates(g, batch).graph;
  const UpdateReport r1 = svc.stage(batch);
  EXPECT_EQ(r1.epoch, 1u);
  EXPECT_EQ(r1.staged, batch.size());
  EXPECT_TRUE(svc.has_staged());

  // The daemon still serves the published epoch (old weights)...
  const QueryResponse old_epoch =
      svc.server().serve_sync(targeted(source, targets));
  EXPECT_EQ(old_epoch.graph_epoch, 1u);
  expect_matches_dijkstra(old_epoch, g, source, "published");

  // ...while serve_corrected is exact against the staged weights.
  expect_matches_dijkstra(svc.serve_corrected(targeted(source, targets)),
                          staged, source, "corrected");

  // A second stage re-updating the same edge composes (last wins).
  const std::vector<WeightUpdate> batch2 = {
      {0, g.arc_target(g.first_arc(0)), 2}};
  staged = apply_weight_updates(staged, batch2).graph;
  svc.stage(batch2);
  expect_matches_dijkstra(svc.serve_corrected(targeted(source, targets)),
                          staged, source, "corrected2");

  const UpdateReport r2 = svc.flush();
  EXPECT_EQ(r2.epoch, 2u);
  EXPECT_FALSE(svc.has_staged());
  const QueryResponse flushed =
      svc.server().serve_sync(targeted(source, targets));
  EXPECT_EQ(flushed.graph_epoch, 2u);
  expect_matches_dijkstra(flushed, staged, source, "flushed");
  // With nothing staged, serve_corrected falls through to a plain serve.
  expect_matches_dijkstra(svc.serve_corrected(targeted(source, targets)),
                          staged, source, "corrected-after-flush");
}

TEST(DynamicService, FlushWithNothingStagedIsANoOp) {
  const Graph g = test::weighted_suite(63)[5].graph;  // chain
  DynamicSsspService svc(g, small_options());
  const UpdateReport r = svc.flush();
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.updated_arcs, 0u);
  EXPECT_EQ(svc.server().engine_snapshot()->graph_epoch(), 1u);
}

TEST(DynamicService, ServeCorrectedValidates) {
  const Graph g = test::weighted_suite(64)[6].graph;  // star
  DynamicSsspService svc(g, small_options());
  QueryRequest topk;
  topk.source = 0;
  topk.kind = RequestKind::kTopK;
  topk.k = 3;
  EXPECT_THROW(svc.serve_corrected(topk), std::invalid_argument);
  QueryRequest paths = targeted(0, {1});
  paths.want_paths = true;
  EXPECT_THROW(svc.serve_corrected(paths), std::invalid_argument);
  EXPECT_THROW(svc.serve_corrected(targeted(0, {g.num_vertices()})),
               std::invalid_argument);
}

TEST(DynamicService, CachePurgedAcrossSwap) {
  const Graph g = test::weighted_suite(65)[0].graph;
  auto options = small_options();
  options.server.enable_cache = true;
  DynamicSsspService svc(g, options);
  const auto targets = spread_targets(g, 3);

  // Warm the cache on epoch 1 (owner run + a submit-time hit).
  (void)svc.server().serve_sync(targeted(5, targets));
  const QueryResponse hit = svc.server().serve_sync(targeted(5, targets));
  EXPECT_TRUE(hit.served_from_cache);
  EXPECT_EQ(hit.graph_epoch, 1u);

  const std::vector<WeightUpdate> batch = {
      {5, g.arc_target(g.first_arc(5)), 149}};
  const Graph mutated = apply_weight_updates(g, batch).graph;
  svc.apply_updates(batch);

  // The old row is keyed to epoch 1: the next serve recomputes on the new
  // epoch and is exact for the new weights.
  const QueryResponse fresh = svc.server().serve_sync(targeted(5, targets));
  EXPECT_FALSE(fresh.served_from_cache);
  EXPECT_EQ(fresh.graph_epoch, 2u);
  expect_matches_dijkstra(fresh, mutated, 5, "post-swap");
}

void fragment_swap_case(std::size_t fragments) {
  const Graph g = test::weighted_suite(66)[1].graph;  // grid3d
  auto options = small_options();
  options.enable_fragments = true;
  options.fragments = fragments;
  DynamicSsspService svc(g, options);
  const auto targets = spread_targets(g, 4);

  const QueryResponse before = svc.server().serve_sync(
      targeted(2, targets, QueryEngine::kFragment));
  expect_matches_dijkstra(before, g, 2, "fragment-before");

  const std::vector<WeightUpdate> batch = {
      {2, g.arc_target(g.first_arc(2)), 133},
      {targets[2], g.arc_target(g.first_arc(targets[2])), 1}};
  const Graph mutated = apply_weight_updates(g, batch).graph;
  svc.apply_updates(batch);

  // next_epoch re-partitioned the successor: kFragment keeps serving.
  const QueryResponse after = svc.server().serve_sync(
      targeted(2, targets, QueryEngine::kFragment));
  EXPECT_EQ(after.graph_epoch, 2u);
  expect_matches_dijkstra(after, mutated, 2, "fragment-after");
}

TEST(DynamicService, FragmentsSurviveSwapOneFragment) { fragment_swap_case(1); }

TEST(DynamicService, FragmentsSurviveSwapFourFragments) {
  fragment_swap_case(4);
}

TEST(DynamicService, AdversarialGraphsStayExactUnderChurn) {
  // kNone preserves the graph exactly as built (no merge, no
  // symmetrization), so directed/multigraph/self-loop inputs round-trip
  // the whole dynamic pipeline.
  auto options = small_options();
  options.preprocess.heuristic = ShortcutHeuristic::kNone;
  for (const GraphCase& c : test::adversarial_suite(67)) {
    DynamicSsspService svc(c.graph, options);
    Graph shadow = c.graph;
    const auto targets = spread_targets(c.graph, 4);
    for (int round = 0; round < 2; ++round) {
      // Mutate the first arc of a few tails that have one.
      std::vector<WeightUpdate> batch;
      for (Vertex u = 0; u < shadow.num_vertices() && batch.size() < 3; ++u) {
        if (shadow.first_arc(u) == shadow.last_arc(u)) continue;
        const EdgeId e = shadow.first_arc(u);
        batch.push_back(WeightUpdate{
            u, shadow.arc_target(e),
            static_cast<Weight>(7 + 13 * (round + 1) + u % 5)});
      }
      shadow = apply_weight_updates(shadow, batch).graph;

      // Staged-exact first, then flushed-exact.
      svc.stage(batch);
      expect_matches_dijkstra(svc.serve_corrected(targeted(0, targets)),
                              shadow, 0, c.name.c_str());
      svc.flush();
      expect_matches_dijkstra(svc.server().serve_sync(targeted(0, targets)),
                              shadow, 0, c.name.c_str());
    }
  }
}

TEST(DynamicService, SwapUnderLoadEveryResponseConsistentWithItsEpoch) {
  const Graph g = test::weighted_suite(68)[0].graph;
  DynamicSsspService svc(g, small_options());
  const Vertex source = 4;
  const auto targets = spread_targets(g, 3);

  // Epoch -> exact distance row for that epoch's graph. The successor's
  // row is registered BEFORE the flush publishes it, so a client can
  // never observe an epoch the map does not yet know.
  std::mutex mu;
  std::map<std::uint64_t, std::vector<Dist>> rows;
  rows[1] = dijkstra(g, source);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const QueryResponse resp =
            svc.server().serve_sync(targeted(source, targets));
        std::vector<Dist> want;
        {
          std::lock_guard<std::mutex> lock(mu);
          const auto it = rows.find(resp.graph_epoch);
          ASSERT_NE(it, rows.end()) << "unregistered epoch";
          want = it->second;
        }
        for (const TargetResult& tr : resp.targets) {
          ASSERT_EQ(tr.dist, want[tr.target])
              << "epoch " << resp.graph_epoch;
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Graph shadow = g;
  for (int round = 0; round < 6; ++round) {
    const Vertex u = static_cast<Vertex>(3 * round + 1);
    const std::vector<WeightUpdate> batch = {
        {u, shadow.arc_target(shadow.first_arc(u)),
         static_cast<Weight>(1 + 37 * (round + 1) % 140)}};
    shadow = apply_weight_updates(shadow, batch).graph;
    const UpdateReport staged = svc.stage(batch);
    {
      std::lock_guard<std::mutex> lock(mu);
      rows[staged.epoch + 1] = dijkstra(shadow, source);
    }
    const UpdateReport flushed = svc.flush();
    ASSERT_EQ(flushed.epoch, staged.epoch + 1);
  }

  // On a loaded single-core machine all six rounds can finish before any
  // client gets a turn; keep serving until one response has been checked
  // so the consistency assertions above actually ran.
  while (checked.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(svc.server().stats().swaps, 6u);
  EXPECT_EQ(svc.server().engine_snapshot()->graph_epoch(), 7u);
}

// Polls until the published epoch reaches `want` (the background flusher
// runs on its own thread) or a generous deadline passes.
bool wait_for_epoch(DynamicSsspService& svc, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (svc.server().engine_snapshot()->graph_epoch() >= want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(DynamicService, DirtyFractionGaugeTracksStagedWork) {
  const Graph g = test::weighted_suite(63)[0].graph;
  DynamicSsspService svc(g, small_options());
  obs::Gauge& frac =
      svc.server().metrics().gauge("rs_dyn_dirty_fraction");
  EXPECT_DOUBLE_EQ(frac.value(), 0.0);

  const std::vector<WeightUpdate> batch = {
      {0, g.arc_target(g.first_arc(0)), 999}};
  svc.stage(batch);
  EXPECT_GT(frac.value(), 0.0);
  EXPECT_LE(frac.value(), 1.0);
  // The gauge also rides the metrics export.
  EXPECT_NE(svc.server().export_metrics().find("rs_dyn_dirty_fraction"),
            std::string::npos);

  svc.flush();
  EXPECT_DOUBLE_EQ(frac.value(), 0.0);  // flush resets the debt
}

TEST(DynamicService, BackgroundFlushFiresOnDirtyFractionThreshold) {
  const Graph g = test::weighted_suite(64)[0].graph;
  DynamicSsspService::Options opts = small_options();
  // Any batch that dirties at least one ball crosses this threshold, so
  // the stage() below must trigger an immediate background flush.
  opts.flush_dirty_fraction = 1e-9;
  DynamicSsspService svc(g, opts);

  const std::vector<WeightUpdate> batch = {
      {1, g.arc_target(g.first_arc(1)), 777}};
  const Graph mutated = apply_weight_updates(g, batch).graph;
  svc.stage(batch);

  ASSERT_TRUE(wait_for_epoch(svc, 2));
  EXPECT_FALSE(svc.has_staged());
  const QueryResponse after =
      svc.server().serve_sync(targeted(2, spread_targets(g, 3)));
  EXPECT_EQ(after.graph_epoch, 2u);
  expect_matches_dijkstra(after, mutated, 2, "background-threshold");
}

TEST(DynamicService, BackgroundFlushFiresOnTimer) {
  const Graph g = test::weighted_suite(65)[0].graph;
  DynamicSsspService::Options opts = small_options();
  opts.flush_interval_ms = 10;  // threshold off: only the timer flushes
  DynamicSsspService svc(g, opts);

  const std::vector<WeightUpdate> batch = {
      {2, g.arc_target(g.first_arc(2)), 555}};
  const Graph mutated = apply_weight_updates(g, batch).graph;
  svc.stage(batch);

  ASSERT_TRUE(wait_for_epoch(svc, 2));
  EXPECT_FALSE(svc.has_staged());
  const QueryResponse after =
      svc.server().serve_sync(targeted(4, spread_targets(g, 3)));
  expect_matches_dijkstra(after, mutated, 4, "background-timer");
}

TEST(DynamicService, ShutdownWithFlusherAndStagedUpdatesIsClean) {
  const Graph g = test::weighted_suite(66)[0].graph;
  DynamicSsspService::Options opts = small_options();
  opts.flush_interval_ms = 60000;  // armed but won't fire during the test
  {
    DynamicSsspService svc(g, opts);
    svc.stage({{0, g.arc_target(g.first_arc(0)), 123}});
    EXPECT_TRUE(svc.has_staged());
    // Destructor must stop the flusher without forcing a final flush.
  }
}

}  // namespace
}  // namespace rs::serve
