// The landmark (ALT) oracle contract (serve/landmark_oracle.hpp) and the
// top-k request type it shares the early-exit machinery with:
//
//  * admissibility — every bound the oracle hands out is a true lower
//    bound on d(s, t), checked against a Dijkstra oracle over the whole
//    weighted suite (one-sided AND mirrored form; the suite's graphs are
//    symmetric) and the adversarial directed suite (one-sided only — the
//    mirrored form is unsound there and must stay opt-in);
//  * exactness under assistance — an ALT-annotated targeted serve returns
//    distances BIT-IDENTICAL to the plain serve in at most as many steps,
//    across engines and worker counts (lower-bound exits must be
//    invisible in the answers);
//  * top-k — kTopK responses equal the sorted (dist, vertex) prefix of a
//    full Dijkstra run, across engines, k regimes, and disconnected
//    graphs (fewer than k reachable);
//  * epoch discipline — replace() invalidates the oracle; rebuild()
//    revalidates it; annotate() touches only early-terminating targeted
//    requests.
//  * persistence — save()/load() round-trips landmarks + rows (a restart
//    skips `count` full SSSP rebuilds); corrupt or truncated input fails
//    as a clean parse error behind bounds-checked header counts, never
//    as an allocation bomb.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/radii.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "serve/landmark_oracle.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

using serve::LandmarkOptions;
using serve::LandmarkOracle;

/// Restores the global worker count on scope exit.
struct WorkerGuard {
  int before = num_workers();
  ~WorkerGuard() { set_num_workers(before); }
};

/// Engine wrapper that skips preprocessing (constant radii, no shortcuts)
/// so directed/multigraph inputs stay exactly as built.
SsspEngine raw_engine(const Graph& g, Dist r = 25) {
  PreprocessResult pre;
  pre.graph = g;
  pre.radius = constant_radii(g.num_vertices(), r);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  return SsspEngine(g, std::move(pre));
}

std::vector<Vertex> spread_sources(const Graph& g, std::size_t count) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>((i * n) / count));
  }
  return out;
}

void expect_admissible(const Graph& g, const LandmarkOracle& oracle,
                       const char* name) {
  for (const Vertex s : spread_sources(g, 4)) {
    const std::vector<Dist> truth = dijkstra(g, s);
    ASSERT_EQ(oracle.lower_bound(s, s), 0u) << name;
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      ASSERT_LE(oracle.lower_bound(s, t), truth[t])
          << name << " s=" << s << " t=" << t;
    }
  }
}

TEST(LandmarkOracle, BoundsAdmissibleOnWeightedSuite) {
  for (const auto& c : test::weighted_suite()) {
    const SsspEngine engine = raw_engine(c.graph);
    for (const bool symmetric : {false, true}) {
      // The suite's graphs are undirected, so the mirrored bound is sound
      // here — and must still never exceed the true distance.
      LandmarkOptions opts;
      opts.count = 4;
      opts.assume_symmetric = symmetric;
      const LandmarkOracle oracle(engine, opts);
      ASSERT_EQ(oracle.landmarks().size(),
                std::min<std::size_t>(4, c.graph.num_vertices()));
      expect_admissible(c.graph, oracle, c.name.c_str());
    }
  }
}

TEST(LandmarkOracle, BoundsAdmissibleOnAdversarialDirectedSuite) {
  // Directed arcs, self-loops, parallel arcs, asymmetric reachability:
  // the one-sided bound (the default) must stay admissible through all
  // of it — including d(L, t) == inf proving t unreachable from s.
  for (const auto& c : test::adversarial_suite()) {
    const SsspEngine engine = raw_engine(c.graph);
    LandmarkOptions opts;
    opts.count = 4;
    const LandmarkOracle oracle(engine, opts);
    expect_admissible(c.graph, oracle, c.name.c_str());
  }
}

TEST(LandmarkOracle, AssistedServeBitIdenticalAcrossEnginesAndWorkers) {
  const Graph g = assign_uniform_weights(gen::road_network(15, 15, 2), 11,
                                         1, 100);
  PreprocessOptions popts;
  popts.rho = 16;
  popts.k = 2;
  const SsspEngine engine(g, popts);
  LandmarkOptions lopts;
  lopts.count = 6;
  lopts.assume_symmetric = true;  // road networks are undirected
  const LandmarkOracle oracle(engine, lopts);
  ASSERT_TRUE(oracle.valid_for(engine));

  WorkerGuard guard;
  const Vertex n = g.num_vertices();
  for (const int workers : {1, 3, 8}) {
    set_num_workers(workers);
    for (const QueryEngine qe :
         {QueryEngine::kFlat, QueryEngine::kBst, QueryEngine::kBstFlat}) {
      QueryContext ctx;
      for (const Vertex s : spread_sources(g, 5)) {
        QueryRequest plain;
        plain.source = s;
        plain.engine = qe;
        plain.targets = {static_cast<Vertex>((s + n / 2) % n),
                         static_cast<Vertex>((s + 17) % n),
                         static_cast<Vertex>(n - 1 - s)};
        QueryRequest assisted = plain;
        oracle.annotate(assisted);
        ASSERT_EQ(assisted.target_lower_bounds.size(),
                  assisted.targets.size());

        const QueryResponse want = engine.serve(plain, ctx);
        const QueryResponse got = engine.serve(assisted, ctx);
        ASSERT_EQ(got.targets.size(), want.targets.size());
        for (std::size_t i = 0; i < want.targets.size(); ++i) {
          ASSERT_EQ(got.targets[i].target, want.targets[i].target);
          ASSERT_EQ(got.targets[i].dist, want.targets[i].dist)
              << "workers=" << workers << " engine=" << static_cast<int>(qe)
              << " s=" << s;
        }
        // A bound only ever ADDS early-exit opportunities.
        EXPECT_LE(got.stats.steps, want.stats.steps);
      }
    }
  }
}

TEST(LandmarkOracle, TightBoundTriggersEarlyExit) {
  // On a chain with the far end as a target, the oracle's periphery
  // landmarks make the bound exact, so the lower-bound exit must fire and
  // cut steps versus the plain serve — the mechanism, observed.
  const Graph g = assign_uniform_weights(gen::chain(200), 13, 1, 100);
  const SsspEngine engine = raw_engine(g, /*r=*/25);
  LandmarkOptions lopts;
  lopts.count = 2;
  lopts.assume_symmetric = true;
  const LandmarkOracle oracle(engine, lopts);

  QueryRequest plain;
  plain.source = 0;
  plain.targets = {199};
  QueryRequest assisted = plain;
  oracle.annotate(assisted);

  QueryContext ctx;
  const QueryResponse want = engine.serve(plain, ctx);
  const QueryResponse got = engine.serve(assisted, ctx);
  ASSERT_EQ(got.targets[0].dist, want.targets[0].dist);
  EXPECT_EQ(got.lower_bound_exits, 1u);
  EXPECT_LT(got.stats.steps, want.stats.steps);
}

TEST(LandmarkOracle, TopKMatchesSortedDijkstraPrefix) {
  for (const auto& c : test::weighted_suite()) {
    const SsspEngine engine = raw_engine(c.graph);
    const Vertex n = c.graph.num_vertices();
    QueryContext ctx;
    for (const Vertex s : spread_sources(c.graph, 3)) {
      const std::vector<Dist> truth = dijkstra(c.graph, s);
      std::vector<std::pair<Dist, Vertex>> order;
      for (Vertex v = 0; v < n; ++v) {
        if (truth[v] < kInfDist) order.push_back({truth[v], v});
      }
      std::sort(order.begin(), order.end());

      for (const std::uint32_t k :
           {std::uint32_t{1}, std::uint32_t{5}, std::uint32_t{32},
            static_cast<std::uint32_t>(n + 7)}) {
        for (const QueryEngine qe :
             {QueryEngine::kFlat, QueryEngine::kBst, QueryEngine::kBstFlat}) {
          QueryRequest req;
          req.source = s;
          req.kind = RequestKind::kTopK;
          req.k = k;
          req.engine = qe;
          const QueryResponse resp = engine.serve(req, ctx);
          const std::size_t m = std::min<std::size_t>(k, order.size());
          ASSERT_EQ(resp.targets.size(), m)
              << c.name << " s=" << s << " k=" << k;
          for (std::size_t i = 0; i < m; ++i) {
            ASSERT_EQ(resp.targets[i].target, order[i].second);
            ASSERT_EQ(resp.targets[i].dist, order[i].first);
          }
        }
      }
    }
  }
}

TEST(LandmarkOracle, TopKUnweightedEngine) {
  const Graph g = assign_unit_weights(gen::grid2d(14, 13));
  const SsspEngine engine = raw_engine(g, /*r=*/4);
  const std::vector<Dist> truth = dijkstra(g, 7);
  std::vector<std::pair<Dist, Vertex>> order;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    order.push_back({truth[v], v});
  }
  std::sort(order.begin(), order.end());

  QueryRequest req;
  req.source = 7;
  req.kind = RequestKind::kTopK;
  req.k = 40;
  req.engine = QueryEngine::kUnweighted;
  QueryContext ctx;
  const QueryResponse resp = engine.serve(req, ctx);
  ASSERT_EQ(resp.targets.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    ASSERT_EQ(resp.targets[i].target, order[i].second);
    ASSERT_EQ(resp.targets[i].dist, order[i].first);
  }
}

TEST(LandmarkOracle, ReplaceInvalidatesAndRebuildRevalidates) {
  const Graph g1 =
      assign_uniform_weights(gen::road_network(10, 10, 5), 5, 1, 100);
  PreprocessOptions popts;
  popts.rho = 12;
  popts.k = 2;
  SsspEngine engine(g1, popts);
  LandmarkOracle oracle(engine, {});
  ASSERT_TRUE(oracle.valid_for(engine));

  const Graph g2 =
      assign_uniform_weights(gen::road_network(10, 10, 5), 6, 1, 100);
  engine.replace(g2, preprocess(g2, popts));
  EXPECT_FALSE(oracle.valid_for(engine));

  oracle.rebuild(engine);
  EXPECT_TRUE(oracle.valid_for(engine));
  EXPECT_EQ(oracle.graph_epoch(), engine.graph_epoch());
  expect_admissible(g2, oracle, "rebuilt");
}

TEST(LandmarkOracle, AnnotateOnlyTouchesEarlyTerminatingTargetedRequests) {
  const SsspEngine engine =
      raw_engine(assign_uniform_weights(gen::chain(30), 3, 1, 10));
  const LandmarkOracle oracle(engine, {});

  QueryRequest topk;
  topk.kind = RequestKind::kTopK;
  topk.k = 3;
  oracle.annotate(topk);
  EXPECT_TRUE(topk.target_lower_bounds.empty());

  QueryRequest full;
  full.targets = {5};
  full.want_full_distances = true;  // exhaustive run: bounds would be noise
  oracle.annotate(full);
  EXPECT_TRUE(full.target_lower_bounds.empty());

  QueryRequest targeted;
  targeted.source = 0;
  targeted.targets = {5, 29};
  oracle.annotate(targeted);
  EXPECT_EQ(targeted.target_lower_bounds.size(), 2u);
}

TEST(LandmarkOracleSerialize, RoundTripPreservesRowsAndServing) {
  const Graph g = assign_uniform_weights(gen::road_network(12, 12, 2), 17,
                                         1, 100);
  PreprocessOptions popts;
  popts.rho = 12;
  const SsspEngine engine(g, popts);
  LandmarkOptions lopts;
  lopts.count = 5;
  lopts.assume_symmetric = true;  // restored by load(): bounds must match
  const LandmarkOracle oracle(engine, lopts);
  ASSERT_TRUE(oracle.valid_for(engine));

  std::stringstream buf;
  oracle.save(buf);
  const LandmarkOracle loaded = LandmarkOracle::load(buf);

  EXPECT_EQ(loaded.graph_epoch(), oracle.graph_epoch());
  EXPECT_EQ(loaded.landmarks(), oracle.landmarks());
  EXPECT_EQ(loaded.rows(), oracle.rows());
  EXPECT_TRUE(loaded.valid_for(engine));

  // Bounds (including the mirrored term toggled by the persisted
  // symmetric flag) and assisted serving must be indistinguishable from
  // the freshly built oracle.
  const Vertex n = g.num_vertices();
  QueryContext ctx;
  for (const Vertex s : spread_sources(g, 4)) {
    const Vertex t = static_cast<Vertex>((s + n / 2) % n);
    EXPECT_EQ(loaded.lower_bound(s, t), oracle.lower_bound(s, t));

    QueryRequest plain;
    plain.source = s;
    plain.targets = {t};
    QueryRequest assisted = plain;
    loaded.annotate(assisted);
    const QueryResponse want = engine.serve(plain, ctx);
    const QueryResponse got = engine.serve(assisted, ctx);
    ASSERT_EQ(got.targets[0].dist, want.targets[0].dist);
    EXPECT_LE(got.stats.steps, want.stats.steps);
  }

  // Epoch discipline survives the round trip: a graph swap after saving
  // makes the LOADED rows stale too.
  SsspEngine swapped = engine;
  swapped.replace(g, preprocess(g, popts));
  EXPECT_FALSE(loaded.valid_for(swapped));
}

// Byte offsets of the untrusted header counts in the RSLM format:
// magic(4) + version(4) + graph_epoch(8) => n at 16, count at 20.
constexpr std::size_t kOracleVertexCountOffset = 16;
constexpr std::size_t kOracleLandmarkCountOffset = 20;
constexpr std::size_t kOracleLandmarksOffset = 29;  // + count(8) + flag(1)

std::string valid_oracle_bytes() {
  const Graph g = assign_uniform_weights(gen::grid2d(6, 6), 3);
  const SsspEngine engine = raw_engine(g);
  LandmarkOptions opts;
  opts.count = 3;
  const LandmarkOracle oracle(engine, opts);
  std::stringstream buf;
  oracle.save(buf);
  return buf.str();
}

TEST(LandmarkOracleSerialize, RejectsGarbageAndTruncationAtEveryBoundary) {
  std::stringstream garbage;
  garbage << "not a landmark file";
  EXPECT_THROW(LandmarkOracle::load(garbage), std::runtime_error);

  const std::string full = valid_oracle_bytes();
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{10},
        kOracleVertexCountOffset + 2, kOracleLandmarkCountOffset + 8,
        kOracleLandmarksOffset + 5, full.size() / 2, full.size() - 1}) {
    std::stringstream in(full.substr(0, cut));
    EXPECT_THROW(LandmarkOracle::load(in), std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(LandmarkOracleSerialize, RejectsCorruptCountsBeforeAllocating) {
  // A multi-billion-landmark claim must fail as a clean parse error
  // (count is bounded by n, then by the stream size), not as a giant
  // allocation attempt.
  std::string bytes = valid_oracle_bytes();
  const std::uint64_t huge_count = 1ull << 40;
  std::memcpy(&bytes[kOracleLandmarkCountOffset], &huge_count,
              sizeof(huge_count));
  std::stringstream in(bytes);
  EXPECT_THROW(LandmarkOracle::load(in), std::runtime_error);

  // n = 0xFFFFFFFF is the kNoVertex sentinel; rejected outright.
  std::string bytes2 = valid_oracle_bytes();
  const std::uint32_t bad_n = 0xFFFFFFFFu;
  std::memcpy(&bytes2[kOracleVertexCountOffset], &bad_n, sizeof(bad_n));
  std::stringstream in2(bytes2);
  EXPECT_THROW(LandmarkOracle::load(in2), std::runtime_error);

  // A large-but-not-sentinel n must still be bounded by the bytes the
  // stream actually has (rows are count * n distances).
  std::string bytes3 = valid_oracle_bytes();
  const std::uint32_t big_n = 0x7FFFFFFFu;
  std::memcpy(&bytes3[kOracleVertexCountOffset], &big_n, sizeof(big_n));
  std::stringstream in3(bytes3);
  EXPECT_THROW(LandmarkOracle::load(in3), std::runtime_error);
}

TEST(LandmarkOracleSerialize, RejectsOutOfRangeLandmark) {
  std::string bytes = valid_oracle_bytes();
  const std::uint32_t bogus = 1u << 20;  // far beyond the 36-vertex grid
  std::memcpy(&bytes[kOracleLandmarksOffset], &bogus, sizeof(bogus));
  std::stringstream in(bytes);
  EXPECT_THROW(LandmarkOracle::load(in), std::runtime_error);
}

TEST(LandmarkOracleSerialize, FileRoundTrip) {
  const Graph g = assign_uniform_weights(gen::grid2d(7, 7), 5);
  const SsspEngine engine = raw_engine(g);
  LandmarkOptions opts;
  opts.count = 4;
  const LandmarkOracle oracle(engine, opts);

  const std::string path = ::testing::TempDir() + "/rs_landmarks_test.bin";
  oracle.save_file(path);
  const LandmarkOracle loaded = LandmarkOracle::load_file(path);
  EXPECT_EQ(loaded.landmarks(), oracle.landmarks());
  EXPECT_EQ(loaded.rows(), oracle.rows());
  EXPECT_TRUE(loaded.valid_for(engine));
  EXPECT_THROW(LandmarkOracle::load_file("/nonexistent/rs_landmarks.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace rs
