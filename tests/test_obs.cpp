// The observability subsystem's own contract (src/obs/):
//
//  * MetricsRegistry — find-or-create returns the SAME stable handle for
//    the same name+labels, distinct handles for distinct label sets, and
//    throws on a kind collision; snapshot() walks in registration order;
//  * Histogram — merge() folds counts/total/sum bucket-wise; the edge
//    cases the serving stack actually produces: empty histogram quantiles,
//    a single sample, and values at the saturating top of the uint64
//    range;
//  * TraceBuffer — fixed capacity drops silently, station_total_ns sums
//    depth-0 spans only, disabled buffers record nothing;
//  * exporters — Prometheus text exposition emits HELP/TYPE once per
//    metric NAME (even across labeled series), samples carry their label
//    sets, and the JSON form round-trips the same values.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rs::obs {
namespace {

// Counts non-overlapping occurrences of `needle` in `hay`.
std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(MetricsRegistry, FindOrCreateReturnsStableSharedHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("rs_test_total", {}, "help");
  Counter& b = reg.counter("rs_test_total");
  EXPECT_EQ(&a, &b);  // same series -> same cell
  a.add(3);
  b.add();
  EXPECT_EQ(a.value(), 4u);
  EXPECT_EQ(reg.size(), 1u);

  // Different label sets are different series under the same name.
  Counter& x = reg.counter("rs_labeled_total", {{"reason", "full"}});
  Counter& y = reg.counter("rs_labeled_total", {{"reason", "invalid"}});
  EXPECT_NE(&x, &y);
  x.add(7);
  EXPECT_EQ(y.value(), 0u);
  // Label ORDER does not create a new series.
  Counter& x2 = reg.counter(
      "rs_multi_total", {{"a", "1"}, {"b", "2"}});
  Counter& x3 = reg.counter(
      "rs_multi_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&x2, &x3);
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("rs_thing");
  EXPECT_THROW(reg.gauge("rs_thing"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("rs_thing"), std::invalid_argument);
  // Same name with different labels may be a different kind — the key is
  // name+labels, not name alone (matches the registry's series keying).
  EXPECT_NO_THROW(reg.gauge("rs_thing", {{"as", "gauge"}}));
}

TEST(MetricsRegistry, SnapshotPreservesRegistrationOrderAndValues) {
  MetricsRegistry reg;
  reg.counter("c_first").add(10);
  reg.gauge("g_second").set(2.5);
  reg.histogram("h_third").record(99);

  const std::vector<MetricSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "c_first");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 10.0);
  EXPECT_EQ(snap[1].name, "g_second");
  EXPECT_DOUBLE_EQ(snap[1].value, 2.5);
  EXPECT_EQ(snap[2].name, "h_third");
  EXPECT_EQ(snap[2].hist.total, 1u);
  EXPECT_EQ(snap[2].hist.sum, 99u);
}

TEST(MetricsRegistry, GaugeRecordMaxIsMonotone) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("rs_watermark");
  g.record_max(4.0);
  g.record_max(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);  // set() still overwrites downward
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdatesAreSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Every thread registers the SAME series and hammers it — the
      // find-or-create path and the update path must both be safe.
      Counter& c = reg.counter("rs_shared_total");
      Histogram& h = reg.histogram("rs_shared_us");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("rs_shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("rs_shared_us").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogram, EmptyQuantilesAndSumAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.value_at_quantile(0.0), 0u);
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
  EXPECT_EQ(h.value_at_quantile(1.0), 0u);
}

TEST(ObsHistogram, SingleSampleDominatesEveryQuantile) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 777u);
  const std::uint64_t p0 = h.value_at_quantile(0.0);
  const std::uint64_t p50 = h.value_at_quantile(0.5);
  const std::uint64_t p999 = h.value_at_quantile(0.999);
  EXPECT_EQ(p0, p50);
  EXPECT_EQ(p50, p999);
  // Conservative upper bound within the documented 1/32 relative error.
  EXPECT_GE(p50, 777u);
  EXPECT_LE(p50, 777u + 777u / Histogram::kSubBuckets + 1);
}

TEST(ObsHistogram, SaturatingTopBucketStaysFiniteAndOrdered) {
  Histogram h;
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  h.record(top);
  h.record(top - 1);
  h.record(1);
  EXPECT_EQ(h.count(), 3u);
  // The max value maps to the last bucket and quantile reads return that
  // bucket's upper bound — which must itself be representable (no wrap).
  EXPECT_EQ(Histogram::bucket_index(top), Histogram::kBuckets - 1);
  EXPECT_EQ(h.value_at_quantile(1.0),
            Histogram::bucket_upper(Histogram::kBuckets - 1));
  EXPECT_GE(h.value_at_quantile(1.0), top - top / Histogram::kSubBuckets);
  EXPECT_LE(h.value_at_quantile(0.0), 1u);
}

TEST(ObsHistogram, MergeFoldsCountsTotalsAndSums) {
  Histogram a;
  Histogram b;
  for (std::uint64_t v : {1ull, 10ull, 100ull}) a.record(v);
  for (std::uint64_t v : {1000ull, 10000ull}) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 1u + 10u + 100u + 1000u + 10000u);
  // b is untouched; a's quantiles now cover b's range.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_GE(a.value_at_quantile(1.0), 10000u);
  EXPECT_LE(a.value_at_quantile(0.0), 1u);

  // Merging an empty histogram is a no-op.
  const std::uint64_t before = a.count();
  a.merge(Histogram{});
  EXPECT_EQ(a.count(), before);
}

TEST(TraceBuffer, CapacityDropsSilentlyAndStationsSumDepthZeroOnly) {
  TraceBuffer tb;
  EXPECT_EQ(tb.size, 0u);
  tb.add(SpanId::kAdmission, 0, 0, 5);  // disabled: ignored
  EXPECT_EQ(tb.size, 0u);

  tb.enabled = true;
  tb.add(SpanId::kAdmission, 0, 0, 5);
  tb.add(SpanId::kQueueWait, 0, 5, 10);
  tb.add(SpanId::kRelax, 1, 0, 100);  // depth 1: excluded from stations
  EXPECT_EQ(tb.size, 3u);
  EXPECT_EQ(tb.station_total_ns(), 15u);

  for (int i = 0; i < 40; ++i) tb.add(SpanId::kEngine, 0, 0, 1);
  EXPECT_EQ(tb.size, TraceBuffer::kCapacity);  // silently capped
}

TEST(TraceEnv, SampleParsesUnsetZeroAndPositive) {
  ::unsetenv("RS_TRACE");
  EXPECT_EQ(trace_sample_from_env(), 0u);
  ::setenv("RS_TRACE", "0", 1);
  EXPECT_EQ(trace_sample_from_env(), 0u);
  ::setenv("RS_TRACE", "16", 1);
  EXPECT_EQ(trace_sample_from_env(), 16u);
  ::setenv("RS_TRACE", "-3", 1);
  EXPECT_EQ(trace_sample_from_env(), 0u);
  ::unsetenv("RS_TRACE");
}

TEST(Exporters, PrometheusEmitsHeadersOncePerNameAndAllSeries) {
  MetricsRegistry reg;
  reg.counter("rs_req_total", {{"reason", "full"}}, "Rejections").add(2);
  reg.counter("rs_req_total", {{"reason", "invalid"}}, "Rejections").add(5);
  reg.gauge("rs_epoch", {}, "Epoch").set(3);
  reg.histogram("rs_lat_us", {}, "Latency").record(100);

  const std::string text = to_prometheus(reg);
  // One HELP and one TYPE for the two labeled rs_req_total series.
  EXPECT_EQ(count_occurrences(text, "# HELP rs_req_total"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE rs_req_total counter"), 1u);
  EXPECT_NE(text.find("rs_req_total{reason=\"full\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rs_req_total{reason=\"invalid\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rs_epoch gauge"), std::string::npos);
  EXPECT_NE(text.find("rs_epoch 3"), std::string::npos);
  // Histograms render as a summary: quantiles + _sum + _count.
  EXPECT_NE(text.find("# TYPE rs_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("rs_lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("rs_lat_us_sum 100"), std::string::npos);
  EXPECT_NE(text.find("rs_lat_us_count 1"), std::string::npos);
  // Exposition ends with a newline (scrapers require it).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Exporters, JsonCarriesTheSameValues) {
  MetricsRegistry reg;
  reg.counter("rs_c", {{"k", "v"}}).add(4);
  reg.gauge("rs_g").set(1.5);
  reg.histogram("rs_h").record(50);

  const std::string json = to_json(reg);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"rs_c\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":4"), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":50"), std::string::npos);
}

}  // namespace
}  // namespace rs::obs
