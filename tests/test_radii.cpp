// Unit coverage for core/radii.hpp: the constructed radius functions and
// the step-count regimes they put Radius-Stepping into (r ≡ 0 behaves like
// Dijkstra, r ≡ "infinity" like a single-step Bellman-Ford).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(Radii, ConstantRadiiShapeAndValues) {
  const auto r = constant_radii(5, 42);
  ASSERT_EQ(r.size(), 5u);
  for (const Dist v : r) EXPECT_EQ(v, 42u);
  EXPECT_TRUE(constant_radii(0, 7).empty());
}

TEST(Radii, DijkstraRadiiAreZero) {
  const auto r = dijkstra_radii(8);
  ASSERT_EQ(r.size(), 8u);
  for (const Dist v : r) EXPECT_EQ(v, 0u);
}

TEST(Radii, BellmanFordRadiiAreLargeButOverflowSafe) {
  const auto r = bellman_ford_radii(3);
  ASSERT_EQ(r.size(), 3u);
  for (const Dist v : r) {
    EXPECT_GE(v, kInfDist / 2);
    // Adding a radius to any unsettled tentative distance (< kInfDist by
    // construction, and kInfDist itself for unreached) must not wrap.
    EXPECT_LE(v, std::numeric_limits<Dist>::max() - kInfDist);
  }
}

TEST(Radii, ZeroRadiiSettleOneDistanceClassPerStep) {
  // With r ≡ 0, d_i is the minimum frontier distance, so each outer step
  // settles exactly one distinct distance value: steps == #classes.
  const Graph g =
      assign_uniform_weights(gen::grid2d(9, 11), /*seed=*/3, 1, 50);
  const auto ref = dijkstra(g, 0);
  RunStats stats;
  const auto d =
      radius_stepping(g, 0, dijkstra_radii(g.num_vertices()), &stats);
  EXPECT_EQ(d, ref);

  std::set<Dist> classes;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (ref[v] > 0 && ref[v] < kInfDist) classes.insert(ref[v]);
  }
  EXPECT_EQ(stats.steps, classes.size());
  // One distance class per step also means exactly one substep each.
  EXPECT_EQ(stats.max_substeps_in_step, 1u);
}

TEST(Radii, BellmanFordRadiiFinishInOneStep) {
  const Graph g =
      assign_uniform_weights(gen::road_network(10, 10, /*seed=*/5), 6, 1, 100);
  const auto ref = dijkstra(g, 0);
  RunStats stats;
  const auto d =
      radius_stepping(g, 0, bellman_ford_radii(g.num_vertices()), &stats);
  EXPECT_EQ(d, ref);
  EXPECT_EQ(stats.steps, 1u);
  // The single step must converge via Bellman-Ford substeps; on a connected
  // graph with >= 2 vertices that takes at least one substep.
  EXPECT_GE(stats.substeps, 1u);
  EXPECT_EQ(stats.settled, static_cast<std::size_t>(g.num_vertices()));
}

TEST(Radii, ConstantDeltaRadiiAreCorrectForAnyDelta) {
  // Theorem 3.1: Radius-Stepping is exact for ANY nonnegative radii. Sweep
  // a few deltas spanning Dijkstra-like to Bellman-Ford-like behaviour.
  const Graph g = assign_uniform_weights(gen::grid3d(4, 5, 4), 9, 1, 80);
  const auto ref = dijkstra(g, 2);
  RunStats prev_stats;
  std::size_t prev_steps = 0;
  for (const Dist delta :
       {Dist{0}, Dist{1}, Dist{10}, Dist{100}, Dist{10000}}) {
    RunStats stats;
    const auto d =
        radius_stepping(g, 2, constant_radii(g.num_vertices(), delta), &stats);
    EXPECT_EQ(d, ref) << "delta " << delta;
    // Bigger radii can only coarsen the step partition.
    if (prev_steps != 0) {
      EXPECT_LE(stats.steps, prev_steps) << "delta " << delta;
    }
    prev_steps = stats.steps;
    prev_stats = stats;
  }
  EXPECT_EQ(prev_stats.steps, 1u);  // delta = 10000 >= any distance here
}

TEST(Radii, RadiiSweepAgreesAcrossWeightedSuite) {
  for (const auto& c : test::weighted_suite(/*seed=*/17)) {
    const auto ref = dijkstra(c.graph, 0);
    const Vertex n = c.graph.num_vertices();
    EXPECT_EQ(radius_stepping(c.graph, 0, dijkstra_radii(n)), ref) << c.name;
    EXPECT_EQ(radius_stepping(c.graph, 0, constant_radii(n, 37)), ref)
        << c.name;
    EXPECT_EQ(radius_stepping(c.graph, 0, bellman_ford_radii(n)), ref)
        << c.name;
  }
}

TEST(Radii, MismatchedRadiusSizeThrows) {
  const Graph g = gen::chain(6);
  EXPECT_THROW(radius_stepping(g, 0, constant_radii(5, 1)),
               std::invalid_argument);
  EXPECT_THROW(radius_stepping(g, 0, constant_radii(7, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rs
