// PreprocessContext and the pooled preprocessing pipeline: pooled output
// must be bit-identical to the plain path, invariant across worker counts
// (including the adversarial directed multigraphs), and a pool must be
// safely reusable across graphs of different sizes — growing and shrinking
// — without stale-stamp bugs leaking state between runs.
#include "shortcut/preprocess_context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/kradius.hpp"
#include "shortcut/tuning.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// RAII worker-count override so a failing assertion can't leak a weird
/// thread count into later tests.
class WorkerGuard {
 public:
  explicit WorkerGuard(int n) : before_(num_workers()) { set_num_workers(n); }
  ~WorkerGuard() { set_num_workers(before_); }

 private:
  int before_;
};

constexpr int kManyWorkers = 8;  // oversubscribed on small CI boxes — good

PreprocessOptions small_opts() {
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kDP;
  return opts;
}

void expect_identical(const PreprocessResult& a, const PreprocessResult& b,
                      const std::string& name) {
  EXPECT_EQ(a.graph, b.graph) << name;
  EXPECT_EQ(a.radius, b.radius) << name;
  EXPECT_EQ(a.added_edges, b.added_edges) << name;
  EXPECT_EQ(a.added_factor, b.added_factor) << name;
}

std::vector<test::GraphCase> both_suites(std::uint64_t seed) {
  auto cases = test::weighted_suite(seed);
  for (auto& c : test::adversarial_suite(seed)) cases.push_back(std::move(c));
  return cases;
}

TEST(PreprocessPool, PooledMatchesPlainAndWarmRerun) {
  const PreprocessOptions opts = small_opts();
  PreprocessPool pool;  // shared across ALL cases: cross-graph reuse too
  for (const auto& [name, g] : both_suites(13)) {
    const PreprocessResult plain = preprocess(g, opts);
    const PreprocessResult pooled = preprocess(g, opts, pool);
    const PreprocessResult warm = preprocess(g, opts, pool);
    expect_identical(plain, pooled, name);
    expect_identical(plain, warm, name + " (warm rerun)");
  }
}

TEST(PreprocessPool, WorkerCountInvariantOverBothSuites) {
  // 1-vs-N-worker bit-identical PreprocessResult — including the directed /
  // self-loop / parallel-arc adversarial multigraphs.
  const PreprocessOptions opts = small_opts();
  for (const auto& [name, g] : both_suites(17)) {
    PreprocessResult pre1, preN;
    {
      WorkerGuard guard(1);
      PreprocessPool pool;
      pre1 = preprocess(g, opts, pool);
    }
    {
      WorkerGuard guard(kManyWorkers);
      PreprocessPool pool;
      preN = preprocess(g, opts, pool);
    }
    expect_identical(pre1, preN, name);
  }
}

TEST(PreprocessPool, WorkerCountChangeOnOneWarmPool) {
  // The same pool serving a wide run, then a 1-worker run, then wide again:
  // slots beyond the active worker count must not leak staged edges.
  const PreprocessOptions opts = small_opts();
  const Graph g = test::weighted_suite(19)[0].graph;
  const PreprocessResult expected = preprocess(g, opts);
  PreprocessPool pool;
  {
    WorkerGuard guard(kManyWorkers);
    expect_identical(expected, preprocess(g, opts, pool), "wide");
  }
  {
    WorkerGuard guard(1);
    expect_identical(expected, preprocess(g, opts, pool), "narrow");
  }
  {
    WorkerGuard guard(kManyWorkers);
    expect_identical(expected, preprocess(g, opts, pool), "wide again");
  }
}

TEST(PreprocessPool, ReuseAcrossGraphSizesGrowShrink) {
  // big -> small -> big on one pool; every run must match a fresh pool.
  // Shrinking leaves stale stamps for vertices beyond the small graph;
  // growing back must not resurrect them.
  const PreprocessOptions opts = small_opts();
  const Graph big = assign_uniform_weights(gen::grid2d(22, 20), 3, 1, 100);
  const Graph small = assign_uniform_weights(gen::grid2d(5, 4), 4, 1, 100);
  const PreprocessResult big_fresh = preprocess(big, opts);
  const PreprocessResult small_fresh = preprocess(small, opts);

  PreprocessPool pool;
  expect_identical(big_fresh, preprocess(big, opts, pool), "big");
  expect_identical(small_fresh, preprocess(small, opts, pool), "small");
  expect_identical(big_fresh, preprocess(big, opts, pool), "big again");
}

TEST(PreprocessContext, BallAndSelectMatchFreshAcrossGraphSizes) {
  // Context-level grow/shrink: one context running balls on a large graph,
  // then a small one, then the large one again gives exactly the balls a
  // fresh workspace computes — for every heuristic on the reused scratch.
  const Graph big = assign_uniform_weights(gen::grid2d(18, 19), 7, 1, 100)
                        .with_weight_sorted_adjacency();
  const Graph small = assign_uniform_weights(gen::chain(9), 8, 1, 100)
                          .with_weight_sorted_adjacency();
  PreprocessContext ctx;
  const BallOptions opts{8, 0, /*settle_ties=*/true};
  const auto check = [&](const Graph& g, const char* label) {
    for (Vertex s = 0; s < g.num_vertices(); s += 7) {
      const Ball& got = ctx.ball(g, s, opts);
      BallSearchWorkspace fresh(g.num_vertices());
      const Ball want = fresh.run(g, s, opts);
      ASSERT_EQ(got.vertices.size(), want.vertices.size()) << label << " " << s;
      EXPECT_EQ(got.radius, want.radius) << label << " " << s;
      for (std::size_t i = 0; i < want.vertices.size(); ++i) {
        EXPECT_EQ(got.vertices[i].v, want.vertices[i].v) << label << " " << s;
        EXPECT_EQ(got.vertices[i].dist, want.vertices[i].dist)
            << label << " " << s;
        EXPECT_EQ(got.vertices[i].hops, want.vertices[i].hops)
            << label << " " << s;
      }
      for (const auto heuristic :
           {ShortcutHeuristic::kFull1Rho, ShortcutHeuristic::kGreedy,
            ShortcutHeuristic::kDP}) {
        EXPECT_EQ(ctx.select(got, 2, heuristic),
                  select_shortcuts(want, 2, heuristic))
            << label << " " << s << " " << to_string(heuristic);
      }
    }
  };
  check(big, "big");
  check(small, "small");
  check(big, "big again");
}

TEST(PreprocessPool, PooledRadiiAndKRadiiMatchPlain) {
  PreprocessPool pool;
  for (const auto& [name, g] : test::weighted_suite(21)) {
    EXPECT_EQ(all_radii(g, 8, pool), all_radii(g, 8)) << name;
    EXPECT_EQ(all_k_radii_exact(g, 2, pool), all_k_radii_exact(g, 2)) << name;
  }
}

TEST(PreprocessPool, PooledTuningEstimateMatchesPlain) {
  PreprocessPool pool;
  const Graph g = test::weighted_suite(25)[2].graph;
  for (const Vertex rho : {Vertex{8}, Vertex{16}}) {
    const double plain =
        estimate_added_factor(g, rho, 2, ShortcutHeuristic::kDP, 32, 7);
    const double pooled =
        estimate_added_factor(g, rho, 2, ShortcutHeuristic::kDP, 32, 7, pool);
    EXPECT_EQ(plain, pooled) << "rho=" << rho;
  }
}

TEST(SsspEngine, PooledConstructorMatchesPlain) {
  const Graph g = test::weighted_suite(27)[0].graph;
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  PreprocessPool pool;
  const SsspEngine plain(g, opts);
  const SsspEngine pooled(g, opts, pool);
  const SsspEngine warm(g, opts, pool);
  expect_identical(plain.preprocessing(), pooled.preprocessing(), "pooled");
  expect_identical(plain.preprocessing(), warm.preprocessing(), "warm");
  EXPECT_EQ(plain.query(3).dist, warm.query(3).dist);
}

}  // namespace
}  // namespace rs
