#include "core/sp_tree.hpp"

#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "graph/builder.hpp"
#include "shortcut/ball_search.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(ParentsFromDistances, HandComputed) {
  const Graph g = build_graph(4, {{0, 1, 5}, {0, 2, 9}, {1, 3, 1}, {2, 3, 2}});
  const auto dist = dijkstra(g, 0);
  const auto parent = parents_from_distances(g, dist);
  EXPECT_EQ(parent[0], kNoVertex);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[3], 1u);
  EXPECT_EQ(parent[2], 3u);  // 0-1-3-2 is shorter than 0-2
  EXPECT_TRUE(validate_shortest_path_tree(g, dist, parent));
}

class SpTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(SpTreeTest, ParentsValidForEverySuiteGraph) {
  for (const auto& [name, g] : test::weighted_suite(GetParam())) {
    const auto dist = radius_stepping(g, 0, all_radii(g, 8));
    const auto parent = parents_from_distances(g, dist);
    EXPECT_TRUE(validate_shortest_path_tree(g, dist, parent)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpTreeTest, ::testing::Range(1, 4));

TEST(ParentsFromDistances, DirectedChainUsesIncomingArcs) {
  // 0 -> 1 -> 2 -> 3 with NO reverse arcs: v's predecessor is only visible
  // through v's incoming arcs. The pre-fix implementation walked v's
  // outgoing arcs (valid only on symmetric graphs) and returned no parents
  // at all here.
  BuildOptions directed;
  directed.symmetrize = false;
  const Graph g =
      build_graph(4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}, directed);
  const auto dist = dijkstra(g, 0);
  const auto parent = parents_from_distances(g, dist);
  EXPECT_EQ(parent[0], kNoVertex);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[3], 2u);
  EXPECT_TRUE(validate_shortest_path_tree(g, dist, parent));
  EXPECT_EQ(extract_path(parent, 3), (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(ParentsFromDistances, DirectedCycleAndAdversarialSuite) {
  // Directed cycle: the only route from 0 to v is 0 -> 1 -> ... -> v, and
  // every arc is one-way.
  BuildOptions directed;
  directed.symmetrize = false;
  const Vertex n = 30;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<Vertex>((v + 1) % n),
                     static_cast<Weight>(1 + (v % 5))});
  }
  const Graph cycle = build_graph(n, std::move(edges), directed);
  const auto dist = dijkstra(cycle, 0);
  const auto parent = parents_from_distances(cycle, dist);
  EXPECT_TRUE(validate_shortest_path_tree(cycle, dist, parent));
  for (Vertex v = 1; v < n; ++v) EXPECT_EQ(parent[v], v - 1) << v;

  // And every graph in the adversarial palette (directed arcs, self-loops,
  // parallel arcs) must yield a validating tree.
  for (const auto& [name, g] : test::adversarial_suite(3)) {
    const auto d = dijkstra(g, 0);
    const auto p = parents_from_distances(g, d);
    EXPECT_TRUE(validate_shortest_path_tree(g, d, p)) << name;
  }
}

TEST(ParentsFromDistances, PrebuiltTransposeMatchesAndValidates) {
  for (const auto& [name, g] : test::weighted_suite(9)) {
    const auto dist = dijkstra(g, 0);
    const Graph tg = g.transposed();
    EXPECT_EQ(parents_from_distances(g, tg, dist),
              parents_from_distances(g, dist))
        << name;
  }
  const Graph g = build_graph(3, {{0, 1, 1}, {1, 2, 1}});
  EXPECT_THROW(
      parents_from_distances(g, build_graph(2, {{0, 1, 1}}), dijkstra(g, 0)),
      std::invalid_argument);
}

TEST(ParentsFromDistances, UnreachableGetNoParent) {
  const Graph g = build_graph(4, {{0, 1, 3}});
  const auto dist = dijkstra(g, 0);
  const auto parent = parents_from_distances(g, dist);
  EXPECT_EQ(parent[2], kNoVertex);
  EXPECT_EQ(parent[3], kNoVertex);
  EXPECT_TRUE(validate_shortest_path_tree(g, dist, parent));
}

TEST(ParentsFromDistances, DeterministicTieBreak) {
  // Two equal-length routes to vertex 3 via 1 and 2: parent must be the
  // smaller id (1).
  const Graph g = build_graph(4, {{0, 1, 5}, {0, 2, 5}, {1, 3, 5}, {2, 3, 5}});
  const auto parent = parents_from_distances(g, dijkstra(g, 0));
  EXPECT_EQ(parent[3], 1u);
}

TEST(ParentsFromDistances, RejectsSizeMismatch) {
  const Graph g = build_graph(3, {{0, 1, 1}});
  EXPECT_THROW(parents_from_distances(g, std::vector<Dist>(2, 0)),
               std::invalid_argument);
}

TEST(ExtractPath, WalksToSource) {
  const Graph g = build_graph(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  const auto parent = parents_from_distances(g, dijkstra(g, 0));
  EXPECT_EQ(extract_path(parent, 3), (std::vector<Vertex>{0, 1, 2, 3}));
  EXPECT_EQ(extract_path(parent, 0), (std::vector<Vertex>{0}));
}

TEST(ExtractPath, DetectsCycles) {
  std::vector<Vertex> parent{1, 0};  // malformed: 0 <-> 1
  EXPECT_THROW(extract_path(parent, 0), std::logic_error);
}

TEST(ValidateTree, RejectsWrongParent) {
  const Graph g = build_graph(3, {{0, 1, 1}, {1, 2, 1}});
  const auto dist = dijkstra(g, 0);
  std::vector<Vertex> parent{kNoVertex, 0, 0};  // 2's parent should be 1
  EXPECT_FALSE(validate_shortest_path_tree(g, dist, parent));
}

TEST(PathCost, MatchesReportedDistance) {
  for (const auto& [name, g] : test::weighted_suite(5)) {
    const auto dist = dijkstra(g, 0);
    const auto parent = parents_from_distances(g, dist);
    const Vertex target = g.num_vertices() - 1;
    if (dist[target] == kInfDist) continue;
    const auto path = extract_path(parent, target);
    ASSERT_GE(path.size(), 1u) << name;
    EXPECT_EQ(path.front(), 0u) << name;
    EXPECT_EQ(path.back(), target) << name;
    Dist total = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      const Vertex u = path[i - 1];
      const Vertex v = path[i];
      Weight w = 0;
      bool found = false;
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        if (g.arc_target(e) == v) {
          w = g.arc_weight(e);
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << name;
      total += w;
    }
    EXPECT_EQ(total, dist[target]) << name;
  }
}

}  // namespace
}  // namespace rs
