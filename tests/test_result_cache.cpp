// The hot-source result cache contract (serve/result_cache.hpp):
//
//  * hit/miss life cycle — a first cache-eligible serve computes and
//    publishes one full-distance row, the second is answered from it with
//    BIT-IDENTICAL targets and stats, and an SsspEngine::replace() bumps
//    the epoch so every old row silently stops matching (then purge_stale
//    reclaims it);
//  * single-flight — concurrent misses on one key produce exactly ONE
//    owner computation; waiters share the owner's row (same object), and
//    an owner failure wakes them with the exception instead of a row;
//  * LRU eviction is exact — with shards=1, the evicted key is precisely
//    the least recently USED one (lookups refresh recency), never an
//    in-flight entry;
//  * clear() only drops ready rows — a key that is in flight keeps its
//    waiters' future alive across a clear().
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "serve/result_cache.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {
namespace {

using serve::CacheAcquire;
using serve::CachedRow;
using serve::CacheKey;
using serve::ResultCache;
using serve::ResultCacheOptions;
using serve::RowPtr;
using serve::cache_eligible;
using serve::cached_serve;
using serve::key_for;

PreprocessOptions small_opts() {
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  return opts;
}

SsspEngine small_engine(std::uint64_t seed = 7) {
  const Graph g =
      assign_uniform_weights(gen::road_network(12, 12, 3), seed, 1, 100);
  return SsspEngine(g, small_opts());
}

/// A ready row for raw-API tests; content does not matter there.
RowPtr dummy_row(Vertex source) {
  auto row = std::make_shared<CachedRow>();
  row->source = source;
  row->graph_epoch = 1;
  row->dist = {0, 1, 2};
  return row;
}

TEST(ResultCache, Eligibility) {
  QueryRequest req;
  req.targets = {3};
  EXPECT_TRUE(cache_eligible(req));
  req.want_full_distances = true;  // full vector projects from the row too
  EXPECT_TRUE(cache_eligible(req));

  QueryRequest paths = req;
  paths.want_paths = true;  // path expansion needs the engine
  EXPECT_FALSE(cache_eligible(paths));

  QueryRequest topk;
  topk.kind = RequestKind::kTopK;
  topk.k = 4;
  EXPECT_FALSE(cache_eligible(topk));
}

TEST(ResultCache, HitIsBitIdenticalAndReplaceInvalidates) {
  SsspEngine engine = small_engine();
  ResultCache cache;
  QueryContext ctx;

  QueryRequest req;
  req.source = 5;
  req.targets = {17, 90, 130};

  QueryResponse first;
  cached_serve(engine, cache, req, ctx, first);  // owner: computes the row
  EXPECT_FALSE(first.served_from_cache);
  EXPECT_EQ(first.graph_epoch, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  QueryResponse second;
  cached_serve(engine, cache, req, ctx, second);  // hit: projected from it
  EXPECT_TRUE(second.served_from_cache);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Cached == computed, bit for bit: same targets, distances, stats, epoch.
  ASSERT_EQ(second.targets.size(), first.targets.size());
  for (std::size_t i = 0; i < first.targets.size(); ++i) {
    EXPECT_EQ(second.targets[i].target, first.targets[i].target);
    EXPECT_EQ(second.targets[i].dist, first.targets[i].dist);
  }
  EXPECT_EQ(second.stats.steps, first.stats.steps);
  EXPECT_EQ(second.stats.relaxations, first.stats.relaxations);
  EXPECT_EQ(second.graph_epoch, first.graph_epoch);

  // And exact: the row really is the engine's answer.
  const QueryResult full = engine.query(req.source);
  for (const TargetResult& tr : second.targets) {
    EXPECT_EQ(tr.dist, full.dist[tr.target]);
  }

  // A graph swap bumps the epoch: the same request now resolves to a NEW
  // key, so the stale row cannot be served again — no explicit
  // invalidation call needed for correctness.
  const Graph g2 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 99, 1, 50);
  engine.replace(g2, preprocess(g2, small_opts()));
  ASSERT_EQ(engine.graph_epoch(), 2u);

  QueryResponse after;
  cached_serve(engine, cache, req, ctx, after);
  EXPECT_FALSE(after.served_from_cache);
  EXPECT_EQ(after.graph_epoch, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  const QueryResult fresh = engine.query(req.source);
  for (const TargetResult& tr : after.targets) {
    EXPECT_EQ(tr.dist, fresh.dist[tr.target]);
  }

  // The epoch-1 row lingers (harmless) until eagerly reclaimed.
  EXPECT_EQ(cache.size(), 2u);
  cache.purge_stale(engine.graph_epoch());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.lookup(key_for(engine, req)), nullptr);
}

TEST(ResultCache, SingleFlightRawProtocol) {
  ResultCache cache;
  const CacheKey key{7, QueryEngine::kFlat, 1};

  RowPtr row;
  std::shared_future<RowPtr> pending;
  ASSERT_EQ(cache.acquire(key, row, pending), CacheAcquire::kOwner);

  std::vector<std::shared_future<RowPtr>> waiters;
  for (int i = 0; i < 8; ++i) {
    RowPtr r;
    std::shared_future<RowPtr> f;
    ASSERT_EQ(cache.acquire(key, r, f), CacheAcquire::kWaiter);
    waiters.push_back(std::move(f));
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().single_flight_waits, 8u);
  EXPECT_EQ(cache.size(), 0u);  // in-flight entries are not resident rows

  const RowPtr published = dummy_row(key.source);
  cache.fulfill(key, published);
  for (auto& f : waiters) {
    EXPECT_EQ(f.get(), published);  // the one computation, shared by all
  }

  RowPtr hit;
  std::shared_future<RowPtr> unused;
  EXPECT_EQ(cache.acquire(key, hit, unused), CacheAcquire::kHit);
  EXPECT_EQ(hit, published);
}

TEST(ResultCache, OwnerFailureWakesWaitersAndRetires) {
  ResultCache cache;
  const CacheKey key{3, QueryEngine::kBst, 1};
  RowPtr row;
  std::shared_future<RowPtr> pending;
  ASSERT_EQ(cache.acquire(key, row, pending), CacheAcquire::kOwner);
  std::shared_future<RowPtr> waiter;
  ASSERT_EQ(cache.acquire(key, row, waiter), CacheAcquire::kWaiter);

  cache.fail(key, std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(waiter.get(), std::runtime_error);

  // The key is missable again: a fresh caller becomes the next owner.
  std::shared_future<RowPtr> pending2;
  EXPECT_EQ(cache.acquire(key, row, pending2), CacheAcquire::kOwner);
  cache.fulfill(key, dummy_row(key.source));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, ConcurrentMissesComputeOnce) {
  const SsspEngine engine = small_engine();
  ResultCache cache;

  QueryRequest req;
  req.source = 31;
  req.targets = {2, 77, 141};

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<QueryResponse> responses(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      QueryContext ctx;
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      cached_serve(engine, cache, req, ctx, responses[i]);
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly one engine computation; everyone else reused its row (as a
  // single-flight waiter or, if they arrived late, as a plain hit).
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().single_flight_waits,
            static_cast<std::uint64_t>(kThreads - 1));
  const QueryResult full = engine.query(req.source);
  for (const QueryResponse& resp : responses) {
    ASSERT_EQ(resp.targets.size(), req.targets.size());
    for (const TargetResult& tr : resp.targets) {
      EXPECT_EQ(tr.dist, full.dist[tr.target]);
    }
  }
}

TEST(ResultCache, LruEvictionIsExact) {
  ResultCacheOptions opts;
  opts.shards = 1;  // one shard == one global LRU order to assert against
  opts.capacity_per_shard = 4;
  ResultCache cache(opts);

  const auto key = [](Vertex s) {
    return CacheKey{s, QueryEngine::kFlat, 1};
  };
  const auto put = [&](Vertex s) {
    RowPtr row;
    std::shared_future<RowPtr> pending;
    ASSERT_EQ(cache.acquire(key(s), row, pending), CacheAcquire::kOwner);
    cache.fulfill(key(s), dummy_row(s));
  };

  for (Vertex s = 0; s < 4; ++s) put(s);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Refresh 0: the least recently used entry is now 1, not 0.
  EXPECT_NE(cache.lookup(key(0)), nullptr);
  put(4);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(key(1)), nullptr);  // the exact victim
  EXPECT_NE(cache.lookup(key(0)), nullptr);
  EXPECT_NE(cache.lookup(key(2)), nullptr);
  EXPECT_NE(cache.lookup(key(3)), nullptr);
  EXPECT_NE(cache.lookup(key(4)), nullptr);
}

TEST(ResultCache, ClearSparesInFlightEntries) {
  ResultCache cache;
  const CacheKey flying{1, QueryEngine::kFlat, 1};
  const CacheKey resident{2, QueryEngine::kFlat, 1};

  RowPtr row;
  std::shared_future<RowPtr> pending;
  ASSERT_EQ(cache.acquire(flying, row, pending), CacheAcquire::kOwner);
  ASSERT_EQ(cache.acquire(resident, row, pending), CacheAcquire::kOwner);
  cache.fulfill(resident, dummy_row(2));
  EXPECT_EQ(cache.size(), 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(resident), nullptr);

  // The in-flight key survived the clear: a new arrival still WAITS on the
  // original owner instead of starting a duplicate computation.
  std::shared_future<RowPtr> waiter;
  ASSERT_EQ(cache.acquire(flying, row, waiter), CacheAcquire::kWaiter);
  const RowPtr published = dummy_row(1);
  cache.fulfill(flying, published);
  EXPECT_EQ(waiter.get(), published);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace rs
