// Directed-graph correctness. The paper's *bounds* are proved for
// undirected graphs (the ball/shortcut machinery needs symmetric
// distances), but Radius-Stepping itself — Dijkstra + Bellman-Ford substeps
// — is correct on directed graphs for ANY radii (Theorem 3.1's argument
// never uses symmetry). These tests pin that down so the engines stay
// usable as general SSSP routines.
#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "graph/builder.hpp"
#include "parallel/rng.hpp"

namespace rs {
namespace {

Graph random_directed(Vertex n, EdgeId m, std::uint64_t seed) {
  const SplitRng rng(seed);
  std::vector<EdgeTriple> edges;
  edges.reserve(m + n);
  // A directed cycle keeps every vertex reachable from every source.
  for (Vertex v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<Vertex>((v + 1) % n),
                     static_cast<Weight>(1 + rng.bounded(0, v, 100))});
  }
  for (EdgeId i = 0; i < m; ++i) {
    const Vertex u = static_cast<Vertex>(rng.bounded(1, i, n));
    const Vertex v = static_cast<Vertex>(rng.bounded(2, i, n));
    if (u == v) continue;
    edges.push_back({u, v, static_cast<Weight>(1 + rng.bounded(3, i, 100))});
  }
  BuildOptions opts;
  opts.symmetrize = false;  // directed!
  return build_graph(n, std::move(edges), opts);
}

TEST(Directed, AsymmetricDistances) {
  // 0 -> 1 cheap, 1 -> 0 only around the cycle: d(0,1) != d(1,0).
  BuildOptions opts;
  opts.symmetrize = false;
  const Graph g =
      build_graph(3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}, opts);
  const auto d0 = dijkstra(g, 0);
  const auto d1 = dijkstra(g, 1);
  EXPECT_EQ(d0[1], 1u);
  EXPECT_EQ(d1[0], 2u);
}

class DirectedTest : public ::testing::TestWithParam<int> {};

TEST_P(DirectedTest, AllEnginesHandleDirectedGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Graph g = random_directed(300, 900, seed);
  const SplitRng rng(seed + 77);
  const Vertex src = static_cast<Vertex>(rng.bounded(0, 0, g.num_vertices()));
  const auto ref = dijkstra(g, src);

  EXPECT_EQ(bellman_ford(g, src), ref);
  EXPECT_EQ(bellman_ford_parallel(g, src), ref);
  EXPECT_EQ(delta_stepping(g, src), ref);
  // Radius-Stepping with assorted radii (correct for any r on directed
  // inputs; the bounded-step guarantees need undirected preprocessing).
  const Vertex n = g.num_vertices();
  EXPECT_EQ(radius_stepping(g, src, dijkstra_radii(n)), ref);
  EXPECT_EQ(radius_stepping(g, src, constant_radii(n, 25)), ref);
  EXPECT_EQ(radius_stepping(g, src, bellman_ford_radii(n)), ref);
  EXPECT_EQ(radius_stepping_bst(g, src, constant_radii(n, 25)), ref);
  EXPECT_EQ(radius_stepping_flatset(g, src, constant_radii(n, 25)), ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedTest, ::testing::Range(0, 6));

TEST(Directed, UnreachableUnderDirectionality) {
  BuildOptions opts;
  opts.symmetrize = false;
  const Graph g = build_graph(3, {{0, 1, 5}}, opts);
  const auto d = radius_stepping(g, 1, constant_radii(3, 10));
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[0], kInfDist);  // arc points the other way
  EXPECT_EQ(d[2], kInfDist);
}

}  // namespace
}  // namespace rs
