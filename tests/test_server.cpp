// The serving-daemon contract (serve/server.hpp + serve/request_queue.hpp
// + serve/latency_histogram.hpp):
//
//  * lifecycle — start, drain with requests in flight, shutdown; counters
//    (accepted vs completed) reach equality and every promise is
//    fulfilled, including requests still queued when shutdown is called;
//  * admission control — a full queue rejects with kQueueFull (and only
//    the overflowing request), an out-of-range request with kInvalid
//    (validated at the edge, never coalesced into a batch), a stopped
//    server with kShuttingDown;
//  * micro-batching — N requests queued within one budget coalesce into
//    ONE serve_batch call (asserted via ServerStats.batches), and
//    coalescing is invisible in the answers;
//  * histogram — quantiles match a sorted-sample oracle within the
//    documented 1/32 relative error, across magnitudes;
//  * concurrency — many closed-loop clients against multiple batchers
//    produce exact answers and consistent counters;
//  * caching layer — repeats of a cache-eligible request are answered at
//    submit time from the result cache, a parked burst of identical
//    misses resolves to ONE owner plus single-flight waiters, and
//    on_graph_replaced() re-keys cache and oracle after an engine
//    replace().
//
// The pause/resume hook makes the queue-full and coalescing scenarios
// deterministic: with batchers parked, submissions buffer instead of
// racing the consumer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {
namespace {

using serve::BoundedQueue;
using serve::LatencyHistogram;
using serve::ServerOptions;
using serve::ServerStats;
using serve::SsspServer;
using serve::SubmitStatus;

SsspEngine small_engine() {
  const Graph g =
      assign_uniform_weights(gen::road_network(12, 12, 3), 7, 1, 100);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  return SsspEngine(g, opts);
}

QueryRequest p2p(const SsspEngine& engine, std::uint64_t i) {
  const Vertex n = engine.original_graph().num_vertices();
  QueryRequest req;
  req.source = static_cast<Vertex>((i * 37) % n);
  req.targets = {static_cast<Vertex>((i * 53 + 11) % n)};
  return req;
}

TEST(BoundedQueue, PushPopOrderCapacityAndClose) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full: backpressure, not blocking
  EXPECT_EQ(q.size(), 3u);

  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);  // FIFO
  EXPECT_TRUE(q.try_push(4));  // slot freed

  q.close();
  EXPECT_FALSE(q.try_push(5));  // closed rejects pushes...
  EXPECT_TRUE(q.pop(out));      // ...but buffered items still drain
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.pop(out));
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(q.pop(out));  // closed AND empty
}

TEST(BoundedQueue, TimedPopHonorsDeadline) {
  BoundedQueue<int> q(2);
  int out = 0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.try_pop_until(
      out, t0 + std::chrono::milliseconds(20)));  // times out empty
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(15));
  ASSERT_TRUE(q.try_push(9));
  EXPECT_TRUE(q.try_pop_until(
      out, std::chrono::steady_clock::now()));  // past deadline, non-blocking
  EXPECT_EQ(out, 9);
}

TEST(Server, DrainWithRequestsInFlightThenShutdown) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.start_paused = true;  // everything below queues deterministically
  opts.max_batch = 4;
  SsspServer server(engine, opts);

  constexpr std::uint64_t kRequests = 10;
  std::vector<std::future<QueryResponse>> futures;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    std::future<QueryResponse> fut;
    ASSERT_EQ(server.submit(p2p(engine, i), fut), SubmitStatus::kAccepted);
    futures.push_back(std::move(fut));
  }
  EXPECT_EQ(server.stats().in_flight(), kRequests);

  server.resume();
  server.drain();  // blocks until every admitted request completed
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.in_flight(), 0u);
  EXPECT_EQ(server.latency().count(), kRequests);

  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const QueryResponse got = futures[i].get();
    const QueryResponse want = engine.serve(p2p(engine, i));
    ASSERT_EQ(got.targets.size(), 1u);
    EXPECT_EQ(got.targets[0].dist, want.targets[0].dist) << "request " << i;
  }

  server.shutdown();
  std::future<QueryResponse> fut;
  EXPECT_EQ(server.submit(p2p(engine, 0), fut),
            SubmitStatus::kShuttingDown);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);
}

TEST(Server, ShutdownServesRequestsStillQueued) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.start_paused = true;
  SsspServer server(engine, opts);

  std::vector<std::future<QueryResponse>> futures;
  for (std::uint64_t i = 0; i < 6; ++i) {
    std::future<QueryResponse> fut;
    ASSERT_EQ(server.submit(p2p(engine, i), fut), SubmitStatus::kAccepted);
    futures.push_back(std::move(fut));
  }
  // No resume: shutdown itself must unpark the batchers and drain the
  // buffered requests before joining — an accepted request is a promise.
  server.shutdown();
  for (std::uint64_t i = 0; i < futures.size(); ++i) {
    const QueryResponse got = futures[i].get();
    const QueryResponse want = engine.serve(p2p(engine, i));
    EXPECT_EQ(got.targets[0].dist, want.targets[0].dist) << "request " << i;
  }
  EXPECT_EQ(server.stats().in_flight(), 0u);
}

TEST(Server, FullQueueRejectsOnlyTheOverflow) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.queue_capacity = 4;
  opts.start_paused = true;  // nothing is consumed: capacity is exact
  SsspServer server(engine, opts);

  std::vector<std::future<QueryResponse>> futures(5);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(server.submit(p2p(engine, i), futures[i]),
              SubmitStatus::kAccepted);
  }
  EXPECT_EQ(server.submit(p2p(engine, 4), futures[4]),
            SubmitStatus::kQueueFull);
  EXPECT_EQ(server.stats().rejected_full, 1u);
  EXPECT_EQ(server.stats().accepted, 4u);

  server.resume();
  server.drain();
  for (std::uint64_t i = 0; i < 4; ++i) {  // admitted ones are unaffected
    const QueryResponse got = futures[i].get();
    const QueryResponse want = engine.serve(p2p(engine, i));
    EXPECT_EQ(got.targets[0].dist, want.targets[0].dist);
  }
}

TEST(Server, InvalidRequestRejectedAtAdmission) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.start_paused = true;
  SsspServer server(engine, opts);

  QueryRequest bad;
  bad.source = engine.original_graph().num_vertices();  // out of range
  std::future<QueryResponse> fut;
  EXPECT_EQ(server.submit(std::move(bad), fut), SubmitStatus::kInvalid);
  EXPECT_EQ(server.stats().rejected_invalid, 1u);
  EXPECT_EQ(server.stats().accepted, 0u);  // nothing entered the queue

  QueryRequest bad_target = p2p(engine, 1);
  bad_target.targets.push_back(engine.original_graph().num_vertices() + 7);
  EXPECT_EQ(server.submit(std::move(bad_target), fut),
            SubmitStatus::kInvalid);

  // A valid request after the rejects is served normally.
  ASSERT_EQ(server.submit(p2p(engine, 2), fut), SubmitStatus::kAccepted);
  server.resume();
  EXPECT_EQ(fut.get().targets[0].dist,
            engine.serve(p2p(engine, 2)).targets[0].dist);
}

TEST(Server, TinyRequestsWithinBudgetCoalesceIntoOneBatch) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.start_paused = true;
  opts.max_batch = 32;
  // Zero budget: the batcher grabs exactly what is already buffered and
  // never waits — with everything queued before resume, that is one
  // deterministic micro-batch.
  opts.batch_budget = std::chrono::microseconds(0);
  opts.batchers = 1;
  SsspServer server(engine, opts);

  constexpr std::uint64_t kRequests = 12;
  std::vector<std::future<QueryResponse>> futures(kRequests);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(server.submit(p2p(engine, i), futures[i]),
              SubmitStatus::kAccepted);
  }
  server.resume();
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u) << "coalescing failed: " << stats.batches
                               << " serve_batch calls for " << kRequests
                               << " buffered requests";
  EXPECT_EQ(stats.max_batch, kRequests);
  EXPECT_DOUBLE_EQ(stats.mean_batch(), static_cast<double>(kRequests));
  for (std::uint64_t i = 0; i < kRequests; ++i) {  // coalescing is invisible
    EXPECT_EQ(futures[i].get().targets[0].dist,
              engine.serve(p2p(engine, i)).targets[0].dist);
  }
}

TEST(Server, MaxBatchBoundsCoalescing) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.start_paused = true;
  opts.max_batch = 4;
  opts.batch_budget = std::chrono::microseconds(0);
  opts.batchers = 1;
  SsspServer server(engine, opts);

  std::vector<std::future<QueryResponse>> futures(10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(server.submit(p2p(engine, i), futures[i]),
              SubmitStatus::kAccepted);
  }
  server.resume();
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.batches, 3u);  // 4 + 4 + 2
}

TEST(Server, ServeSyncThrowsOnRejection) {
  const SsspEngine engine = small_engine();
  SsspServer server(engine, {});
  server.shutdown();
  EXPECT_THROW(server.serve_sync(p2p(engine, 0)), std::runtime_error);
}

TEST(Server, ConcurrentClientsAgainstMultipleBatchersStayExact) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.max_batch = 8;
  opts.batch_budget = std::chrono::microseconds(100);
  opts.batchers = 3;
  SsspServer server(engine, opts);

  constexpr int kClients = 8;
  constexpr std::uint64_t kPerClient = 25;
  // References computed up front: the client loops must not touch the
  // engine directly while the daemon is serving.
  std::vector<Dist> want(kClients * kPerClient);
  for (std::uint64_t i = 0; i < want.size(); ++i) {
    want[i] = engine.serve(p2p(engine, i)).targets[0].dist;
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(c) * kPerClient + i;
        const QueryResponse got = server.serve_sync(p2p(engine, id));
        if (got.targets[0].dist != want[id]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();

  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(server.latency().count(), kClients * kPerClient);
  EXPECT_GE(stats.batches, 1u);
}

TEST(Server, CacheAnswersRepeatsAtSubmitTime) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.enable_cache = true;
  SsspServer server(engine, opts);

  QueryRequest req = p2p(engine, 5);
  const QueryResponse first = server.serve_sync(req);
  EXPECT_FALSE(first.served_from_cache);
  const QueryResponse second = server.serve_sync(req);
  EXPECT_TRUE(second.served_from_cache);
  EXPECT_EQ(second.targets[0].dist, first.targets[0].dist);
  EXPECT_EQ(second.graph_epoch, first.graph_epoch);

  // serve_sync returns on promise fulfillment, which can race ahead of
  // the completion counter by an instant; drain() closes the gap.
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);  // hits still count as completions

  // Path requests bypass the cache entirely (expansion needs the engine).
  QueryRequest paths = req;
  paths.want_paths = true;
  const QueryResponse third = server.serve_sync(paths);
  EXPECT_FALSE(third.served_from_cache);
  EXPECT_EQ(third.targets[0].dist, first.targets[0].dist);
  const ServerStats after = server.stats();
  EXPECT_EQ(after.cache_hits, 1u);
  EXPECT_EQ(after.cache_misses, 1u);
}

TEST(Server, CacheSingleFlightDeduplicatesABurstOfMisses) {
  // With the batchers parked, 8 identical requests are admitted before
  // any serving happens: the first must become the sole cache OWNER and
  // the other 7 single-flight WAITERS — one engine computation total.
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.enable_cache = true;
  opts.start_paused = true;
  SsspServer server(engine, opts);

  const QueryRequest req = p2p(engine, 11);
  const QueryResponse want = engine.serve(req);
  std::vector<std::future<QueryResponse>> futures(8);
  for (auto& fut : futures) {
    ASSERT_EQ(server.submit(req, fut), SubmitStatus::kAccepted);
  }
  const auto flight = server.cache_stats();
  EXPECT_EQ(flight.misses, 1u);
  EXPECT_EQ(flight.single_flight_waits, 7u);
  EXPECT_EQ(flight.hits, 0u);

  server.resume();
  for (auto& fut : futures) {
    const QueryResponse got = fut.get();
    EXPECT_EQ(got.targets[0].dist, want.targets[0].dist);
  }
  server.drain();
  EXPECT_EQ(server.stats().completed, 8u);

  // The row is resident now: a ninth request is a submit-time hit.
  const QueryResponse ninth = server.serve_sync(req);
  EXPECT_TRUE(ninth.served_from_cache);
  EXPECT_EQ(server.cache_stats().hits, 1u);
}

TEST(Server, OnGraphReplacedRefreshesCacheAndOracle) {
  const Graph g1 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 7, 1, 100);
  PreprocessOptions popts;
  popts.rho = 12;
  popts.k = 2;
  SsspEngine engine(g1, popts);
  ServerOptions opts;
  opts.enable_cache = true;
  opts.enable_landmarks = true;
  SsspServer server(engine, opts);
  ASSERT_NE(server.oracle(), nullptr);
  EXPECT_EQ(server.oracle()->graph_epoch(), 1u);

  const QueryRequest req = p2p(engine, 3);
  (void)server.serve_sync(req);
  EXPECT_TRUE(server.serve_sync(req).served_from_cache);

  // Quiesce, swap the graph, notify the caching layer — the documented
  // replace choreography (engine replace() is not serve-concurrent).
  const Graph g2 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 8, 1, 100);
  server.pause();
  server.drain();
  engine.replace(g2, preprocess(g2, popts));
  server.on_graph_replaced();
  server.resume();
  EXPECT_EQ(server.oracle()->graph_epoch(), 2u);

  // The old row no longer matches: fresh compute, stamped with the new
  // epoch, equal to a direct engine serve on the new graph.
  const QueryResponse after = server.serve_sync(req);
  EXPECT_FALSE(after.served_from_cache);
  EXPECT_EQ(after.graph_epoch, 2u);
  EXPECT_EQ(after.targets[0].dist, engine.serve(req).targets[0].dist);
  EXPECT_TRUE(server.serve_sync(req).served_from_cache);
}

TEST(Server, FormatStatsLinePrintsEveryCounter) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.enable_cache = true;
  SsspServer server(engine, opts);
  const QueryRequest req = p2p(engine, 2);
  (void)server.serve_sync(req);
  (void)server.serve_sync(req);  // submit-time cache hit
  server.drain();

  const std::string line = serve::format_stats_line(server);
  // Every ServerStats counter must appear as a name=value token — the
  // fixture test of the daemon's `stats` verb rides on this line too.
  for (const char* token :
       {"accepted=2", "completed=2", "shed=0", "invalid=0", "shutdown=0",
        "batches=", "mean_batch=", "max_batch=", "cache_hits=1",
        "cache_misses=1", "lower_bound_exits=", "epoch=1", "swaps=0",
        "in_flight=0", "p50_us=", "p99_us=", "p999_us="}) {
    EXPECT_NE(line.find(token), std::string::npos)
        << "missing " << token << " in: " << line;
  }
}

TEST(Server, SwapEngineRepublishesWithoutQuiescence) {
  const Graph g1 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 7, 1, 100);
  PreprocessOptions popts;
  popts.rho = 12;
  popts.k = 2;
  auto first = std::make_shared<const SsspEngine>(g1, popts);
  ServerOptions opts;
  opts.enable_cache = true;
  opts.enable_landmarks = true;
  SsspServer server(first, opts);
  ASSERT_NE(server.oracle(), nullptr);
  EXPECT_EQ(server.oracle()->graph_epoch(), 1u);

  const QueryRequest req = p2p(*first, 3);
  (void)server.serve_sync(req);
  EXPECT_TRUE(server.serve_sync(req).served_from_cache);
  EXPECT_EQ(server.stats().epoch, 1u);

  // Publish a successor mid-traffic: no pause, no drain.
  const Graph g2 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 8, 1, 100);
  auto second = std::make_shared<const SsspEngine>(
      SsspEngine::next_epoch(*first, g2, preprocess(g2, popts)));
  server.swap_engine(second);

  EXPECT_EQ(server.stats().epoch, 2u);
  EXPECT_EQ(server.stats().swaps, 1u);
  EXPECT_EQ(server.engine_snapshot()->graph_epoch(), 2u);
  EXPECT_EQ(server.oracle()->graph_epoch(), 2u);

  // The epoch-1 row cannot answer epoch-2 traffic; the fresh answer is
  // exact for the new graph and re-cacheable.
  const QueryResponse after = server.serve_sync(req);
  EXPECT_FALSE(after.served_from_cache);
  EXPECT_EQ(after.graph_epoch, 2u);
  EXPECT_EQ(after.targets[0].dist, second->serve(req).targets[0].dist);
  EXPECT_TRUE(server.serve_sync(req).served_from_cache);
}

TEST(Server, EngineSnapshotKeepsOldEpochAliveAcrossSwap) {
  const Graph g1 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 9, 1, 100);
  PreprocessOptions popts;
  popts.rho = 12;
  popts.k = 2;
  auto first = std::make_shared<const SsspEngine>(g1, popts);
  SsspServer server(first, {});
  const std::shared_ptr<const SsspEngine> pinned = server.engine_snapshot();
  first.reset();  // server + pin now hold the only references

  const Graph g2 =
      assign_uniform_weights(gen::road_network(12, 12, 3), 10, 1, 100);
  server.swap_engine(std::make_shared<const SsspEngine>(
      SsspEngine::next_epoch(*pinned, g2, preprocess(g2, popts))));

  // The pre-swap pin still serves the old epoch's answers.
  EXPECT_EQ(pinned->graph_epoch(), 1u);
  const QueryRequest req = p2p(*pinned, 5);
  EXPECT_EQ(pinned->serve(req).graph_epoch, 1u);
  EXPECT_EQ(server.engine_snapshot()->graph_epoch(), 2u);
}

TEST(LatencyHistogram, BucketRoundTripBoundsRelativeError) {
  // Every value lands in a bucket whose upper bound is >= the value and
  // within the documented 1/32 relative error of it.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 300; ++v) values.push_back(v);
  for (std::uint64_t v = 300; v < (1ull << 40); v = v * 3 + 1) {
    values.push_back(v);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : values) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets) << v;
    const std::uint64_t upper = LatencyHistogram::bucket_upper(idx);
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / 32.0 + 1.0)
        << "value " << v << " bucket " << idx << " upper " << upper;
  }
}

TEST(LatencyHistogram, QuantilesMatchSortedSampleOracle) {
  // Record a deterministic skewed sample, then compare every quantile
  // against the exact order statistic from the sorted samples.
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Mostly small values with a long tail — the shape of a latency
    // distribution under micro-batching.
    const std::uint64_t v =
        (i % 10 == 0) ? 1000 + x % 100000 : 50 + x % 400;
    samples.push_back(v);
    hist.record(v);
  }
  ASSERT_EQ(hist.count(), samples.size());
  std::sort(samples.begin(), samples.end());

  const auto snap = hist.snapshot();
  for (const double q : {0.0, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const std::uint64_t rank_raw = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const std::uint64_t rank = rank_raw == 0 ? 1 : rank_raw;
    const std::uint64_t exact = samples[rank - 1];
    const std::uint64_t est = snap.value_at_quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;  // bucket upper bound: never under
    EXPECT_LE(static_cast<double>(est),
              static_cast<double>(exact) * (1.0 + 1.0 / 32.0) + 1.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, EmptyAndResetReportZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.value_at_quantile(0.99), 0u);
  hist.record(123);
  EXPECT_EQ(hist.value_at_quantile(0.5), LatencyHistogram::bucket_upper(
                                             LatencyHistogram::bucket_index(
                                                 123)));
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.value_at_quantile(0.5), 0u);
}

TEST(Observability, StatsRegistryAndExpositionReadTheSameCells) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.enable_cache = true;
  SsspServer server(engine, opts);
  const QueryRequest req = p2p(engine, 4);
  (void)server.serve_sync(req);
  (void)server.serve_sync(req);  // cache hit
  server.drain();

  // One source of truth: ServerStats, the raw registry handles, and the
  // Prometheus exposition must all report the same numbers.
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(
      server.metrics().counter("rs_requests_accepted_total").value(), 2u);
  EXPECT_EQ(server.metrics().counter("rs_cache_hits_total").value(),
            s.cache_hits);
  EXPECT_EQ(server.metrics().counter("rs_cache_misses_total").value(),
            s.cache_misses);

  const std::string text = server.export_metrics();
  EXPECT_NE(text.find("rs_requests_accepted_total 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rs_requests_completed_total 2"), std::string::npos);
  EXPECT_NE(text.find("rs_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("rs_graph_epoch 1"), std::string::npos);
  EXPECT_NE(text.find("rs_in_flight 0"), std::string::npos);
  EXPECT_NE(text.find("rs_request_latency_us_count 2"), std::string::npos);

  const std::string json =
      server.export_metrics(serve::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"name\":\"rs_requests_accepted_total\""),
            std::string::npos);
}

TEST(Observability, TraceSampleOneSpansTileEndToEndLatency) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.trace_sample = 1;
  SsspServer server(engine, opts);

  const QueryResponse resp = server.serve_sync(p2p(engine, 6));
  server.drain();

  ASSERT_TRUE(resp.trace.enabled);
  ASSERT_GE(resp.trace.size, 5u);  // the five stations (+ engine detail)
  const obs::SpanId want[] = {obs::SpanId::kAdmission,
                              obs::SpanId::kQueueWait,
                              obs::SpanId::kBatchForm, obs::SpanId::kEngine,
                              obs::SpanId::kRespond};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(resp.trace.spans[i].id, want[i]) << i;
    EXPECT_EQ(resp.trace.spans[i].depth, 0u);
  }
  // Stations tile [admission, completion] contiguously.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(resp.trace.spans[i].start_ns,
              resp.trace.spans[i - 1].start_ns +
                  resp.trace.spans[i - 1].duration_ns);
  }
  // Any engine-phase detail is depth 1 and fits inside the engine span.
  for (std::size_t i = 5; i < resp.trace.size; ++i) {
    EXPECT_EQ(resp.trace.spans[i].depth, 1u);
  }

  // Acceptance: span durations sum to the e2e latency within 10%. The
  // histogram quantile is a bucket UPPER bound (<= 1/32 high), so compare
  // against it with that error plus 2us of truncation slack.
  const double spans_us =
      static_cast<double>(resp.trace.station_total_ns()) / 1000.0;
  const auto p100 =
      static_cast<double>(server.latency().value_at_quantile(1.0));
  EXPECT_LE(spans_us, p100 + 2.0);
  EXPECT_GE(spans_us, p100 / (1.0 + 1.0 / 32.0) - 2.0);
  EXPECT_EQ(server.stats().traced, 1u);
}

TEST(Observability, TraceSamplingSelectsEveryNthRequest) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.trace_sample = 2;
  SsspServer server(engine, opts);

  int traced = 0;
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (server.serve_sync(p2p(engine, i)).trace.enabled) ++traced;
  }
  server.drain();
  EXPECT_EQ(traced, 3);  // sequence 0, 2, 4
  EXPECT_EQ(server.stats().traced, 3u);

  // Untraced requests carry an empty, disabled buffer.
  SsspServer untraced(engine, {});
  const QueryResponse resp = untraced.serve_sync(p2p(engine, 1));
  EXPECT_FALSE(resp.trace.enabled);
  EXPECT_EQ(resp.trace.size, 0u);
  EXPECT_EQ(untraced.stats().traced, 0u);
}

TEST(Observability, CacheHitTraceIsOneSynchronousSpan) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.enable_cache = true;
  opts.trace_sample = 1;
  SsspServer server(engine, opts);

  const QueryRequest req = p2p(engine, 9);
  (void)server.serve_sync(req);  // owner: computes + caches
  const QueryResponse hit = server.serve_sync(req);
  server.drain();

  ASSERT_TRUE(hit.served_from_cache);
  ASSERT_TRUE(hit.trace.enabled);
  ASSERT_EQ(hit.trace.size, 1u);
  EXPECT_EQ(hit.trace.spans[0].id, obs::SpanId::kCacheHit);
  EXPECT_EQ(hit.trace.spans[0].depth, 0u);
}

TEST(Observability, SlowQueryThresholdCountsSlowRequests) {
  const SsspEngine engine = small_engine();
  ServerOptions opts;
  opts.slow_query_us = 1;  // everything is "slow": the counter must move
  SsspServer server(engine, opts);
  (void)server.serve_sync(p2p(engine, 3));
  server.drain();
  EXPECT_EQ(server.stats().slow_queries, 1u);
  EXPECT_NE(server.export_metrics().find("rs_slow_queries_total 1"),
            std::string::npos);

  // A sky-high threshold never fires.
  SsspServer quiet(engine, {});  // slow_query_us = 0: disabled
  (void)quiet.serve_sync(p2p(engine, 3));
  quiet.drain();
  EXPECT_EQ(quiet.stats().slow_queries, 0u);
}

}  // namespace
}  // namespace rs
