// The serving API contract (core/request.hpp + SsspEngine::serve*):
//
//  * targeted serve returns distances BIT-IDENTICAL to a full query for
//    every requested target — across all four engines, the weighted AND
//    adversarial suites, and several worker counts (early termination must
//    be invisible in the answers);
//  * early exit actually fires: on a path graph with a near target the
//    round count strictly drops versus the full run (asserted via
//    RunStats);
//  * serve_batch == per-request serve, in input order, for mixed requests;
//  * expanded paths are genuine shortest paths of the ORIGINAL graph;
//  * every entry point bounds-checks its inputs (the PR 5 bugfix:
//    query(Vertex) historically validated only in query_batch);
//  * responses carry provenance — graph_epoch stamping across replace(),
//    which swaps answers to the new graph in place — and the kTopK /
//    lower-bound request shapes are validated at the edge.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/query_context.hpp"
#include "core/radii.hpp"
#include "core/sp_tree.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// Restores the global worker count on scope exit.
struct WorkerGuard {
  int before = num_workers();
  ~WorkerGuard() { set_num_workers(before); }
};

/// Engine wrapper that skips preprocessing (constant radii, no shortcuts)
/// so directed/multigraph/unit-weight inputs stay exactly as built.
SsspEngine raw_engine(const Graph& g, Dist r = 25) {
  PreprocessResult pre;
  pre.graph = g;
  pre.radius = constant_radii(g.num_vertices(), r);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  return SsspEngine(g, std::move(pre));
}

std::vector<Vertex> spread_targets(const Graph& g, std::size_t count) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>(((i + 1) * n) / (count + 1)));
  }
  return out;
}

/// The sum of original-graph edge weights along `path`, failing the test
/// if any hop is not an original arc. Parallel arcs: cheapest one counts,
/// which is what a shortest path must use anyway.
Dist path_weight(const Graph& g, const std::vector<Vertex>& path) {
  Dist total = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    Dist best = kInfDist;
    for (EdgeId e = g.first_arc(path[i - 1]); e < g.last_arc(path[i - 1]);
         ++e) {
      if (g.arc_target(e) == path[i]) {
        best = std::min(best, static_cast<Dist>(g.arc_weight(e)));
      }
    }
    EXPECT_NE(best, kInfDist) << "hop " << i << " is not an original edge";
    if (best == kInfDist) return kInfDist;
    total += best;
  }
  return total;
}

const QueryEngine kWeightedEngines[] = {
    QueryEngine::kFlat, QueryEngine::kBst, QueryEngine::kBstFlat};

TEST(Serve, TargetedMatchesFullQueryOnWeightedSuite) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::weighted_suite(13)) {
    PreprocessOptions opts;
    opts.rho = 10;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const Vertex source = g.num_vertices() / 3;
    const std::vector<Vertex> targets = spread_targets(g, 6);

    for (const QueryEngine qe : kWeightedEngines) {
      const QueryResult full = engine.query(source, qe);
      QueryRequest req;
      req.source = source;
      req.targets = targets;
      req.engine = qe;
      for (const int nw : {1, 3, 8}) {
        set_num_workers(nw);
        const QueryResponse resp = engine.serve(req);
        ASSERT_EQ(resp.targets.size(), targets.size());
        EXPECT_EQ(resp.source, source);
        EXPECT_TRUE(resp.dist.empty());  // O(|targets|) response only
        for (std::size_t i = 0; i < targets.size(); ++i) {
          EXPECT_EQ(resp.targets[i].target, targets[i]);
          EXPECT_EQ(resp.targets[i].dist, full.dist[targets[i]])
              << name << " engine " << static_cast<int>(qe) << " nw=" << nw
              << " target " << targets[i];
        }
        // Early termination never runs MORE rounds than the full query.
        EXPECT_LE(resp.stats.steps, full.stats.steps) << name;
      }
    }
  }
}

TEST(Serve, TargetedMatchesDijkstraOnAdversarialSuite) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::adversarial_suite(3)) {
    const SsspEngine engine = raw_engine(g);
    const std::vector<Vertex> targets = spread_targets(g, 5);
    const auto ref = dijkstra(g, 1);
    for (const QueryEngine qe : kWeightedEngines) {
      for (const int nw : {1, 4}) {
        set_num_workers(nw);
        QueryRequest req;
        req.source = 1;
        req.targets = targets;
        req.engine = qe;
        const QueryResponse resp = engine.serve(req);
        for (std::size_t i = 0; i < targets.size(); ++i) {
          EXPECT_EQ(resp.targets[i].dist, ref[targets[i]])
              << name << " engine " << static_cast<int>(qe) << " nw=" << nw;
        }
      }
    }
  }
}

TEST(Serve, TargetedUnweightedEngineMatches) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::unweighted_suite(17)) {
    const SsspEngine engine = raw_engine(g, 6);
    const std::vector<Vertex> targets = spread_targets(g, 6);
    const QueryResult full = engine.query(0, QueryEngine::kUnweighted);
    for (const int nw : {1, 3, 8}) {
      set_num_workers(nw);
      QueryRequest req;
      req.source = 0;
      req.targets = targets;
      req.engine = QueryEngine::kUnweighted;
      const QueryResponse resp = engine.serve(req);
      for (std::size_t i = 0; i < targets.size(); ++i) {
        EXPECT_EQ(resp.targets[i].dist, full.dist[targets[i]])
            << name << " nw=" << nw << " target " << targets[i];
      }
    }
  }
}

TEST(Serve, EarlyExitStrictlyReducesRoundsOnPathGraph) {
  // A long weighted chain with the source at one end and the target right
  // next to it: the full run needs many steps (bounded frontier), the
  // targeted run should stop almost immediately.
  WorkerGuard guard;
  const Graph g = assign_uniform_weights(gen::chain(400), 3, 1, 100);
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  const SsspEngine engine(g, opts);

  for (const QueryEngine qe : kWeightedEngines) {
    const QueryResult full = engine.query(0, qe);
    ASSERT_GT(full.stats.steps, 3u) << "chain too easy to measure early exit";
    QueryRequest req;
    req.source = 0;
    req.targets = {2};  // two hops from the source
    req.engine = qe;
    for (const int nw : {1, 4}) {
      set_num_workers(nw);
      const QueryResponse resp = engine.serve(req);
      EXPECT_EQ(resp.targets[0].dist, full.dist[2]);
      EXPECT_TRUE(resp.stats.early_exit)
          << "engine " << static_cast<int>(qe) << " nw=" << nw;
      EXPECT_LT(resp.stats.steps, full.stats.steps)
          << "engine " << static_cast<int>(qe) << " nw=" << nw;
    }
  }

  // Same for the unweighted engine on the unit-weight chain.
  const Graph unit = gen::chain(400);
  const SsspEngine ue = raw_engine(unit, 4);
  const QueryResult ufull = ue.query(0, QueryEngine::kUnweighted);
  ASSERT_GT(ufull.stats.steps, 3u);
  QueryRequest ureq;
  ureq.source = 0;
  ureq.targets = {2};
  ureq.engine = QueryEngine::kUnweighted;
  const QueryResponse uresp = ue.serve(ureq);
  EXPECT_EQ(uresp.targets[0].dist, ufull.dist[2]);
  EXPECT_TRUE(uresp.stats.early_exit);
  EXPECT_LT(uresp.stats.steps, ufull.stats.steps);
}

TEST(Serve, WantFullDistancesDisablesEarlyExitAndFillsBoth) {
  const Graph g = assign_uniform_weights(gen::chain(300), 5, 1, 50);
  PreprocessOptions opts;
  opts.rho = 8;
  const SsspEngine engine(g, opts);
  const QueryResult full = engine.query(0);

  QueryRequest req;
  req.source = 0;
  req.targets = {1, 2};
  req.want_full_distances = true;
  const QueryResponse resp = engine.serve(req);
  EXPECT_EQ(resp.dist, full.dist);  // the whole vector, bit-identical
  EXPECT_FALSE(resp.stats.early_exit);
  EXPECT_EQ(resp.stats.steps, full.stats.steps);  // exhaustive run
  EXPECT_EQ(resp.targets[0].dist, full.dist[1]);
  EXPECT_EQ(resp.targets[1].dist, full.dist[2]);
}

TEST(Serve, PathsMatchLegacyPathOnFullRuns) {
  for (const auto& [name, g] : test::weighted_suite(7)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const QueryResult full = engine.query(0);
    QueryRequest req;
    req.source = 0;
    req.targets = spread_targets(g, 4);
    req.want_paths = true;
    req.want_full_distances = true;  // exhaustive: closure sets identical
    const QueryResponse resp = engine.serve(req);
    for (const TargetResult& tr : resp.targets) {
      EXPECT_EQ(tr.path, engine.path(full, tr.target)) << name;
    }
  }
}

TEST(Serve, ClosureWalkMatchesParentsFromDistancesOracle) {
  // path() and serve(want_paths) now share extract_path_by_closure; pin
  // both against the INDEPENDENT pre-PR5 reconstruction (full
  // parents_from_distances pass + extract_path) so a tie-break divergence
  // in the closure walk cannot slip by with both sides changing together.
  // Directed graph: the transpose actually differs from the graph.
  for (const auto& [name, g] : test::adversarial_suite(21)) {
    const SsspEngine engine = raw_engine(g);
    const QueryResult full = engine.query(1);
    const std::vector<Vertex> parent =
        parents_from_distances(g, g.transposed(), full.dist);
    QueryRequest req;
    req.source = 1;
    req.targets = spread_targets(g, 4);
    req.want_paths = true;
    req.want_full_distances = true;  // exhaustive: oracle applies exactly
    const QueryResponse resp = engine.serve(req);
    for (const TargetResult& tr : resp.targets) {
      const std::vector<Vertex> oracle = tr.dist == kInfDist
                                             ? std::vector<Vertex>{}
                                             : extract_path(parent, tr.target);
      EXPECT_EQ(tr.path, oracle) << name << " target " << tr.target;
      EXPECT_EQ(engine.path(full, tr.target), oracle) << name;
    }
  }
}

TEST(Serve, EarlyExitPathsAreGenuineShortestPaths) {
  // With early termination the tie-break may see fewer exact predecessors
  // than a full run, so paths need not be bit-identical — but they must
  // be real shortest paths of the ORIGINAL graph: right endpoints, only
  // original arcs, weights summing exactly to the distance.
  const Graph g = assign_uniform_weights(gen::grid2d(15, 14), 11, 1, 60);
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kFull1Rho;  // plenty of shortcuts
  const SsspEngine engine(g, opts);
  for (const QueryEngine qe : kWeightedEngines) {
    QueryRequest req;
    req.source = 0;
    req.targets = {5, 40, 100};
    req.want_paths = true;
    req.engine = qe;
    const QueryResponse resp = engine.serve(req);
    for (const TargetResult& tr : resp.targets) {
      ASSERT_NE(tr.dist, kInfDist);
      ASSERT_GE(tr.path.size(), 2u);
      EXPECT_EQ(tr.path.front(), 0u);
      EXPECT_EQ(tr.path.back(), tr.target);
      EXPECT_EQ(path_weight(g, tr.path), tr.dist)
          << "engine " << static_cast<int>(qe) << " target " << tr.target;
    }
  }
}

TEST(Serve, BatchMatchesIndividualServesWithMixedRequests) {
  WorkerGuard guard;
  const Graph g = assign_uniform_weights(gen::road_network(14, 14, 3), 9);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  const SsspEngine engine(g, opts);
  const Vertex n = g.num_vertices();

  // A deliberately heterogeneous batch: different sources, target counts,
  // engines, and flag combinations in one vector.
  std::vector<QueryRequest> requests;
  for (std::size_t i = 0; i < 10; ++i) {
    QueryRequest req;
    req.source = static_cast<Vertex>((i * n) / 10);
    for (std::size_t t = 0; t <= i % 4; ++t) {
      req.targets.push_back(static_cast<Vertex>((t * n) / 5 + i));
    }
    req.want_paths = (i % 2 == 0);
    req.want_full_distances = (i % 3 == 0);
    req.engine = (i % 4 == 1) ? QueryEngine::kBst
                 : (i % 4 == 2) ? QueryEngine::kBstFlat
                                : QueryEngine::kFlat;
    requests.push_back(std::move(req));
  }

  std::vector<QueryResponse> ref;
  for (const QueryRequest& req : requests) ref.push_back(engine.serve(req));

  for (const int nw : {1, 3, 8}) {
    set_num_workers(nw);
    const std::vector<QueryResponse> batch = engine.serve_batch(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(batch[i].source, ref[i].source);
      EXPECT_EQ(batch[i].dist, ref[i].dist) << "nw=" << nw << " req " << i;
      ASSERT_EQ(batch[i].targets.size(), ref[i].targets.size());
      for (std::size_t t = 0; t < ref[i].targets.size(); ++t) {
        EXPECT_EQ(batch[i].targets[t].dist, ref[i].targets[t].dist)
            << "nw=" << nw << " req " << i;
        EXPECT_EQ(batch[i].targets[t].path, ref[i].targets[t].path)
            << "nw=" << nw << " req " << i;
      }
      EXPECT_EQ(batch[i].stats.steps, ref[i].stats.steps) << "req " << i;
      EXPECT_EQ(batch[i].stats.settled, ref[i].stats.settled) << "req " << i;
    }
  }
}

TEST(Serve, SourceTargetAndDuplicateEdgeCases) {
  const Graph g = assign_uniform_weights(gen::grid2d(8, 8), 2, 1, 20);
  PreprocessOptions opts;
  opts.rho = 8;
  const SsspEngine engine(g, opts);

  // Target == source: distance 0, path is the single vertex.
  QueryRequest req;
  req.source = 5;
  req.targets = {5};
  req.want_paths = true;
  QueryResponse resp = engine.serve(req);
  EXPECT_TRUE(resp.stats.early_exit);  // nothing beyond the seed needed
  EXPECT_EQ(resp.targets[0].dist, 0u);
  EXPECT_EQ(resp.targets[0].path, std::vector<Vertex>{5});

  // Duplicate targets: each occurrence answered, same values.
  req.targets = {9, 9, 5};
  resp = engine.serve(req);
  ASSERT_EQ(resp.targets.size(), 3u);
  EXPECT_EQ(resp.targets[0].dist, resp.targets[1].dist);
  EXPECT_EQ(resp.targets[0].path, resp.targets[1].path);
  EXPECT_EQ(resp.targets[2].dist, 0u);

  // Empty targets without full distances: a stats-only probe.
  req.targets.clear();
  req.want_paths = false;
  resp = engine.serve(req);
  EXPECT_TRUE(resp.targets.empty());
  EXPECT_TRUE(resp.dist.empty());
  EXPECT_FALSE(resp.stats.early_exit);
  EXPECT_EQ(resp.stats.settled, engine.query(5).stats.settled);
}

TEST(Serve, UnreachableTargetIsInfiniteWithEmptyPath) {
  // half_directed_star-like: odd spokes point inward only, so they are
  // unreachable from the center.
  BuildOptions directed;
  directed.symmetrize = false;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 1; v < 10; ++v) {
    if (v % 2 == 0) {
      edges.push_back({0, v, v});
    } else {
      edges.push_back({v, 0, v});
    }
  }
  const SsspEngine engine = raw_engine(build_graph(10, std::move(edges),
                                                   directed));
  QueryRequest req;
  req.source = 0;
  req.targets = {2, 3};  // 2 reachable, 3 not
  req.want_paths = true;
  const QueryResponse resp = engine.serve(req);
  EXPECT_EQ(resp.targets[0].dist, 2u);
  EXPECT_EQ(resp.targets[0].path, (std::vector<Vertex>{0, 2}));
  EXPECT_EQ(resp.targets[1].dist, kInfDist);
  EXPECT_TRUE(resp.targets[1].path.empty());
  // An unreachable target means the frontier drained: no early exit.
  EXPECT_FALSE(resp.stats.early_exit);
}

TEST(Serve, WarmContextAndResponseReuseStaysExact) {
  // One context + one response object across many targeted requests of
  // different shapes — values must match fresh serves every time.
  const Graph g = assign_uniform_weights(gen::road_network(12, 12, 5), 4);
  PreprocessOptions opts;
  opts.rho = 10;
  const SsspEngine engine(g, opts);
  QueryContext ctx;
  QueryResponse resp;
  for (Vertex s = 0; s < 20; ++s) {
    QueryRequest req;
    req.source = s;
    req.targets = spread_targets(g, 1 + s % 5);
    req.want_paths = (s % 2 == 0);
    req.engine = kWeightedEngines[s % 3];
    engine.serve(req, ctx, resp);
    const QueryResponse fresh = engine.serve(req);
    ASSERT_EQ(resp.targets.size(), fresh.targets.size());
    for (std::size_t i = 0; i < fresh.targets.size(); ++i) {
      EXPECT_EQ(resp.targets[i].dist, fresh.targets[i].dist) << "s=" << s;
      EXPECT_EQ(resp.targets[i].path, fresh.targets[i].path) << "s=" << s;
    }
  }
}

TEST(Serve, LegacyWrappersAgreeWithServe) {
  const Graph g = assign_uniform_weights(gen::grid2d(10, 11), 8);
  PreprocessOptions opts;
  opts.rho = 10;
  const SsspEngine engine(g, opts);
  QueryRequest req;
  req.source = 3;
  req.want_full_distances = true;
  const QueryResponse resp = engine.serve(req);
  const QueryResult q = engine.query(3);
  EXPECT_EQ(q.dist, resp.dist);
  EXPECT_EQ(q.stats.steps, resp.stats.steps);
  const auto batch = engine.query_batch({3, 7});
  EXPECT_EQ(batch[0].dist, resp.dist);
}

TEST(Serve, EveryEntryPointBoundsChecksItsInputs) {
  // Regression for the PR 5 bugfix: query(Vertex) and the QueryContext
  // overload historically did not validate `source` (only query_batch
  // did); all entry points must reject out-of-range vertices up front.
  const Graph g = assign_uniform_weights(gen::grid2d(6, 6), 1, 1, 9);
  PreprocessOptions opts;
  opts.rho = 6;
  const SsspEngine engine(g, opts);
  const Vertex n = g.num_vertices();
  QueryContext ctx;

  EXPECT_THROW(engine.query(n), std::invalid_argument);
  EXPECT_THROW(engine.query(kNoVertex), std::invalid_argument);
  EXPECT_THROW(engine.query(n, QueryEngine::kBst, ctx),
               std::invalid_argument);
  EXPECT_THROW(engine.query_batch({0, n}), std::invalid_argument);

  QueryRequest bad_source;
  bad_source.source = n;
  EXPECT_THROW(engine.serve(bad_source), std::invalid_argument);
  EXPECT_THROW(engine.serve_batch({bad_source}), std::invalid_argument);

  QueryRequest bad_target;
  bad_target.source = 0;
  bad_target.targets = {0, n};
  EXPECT_THROW(engine.serve(bad_target), std::invalid_argument);
  EXPECT_THROW(engine.serve_batch({bad_target}), std::invalid_argument);

  // A default-constructed request carries source == kNoVertex.
  EXPECT_THROW(engine.serve(QueryRequest{}), std::invalid_argument);

  // Engine guard still fires through serve (weighted graph here).
  QueryRequest bad_engine;
  bad_engine.source = 0;
  bad_engine.engine = QueryEngine::kUnweighted;
  EXPECT_THROW(engine.serve(bad_engine), std::invalid_argument);

  EXPECT_TRUE(engine.serve_batch({}).empty());
}

TEST(Serve, TouchedStatCountsFirstTouchesExactly) {
  // The O(touched)-reset bookkeeping (PR 6): every engine records each
  // vertex whose distance leaves kInfDist exactly once. On an exhaustive
  // run over a connected graph that is every vertex; on an early-exit run
  // it is at most that — and the count is identical across engines and
  // worker counts because the touched set is schedule-independent (the
  // per-step settled frontiers are deterministic, Theorem 3.1).
  WorkerGuard guard;
  const Graph g = assign_uniform_weights(gen::road_network(12, 12, 5), 4);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  const SsspEngine engine(g, opts);
  const Vertex n = g.num_vertices();

  QueryRequest full;
  full.source = 3;
  full.want_full_distances = true;

  QueryRequest targeted;
  targeted.source = 3;
  targeted.targets = {4};  // a near target: early exit leaves most untouched

  for (const QueryEngine qe :
       {QueryEngine::kFlat, QueryEngine::kBst, QueryEngine::kBstFlat}) {
    for (const int nw : {1, 4}) {
      set_num_workers(nw);
      full.engine = qe;
      targeted.engine = qe;

      QueryResponse r = engine.serve(full);
      std::size_t reachable = 0;
      for (const Dist d : r.dist) reachable += (d != kInfDist) ? 1 : 0;
      EXPECT_EQ(r.stats.touched, reachable)
          << "engine " << static_cast<int>(qe) << " nw=" << nw;

      const QueryResponse t = engine.serve(targeted);
      EXPECT_GE(t.stats.touched, 2u);  // source + target at minimum
      EXPECT_LE(t.stats.touched, static_cast<std::size_t>(n));
      EXPECT_LT(t.stats.touched, reachable)
          << "early exit should leave most of the graph untouched";
    }
  }
}

TEST(Serve, TouchedResetRestoresContextInvariantAcrossRequests) {
  // After a targeted serve, reset_touched() must restore the all-infinite
  // invariant EXACTLY — any missed entry would leak a stale finite
  // distance into a later request from a different source. Alternate
  // sources and engines over one warm context and check every answer.
  const Graph g = assign_uniform_weights(gen::grid2d(9, 9), 11, 1, 50);
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  const SsspEngine engine(g, opts);
  const Vertex n = g.num_vertices();

  QueryContext ctx;
  QueryResponse resp;
  for (std::uint64_t i = 0; i < 24; ++i) {
    QueryRequest req;
    req.source = static_cast<Vertex>((i * 29) % n);
    req.targets = {static_cast<Vertex>((i * 13 + 1) % n),
                   static_cast<Vertex>((i * 41 + 7) % n)};
    req.engine = (i % 3 == 0)   ? QueryEngine::kFlat
                 : (i % 3 == 1) ? QueryEngine::kBst
                                : QueryEngine::kBstFlat;
    engine.serve(req, ctx, resp);
    const QueryResult ref = engine.query(req.source);
    for (const TargetResult& tr : resp.targets) {
      ASSERT_EQ(tr.dist, ref.dist[tr.target]) << "request " << i;
    }
  }
}

TEST(Serve, ConcurrentServeBatchesStayExact) {
  // Satellite of PR 6: concurrent serve_batch callers used to race the
  // engine's single batch-pool try-lock — the loser silently fell back to
  // a cold batch-local pool. Now each concurrent batch leases its own
  // warm slot; this stress pins that N threads hammering serve_batch on
  // ONE engine stay exact (run under ASan/TSan-less CI with RS_THREADS=8
  // to shake scheduling).
  const Graph g = assign_uniform_weights(gen::road_network(13, 13, 2), 6);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  const SsspEngine engine(g, opts);
  const Vertex n = g.num_vertices();

  // Four distinct batches (mixed sources/targets/engines), reference
  // answers computed single-threaded up front.
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<std::vector<QueryRequest>> batches(kThreads);
  std::vector<std::vector<QueryResponse>> want(kThreads);
  for (int b = 0; b < kThreads; ++b) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      QueryRequest req;
      req.source = static_cast<Vertex>((b * 97 + i * 31) % n);
      req.targets = {static_cast<Vertex>((b * 17 + i * 7) % n),
                     static_cast<Vertex>((b + i * 61 + 3) % n)};
      req.engine = (i % 2 == 0) ? QueryEngine::kFlat : QueryEngine::kBst;
      batches[b].push_back(std::move(req));
    }
    for (const QueryRequest& req : batches[b]) {
      want[b].push_back(engine.serve(req));
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int b = 0; b < kThreads; ++b) {
    threads.emplace_back([&, b] {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<QueryResponse> got = engine.serve_batch(batches[b]);
        for (std::size_t i = 0; i < got.size(); ++i) {
          for (std::size_t t = 0; t < got[i].targets.size(); ++t) {
            if (got[i].targets[t].dist != want[b][i].targets[t].dist) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Serve, ResponsesAreEpochStampedAndReplaceBumps) {
  const Graph g1 =
      assign_uniform_weights(gen::road_network(10, 10, 4), 5, 1, 100);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  SsspEngine engine(g1, opts);
  ASSERT_EQ(engine.graph_epoch(), 1u);

  QueryRequest req;
  req.source = 3;
  req.targets = spread_targets(g1, 3);
  const QueryResponse before = engine.serve(req);
  EXPECT_EQ(before.graph_epoch, 1u);
  EXPECT_FALSE(before.served_from_cache);  // the engine never serves rows
  EXPECT_EQ(before.lower_bound_exits, 0u);  // no bounds were attached

  // replace(): same vertex set, different weights — the epoch bumps and
  // answers flip to the new graph's distances in place.
  const Graph g2 =
      assign_uniform_weights(gen::road_network(10, 10, 4), 9, 1, 100);
  engine.replace(g2, preprocess(g2, opts));
  EXPECT_EQ(engine.graph_epoch(), 2u);

  const QueryResponse after = engine.serve(req);
  EXPECT_EQ(after.graph_epoch, 2u);
  const std::vector<Dist> truth = dijkstra(g2, req.source);
  for (const TargetResult& tr : after.targets) {
    EXPECT_EQ(tr.dist, truth[tr.target]);
  }

  // Copies serve the same preprocessing, so they keep the epoch.
  const SsspEngine copy(engine);
  EXPECT_EQ(copy.graph_epoch(), 2u);
}

TEST(Serve, TopKRequestsAreValidated) {
  const SsspEngine engine =
      raw_engine(assign_uniform_weights(gen::chain(30), 3, 1, 10));

  QueryRequest req;
  req.kind = RequestKind::kTopK;
  req.source = 0;
  req.k = 0;  // k >= 1 required
  EXPECT_THROW(engine.serve(req), std::invalid_argument);

  req.k = 3;
  req.targets = {5};  // top-k takes no target list
  EXPECT_THROW(engine.serve(req), std::invalid_argument);

  req.targets.clear();
  req.target_lower_bounds = {1};  // ...and no lower bounds
  EXPECT_THROW(engine.serve(req), std::invalid_argument);

  req.target_lower_bounds.clear();
  const QueryResponse resp = engine.serve(req);
  EXPECT_EQ(resp.targets.size(), 3u);
  EXPECT_EQ(resp.targets[0].target, 0u);  // the source is its own nearest
  EXPECT_EQ(resp.targets[0].dist, 0u);
}

TEST(Serve, MismatchedLowerBoundsAreRejected) {
  const SsspEngine engine =
      raw_engine(assign_uniform_weights(gen::chain(30), 3, 1, 10));
  QueryRequest req;
  req.source = 0;
  req.targets = {5, 9};
  req.target_lower_bounds = {1};  // must be empty or parallel to targets
  EXPECT_THROW(engine.serve(req), std::invalid_argument);
  req.target_lower_bounds = {1, 2};
  const QueryResponse resp = engine.serve(req);
  EXPECT_EQ(resp.targets.size(), 2u);
}

}  // namespace
}  // namespace rs
