// Dynamic-graph foundations:
//
//  * apply_weight_updates — undirected semantics (both arc directions and
//    every parallel arc move together), self-loops, last-update-wins
//    composition, no-op suppression, validation at the edge, EdgeId
//    stability across the rebuild;
//  * SnapshotSwap — concurrent pin/publish never yields a torn or null
//    snapshot and old pins stay valid across swaps;
//  * repair_distance_row — the online correction kernel equals a
//    from-scratch Dijkstra on the mutated graph, over the weighted AND
//    adversarial suites, for mixed increase/decrease batches applied both
//    singly and as an evolving sequence.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/dyn_sssp.hpp"
#include "graph/builder.hpp"
#include "graph/graph_swap.hpp"
#include "graph/update.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

Graph directed_multigraph() {
  BuildOptions keep;
  keep.symmetrize = false;
  keep.remove_self_loops = false;
  keep.dedup = false;
  // 0 -> 1 (two parallel arcs), 1 -> 0, 1 -> 2, self-loop on 2.
  std::vector<EdgeTriple> edges = {
      {0, 1, 5}, {0, 1, 9}, {1, 0, 4}, {1, 2, 7}, {2, 2, 3}};
  return build_graph(3, std::move(edges), keep);
}

/// Random updates over arcs that exist in `g` (new weight 1..150).
std::vector<WeightUpdate> random_updates(const Graph& g, std::size_t count,
                                         std::mt19937& rng) {
  std::uniform_int_distribution<Weight> weight(1, 150);
  std::uniform_int_distribution<EdgeId> arc(0, g.num_edges() - 1);
  std::vector<WeightUpdate> out;
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId e = arc(rng);
    // Find the arc's tail by scanning offsets (test-side, clarity first).
    Vertex u = 0;
    while (g.last_arc(u) <= e) ++u;
    out.push_back(WeightUpdate{u, g.arc_target(e), weight(rng)});
  }
  return out;
}

TEST(WeightUpdate, RewritesBothDirectionsAndParallelArcs) {
  const Graph g = directed_multigraph();
  const UpdateApplication app = apply_weight_updates(g, {{0, 1, 2}});
  // Both parallel arcs 0->1 AND the reverse arc 1->0 now weigh 2.
  ASSERT_EQ(app.changes.size(), 3u);
  for (const ArcChange& c : app.changes) {
    EXPECT_EQ(c.w_new, 2u);
    EXPECT_NE(c.w_old, c.w_new);
    EXPECT_EQ(app.graph.arc_weight(c.arc), 2u);
    EXPECT_EQ(app.graph.arc_target(c.arc), c.v);
  }
  // Topology untouched: EdgeIds keep their meaning.
  EXPECT_EQ(app.graph.offsets(), g.offsets());
  EXPECT_EQ(app.graph.targets(), g.targets());
  // Changes arrive in ascending EdgeId order with correct tails.
  EXPECT_EQ(app.changes[0].u, 0u);
  EXPECT_EQ(app.changes[1].u, 0u);
  EXPECT_EQ(app.changes[2].u, 1u);
  EXPECT_EQ(app.changes[2].v, 0u);
}

TEST(WeightUpdate, SelfLoopTouchedOnce) {
  const Graph g = directed_multigraph();
  const UpdateApplication app = apply_weight_updates(g, {{2, 2, 8}});
  ASSERT_EQ(app.changes.size(), 1u);
  EXPECT_EQ(app.changes[0].u, 2u);
  EXPECT_EQ(app.changes[0].v, 2u);
  EXPECT_EQ(app.changes[0].w_old, 3u);
  EXPECT_EQ(app.changes[0].w_new, 8u);
}

TEST(WeightUpdate, LastUpdateWinsAndNoOpsAreDropped) {
  const Graph g = directed_multigraph();
  // 1->2 bounces 7 -> 20 -> 7: a batch-level no-op, omitted entirely.
  // 0<->1 lands on 11 with w_old reported as the PRE-batch weight.
  const UpdateApplication app =
      apply_weight_updates(g, {{1, 2, 20}, {0, 1, 3}, {1, 2, 7}, {0, 1, 11}});
  ASSERT_EQ(app.changes.size(), 3u);
  for (const ArcChange& c : app.changes) {
    EXPECT_EQ(c.w_new, 11u);
    EXPECT_TRUE(c.w_old == 5u || c.w_old == 9u || c.w_old == 4u);
  }
  EXPECT_EQ(app.graph.arc_weight(3), 7u);  // 1->2 back where it started
}

TEST(WeightUpdate, ValidatesAtTheEdge) {
  const Graph g = directed_multigraph();
  EXPECT_THROW(apply_weight_updates(g, {{0, 7, 2}}), std::invalid_argument);
  EXPECT_THROW(apply_weight_updates(g, {{9, 0, 2}}), std::invalid_argument);
  EXPECT_THROW(apply_weight_updates(g, {{0, 1, 0}}), std::invalid_argument);
  // No arc exists between 0 and 2 in either direction.
  EXPECT_THROW(apply_weight_updates(g, {{0, 2, 2}}), std::invalid_argument);
}

TEST(WeightUpdate, RestatingCurrentWeightIsANoOp) {
  const Graph g = directed_multigraph();
  const UpdateApplication app = apply_weight_updates(g, {{2, 2, 3}});
  EXPECT_TRUE(app.changes.empty());
  EXPECT_EQ(app.graph.weights(), g.weights());
}

TEST(SnapshotSwap, ConcurrentPinAndPublish) {
  const Graph base = test::weighted_suite(7)[0].graph;
  SnapshotSwap<Graph> swap(std::make_shared<const Graph>(base));
  std::atomic<bool> stop{false};

  // Readers: every pin must observe a complete snapshot with the base
  // graph's invariants, and pins taken before a publish must stay valid.
  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> pins{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const Graph> snap = swap.pin();
        ASSERT_NE(snap, nullptr);
        ASSERT_EQ(snap->num_vertices(), base.num_vertices());
        ASSERT_EQ(snap->num_edges(), base.num_edges());
        pins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: republish weight-perturbed successors as fast as possible.
  std::mt19937 rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto updates = random_updates(base, 3, rng);
    const std::shared_ptr<const Graph> cur = swap.pin();
    swap.publish(std::make_shared<const Graph>(
        apply_weight_updates(*cur, updates).graph));
  }
  // On a loaded single-core machine the 200 publishes can finish before
  // any reader gets a turn; keep publishing nothing until one pin landed.
  while (pins.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(pins.load(), 0u);
}

/// repair == from-scratch Dijkstra after every batch of an evolving
/// sequence, for each graph of the given suite.
void check_repair(const std::vector<test::GraphCase>& suite,
                  std::uint64_t seed) {
  for (const auto& c : suite) {
    std::mt19937 rng(seed);
    Graph g = c.graph;
    const Vertex n = g.num_vertices();
    const std::vector<Vertex> sources = {0, static_cast<Vertex>(n / 2),
                                         static_cast<Vertex>(n - 1)};
    std::vector<std::vector<Dist>> rows;
    for (const Vertex s : sources) rows.push_back(dijkstra(g, s));

    for (int batch = 0; batch < 4; ++batch) {
      const std::size_t count = 1 + static_cast<std::size_t>(batch) * 4;
      UpdateApplication app =
          apply_weight_updates(g, random_updates(g, count, rng));
      const Graph transpose = app.graph.transposed();
      for (std::size_t i = 0; i < sources.size(); ++i) {
        RepairStats stats;
        repair_distance_row(app.graph, transpose, sources[i], app.changes,
                            rows[i], &stats);
        const std::vector<Dist> want = dijkstra(app.graph, sources[i]);
        ASSERT_EQ(rows[i], want)
            << c.name << " source=" << sources[i] << " batch=" << batch
            << " dirty=" << stats.dirty;
      }
      g = std::move(app.graph);
    }
  }
}

TEST(RepairDistanceRow, MatchesDijkstraOnWeightedSuite) {
  check_repair(test::weighted_suite(21), 500);
}

TEST(RepairDistanceRow, MatchesDijkstraOnAdversarialSuite) {
  check_repair(test::adversarial_suite(22), 600);
}

TEST(RepairDistanceRow, EmptyChangeListIsANoOp) {
  const Graph g = test::weighted_suite(3)[1].graph;
  std::vector<Dist> row = dijkstra(g, 0);
  const std::vector<Dist> want = row;
  repair_distance_row(g, g.transposed(), 0, {}, row);
  EXPECT_EQ(row, want);
}

TEST(RepairDistanceRow, ValidatesTheRow) {
  const Graph g = directed_multigraph();
  const UpdateApplication app = apply_weight_updates(g, {{0, 1, 2}});
  const Graph transpose = app.graph.transposed();
  std::vector<Dist> short_row(2, 0);
  EXPECT_THROW(repair_distance_row(app.graph, transpose, 0, app.changes,
                                   short_row),
               std::invalid_argument);
  std::vector<Dist> bad_source(3, 1);  // dist[source] != 0
  EXPECT_THROW(repair_distance_row(app.graph, transpose, 0, app.changes,
                                   bad_source),
               std::invalid_argument);
}

}  // namespace
}  // namespace rs
