// Pins the zero-allocation contract of the warm serving hot path by
// REPLACING the global allocator with a counting one: after a warm-up
// query, a sequential-mode query through a reused QueryContext must
// perform ZERO heap allocations in the engine — for the flat engine
// (PR 2's contract) and now for the kBst treap engine, whose nodes are
// recycled through the context's freelist arena.
//
// The counter only ticks between arm()/disarm(), so gtest's own setup
// allocations don't pollute the measurement. Measured queries reuse the
// same source as the warm-up: state fully resets between queries, so an
// identical query touches exactly the warmed high-water marks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/query_context.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_fragment.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/fragment.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "serve/result_cache.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/kradius.hpp"
#include "shortcut/preprocess_context.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  note_allocation();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): every form the
// toolchain may emit forwards to the counting malloc above.
void* operator new(std::size_t size) { return checked_malloc(size); }
void* operator new[](std::size_t size) { return checked_malloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rs {
namespace {

struct AllocationWindow {
  AllocationWindow() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationWindow() { g_counting.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

Graph test_graph() {
  return assign_uniform_weights(gen::grid2d(20, 18), 5, 1, 100);
}

TEST(AllocFree, WarmSequentialFlatQueryAllocatesNothing) {
  const Graph g = test_graph();
  const auto radius = all_radii(g, 10);
  QueryContext ctx;
  ctx.set_sequential(true);
  std::vector<Dist> out;
  radius_stepping(g, 3, radius, ctx, out);  // warm-up
  ASSERT_EQ(out, dijkstra(g, 3));

  std::uint64_t measured;
  {
    AllocationWindow window;
    radius_stepping(g, 3, radius, ctx, out);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
}

TEST(AllocFree, WarmSequentialBstTreapQueryAllocatesNothing) {
  // The acceptance pin for the arena treap: a warm sequential kBst query
  // runs entirely out of the context — recycled treap nodes, reused key
  // buffers, reused proposal buckets, reused vertex lists.
  const Graph g = test_graph();
  const auto radius = all_radii(g, 10);
  QueryContext ctx;
  ctx.set_sequential(true);
  std::vector<Dist> out;
  radius_stepping_bst(g, 3, radius, ctx, out);  // warm-up
  ASSERT_EQ(out, dijkstra(g, 3));
  const std::size_t high_water = ctx.tree_arena().total_nodes();

  std::uint64_t measured;
  {
    AllocationWindow window;
    radius_stepping_bst(g, 3, radius, ctx, out);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
  // And the arena stayed at its high-water mark (pure freelist recycling).
  EXPECT_EQ(ctx.tree_arena().total_nodes(), high_water);
  ASSERT_EQ(out, dijkstra(g, 3));
}

TEST(AllocFree, WarmParallelBstTreapQueryRunsFromWorkerArenas) {
  // The per-worker arena pool pin: the PARALLEL kBst twin draws treap
  // nodes from the pool (each OpenMP thread's own freelist), so a warm
  // parallel-mode query allocates nothing and the pool stays at its
  // high-water mark. One worker keeps the run deterministic — the pool
  // path is what's under test, not the schedule.
  const int before = num_workers();
  set_num_workers(1);
  const Graph g = test_graph();
  const auto radius = all_radii(g, 10);
  QueryContext ctx;  // parallel mode: the Par twin, pool-backed treaps
  std::vector<Dist> out;
  radius_stepping_bst(g, 3, radius, ctx, out);  // warm-up
  ASSERT_EQ(out, dijkstra(g, 3));
  const std::size_t high_water = ctx.tree_arenas(1).total_nodes();
  EXPECT_GT(high_water, 0u);  // nodes really came from the pool

  std::uint64_t measured;
  {
    AllocationWindow window;
    radius_stepping_bst(g, 3, radius, ctx, out);
    measured = window.count();
  }
  set_num_workers(before);
  EXPECT_EQ(measured, 0u);
  EXPECT_EQ(ctx.tree_arenas(1).total_nodes(), high_water);
  ASSERT_EQ(out, dijkstra(g, 3));
}

TEST(AllocFree, WarmSequentialFragmentQueryAllocatesNothing) {
  // The PR 8 engine pin: a warm sequential fragment-engine query runs
  // entirely out of the context's FragmentScratch — per-fragment lists,
  // message lanes, touch buckets all keep their capacity.
  const Graph g = test_graph();
  const auto radius = all_radii(g, 10);
  const FragmentedGraph fg(g, 4);
  QueryContext ctx;
  ctx.set_sequential(true);
  std::vector<Dist> out;
  // TWO warm-ups: the per-fragment frontier lists double-buffer via swap,
  // so with an odd step count the buffer capacities sit in swapped slots
  // at the next query's start — the second pass grows the other parity.
  radius_stepping_fragment(fg, 3, radius, ctx, out);
  radius_stepping_fragment(fg, 3, radius, ctx, out);
  ASSERT_EQ(out, dijkstra(g, 3));

  std::uint64_t measured;
  {
    AllocationWindow window;
    radius_stepping_fragment(fg, 3, radius, ctx, out);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
}

TEST(AllocFree, WarmTargetedFragmentServeAllocatesNothing) {
  // End-to-end kFragment serve: targets, paths, reused context and
  // response — zero heap allocations once warm, like kFlat and kBst.
  const Graph g = test_graph();
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  SsspEngine engine(g, opts);
  engine.enable_fragments(4);

  QueryRequest req;
  req.source = 3;
  req.targets = {37, 220, 338};
  req.want_paths = true;
  req.engine = QueryEngine::kFragment;

  QueryContext ctx;
  ctx.set_sequential(true);
  QueryResponse resp;
  // Two warm-ups: the frontier double-buffers swap capacities every step,
  // so both parities must see their high-water before the measured run
  // (also builds the transpose).
  engine.serve(req, ctx, resp);
  engine.serve(req, ctx, resp);
  const QueryResult full = engine.query(3);
  for (const TargetResult& tr : resp.targets) {
    ASSERT_EQ(tr.dist, full.dist[tr.target]);
  }

  std::uint64_t measured;
  {
    AllocationWindow window;
    engine.serve(req, ctx, resp);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
  ASSERT_EQ(resp.targets.size(), req.targets.size());
  for (const TargetResult& tr : resp.targets) {
    ASSERT_EQ(tr.dist, full.dist[tr.target]);
    ASSERT_EQ(tr.path.back(), tr.target);
  }
}

TEST(AllocFree, WarmSequentialUnweightedQueryAllocatesNothing) {
  const Graph g = gen::grid2d(20, 18);
  const auto radius = all_radii(g, 6);
  QueryContext ctx;
  ctx.set_sequential(true);
  std::vector<Dist> out;
  radius_stepping_unweighted(g, 3, radius, ctx, out);  // warm-up

  std::uint64_t measured;
  {
    AllocationWindow window;
    radius_stepping_unweighted(g, 3, radius, ctx, out);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
}

TEST(AllocFree, WarmTargetedServeAllocatesNothing) {
  // The PR 5 acceptance pin: a warm targeted serve — request with targets
  // and paths, reused QueryContext AND reused QueryResponse — performs
  // ZERO heap allocations end to end. The response vectors are the only
  // O(|targets|) state and they keep their capacity across requests; the
  // target stamps, the early-exit bookkeeping, the per-target reads, and
  // the transpose-walk path expansion all run out of warmed storage.
  const Graph g = test_graph();
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  const SsspEngine engine(g, opts);

  QueryRequest req;
  req.source = 3;
  req.targets = {37, 220, 338};
  req.want_paths = true;

  QueryContext ctx;
  ctx.set_sequential(true);
  QueryResponse resp;
  engine.serve(req, ctx, resp);  // warm-up (also builds the transpose)
  const QueryResult full = engine.query(3);
  for (const TargetResult& tr : resp.targets) {
    ASSERT_EQ(tr.dist, full.dist[tr.target]);
  }

  // kBstFlat is exempt: its flat-set substrate reallocates set storage by
  // design (see the engine matrix in README). kFlat and kBst carry the
  // zero-allocation contract.
  for (const QueryEngine qe : {QueryEngine::kFlat, QueryEngine::kBst}) {
    req.engine = qe;
    engine.serve(req, ctx, resp);  // warm this engine's scratch too
    std::uint64_t measured;
    {
      AllocationWindow window;
      engine.serve(req, ctx, resp);
      measured = window.count();
    }
    EXPECT_EQ(measured, 0u) << "engine " << static_cast<int>(qe);
    ASSERT_EQ(resp.targets.size(), req.targets.size());
    for (const TargetResult& tr : resp.targets) {
      ASSERT_EQ(tr.dist, full.dist[tr.target]);  // still exact when warm
      ASSERT_EQ(tr.path.back(), tr.target);
    }
  }
}

TEST(AllocFree, WarmCachedTargetedServeAllocatesNothing) {
  // The PR 7 acceptance pin: a warm CACHED targeted serve — the row
  // resident, the response reused — performs ZERO heap allocations. The
  // hit path is a shard-map find plus an LRU list splice, and
  // answer_from_row projects the targets into the response's existing
  // capacity.
  const Graph g = test_graph();
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  const SsspEngine engine(g, opts);
  serve::ResultCache cache;

  QueryRequest req;
  req.source = 3;
  req.targets = {37, 220, 338};

  QueryContext ctx;
  ctx.set_sequential(true);
  QueryResponse resp;
  serve::cached_serve(engine, cache, req, ctx, resp);  // owner: builds row
  serve::cached_serve(engine, cache, req, ctx, resp);  // warms the hit path
  ASSERT_TRUE(resp.served_from_cache);

  std::uint64_t measured;
  {
    AllocationWindow window;
    serve::cached_serve(engine, cache, req, ctx, resp);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);

  const QueryResult full = engine.query(3);
  ASSERT_EQ(resp.targets.size(), req.targets.size());
  for (const TargetResult& tr : resp.targets) {
    ASSERT_EQ(tr.dist, full.dist[tr.target]);  // still exact when warm
  }
}

TEST(AllocFree, WarmPreprocessContextBallLoopAllocatesNothing) {
  // The acceptance pin for the preprocessing pipeline: with a warm
  // PreprocessContext, the full per-ball inner loop of preprocess() — ball
  // search, shortcut selection, staging append — performs ZERO heap
  // allocations. The first pass grows every buffer (ball vertex list,
  // tree CSR, DP tables, stamped maps, staging) to its high-water mark;
  // the second identical pass must run entirely out of that capacity.
  const Graph g = test_graph().with_weight_sorted_adjacency();
  const Vertex n = g.num_vertices();
  PreprocessContext ctx(n);
  const BallOptions opts{12, 0, /*settle_ties=*/true};
  const auto pass = [&] {
    ctx.staging().clear();
    for (Vertex s = 0; s < n; ++s) {
      const Ball& ball = ctx.ball(g, s, opts);
      for (const std::uint32_t idx :
           ctx.select(ball, 2, ShortcutHeuristic::kDP)) {
        const BallVertex& bv = ball.vertices[idx];
        ctx.staging().push_back(
            EdgeTriple{s, bv.v, static_cast<Weight>(bv.dist)});
      }
    }
  };
  pass();  // warm-up
  const std::size_t staged = ctx.staging().size();
  EXPECT_GT(staged, 0u);  // the loop actually selects shortcuts

  std::uint64_t measured;
  {
    AllocationWindow window;
    pass();
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
  EXPECT_EQ(ctx.staging().size(), staged);
}

TEST(AllocFree, WarmKRadiusContextSweepAllocatesNothing) {
  // The k-radius oracle runs full min-hop searches on the same context
  // scratch: a warm context sweeps sources allocation-free.
  const Graph g = test_graph();
  PreprocessContext ctx(g.num_vertices());
  Dist warm = 0;
  for (Vertex s = 0; s < 8; ++s) warm ^= k_radius_exact(g, s, 2, ctx);

  std::uint64_t measured;
  Dist again = 0;
  {
    AllocationWindow window;
    for (Vertex s = 0; s < 8; ++s) again ^= k_radius_exact(g, s, 2, ctx);
    measured = window.count();
  }
  EXPECT_EQ(measured, 0u);
  EXPECT_EQ(warm, again);
}

TEST(AllocFree, CountingAllocatorIsLive) {
  // Sanity check that the instrumentation actually observes allocations —
  // otherwise the zero-assertions above would pass vacuously.
  std::uint64_t measured;
  {
    AllocationWindow window;
    std::vector<int>* v = new std::vector<int>(100);
    delete v;
    measured = window.count();
  }
  EXPECT_GT(measured, 0u);
}

}  // namespace
}  // namespace rs
