#include "shortcut/tuning.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(EstimateAddedFactor, FullSampleMatchesExactPreprocessing) {
  // Sampling every vertex removes the sampling error; only global-dedup
  // optimism remains, so the estimate upper-bounds the exact count.
  const Graph g = assign_uniform_weights(gen::grid2d(12, 12), 3, 1, 1000);
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kDP;
  opts.settle_ties = false;
  const PreprocessResult exact = preprocess(g, opts);
  const double est = estimate_added_factor(g, opts.rho, opts.k, opts.heuristic,
                                           g.num_vertices());
  EXPECT_GE(est, exact.added_factor * 0.999);
  // On this graph the dedup gap is modest; the estimate should be in the
  // same ballpark, not an order of magnitude off.
  EXPECT_LE(est, exact.added_factor * 4 + 0.5);
}

TEST(EstimateAddedFactor, NoneHeuristicIsFree) {
  const Graph g = gen::grid2d(8, 8);
  EXPECT_EQ(estimate_added_factor(g, 16, 2, ShortcutHeuristic::kNone), 0.0);
}

TEST(EstimateAddedFactor, GrowsWithRho) {
  const Graph g = assign_uniform_weights(gen::road_network(20, 20, 4), 5);
  double prev = -1.0;
  for (const Vertex rho : {Vertex{4}, Vertex{16}, Vertex{64}}) {
    const double f =
        estimate_added_factor(g, rho, 2, ShortcutHeuristic::kDP, 64);
    EXPECT_GE(f, prev) << "rho=" << rho;
    prev = f;
  }
}

TEST(ChooseParameters, RespectsBudget) {
  const Graph g = assign_uniform_weights(gen::road_network(24, 24, 7), 8);
  const TuningAdvice advice = choose_parameters(g, /*budget_factor=*/1.0);
  EXPECT_GE(advice.rho, 8u);
  EXPECT_LE(advice.estimated_factor, 1.0);
  // Spending the budget must actually stay within ~budget after exact
  // preprocessing (estimates only over-count).
  PreprocessOptions opts;
  opts.rho = advice.rho;
  opts.k = advice.k;
  opts.heuristic = advice.heuristic;
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_LE(pre.added_factor, 1.05);
}

TEST(ChooseParameters, BiggerBudgetBiggerRho) {
  const Graph g = assign_uniform_weights(gen::grid2d(24, 24), 9);
  const TuningAdvice small = choose_parameters(g, 0.25);
  const TuningAdvice large = choose_parameters(g, 4.0);
  EXPECT_LE(small.rho, large.rho);
  EXPECT_LE(small.estimated_factor, 0.25);
}

TEST(ChooseParameters, HubGraphsAffordHugeRho) {
  // The paper's webgraph observation: DP adds almost nothing even at large
  // rho, so the budget check should sail to the ladder cap.
  const Graph g = gen::barabasi_albert(4000, 8, 3);
  const TuningAdvice advice =
      choose_parameters(g, 1.0, 3, ShortcutHeuristic::kDP, /*max_rho=*/256);
  EXPECT_EQ(advice.rho, 256u);
  EXPECT_LT(advice.estimated_factor, 0.2);
}

}  // namespace
}  // namespace rs
