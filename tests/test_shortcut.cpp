#include "shortcut/shortcut.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "shortcut/kradius.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

Ball ball_of(const Graph& g, Vertex src, Vertex rho) {
  return ball_search(g.with_weight_sorted_adjacency(), src, rho);
}

TEST(SelectShortcuts, FullSchemeTakesEverythingBeyondOneHop) {
  const Graph g = assign_uniform_weights(gen::grid2d(8, 8), 1, 1, 50);
  const Ball ball = ball_of(g, 0, 20);
  const auto sel = select_shortcuts(ball, 1, ShortcutHeuristic::kFull1Rho);
  std::size_t beyond = 0;
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    if (ball.vertices[i].hops > 1) ++beyond;
  }
  EXPECT_EQ(sel.size(), beyond);
  for (const auto idx : sel) EXPECT_GT(ball.vertices[idx].hops, 1u);
}

TEST(SelectShortcuts, GreedyPicksDepthsKiPlusOne) {
  const Graph g = assign_unit_weights(gen::chain(30));
  const Ball ball = ball_of(g, 0, 20);  // a path: depths 0..19+
  const Vertex k = 3;
  const auto sel = select_shortcuts(ball, k, ShortcutHeuristic::kGreedy);
  for (const auto idx : sel) {
    const Vertex h = ball.vertices[idx].hops;
    EXPECT_GT(h, k);
    EXPECT_EQ((h - 1) % k, 0u) << "depth " << h;
  }
  // Depths 4, 7, 10, ... must all be present.
  std::vector<Vertex> depths;
  for (const auto idx : sel) depths.push_back(ball.vertices[idx].hops);
  std::sort(depths.begin(), depths.end());
  ASSERT_FALSE(depths.empty());
  EXPECT_EQ(depths.front(), k + 1);
}

TEST(SelectShortcuts, NoneSelectsNothing) {
  const Graph g = assign_unit_weights(gen::chain(30));
  const Ball ball = ball_of(g, 0, 20);
  EXPECT_TRUE(select_shortcuts(ball, 3, ShortcutHeuristic::kNone).empty());
}

TEST(SelectShortcuts, DpOnChainUsesFloorDepthOverK) {
  // A path of depth D needs ceil((D - k) / k) shortcuts... exactly the
  // brute-force optimum; check against it.
  const Graph g = assign_unit_weights(gen::chain(16));
  const Ball ball = ball_of(g, 0, 14);
  for (const Vertex k : {Vertex{1}, Vertex{2}, Vertex{3}, Vertex{5}}) {
    const auto dp = select_shortcuts(ball, k, ShortcutHeuristic::kDP);
    EXPECT_EQ(dp.size(), min_shortcuts_bruteforce(ball, k)) << "k=" << k;
  }
}

TEST(SelectShortcuts, DpBeatsGreedyOnPaperCounterexample) {
  // §4.2.1's bad case: a chain of length k, then a broom of many leaves at
  // level k+1. Greedy shortcuts every leaf; the optimum is 1 edge (to the
  // chain end).
  const Vertex k = 3;
  std::vector<EdgeTriple> edges;
  // chain 0-1-2-3
  for (Vertex v = 0; v + 1 <= k; ++v) edges.push_back({v, v + 1, 1});
  // leaves 4..13 hanging off vertex 3 (depth k+1)
  for (Vertex leaf = k + 1; leaf < k + 11; ++leaf) {
    edges.push_back({k, leaf, 1});
  }
  const Graph g = build_graph(k + 11, edges);
  const Ball ball = ball_of(g, 0, g.num_vertices());
  const auto greedy = select_shortcuts(ball, k, ShortcutHeuristic::kGreedy);
  const auto dp = select_shortcuts(ball, k, ShortcutHeuristic::kDP);
  EXPECT_EQ(greedy.size(), 10u);  // all leaves
  EXPECT_EQ(dp.size(), 1u);       // shortcut the chain end
  EXPECT_EQ(ball.vertices[dp[0]].hops, k);
}

class DpOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(DpOptimalityTest, DpMatchesBruteforceOnRandomBalls) {
  const int seed = GetParam();
  // Small random graphs so the exponential oracle stays cheap.
  const Graph g = assign_uniform_weights(
      largest_component(
          gen::erdos_renyi(24, 40, static_cast<std::uint64_t>(seed))),
      static_cast<std::uint64_t>(seed) + 100, 1, 20);
  const Graph gw = g.with_weight_sorted_adjacency();
  BallSearchWorkspace ws(g.num_vertices());
  for (Vertex src = 0; src < g.num_vertices(); src += 3) {
    const Ball ball =
        ws.run(gw, src, BallOptions{12, 0, /*settle_ties=*/false});
    if (ball.vertices.size() > 18) continue;  // keep 2^B tractable
    for (const Vertex k : {Vertex{1}, Vertex{2}, Vertex{3}}) {
      const auto dp = select_shortcuts(ball, k, ShortcutHeuristic::kDP);
      EXPECT_EQ(dp.size(), min_shortcuts_bruteforce(ball, k))
          << "seed=" << seed << " src=" << src << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOptimalityTest, ::testing::Range(0, 10));

TEST(SelectShortcuts, DpNeverWorseThanGreedy) {
  for (const auto& [name, g] : test::weighted_suite(3)) {
    const Ball ball = ball_of(g, 1, 32);
    for (const Vertex k : {Vertex{2}, Vertex{3}, Vertex{4}}) {
      const auto dp = select_shortcuts(ball, k, ShortcutHeuristic::kDP);
      const auto greedy = select_shortcuts(ball, k, ShortcutHeuristic::kGreedy);
      EXPECT_LE(dp.size(), greedy.size()) << name << " k=" << k;
    }
  }
}

TEST(SelectShortcuts, ShortcutSetActuallyBoundsHops) {
  // Property: after applying the selected shortcuts (re-rooting them at
  // depth 1), every ball member sits within k hops — for all heuristics.
  for (const auto& [name, g] : test::weighted_suite(4)) {
    const Ball ball = ball_of(g, 0, 40);
    const std::size_t b = ball.vertices.size();
    // Local parent indices.
    std::vector<std::size_t> parent(b, 0);
    {
      std::vector<std::int64_t> pos(g.num_vertices(), -1);
      for (std::size_t i = 0; i < b; ++i) {
        pos[ball.vertices[i].v] = static_cast<std::int64_t>(i);
      }
      for (std::size_t i = 1; i < b; ++i) {
        parent[i] = static_cast<std::size_t>(pos[ball.vertices[i].parent]);
      }
    }
    for (const Vertex k : {Vertex{1}, Vertex{2}, Vertex{3}}) {
      for (const auto heuristic :
           {ShortcutHeuristic::kFull1Rho, ShortcutHeuristic::kGreedy,
            ShortcutHeuristic::kDP}) {
        const Vertex kk = heuristic == ShortcutHeuristic::kFull1Rho ? 1 : k;
        const auto sel = select_shortcuts(ball, kk, heuristic);
        std::vector<std::uint8_t> has(b, 0);
        for (const auto idx : sel) has[idx] = 1;
        std::vector<Vertex> depth(b, 0);
        for (std::size_t i = 1; i < b; ++i) {
          depth[i] = has[i] ? 1 : depth[parent[i]] + 1;
          EXPECT_LE(depth[i], kk)
              << name << " " << to_string(heuristic) << " k=" << kk;
        }
      }
    }
  }
}

class KRhoPropertyTest
    : public ::testing::TestWithParam<std::tuple<Vertex, ShortcutHeuristic>> {};

TEST_P(KRhoPropertyTest, PreprocessingYieldsKRhoGraph) {
  const auto [k, heuristic] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(5)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = k;
    opts.heuristic = heuristic;
    const PreprocessResult pre = preprocess(g, opts);
    const Vertex effective_k =
        heuristic == ShortcutHeuristic::kFull1Rho ? 1 : k;
    // Definition 4 on the augmented graph: r_rho(v) <= r̄_k(v).
    EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, effective_k))
        << name << " k=" << k << " " << to_string(heuristic);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KsAndHeuristics, KRhoPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(ShortcutHeuristic::kFull1Rho,
                                         ShortcutHeuristic::kGreedy,
                                         ShortcutHeuristic::kDP)));

TEST(Preprocess, ShortcutsPreserveAllDistances) {
  for (const auto& [name, g] : test::weighted_suite(6)) {
    PreprocessOptions opts;
    opts.rho = 16;
    opts.k = 2;
    opts.heuristic = ShortcutHeuristic::kDP;
    const PreprocessResult pre = preprocess(g, opts);
    for (const Vertex src : {Vertex{0}, g.num_vertices() / 2}) {
      EXPECT_EQ(dijkstra(pre.graph, src), dijkstra(g, src)) << name;
    }
  }
}

TEST(Preprocess, RadiiMatchAllRadii) {
  const Graph g = test::weighted_suite(7)[0].graph;
  PreprocessOptions opts;
  opts.rho = 10;
  opts.heuristic = ShortcutHeuristic::kNone;
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_EQ(pre.radius, all_radii(g, 10));
  EXPECT_EQ(pre.added_edges, 0u);
  EXPECT_EQ(pre.graph, g);
}

TEST(Preprocess, AddedFactorAccounting) {
  const Graph g = assign_uniform_weights(gen::grid2d(12, 12), 8, 1, 1000);
  PreprocessOptions opts;
  opts.rho = 20;
  opts.k = 1;
  opts.heuristic = ShortcutHeuristic::kFull1Rho;
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_EQ(pre.graph.num_undirected_edges(),
            g.num_undirected_edges() + pre.added_edges);
  EXPECT_GT(pre.added_edges, 0u);
  EXPECT_NEAR(pre.added_factor,
              double(pre.added_edges) / double(g.num_undirected_edges()),
              1e-12);
  // At most (rho - 1) shortcuts per source (and usually far fewer are new).
  EXPECT_LE(pre.added_edges,
            static_cast<EdgeId>(g.num_vertices()) * (opts.rho - 1));
}

TEST(Preprocess, LargerKAddsFewerEdges) {
  const Graph g = assign_uniform_weights(gen::grid2d(16, 16), 9, 1, 1000);
  EdgeId prev = ~EdgeId{0};
  for (const Vertex k : {Vertex{1}, Vertex{2}, Vertex{4}}) {
    PreprocessOptions opts;
    opts.rho = 24;
    opts.k = k;
    opts.heuristic = ShortcutHeuristic::kDP;
    const PreprocessResult pre = preprocess(g, opts);
    EXPECT_LE(pre.added_edges, prev) << "k=" << k;
    prev = pre.added_edges;
  }
}

TEST(Preprocess, ExactRhoTieModeStillYieldsKRhoGraph) {
  for (const auto& [name, g] : test::unweighted_suite(2)) {
    PreprocessOptions opts;
    opts.rho = 10;
    opts.k = 2;
    opts.heuristic = ShortcutHeuristic::kDP;
    opts.settle_ties = false;
    const PreprocessResult pre = preprocess(g, opts);
    EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, 2)) << name;
    EXPECT_EQ(dijkstra(pre.graph, 0), dijkstra(g, 0)) << name;
  }
}

TEST(Preprocess, RejectsBadParameters) {
  const Graph g = gen::chain(4);
  PreprocessOptions opts;
  opts.rho = 0;
  EXPECT_THROW(preprocess(g, opts), std::invalid_argument);
  opts.rho = 2;
  opts.k = 0;
  EXPECT_THROW(preprocess(g, opts), std::invalid_argument);
}

TEST(KRadiusExact, HandComputedChain) {
  // Unit chain 0-1-2-3-4: from vertex 0, r̄_2 = distance to vertex 3 = 3.
  const Graph g = assign_unit_weights(gen::chain(5));
  EXPECT_EQ(k_radius_exact(g, 0, 2), 3u);
  EXPECT_EQ(k_radius_exact(g, 2, 2), kInfDist);  // everything within 2 hops
  EXPECT_EQ(k_radius_exact(g, 0, 4), kInfDist);
}

TEST(KRadiusExact, ManyParallelArcsDoNotTruncateTheScan) {
  // Vertex 0 carries more outgoing arcs than the graph has vertices
  // (parallel arcs kept, dedup off). Arcs are CSR-sorted by (target,
  // weight), so the arc to the highest-numbered target sits beyond
  // position n: a ball scan whose edge limit were n (instead of
  // unbounded) would never see it and report a wrong k-radius.
  BuildOptions keep;
  keep.symmetrize = false;
  keep.remove_self_loops = false;
  keep.dedup = false;
  const Vertex n = 8;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 1; v <= 5; ++v) {  // 10 arcs ahead of the critical one
    edges.push_back({0, v, 50});
    edges.push_back({0, v, 60});
  }
  edges.push_back({0, 6, 1});  // sorts last among 0's arcs (11th of 11)
  edges.push_back({6, 7, 1});
  const Graph g = build_graph(n, std::move(edges), keep);
  // d(7) = 2 in 2 hops (0->6->7); every other reachable vertex is 1 hop.
  // r̄_1(0) = 2 — but only if the scan reaches the 11th arc of vertex 0.
  EXPECT_EQ(k_radius_exact(g, 0, 1), 2u);
}

TEST(KRadiusExact, MatchesMinHopTreeOnAdversarialMultigraphs) {
  // Reference semantics: the min-hop Dijkstra tree, over the directed /
  // self-loop / parallel-arc suite.
  for (const auto& [name, g] : test::adversarial_suite(31)) {
    for (const Vertex k : {Vertex{1}, Vertex{3}}) {
      const auto got = all_k_radii_exact(g, k);
      for (Vertex v = 0; v < g.num_vertices(); v += 7) {
        const ShortestPathTreeResult tree = dijkstra_min_hop_tree(g, v);
        Dist want = kInfDist;
        for (Vertex u = 0; u < g.num_vertices(); ++u) {
          if (tree.dist[u] == kInfDist || u == v) continue;
          if (tree.hops[u] > k && tree.dist[u] < want) want = tree.dist[u];
        }
        EXPECT_EQ(got[v], want) << name << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(KRadiusExact, UsesMinHopPath) {
  // Two routes to vertex 3: 0-1-2-3 (w 1+1+1=3) and 0-3 (w 3). Equal
  // distance; d̂ uses the fewest-edge shortest path, so d̂(0,3) = 1 and
  // vertex 3 must NOT be counted beyond k=2.
  const Graph g = build_graph(
      4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 3}});
  EXPECT_EQ(k_radius_exact(g, 0, 2), kInfDist);
}

}  // namespace
}  // namespace rs
