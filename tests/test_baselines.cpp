#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/bfs.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "graph/builder.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(Dijkstra, TinyHandComputedGraph) {
  //    0 --5-- 1
  //    |       |
  //    9       1
  //    |       |
  //    2 --2-- 3
  const Graph g = build_graph(4, {{0, 1, 5}, {0, 2, 9}, {1, 3, 1}, {2, 3, 2}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 5u);
  EXPECT_EQ(d[2], 8u);  // 0-1-3-2 beats the direct 9
  EXPECT_EQ(d[3], 6u);
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  const Graph g = build_graph(4, {{0, 1, 3}});
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(Dijkstra, ZeroWeightEdgesHandled) {
  BuildOptions opts;
  const Graph g = build_graph(3, {{0, 1, 0}, {1, 2, 4}}, opts);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[2], 4u);
}

class BaselineAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineAgreementTest, AllAlgorithmsAgreeWithDijkstra) {
  const auto [suite_seed, source_pick] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(suite_seed)) {
    const Vertex n = g.num_vertices();
    const Vertex src = static_cast<Vertex>(
        (static_cast<std::uint64_t>(source_pick) * 7919) % n);
    const auto ref = dijkstra(g, src);

    EXPECT_EQ(dijkstra_pairing(g, src), ref) << name << " pairing";
    EXPECT_EQ(bellman_ford(g, src), ref) << name << " bellman-ford";
    EXPECT_EQ(bellman_ford_parallel(g, src), ref) << name << " bf-parallel";
    EXPECT_EQ(delta_stepping(g, src), ref) << name << " delta default";
    EXPECT_EQ(delta_stepping(g, src, 1), ref) << name << " delta=1";
    EXPECT_EQ(delta_stepping(g, src, 50), ref) << name << " delta=50";
    EXPECT_EQ(delta_stepping(g, src, 100000), ref) << name << " delta=inf-ish";
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSources, BaselineAgreementTest,
                         ::testing::Combine(::testing::Range(1, 4),
                                            ::testing::Range(0, 3)));

TEST(BellmanFord, RoundCountBoundedByHopDiameter) {
  const Graph g = assign_unit_weights(gen::chain(50));
  std::size_t rounds = 0;
  bellman_ford_parallel(g, 0, &rounds);
  // Distances propagate one hop per round; chain needs exactly 49 + a final
  // no-op round bounded by 50.
  EXPECT_GE(rounds, 49u);
  EXPECT_LE(rounds, 51u);
}

TEST(DeltaStepping, StatsAreConsistent) {
  const Graph g = assign_uniform_weights(gen::grid2d(20, 20), 3, 1, 100);
  DeltaSteppingStats stats;
  const auto d = delta_stepping(g, 0, 25, &stats);
  EXPECT_EQ(d, dijkstra(g, 0));
  EXPECT_GT(stats.buckets_processed, 0u);
  EXPECT_GE(stats.phases, stats.buckets_processed);
  EXPECT_GT(stats.relaxations, 0u);
}

TEST(DeltaStepping, LargeDeltaDegeneratesToFewBuckets) {
  const Graph g = assign_uniform_weights(gen::grid2d(12, 12), 5, 1, 10);
  DeltaSteppingStats one_bucket;
  delta_stepping(g, 0, 1'000'000, &one_bucket);
  EXPECT_EQ(one_bucket.buckets_processed, 1u);

  DeltaSteppingStats many;
  delta_stepping(g, 0, 1, &many);
  EXPECT_GT(many.buckets_processed, one_bucket.buckets_processed);
}

class BfsTest : public ::testing::TestWithParam<int> {};

TEST_P(BfsTest, SequentialAndParallelMatchUnitDijkstra) {
  for (const auto& [name, g] : test::unweighted_suite(GetParam())) {
    const auto ref = dijkstra(g, 0);
    std::size_t rounds_seq = 0;
    std::size_t rounds_par = 0;
    EXPECT_EQ(bfs(g, 0, &rounds_seq), ref) << name;
    EXPECT_EQ(bfs_parallel(g, 0, &rounds_par), ref) << name;
    EXPECT_EQ(rounds_seq, rounds_par) << name;
    EXPECT_EQ(rounds_seq, bfs_eccentricity(g, 0)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsTest, ::testing::Range(1, 4));

TEST(MinHopTree, ParentEdgesRealizeDistances) {
  for (const auto& [name, g] : test::weighted_suite(2)) {
    const ShortestPathTreeResult t = dijkstra_min_hop_tree(g, 0);
    EXPECT_EQ(t.dist, dijkstra(g, 0)) << name;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == 0 || t.dist[v] == kInfDist) continue;
      const Vertex p = t.parent[v];
      ASSERT_NE(p, kNoVertex) << name;
      // The parent edge must exist and close the distance exactly.
      bool ok = false;
      for (EdgeId e = g.first_arc(p); e < g.last_arc(p); ++e) {
        if (g.arc_target(e) == v && t.dist[p] + g.arc_weight(e) == t.dist[v]) {
          ok = true;
        }
      }
      EXPECT_TRUE(ok) << name << " vertex " << v;
      EXPECT_EQ(t.hops[v], t.hops[p] + 1) << name;
    }
  }
}

TEST(MinHopTree, HopsAreMinimalAmongShortestPaths) {
  for (const auto& [name, g] : test::weighted_suite(3)) {
    const ShortestPathTreeResult t = dijkstra_min_hop_tree(g, 0);
    // DP check: hops[v] == 1 + min over predecessors p on *some* shortest
    // path (dist[p] + w == dist[v]) of hops[p].
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == 0 || t.dist[v] == kInfDist) continue;
      Vertex best = kNoVertex;
      for (EdgeId e = g.first_arc(v); e < g.last_arc(v); ++e) {
        const Vertex p = g.arc_target(e);
        if (t.dist[p] != kInfDist &&
            t.dist[p] + g.arc_weight(e) == t.dist[v]) {
          best = std::min(best, static_cast<Vertex>(t.hops[p] + 1));
        }
      }
      EXPECT_EQ(t.hops[v], best) << name << " vertex " << v;
    }
  }
}

TEST(CountDistinctDistances, IgnoresZeroAndInfinity) {
  EXPECT_EQ(count_distinct_distances({0, 5, 5, 7, kInfDist}), 2u);
  EXPECT_EQ(count_distinct_distances({0}), 0u);
  EXPECT_EQ(count_distinct_distances({}), 0u);
}

}  // namespace
}  // namespace rs
