#include "shortcut/global_opt.hpp"

#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "shortcut/kradius.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

class GlobalOptPropertyTest : public ::testing::TestWithParam<Vertex> {};

TEST_P(GlobalOptPropertyTest, ProducesValidKRhoGraph) {
  const Vertex k = GetParam();
  for (const auto& [name, g] : test::weighted_suite(3)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = k;
    const PreprocessResult pre = preprocess_global(g, opts);
    EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, k))
        << name << " k=" << k;
    EXPECT_EQ(dijkstra(pre.graph, 0), dijkstra(g, 0)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, GlobalOptPropertyTest, ::testing::Values(1, 2, 3));

TEST(GlobalOpt, SubstepBoundHoldsDownstream) {
  for (const auto& [name, g] : test::weighted_suite(4)) {
    PreprocessOptions opts;
    opts.rho = 10;
    opts.k = 2;
    const PreprocessResult pre = preprocess_global(g, opts);
    RunStats stats;
    const auto d = radius_stepping(pre.graph, 0, pre.radius, &stats);
    EXPECT_LE(stats.max_substeps_in_step, opts.k + 2u) << name;
    EXPECT_EQ(d, dijkstra(g, 0)) << name;
  }
}

TEST(GlobalOpt, ChainMatchesPerTreeOptimum) {
  // Path of length 15 from vertex 0, rho covering the whole graph: the
  // optimum for one ball is ceil((depth - k) / k); the global pass from all
  // sources shares shortcuts but each ball's own cost is what matters here.
  const Graph g = assign_unit_weights(gen::chain(16));
  PreprocessOptions opts;
  opts.rho = 16;
  opts.k = 3;
  const PreprocessResult pre = preprocess_global(g, opts);
  EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, opts.k));
}

TEST(GlobalOpt, BroomCoversFanWithOneEdgePerSource) {
  // §4.2.1's counterexample: chain of length k then 10 leaves. From the
  // handle end, one shortcut (to the chain end) must suffice — the cover
  // rule hits the common ancestor.
  const Vertex k = 3;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 0; v + 1 <= k; ++v) edges.push_back({v, v + 1, 1});
  for (Vertex leaf = k + 1; leaf < k + 11; ++leaf) {
    edges.push_back({k, leaf, 1});
  }
  const Graph g = build_graph(k + 11, edges);
  PreprocessOptions opts;
  opts.rho = g.num_vertices();
  opts.k = k;
  const PreprocessResult pre = preprocess_global(g, opts);
  // Source 0's ball needs exactly one edge (0, k); ball searches from other
  // sources may add their own, but (0, x) edges must number exactly 1 plus
  // the original (0, 1).
  EdgeId from_zero = pre.graph.degree(0) - g.degree(0);
  EXPECT_EQ(from_zero, 1u);
  EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, k));
}

TEST(GlobalOpt, SharesEdgesAcrossOverlappingBalls) {
  // On a grid, neighbouring sources have nearly identical balls; the global
  // pass must add (weakly) fewer edges than independent per-tree DP, which
  // cannot share. (Raw proposal counts compared; both exclude dedup.)
  const Graph g = assign_uniform_weights(gen::grid2d(16, 16), 7, 1, 1000);
  PreprocessOptions opts;
  opts.rho = 24;
  opts.k = 3;
  const PreprocessResult dp = preprocess(g, opts);
  const PreprocessResult global = preprocess_global(g, opts);
  EXPECT_LT(global.added_edges, dp.added_edges);
  EXPECT_TRUE(is_k_rho_graph(global.graph, global.radius, opts.k));
}

TEST(GlobalOpt, ExactRhoTieModeStaysValid) {
  for (const auto& [name, g] : test::unweighted_suite(5)) {
    PreprocessOptions opts;
    opts.rho = 8;
    opts.k = 2;
    opts.settle_ties = false;
    const PreprocessResult pre = preprocess_global(g, opts);
    EXPECT_TRUE(is_k_rho_graph(pre.graph, pre.radius, opts.k)) << name;
  }
}

TEST(GlobalOpt, RejectsBadParameters) {
  const Graph g = gen::chain(4);
  PreprocessOptions opts;
  opts.rho = 0;
  EXPECT_THROW(preprocess_global(g, opts), std::invalid_argument);
  opts.rho = 2;
  opts.k = 0;
  EXPECT_THROW(preprocess_global(g, opts), std::invalid_argument);
}

}  // namespace
}  // namespace rs
