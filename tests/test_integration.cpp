// End-to-end pipelines: generate -> weight -> preprocess -> query from many
// sources with every engine, plus serialization round trips and the paper's
// headline empirical trend in miniature.
#include <gtest/gtest.h>

#include "baseline/bfs.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {
namespace {

TEST(Integration, FullPipelineOnMidsizeRoadNetwork) {
  const Graph g = assign_uniform_weights(gen::road_network(40, 40, 3), 5);
  PreprocessOptions opts;
  opts.rho = 32;
  opts.k = 3;
  opts.heuristic = ShortcutHeuristic::kDP;
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_GT(pre.added_edges, 0u);

  const SplitRng rng(1);
  for (int qi = 0; qi < 5; ++qi) {
    const Vertex src = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(qi), g.num_vertices()));
    const auto ref = dijkstra(g, src);
    RunStats stats;
    EXPECT_EQ(radius_stepping(pre.graph, src, pre.radius, &stats), ref);
    EXPECT_LE(stats.max_substeps_in_step, opts.k + 2u);
    EXPECT_EQ(radius_stepping_bst(pre.graph, src, pre.radius), ref);
    EXPECT_EQ(delta_stepping(g, src), ref);
  }
}

TEST(Integration, RmatPipelineViaLargestComponent) {
  const Graph raw = gen::rmat(10, 8, 21);
  const Graph g0 = largest_component(raw);
  ASSERT_TRUE(is_connected(g0));
  const Graph g = assign_uniform_weights(g0, 9);
  PreprocessOptions opts;
  opts.rho = 16;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kDP;
  opts.settle_ties = false;  // hub graph: exactly-rho tie variant
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_EQ(radius_stepping(pre.graph, 0, pre.radius), dijkstra(g, 0));
}

TEST(Integration, SerializeReloadQuery) {
  const Graph g = assign_uniform_weights(gen::grid2d(20, 20), 13);
  const std::string path = ::testing::TempDir() + "/rs_integration.gr";
  io::write_dimacs_file(g, path);
  const Graph g2 = io::read_dimacs_file(path);
  const auto radius = all_radii(g2, 8);
  EXPECT_EQ(radius_stepping(g2, 5, radius), dijkstra(g, 5));
}

TEST(Integration, UnweightedPipelineMatchesBfsEverywhere) {
  const Graph g = gen::barabasi_albert(2000, 4, 8);
  const auto radius = all_radii(g, 16);
  const SplitRng rng(2);
  for (int qi = 0; qi < 4; ++qi) {
    const Vertex src = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(qi), g.num_vertices()));
    RunStats stats;
    const auto d = radius_stepping_unweighted(g, src, radius, &stats);
    EXPECT_EQ(d, bfs(g, src));
    std::size_t bfs_rounds = 0;
    bfs(g, src, &bfs_rounds);
    EXPECT_LE(stats.steps, bfs_rounds);
  }
}

TEST(Integration, MeanStepsShrinkWithRhoPaperTrend) {
  // Figure 4/5 in miniature: mean steps over sampled sources drop as rho
  // grows, on both a weighted road network and an unweighted grid.
  const Graph road = assign_uniform_weights(gen::road_network(30, 30, 4), 6);
  const Graph grid = assign_unit_weights(gen::grid2d(30, 30));
  const SplitRng rng(3);

  auto mean_steps = [&](const Graph& g, Vertex rho, bool weighted) {
    const auto radius =
        rho == 1 ? dijkstra_radii(g.num_vertices()) : all_radii(g, rho);
    double total = 0;
    const int samples = 5;
    for (int i = 0; i < samples; ++i) {
      const Vertex src = static_cast<Vertex>(
          rng.bounded(weighted ? 10 : 20, static_cast<std::uint64_t>(i),
                      g.num_vertices()));
      RunStats stats;
      if (weighted) {
        radius_stepping(g, src, radius, &stats);
      } else {
        radius_stepping_unweighted(g, src, radius, &stats);
      }
      total += static_cast<double>(stats.steps);
    }
    return total / samples;
  };

  const double road1 = mean_steps(road, 1, true);
  const double road16 = mean_steps(road, 16, true);
  const double road64 = mean_steps(road, 64, true);
  EXPECT_LT(road16, road1);
  EXPECT_LE(road64, road16);
  // Weighted rho=1 is Dijkstra-like: steps near the number of vertices.
  EXPECT_GT(road1, road.num_vertices() / 2.0);

  const double grid1 = mean_steps(grid, 1, false);
  const double grid16 = mean_steps(grid, 16, false);
  EXPECT_LT(grid16, grid1);
}

TEST(Integration, ThreadCountSweepIsInvariant) {
  const Graph g = assign_uniform_weights(gen::grid3d(8, 8, 8), 31);
  PreprocessOptions opts;
  opts.rho = 16;
  opts.k = 2;
  const PreprocessResult pre = preprocess(g, opts);
  const auto ref = radius_stepping(pre.graph, 0, pre.radius);

  const int before = num_workers();
  for (const int workers : {1, 2, 3, 8}) {
    set_num_workers(workers);
    // Radii and shortcuts must also be schedule-independent.
    const PreprocessResult pre2 = preprocess(g, opts);
    EXPECT_EQ(pre2.radius, pre.radius) << workers;
    EXPECT_EQ(pre2.graph, pre.graph) << workers;
    EXPECT_EQ(radius_stepping(pre2.graph, 0, pre2.radius), ref) << workers;
  }
  set_num_workers(before);
}

TEST(Integration, MultiSourceConsistencyTriangleInequality) {
  const Graph g = assign_uniform_weights(gen::road_network(20, 20, 9), 17);
  const auto radius = all_radii(g, 8);
  const auto da = radius_stepping(g, 0, radius);
  const auto db = radius_stepping(g, 7, radius);
  // |d(a,v) - d(b,v)| <= d(a,b) for all v (undirected metric property).
  const Dist dab = da[7];
  ASSERT_NE(dab, kInfDist);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (da[v] == kInfDist) continue;
    const Dist gap = da[v] > db[v] ? da[v] - db[v] : db[v] - da[v];
    EXPECT_LE(gap, dab) << v;
  }
}

}  // namespace
}  // namespace rs
