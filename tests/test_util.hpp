// Shared helpers for the test suite: a palette of small-but-interesting
// graphs that the SSSP batteries sweep over.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"

namespace rs::test {

struct GraphCase {
  std::string name;
  Graph graph;
};

/// Connected weighted graphs of assorted shapes (weights 1..100 keeps
/// distances small and collisions plentiful — a stress for tie handling).
inline std::vector<GraphCase> weighted_suite(std::uint64_t seed = 1) {
  std::vector<GraphCase> out;
  out.push_back({"grid2d", assign_uniform_weights(gen::grid2d(14, 17), seed, 1, 100)});
  out.push_back({"grid3d", assign_uniform_weights(gen::grid3d(6, 5, 7), seed + 1, 1, 100)});
  out.push_back({"road", assign_uniform_weights(gen::road_network(15, 15, seed), seed + 2, 1, 100)});
  out.push_back({"scalefree", assign_uniform_weights(
                                  gen::barabasi_albert(300, 3, seed), seed + 3, 1, 100)});
  out.push_back({"er", assign_uniform_weights(
                           largest_component(gen::erdos_renyi(300, 900, seed)),
                           seed + 4, 1, 100)});
  out.push_back({"chain", assign_uniform_weights(gen::chain(120), seed + 5, 1, 100)});
  out.push_back({"star", assign_uniform_weights(gen::star(80), seed + 6, 1, 100)});
  out.push_back({"complete", assign_uniform_weights(gen::complete(40), seed + 7, 1, 100)});
  out.push_back({"bipartite_chain",
                 assign_uniform_weights(gen::bipartite_chain(8, 6), seed + 8, 1, 100)});
  out.push_back({"rgg", largest_component(
                            gen::random_geometric(400, 0.09, seed + 9, 100))});
  return out;
}

/// Same shapes with unit weights.
inline std::vector<GraphCase> unweighted_suite(std::uint64_t seed = 1) {
  std::vector<GraphCase> out;
  for (auto& c : weighted_suite(seed)) {
    out.push_back({c.name, assign_unit_weights(c.graph)});
  }
  return out;
}

}  // namespace rs::test
