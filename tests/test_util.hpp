// Shared helpers for the test suite: a palette of small-but-interesting
// graphs that the SSSP batteries sweep over.
#pragma once

#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"

namespace rs::test {

struct GraphCase {
  std::string name;
  Graph graph;
};

/// Connected weighted graphs of assorted shapes (weights 1..100 keeps
/// distances small and collisions plentiful — a stress for tie handling).
inline std::vector<GraphCase> weighted_suite(std::uint64_t seed = 1) {
  std::vector<GraphCase> out;
  out.push_back(
      {"grid2d", assign_uniform_weights(gen::grid2d(14, 17), seed, 1, 100)});
  out.push_back({"grid3d", assign_uniform_weights(gen::grid3d(6, 5, 7),
                                                  seed + 1, 1, 100)});
  out.push_back({"road", assign_uniform_weights(gen::road_network(15, 15, seed),
                                                seed + 2, 1, 100)});
  out.push_back({"scalefree",
                 assign_uniform_weights(gen::barabasi_albert(300, 3, seed),
                                        seed + 3, 1, 100)});
  out.push_back({"er", assign_uniform_weights(
                           largest_component(gen::erdos_renyi(300, 900, seed)),
                           seed + 4, 1, 100)});
  out.push_back(
      {"chain", assign_uniform_weights(gen::chain(120), seed + 5, 1, 100)});
  out.push_back(
      {"star", assign_uniform_weights(gen::star(80), seed + 6, 1, 100)});
  out.push_back({"complete", assign_uniform_weights(gen::complete(40),
                                                    seed + 7, 1, 100)});
  out.push_back({"bipartite_chain",
                 assign_uniform_weights(gen::bipartite_chain(8, 6), seed + 8, 1,
                                        100)});
  out.push_back({"rgg", largest_component(
                            gen::random_geometric(400, 0.09, seed + 9, 100))});
  return out;
}

/// Graphs that violate the paper's simple-undirected assumption: directed
/// arcs, self-loops, and parallel arcs with differing weights, all KEPT in
/// the CSR (build_graph's clean-ups disabled). Every SSSP engine must still
/// be exact on these — self-loops can never relax (w >= 1) and only the
/// lightest parallel arc can matter, but the code has to get there without
/// the builder sanitizing the input for it.
inline std::vector<GraphCase> adversarial_suite(std::uint64_t seed = 1) {
  BuildOptions keep_everything;
  keep_everything.symmetrize = false;
  keep_everything.remove_self_loops = false;
  keep_everything.dedup = false;

  std::vector<GraphCase> out;

  {  // Directed cycle + chords + a self-loop on every third vertex +
     // duplicated chords with different weights.
    const Vertex n = 120;
    const SplitRng rng(seed);
    std::vector<EdgeTriple> edges;
    for (Vertex v = 0; v < n; ++v) {
      edges.push_back({v, static_cast<Vertex>((v + 1) % n),
                       static_cast<Weight>(1 + rng.bounded(0, v, 60))});
      if (v % 3 == 0) {
        edges.push_back({v, v, static_cast<Weight>(1 + rng.bounded(1, v, 9))});
      }
    }
    for (EdgeId i = 0; i < 300; ++i) {
      const Vertex u = static_cast<Vertex>(rng.bounded(2, i, n));
      const Vertex v = static_cast<Vertex>(rng.bounded(3, i, n));
      const auto w = static_cast<Weight>(1 + rng.bounded(4, i, 60));
      edges.push_back({u, v, w});
      if (i % 4 == 0) {  // parallel arc, usually with a different weight
        edges.push_back({u, v, static_cast<Weight>(1 + rng.bounded(5, i, 60))});
      }
    }
    out.push_back({"directed_messy",
                   build_graph(n, std::move(edges), keep_everything)});
  }

  {  // Undirected-by-hand multigraph: both arc directions listed explicitly
     // so parallel arcs and self-loops survive symmetrization-free building.
    const Vertex n = 40;
    const SplitRng rng(seed + 1);
    std::vector<EdgeTriple> edges;
    for (Vertex v = 0; v + 1 < n; ++v) {
      const auto w = static_cast<Weight>(1 + rng.bounded(0, v, 30));
      edges.push_back({v, static_cast<Vertex>(v + 1), w});
      edges.push_back({static_cast<Vertex>(v + 1), v, w});
      // A heavier parallel edge that must never win.
      edges.push_back({v, static_cast<Vertex>(v + 1),
                       static_cast<Weight>(w + 100)});
      edges.push_back({static_cast<Vertex>(v + 1), v,
                       static_cast<Weight>(w + 100)});
    }
    for (Vertex v = 0; v < n; v += 5) {
      edges.push_back({v, v, 1});
      edges.push_back({v, v, 7});
    }
    out.push_back({"multigraph_path",
                   build_graph(n, std::move(edges), keep_everything)});
  }

  {  // Star where some spokes point inward only, some outward only, plus
     // self-loops on the center — asymmetric reachability from vertex 0.
    const Vertex n = 30;
    std::vector<EdgeTriple> edges;
    edges.push_back({0, 0, 3});
    for (Vertex v = 1; v < n; ++v) {
      if (v % 2 == 0) {
        edges.push_back({0, v, static_cast<Weight>(v)});  // outward
      } else {
        edges.push_back({v, 0, static_cast<Weight>(v)});  // inward only
      }
    }
    out.push_back({"half_directed_star",
                   build_graph(n, std::move(edges), keep_everything)});
  }

  return out;
}

/// Same shapes with unit weights.
inline std::vector<GraphCase> unweighted_suite(std::uint64_t seed = 1) {
  std::vector<GraphCase> out;
  for (auto& c : weighted_suite(seed)) {
    out.push_back({c.name, assign_unit_weights(c.graph)});
  }
  return out;
}

}  // namespace rs::test
