#include "core/engine.hpp"

#include <cstdint>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/serialize.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(SsspEngine, QueryMatchesDijkstraOnAllEngines) {
  for (const auto& [name, g] : test::weighted_suite(1)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const auto ref = dijkstra(g, 0);
    EXPECT_EQ(engine.query(0, QueryEngine::kFlat).dist, ref) << name;
    EXPECT_EQ(engine.query(0, QueryEngine::kBst).dist, ref) << name;
  }
}

TEST(SsspEngine, PathAvoidsShortcutEdgesAndClosesDistance) {
  const Graph g = assign_uniform_weights(gen::grid2d(12, 12), 5, 1, 50);
  PreprocessOptions opts;
  opts.rho = 16;
  opts.k = 1;
  opts.heuristic = ShortcutHeuristic::kFull1Rho;  // plenty of shortcuts
  const SsspEngine engine(g, opts);
  const QueryResult q = engine.query(0);
  const Vertex target = g.num_vertices() - 1;
  const auto path = engine.path(q, target);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), target);
  // Every hop must be an ORIGINAL edge and the weights must sum to d.
  Dist total = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    bool found = false;
    for (EdgeId e = g.first_arc(path[i - 1]); e < g.last_arc(path[i - 1]);
         ++e) {
      if (g.arc_target(e) == path[i]) {
        total += g.arc_weight(e);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "hop " << i << " uses a non-original edge";
  }
  EXPECT_EQ(total, q.dist[target]);
}

TEST(SsspEngine, QueryBatchMatchesIndividualQueries) {
  const Graph g = assign_uniform_weights(gen::grid2d(10, 10), 2);
  PreprocessOptions opts;
  opts.rho = 8;
  const SsspEngine engine(g, opts);
  const std::vector<Vertex> sources{0, 17, 42, 99};
  const auto batch = engine.query_batch(sources);
  ASSERT_EQ(batch.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i].source, sources[i]);
    EXPECT_EQ(batch[i].dist, engine.query(sources[i]).dist);
  }
}

TEST(SsspEngine, PathOnDirectedGraphFollowsArcDirections) {
  // One-way ring plus a heavy direct arc 0 -> 9: the shortest route to 9
  // walks the ring, and every hop must respect arc direction. Pre-fix,
  // parents were derived from OUTGOING arcs and the reconstruction
  // returned no usable route on one-way graphs.
  BuildOptions directed;
  directed.symmetrize = false;
  const Vertex n = 10;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<Vertex>((v + 1) % n), 1});
  }
  edges.push_back({0, 9, 50});  // never the shortest route
  PreprocessResult pre;
  pre.graph = build_graph(n, std::move(edges), directed);
  pre.radius = constant_radii(n, 25);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  const SsspEngine engine(pre.graph, pre);

  const QueryResult q = engine.query(0);
  ASSERT_EQ(q.dist[9], 9u);
  const auto path = engine.path(q, 9);
  ASSERT_EQ(path.size(), 10u);
  for (Vertex v = 0; v < n; ++v) EXPECT_EQ(path[v], v);
}

TEST(SsspEngine, PathRejectsForeignQueryResult) {
  const Graph g = assign_uniform_weights(gen::grid2d(6, 6), 1, 1, 9);
  PreprocessOptions opts;
  opts.rho = 6;
  const SsspEngine engine(g, opts);
  // Default-constructed result: empty dist vector, must throw rather than
  // index out of bounds.
  EXPECT_THROW(engine.path(QueryResult{}, 0), std::invalid_argument);
  // Result from an engine over a different-sized graph: same guard.
  const Graph small = assign_uniform_weights(gen::grid2d(3, 3), 2, 1, 9);
  PreprocessOptions small_opts;
  small_opts.rho = 4;
  const SsspEngine small_engine(small, small_opts);
  EXPECT_THROW(engine.path(small_engine.query(0), 0), std::invalid_argument);
}

TEST(SsspEngine, PathToUnreachableIsEmpty) {
  const Graph g = build_graph(3, {{0, 1, 4}});
  PreprocessOptions opts;
  opts.rho = 2;
  opts.heuristic = ShortcutHeuristic::kNone;
  const SsspEngine engine(g, opts);
  const QueryResult q = engine.query(0);
  EXPECT_TRUE(engine.path(q, 2).empty());
  EXPECT_THROW(engine.path(q, 9), std::invalid_argument);
}

TEST(SsspEngine, UnweightedEngineGuardRails) {
  const Graph unit = gen::grid2d(8, 8);
  PreprocessOptions none;
  none.rho = 8;
  none.heuristic = ShortcutHeuristic::kNone;
  const SsspEngine ok(unit, none);
  EXPECT_EQ(ok.query(0, QueryEngine::kUnweighted).dist, dijkstra(unit, 0));

  PreprocessOptions dp;
  dp.rho = 8;
  dp.k = 2;
  const SsspEngine with_shortcuts(unit, dp);
  EXPECT_THROW(with_shortcuts.query(0, QueryEngine::kUnweighted),
               std::invalid_argument);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Graph g = assign_uniform_weights(gen::road_network(12, 12, 3), 4);
  PreprocessOptions opts;
  opts.rho = 10;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kGreedy;
  const PreprocessResult pre = preprocess(g, opts);

  std::stringstream buf;
  save_preprocessing(pre, buf);
  const PreprocessResult loaded = load_preprocessing(buf);

  EXPECT_EQ(loaded.graph, pre.graph);
  EXPECT_EQ(loaded.radius, pre.radius);
  EXPECT_EQ(loaded.added_edges, pre.added_edges);
  EXPECT_DOUBLE_EQ(loaded.added_factor, pre.added_factor);
  EXPECT_EQ(loaded.options.rho, opts.rho);
  EXPECT_EQ(loaded.options.k, opts.k);
  EXPECT_EQ(loaded.options.heuristic, opts.heuristic);
}

TEST(Serialize, LoadedPreprocessingAnswersQueries) {
  const Graph g = assign_uniform_weights(gen::grid2d(15, 15), 9);
  PreprocessOptions opts;
  opts.rho = 16;
  const PreprocessResult pre = preprocess(g, opts);
  std::stringstream buf;
  save_preprocessing(pre, buf);

  const SsspEngine engine(g, load_preprocessing(buf));
  EXPECT_EQ(engine.query(7).dist, dijkstra(g, 7));
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buf;
  buf << "not a preprocessing file";
  EXPECT_THROW(load_preprocessing(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  const Graph g = gen::chain(6);
  PreprocessOptions opts;
  opts.rho = 3;
  const PreprocessResult pre = preprocess(g, opts);
  std::stringstream buf;
  save_preprocessing(pre, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_preprocessing(cut), std::runtime_error);
}

// Byte offsets of the untrusted header counts in the RSPP format: magic(4)
// + version(4) + rho(4) + k(4) + heuristic(1) + settle_ties(1) +
// added_edges(8) + added_factor(8).
constexpr std::size_t kVertexCountOffset = 34;
constexpr std::size_t kEdgeCountOffset = 38;

std::string valid_preprocessing_bytes() {
  const Graph g = assign_uniform_weights(gen::grid2d(5, 5), 7);
  PreprocessOptions opts;
  opts.rho = 6;
  std::stringstream buf;
  save_preprocessing(preprocess(g, opts), buf);
  return buf.str();
}

TEST(Serialize, RejectsCorruptEdgeCountBeforeAllocating) {
  std::string bytes = valid_preprocessing_bytes();
  ASSERT_GT(bytes.size(), kEdgeCountOffset + 8);
  // A ~10^12-arc claim must fail as a clean parse error (header bound
  // against the stream size), not as a multi-terabyte allocation attempt.
  const std::uint64_t huge_m = 1ull << 40;
  std::memcpy(&bytes[kEdgeCountOffset], &huge_m, sizeof(huge_m));
  std::stringstream in(bytes);
  EXPECT_THROW(load_preprocessing(in), std::runtime_error);
  // All-ones m would overflow the byte-count math itself.
  const std::uint64_t wrap_m = ~0ull;
  std::memcpy(&bytes[kEdgeCountOffset], &wrap_m, sizeof(wrap_m));
  std::stringstream in2(bytes);
  EXPECT_THROW(load_preprocessing(in2), std::runtime_error);
}

TEST(Serialize, RejectsCorruptVertexCount) {
  std::string bytes = valid_preprocessing_bytes();
  // n = 0xFFFFFFFF makes the legacy `n + 1` offsets count wrap; it must be
  // rejected outright.
  const std::uint32_t bad_n = 0xFFFFFFFFu;
  std::memcpy(&bytes[kVertexCountOffset], &bad_n, sizeof(bad_n));
  std::stringstream in(bytes);
  EXPECT_THROW(load_preprocessing(in), std::runtime_error);
  // A large-but-not-wrapping n must still be bounded by the stream size.
  std::string bytes2 = valid_preprocessing_bytes();
  const std::uint32_t big_n = 0x7FFFFFFFu;
  std::memcpy(&bytes2[kVertexCountOffset], &big_n, sizeof(big_n));
  std::stringstream in2(bytes2);
  EXPECT_THROW(load_preprocessing(in2), std::runtime_error);
}

TEST(Serialize, RejectsTruncationAtEveryBoundary) {
  const std::string full = valid_preprocessing_bytes();
  // Cut inside the header, right after the counts, and mid-payload: every
  // prefix must fail cleanly with an exception, never crash or hang.
  for (const std::size_t cut :
       {std::size_t{3}, std::size_t{20}, kVertexCountOffset + 2,
        kEdgeCountOffset + 8, full.size() / 2, full.size() - 1}) {
    std::stringstream in(full.substr(0, cut));
    EXPECT_THROW(load_preprocessing(in), std::runtime_error) << "cut=" << cut;
  }
}

TEST(Serialize, FileRoundTrip) {
  const Graph g = gen::chain(10);
  PreprocessOptions opts;
  opts.rho = 4;
  const PreprocessResult pre = preprocess(g, opts);
  const std::string path = ::testing::TempDir() + "/rs_pre_test.bin";
  save_preprocessing_file(pre, path);
  const PreprocessResult loaded = load_preprocessing_file(path);
  EXPECT_EQ(loaded.graph, pre.graph);
  EXPECT_THROW(load_preprocessing_file("/nonexistent/x.bin"),
               std::runtime_error);
}

TEST(SsspEngine, RejectsMismatchedPreprocessing) {
  const Graph g = gen::chain(10);
  const Graph other = gen::chain(12);
  PreprocessOptions opts;
  opts.rho = 4;
  const PreprocessResult pre = preprocess(g, opts);
  EXPECT_THROW(SsspEngine(other, pre), std::invalid_argument);
}

}  // namespace
}  // namespace rs
