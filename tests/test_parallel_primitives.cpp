#include "parallel/primitives.hpp"

#include <atomic>
#include <numeric>
#include <random>
#include <thread>

#include <gtest/gtest.h>

#include "parallel/rng.hpp"
#include "parallel/write_min.hpp"

namespace rs {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelReduce, SumMatchesSequential) {
  const std::size_t n = 250'000;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i * 7 + 1;
  const std::uint64_t expect =
      std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  const std::uint64_t got =
      parallel_sum<std::uint64_t>(0, n, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(got, expect);
}

TEST(ParallelReduce, MinFindsGlobalMinimum) {
  const std::size_t n = 99'991;
  SplitRng rng(3);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.get(0, i);
  const std::uint64_t expect = *std::min_element(v.begin(), v.end());
  EXPECT_EQ(parallel_min(std::size_t{0}, n, ~std::uint64_t{0},
                         [&](std::size_t i) { return v[i]; }),
            expect);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  EXPECT_EQ(parallel_sum<int>(10, 10, [](std::size_t) { return 1; }), 0);
}

class ScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanTest, ExclusiveScanMatchesSequential) {
  const std::size_t n = GetParam();
  SplitRng rng(n);
  std::vector<std::uint64_t> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.bounded(1, i, 100);
  std::vector<std::uint64_t> expect(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc += in[i];
  }
  std::vector<std::uint64_t> out;
  const std::uint64_t total = exclusive_scan(in, out);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 100, 4096, 100'000,
                                           1'000'003));

TEST(Scan, InPlaceAliasing) {
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5};
  const std::uint64_t total = exclusive_scan(v, v);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Pack, KeepsPredicateOrder) {
  const std::size_t n = 50'000;
  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), 0);
  const auto out = pack(in, [&](std::size_t i) { return in[i] % 3 == 0; });
  ASSERT_FALSE(out.empty());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i] % 3, 0);
    if (i > 0) {
      EXPECT_LT(out[i - 1], out[i]);
    }
  }
  EXPECT_EQ(out.size(), (n + 2) / 3);
}

TEST(PackIndex, MatchesManualFilter) {
  const std::size_t n = 10'000;
  const auto out = pack_index(n, [](std::size_t i) { return i % 7 == 1; });
  std::vector<std::uint32_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 1) expect.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(out, expect);
}

class SortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortTest, MatchesStdSort) {
  const std::size_t n = GetParam();
  SplitRng rng(n + 17);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.get(0, i);
  std::vector<std::uint64_t> expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0, 1, 2, 1000, 16'384, 300'000));

TEST(Sort, CustomComparator) {
  std::vector<int> v{5, 3, 9, 1};
  parallel_sort(v, std::greater<int>{});
  EXPECT_EQ(v, (std::vector<int>{9, 5, 3, 1}));
}

TEST(WriteMin, LowersAndRejects) {
  std::atomic<std::uint64_t> cell{100};
  EXPECT_TRUE(write_min(cell, std::uint64_t{50}));
  EXPECT_EQ(cell.load(), 50u);
  EXPECT_FALSE(write_min(cell, std::uint64_t{50}));
  EXPECT_FALSE(write_min(cell, std::uint64_t{70}));
  EXPECT_EQ(cell.load(), 50u);
}

TEST(WriteMin, ConcurrentWritersConvergeToMinimum) {
  std::atomic<std::uint64_t> cell{~std::uint64_t{0}};
  std::atomic<int> successes{0};
  const int writers = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        if (write_min(cell, std::uint64_t(t * 1000 + i))) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cell.load(), 0u);  // thread 0 iteration 0
  // Each success strictly lowers the value, so successes are bounded by the
  // number of distinct values and at least 1.
  EXPECT_GE(successes.load(), 1);
}

TEST(WriteMax, RaisesOnly) {
  std::atomic<std::uint32_t> cell{10};
  EXPECT_TRUE(write_max(cell, 20u));
  EXPECT_FALSE(write_max(cell, 15u));
  EXPECT_EQ(cell.load(), 20u);
}

TEST(PackedMin, RoundTripsPriorityAndPayload) {
  const std::uint64_t p = (1ull << 39) + 12345;
  const std::uint32_t payload = (1u << 23) + 99;
  const std::uint64_t packed = PackedMin::pack(p, payload);
  EXPECT_EQ(PackedMin::priority(packed), p);
  EXPECT_EQ(PackedMin::payload(packed), payload);
}

TEST(PackedMin, OrdersByPriorityFirst) {
  EXPECT_LT(PackedMin::pack(1, 0xffffff), PackedMin::pack(2, 0));
  EXPECT_LT(PackedMin::pack(5, 3), PackedMin::pack(5, 4));
}

TEST(SplitRng, DeterministicAndSeedSensitive) {
  SplitRng a(42);
  SplitRng b(42);
  SplitRng c(43);
  EXPECT_EQ(a.get(1, 2), b.get(1, 2));
  EXPECT_NE(a.get(1, 2), c.get(1, 2));
  EXPECT_NE(a.get(1, 2), a.get(1, 3));
  EXPECT_NE(a.get(1, 2), a.get(2, 2));
}

TEST(SplitRng, BoundedStaysInRangeAndIsRoughlyUniform) {
  SplitRng rng(7);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v =
        rng.bounded(0, static_cast<std::uint64_t>(i), bound);
    ASSERT_LT(v, bound);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_GT(c, trials / 20);  // each bucket within 2x of fair share
    EXPECT_LT(c, trials / 5);
  }
}

TEST(SplitRng, UniformInUnitInterval) {
  SplitRng rng(9);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(0, static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Workers, SetAndRestore) {
  const int before = num_workers();
  set_num_workers(2);
  EXPECT_EQ(num_workers(), 2);
  set_num_workers(0);  // clamps to 1
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(before);
}

TEST(Env, Int64FallbackAndParse) {
  EXPECT_EQ(env_int64("RS_TEST_UNSET_VAR_XYZ", 17), 17);
  ::setenv("RS_TEST_VAR_ABC", "123", 1);
  EXPECT_EQ(env_int64("RS_TEST_VAR_ABC", 0), 123);
  ::setenv("RS_TEST_VAR_ABC", "garbage", 1);
  EXPECT_EQ(env_int64("RS_TEST_VAR_ABC", 5), 5);
  ::unsetenv("RS_TEST_VAR_ABC");
}

TEST(Env, EmptyValueFallsBack) {
  // CI sets RS_THREADS="" for the default-thread matrix leg; an empty
  // value must behave exactly like an unset variable.
  ::setenv("RS_TEST_VAR_EMPTY", "", 1);
  EXPECT_EQ(env_int64("RS_TEST_VAR_EMPTY", 31), 31);
  EXPECT_EQ(env_string("RS_TEST_VAR_EMPTY", "dflt"), "dflt");
  ::unsetenv("RS_TEST_VAR_EMPTY");
}

TEST(Env, StringFallback) {
  EXPECT_EQ(env_string("RS_TEST_UNSET_VAR_XYZ", "dflt"), "dflt");
  ::setenv("RS_TEST_VAR_STR", "hello", 1);
  EXPECT_EQ(env_string("RS_TEST_VAR_STR", "dflt"), "hello");
  ::unsetenv("RS_TEST_VAR_STR");
}

TEST(Env, WorkerCountParsing) {
  // Unset / empty fall back silently (the CI default-thread leg).
  EXPECT_EQ(parse_worker_count(nullptr, 7), 7);
  EXPECT_EQ(parse_worker_count("", 7), 7);

  // Valid counts, including leading whitespace/sign strtoll accepts and
  // the inclusive upper bound.
  EXPECT_EQ(parse_worker_count("1", 7), 1);
  EXPECT_EQ(parse_worker_count("4", 7), 4);
  EXPECT_EQ(parse_worker_count(" 12", 7), 12);
  EXPECT_EQ(parse_worker_count("+8", 7), 8);
  EXPECT_EQ(parse_worker_count("8192", 7), kMaxWorkers);

  // Garbage and trailing junk are rejected, not half-parsed: "12abc" used
  // to silently run with 12 workers.
  EXPECT_EQ(parse_worker_count("garbage", 7), 7);
  EXPECT_EQ(parse_worker_count("12abc", 7), 7);
  EXPECT_EQ(parse_worker_count("4 4", 7), 7);
  EXPECT_EQ(parse_worker_count("3.5", 7), 7);

  // Non-positive, out-of-range, and overflowing values all fall back.
  EXPECT_EQ(parse_worker_count("0", 7), 7);
  EXPECT_EQ(parse_worker_count("-3", 7), 7);
  EXPECT_EQ(parse_worker_count("8193", 7), 7);
  EXPECT_EQ(parse_worker_count("99999999999999999999999", 7), 7);
  EXPECT_EQ(parse_worker_count("-99999999999999999999999", 7), 7);
}

}  // namespace
}  // namespace rs
