// Batch-serving equivalence suite: query_batch's two-level scheduler and
// the reusable QueryContext must be invisible to callers — batched results
// bit-identical to sequential per-source queries, warm contexts identical
// to fresh ones, sequential engine twins identical to the parallel ones —
// over the weighted suite AND the adversarial (directed / self-loop /
// multigraph) palette, at several worker counts.
#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/bfs.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/query_context.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/context_pool.hpp"
#include "parallel/primitives.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// Restores the global worker count on scope exit.
struct WorkerGuard {
  int before = num_workers();
  ~WorkerGuard() { set_num_workers(before); }
};

/// Engine wrapper that skips preprocessing (constant radii, no shortcuts)
/// so directed/multigraph inputs stay exactly as built.
SsspEngine raw_engine(const Graph& g) {
  PreprocessResult pre;
  pre.graph = g;
  pre.radius = constant_radii(g.num_vertices(), 25);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  return SsspEngine(g, std::move(pre));
}

std::vector<Vertex> spread_sources(const Graph& g, std::size_t count) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>((i * n) / count));
  }
  return out;
}

TEST(QueryBatch, MatchesSequentialQueriesOnWeightedSuite) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::weighted_suite(11)) {
    PreprocessOptions opts;
    opts.rho = 10;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const std::vector<Vertex> sources = spread_sources(g, 8);

    std::vector<QueryResult> ref;
    for (const Vertex s : sources) ref.push_back(engine.query(s));

    // 1 worker: sequential-twin batch loop; 3 workers: batch narrower than
    // 8 sources -> source-parallel; 8+: dynamic schedule with idle workers.
    for (const int nw : {1, 3, 8}) {
      set_num_workers(nw);
      const auto batch = engine.query_batch(sources);
      ASSERT_EQ(batch.size(), sources.size());
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(batch[i].source, sources[i]);
        EXPECT_EQ(batch[i].dist, ref[i].dist)
            << name << " nw=" << nw << " source " << sources[i];
        // The step sequence is schedule-independent (WriteMin), so stats
        // that count set sizes must match the fresh sequential query too.
        EXPECT_EQ(batch[i].stats.steps, ref[i].stats.steps) << name;
        EXPECT_EQ(batch[i].stats.settled, ref[i].stats.settled) << name;
      }
    }
  }
}

TEST(QueryBatch, MatchesSequentialQueriesOnAdversarialSuite) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::adversarial_suite(5)) {
    const SsspEngine engine = raw_engine(g);
    const std::vector<Vertex> sources = spread_sources(g, 6);
    std::vector<QueryResult> ref;
    for (const Vertex s : sources) ref.push_back(engine.query(s));
    for (const int nw : {1, 4}) {
      set_num_workers(nw);
      const auto batch = engine.query_batch(sources);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(batch[i].dist, ref[i].dist) << name << " nw=" << nw;
        EXPECT_EQ(batch[i].dist, dijkstra(g, sources[i])) << name;
      }
    }
  }
}

TEST(QueryBatch, UnweightedEngineBatchMatches) {
  WorkerGuard guard;
  const Graph g = gen::grid2d(18, 15);
  PreprocessOptions opts;
  opts.rho = 8;
  opts.heuristic = ShortcutHeuristic::kNone;
  const SsspEngine engine(g, opts);
  const std::vector<Vertex> sources = spread_sources(g, 6);
  std::vector<QueryResult> ref;
  for (const Vertex s : sources) {
    ref.push_back(engine.query(s, QueryEngine::kUnweighted));
  }
  for (const int nw : {1, 4}) {
    set_num_workers(nw);
    const auto batch = engine.query_batch(sources, QueryEngine::kUnweighted);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(batch[i].dist, ref[i].dist) << "nw=" << nw;
      EXPECT_EQ(batch[i].stats.steps, ref[i].stats.steps);
    }
  }
}

TEST(QueryBatch, BstEnginesBatchMatchesSequentialAcrossWorkers) {
  // kBst now runs through the same two-level scheduler as the flat engine,
  // on both ordered-set substrates, with per-worker warm contexts. Batched
  // results must be bit-identical to fresh per-source queries, and the
  // schedule-independent stats must survive the sequential twin.
  WorkerGuard guard;
  for (const QueryEngine qe : {QueryEngine::kBst, QueryEngine::kBstFlat}) {
    for (const auto& [name, g] : test::weighted_suite(11)) {
      PreprocessOptions opts;
      opts.rho = 10;
      opts.k = 2;
      const SsspEngine engine(g, opts);
      const std::vector<Vertex> sources = spread_sources(g, 6);

      std::vector<QueryResult> ref;
      for (const Vertex s : sources) ref.push_back(engine.query(s, qe));

      for (const int nw : {1, 3, 8}) {
        set_num_workers(nw);
        const auto batch = engine.query_batch(sources, qe);
        ASSERT_EQ(batch.size(), sources.size());
        for (std::size_t i = 0; i < sources.size(); ++i) {
          EXPECT_EQ(batch[i].source, sources[i]);
          EXPECT_EQ(batch[i].dist, ref[i].dist)
              << name << " nw=" << nw << " source " << sources[i];
          EXPECT_EQ(batch[i].stats.steps, ref[i].stats.steps) << name;
          EXPECT_EQ(batch[i].stats.settled, ref[i].stats.settled) << name;
        }
      }
    }
  }
}

TEST(QueryBatch, BstBatchExactOnAdversarialSuite) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::adversarial_suite(9)) {
    const SsspEngine engine = raw_engine(g);
    const std::vector<Vertex> sources = spread_sources(g, 5);
    for (const int nw : {1, 4}) {
      set_num_workers(nw);
      for (const QueryEngine qe :
           {QueryEngine::kBst, QueryEngine::kBstFlat}) {
        const auto batch = engine.query_batch(sources, qe);
        for (std::size_t i = 0; i < sources.size(); ++i) {
          EXPECT_EQ(batch[i].dist, dijkstra(g, sources[i]))
              << name << " nw=" << nw;
        }
      }
    }
  }
}

TEST(QueryContext, BstContextReuseAcrossEnginesAndGraphSizes) {
  // One context serves kBst (treap arena), kBstFlat, and kFlat queries
  // interleaved, across graphs of different sizes, warm the whole time.
  QueryContext ctx;
  for (const auto& [name, g] : test::weighted_suite(29)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const auto ref = engine.query(1);
    EXPECT_EQ(engine.query(1, QueryEngine::kBst, ctx).dist, ref.dist) << name;
    EXPECT_EQ(engine.query(1, QueryEngine::kBstFlat, ctx).dist, ref.dist)
        << name;
    EXPECT_EQ(engine.query(1, QueryEngine::kFlat, ctx).dist, ref.dist)
        << name;
    // Re-query through the used context, sequential mode.
    ctx.set_sequential(true);
    const auto again = engine.query(1, QueryEngine::kBst, ctx);
    EXPECT_EQ(again.dist, ref.dist) << name;
    EXPECT_EQ(again.stats.steps, ref.stats.steps) << name;
    ctx.set_sequential(false);
  }
}

TEST(QueryContext, BstSequentialTwinMatchesParallelEngine) {
  WorkerGuard guard;
  set_num_workers(4);
  for (const auto& [name, g] : test::weighted_suite(37)) {
    const auto radius = all_radii(g, 8);
    RunStats par_stats, seq_stats;
    const auto par = radius_stepping_bst(g, 1, radius, &par_stats);

    QueryContext ctx;
    ctx.set_sequential(true);
    std::vector<Dist> seq;
    radius_stepping_bst(g, 1, radius, ctx, seq, &seq_stats);
    EXPECT_EQ(seq, par) << name;
    EXPECT_EQ(seq_stats.steps, par_stats.steps) << name;
    EXPECT_EQ(seq_stats.settled, par_stats.settled) << name;
    // The treap arena recycled every node once the query finished.
    EXPECT_EQ(ctx.tree_arena().free_nodes(), ctx.tree_arena().total_nodes())
        << name;
  }
}

TEST(QueryBatch, EmptyBatchAndValidation) {
  const Graph g = assign_uniform_weights(gen::grid2d(6, 6), 1, 1, 9);
  PreprocessOptions opts;
  opts.rho = 6;
  const SsspEngine engine(g, opts);
  EXPECT_TRUE(engine.query_batch({}).empty());
  // Bad sources throw up front, before any parallel work starts.
  EXPECT_THROW(engine.query_batch({0, g.num_vertices()}),
               std::invalid_argument);
  // The unweighted guard also fires for batches (weighted graph here).
  EXPECT_THROW(engine.query_batch({0}, QueryEngine::kUnweighted),
               std::invalid_argument);
}

TEST(QueryContext, ReuseMatchesFreshContexts) {
  const auto suite = test::weighted_suite(23);
  const auto& g = suite[0].graph;
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  const SsspEngine engine(g, opts);

  // Two queries through ONE warm context == two fresh-context queries.
  QueryContext ctx;
  const auto warm_a = engine.query(0, QueryEngine::kFlat, ctx);
  const auto warm_b =
      engine.query(g.num_vertices() / 2, QueryEngine::kFlat, ctx);
  EXPECT_EQ(warm_a.dist, engine.query(0).dist);
  EXPECT_EQ(warm_b.dist, engine.query(g.num_vertices() / 2).dist);
  // Re-querying the first source through the used context still matches.
  EXPECT_EQ(engine.query(0, QueryEngine::kFlat, ctx).dist, warm_a.dist);
}

TEST(QueryContext, ReuseAcrossGraphsOfDifferentSizes) {
  QueryContext ctx;
  for (const auto& [name, g] : test::weighted_suite(31)) {
    const auto radius = constant_radii(g.num_vertices(), 40);
    std::vector<Dist> got;
    radius_stepping(g, 0, radius, ctx, got);
    EXPECT_EQ(got, dijkstra(g, 0)) << name;
  }
  // And shrink back to a tiny graph after the big ones.
  const Graph tiny = assign_uniform_weights(gen::chain(5), 2, 1, 4);
  std::vector<Dist> got;
  radius_stepping(tiny, 0, constant_radii(5, 3), ctx, got);
  EXPECT_EQ(got, dijkstra(tiny, 0));
}

TEST(QueryContext, SequentialTwinMatchesParallelEngine) {
  WorkerGuard guard;
  set_num_workers(4);
  for (const auto& [name, g] : test::weighted_suite(17)) {
    const auto radius = all_radii(g, 8);
    RunStats par_stats, seq_stats;
    const auto par = radius_stepping(g, 1, radius, &par_stats);

    QueryContext ctx;
    ctx.set_sequential(true);
    std::vector<Dist> seq;
    radius_stepping(g, 1, radius, ctx, seq, &seq_stats);
    EXPECT_EQ(seq, par) << name;
    // Steps and settled counts are schedule-independent; substep counts
    // are not (chaotic relaxation converges at an order-dependent rate),
    // so only the k+2-style bound relation is comparable across modes.
    EXPECT_EQ(seq_stats.steps, par_stats.steps) << name;
    EXPECT_EQ(seq_stats.settled, par_stats.settled) << name;
    EXPECT_GE(seq_stats.substeps, seq_stats.steps) << name;
  }
}

TEST(QueryContext, SequentialUnweightedTwinMatches) {
  WorkerGuard guard;
  set_num_workers(4);
  for (const auto& [name, g] : test::unweighted_suite(19)) {
    const auto radius = all_radii(g, 6);
    RunStats par_stats, seq_stats;
    const auto par = radius_stepping_unweighted(g, 0, radius, &par_stats);
    QueryContext ctx;
    ctx.set_sequential(true);
    std::vector<Dist> seq;
    radius_stepping_unweighted(g, 0, radius, ctx, seq, &seq_stats);
    EXPECT_EQ(seq, par) << name;
    EXPECT_EQ(seq_stats.steps, par_stats.steps) << name;
    EXPECT_EQ(seq_stats.settled, par_stats.settled) << name;
  }
}

TEST(QueryContext, BaselinesReuseOneContext) {
  QueryContext ctx;
  for (const auto& [name, g] : test::weighted_suite(41)) {
    const Vertex n = g.num_vertices();
    for (const Vertex s : {Vertex{0}, static_cast<Vertex>(n - 1)}) {
      const auto ref = dijkstra(g, s);
      std::vector<Dist> got;
      dijkstra(g, s, ctx, got);
      EXPECT_EQ(got, ref) << name << " dijkstra src " << s;
      std::size_t rounds_fresh = 0, rounds_ctx = 0;
      const auto bf_ref = bellman_ford(g, s, &rounds_fresh);
      bellman_ford(g, s, ctx, got, &rounds_ctx);
      EXPECT_EQ(got, bf_ref) << name;
      EXPECT_EQ(rounds_ctx, rounds_fresh) << name;
      delta_stepping(g, s, ctx, got);
      EXPECT_EQ(got, ref) << name << " delta src " << s;
    }
  }
  for (const auto& [name, g] : test::unweighted_suite(43)) {
    std::size_t rounds_fresh = 0, rounds_ctx = 0;
    const auto ref = bfs(g, 2, &rounds_fresh);
    std::vector<Dist> got;
    bfs(g, 2, ctx, got, &rounds_ctx);
    EXPECT_EQ(got, ref) << name;
    EXPECT_EQ(rounds_ctx, rounds_fresh) << name;
  }
}

TEST(QueryContext, BaselinesExactOnAdversarialSuite) {
  QueryContext ctx;
  ctx.set_sequential(true);
  for (const auto& [name, g] : test::adversarial_suite(7)) {
    const auto ref = dijkstra(g, 1);
    std::vector<Dist> got;
    dijkstra(g, 1, ctx, got);
    EXPECT_EQ(got, ref) << name;
    bellman_ford(g, 1, ctx, got);
    EXPECT_EQ(got, ref) << name;
    delta_stepping(g, 1, ctx, got);
    EXPECT_EQ(got, ref) << name;
  }
}

TEST(WorkerPool, SlotsAreLazyAndStable) {
  WorkerPool<QueryContext> pool;
  EXPECT_EQ(pool.size(), 0u);
  pool.ensure(2);
  ASSERT_EQ(pool.size(), 2u);
  QueryContext* first = &pool.at(0);
  first->reserve(100);
  pool.ensure(5);
  EXPECT_EQ(pool.size(), 5u);
  // Growth must not move existing slots (workers hold references).
  EXPECT_EQ(&pool.at(0), first);
  EXPECT_EQ(pool.at(0).capacity(), 100u);
  pool.ensure(3);  // never shrinks
  EXPECT_EQ(pool.size(), 5u);
}

}  // namespace
}  // namespace rs
