#include "pset/treap.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/rng.hpp"

namespace rs {
namespace {

using IntTreap = Treap<std::uint64_t>;
using PairTreap = Treap<std::pair<std::uint64_t, std::uint32_t>>;

TEST(Treap, InsertContainsErase) {
  IntTreap t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert(5));
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.insert(8));
  EXPECT_FALSE(t.insert(5));  // duplicate
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
}

TEST(Treap, MinAndExtractMin) {
  IntTreap t;
  for (const std::uint64_t k : {9, 2, 7, 4}) t.insert(k);
  EXPECT_EQ(t.min(), 2u);
  EXPECT_EQ(t.extract_min(), 2u);
  EXPECT_EQ(t.extract_min(), 4u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Treap, ToVectorIsSorted) {
  IntTreap t;
  SplitRng rng(1);
  for (int i = 0; i < 1000; ++i) t.insert(rng.bounded(0, i, 10000));
  const auto v = t.to_vector();
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_TRUE(std::adjacent_find(v.begin(), v.end()) == v.end());  // unique
  EXPECT_EQ(v.size(), t.size());
}

TEST(Treap, SplitLeqPartitionsByPivot) {
  IntTreap t;
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k * 2);  // evens 0..198
  IntTreap lo = t.split_leq(50);
  const auto lo_v = lo.to_vector();
  const auto hi_v = t.to_vector();
  EXPECT_EQ(lo_v.size(), 26u);  // 0,2,...,50
  EXPECT_EQ(hi_v.size(), 74u);
  EXPECT_EQ(lo_v.back(), 50u);
  EXPECT_EQ(hi_v.front(), 52u);
}

TEST(Treap, SplitLeqOnBoundaryValues) {
  IntTreap t;
  t.insert(10);
  IntTreap below = t.split_leq(9);
  EXPECT_TRUE(below.empty());
  EXPECT_EQ(t.size(), 1u);
  IntTreap at = t.split_leq(10);
  EXPECT_EQ(at.size(), 1u);
  EXPECT_TRUE(t.empty());
}

TEST(Treap, FromSortedBuildsEquivalentSet) {
  std::vector<std::uint64_t> keys(10'000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 3 * i + 1;
  IntTreap t = IntTreap::from_sorted(keys);
  EXPECT_EQ(t.size(), keys.size());
  EXPECT_EQ(t.to_vector(), keys);
}

TEST(Treap, CanonicalShapeIndependentOfInsertionOrder) {
  // Hash priorities make the shape a function of the key set; height must
  // agree however the set was built.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 2000; ++k) keys.push_back(k * 7 + 3);
  IntTreap a = IntTreap::from_sorted(keys);
  IntTreap b;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) b.insert(*it);
  EXPECT_EQ(a.height(), b.height());
  EXPECT_EQ(a.to_vector(), b.to_vector());
}

TEST(Treap, HeightIsLogarithmic) {
  const std::size_t n = 100'000;
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = i;
  IntTreap t = IntTreap::from_sorted(keys);
  // Random treap height concentrates near 2.99 log2 n; allow slack.
  EXPECT_LE(t.height(), static_cast<std::size_t>(6 * std::log2(double(n))));
}

struct SetOpCase {
  std::size_t size_a;
  std::size_t size_b;
  std::uint64_t seed;
};

class TreapSetOpTest : public ::testing::TestWithParam<SetOpCase> {};

TEST_P(TreapSetOpTest, UnionMatchesStdSet) {
  const auto [na, nb, seed] = GetParam();
  SplitRng rng(seed);
  std::set<std::uint64_t> sa, sb;
  IntTreap ta, tb;
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint64_t k = rng.bounded(0, i, 4 * (na + nb) + 1);
    sa.insert(k);
    ta.insert(k);
  }
  for (std::size_t i = 0; i < nb; ++i) {
    const std::uint64_t k = rng.bounded(1, i, 4 * (na + nb) + 1);
    sb.insert(k);
    tb.insert(k);
  }
  std::set<std::uint64_t> expect = sa;
  expect.insert(sb.begin(), sb.end());
  ta.union_with(std::move(tb));
  EXPECT_EQ(ta.to_vector(),
            std::vector<std::uint64_t>(expect.begin(), expect.end()));
  EXPECT_TRUE(tb.empty());
}

TEST_P(TreapSetOpTest, DifferenceMatchesStdSet) {
  const auto [na, nb, seed] = GetParam();
  SplitRng rng(seed + 1000);
  std::set<std::uint64_t> sa, sb;
  IntTreap ta, tb;
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint64_t k = rng.bounded(0, i, 2 * (na + nb) + 1);
    sa.insert(k);
    ta.insert(k);
  }
  for (std::size_t i = 0; i < nb; ++i) {
    const std::uint64_t k = rng.bounded(1, i, 2 * (na + nb) + 1);
    sb.insert(k);
    tb.insert(k);
  }
  std::vector<std::uint64_t> expect;
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::back_inserter(expect));
  ta.subtract(std::move(tb));
  EXPECT_EQ(ta.to_vector(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreapSetOpTest,
    ::testing::Values(SetOpCase{0, 0, 1}, SetOpCase{10, 0, 2},
                      SetOpCase{0, 10, 3}, SetOpCase{100, 100, 4},
                      SetOpCase{1000, 10, 5}, SetOpCase{10, 1000, 6},
                      SetOpCase{5000, 5000, 7}, SetOpCase{20000, 20000, 8}));

TEST(Treap, UnionWithOverlapDropsDuplicates) {
  IntTreap a, b;
  for (std::uint64_t k = 0; k < 100; ++k) a.insert(k);
  for (std::uint64_t k = 50; k < 150; ++k) b.insert(k);
  a.union_with(std::move(b));
  EXPECT_EQ(a.size(), 150u);
}

TEST(Treap, PairKeysOrderLexicographically) {
  PairTreap t;
  t.insert({5, 2});
  t.insert({5, 1});
  t.insert({3, 9});
  EXPECT_EQ(t.min(), (std::pair<std::uint64_t, std::uint32_t>{3, 9}));
  PairTreap lo = t.split_leq({5, 1});
  EXPECT_EQ(lo.size(), 2u);  // (3,9) and (5,1)
  EXPECT_EQ(t.size(), 1u);   // (5,2)
}

TEST(Treap, MoveSemantics) {
  IntTreap a;
  a.insert(1);
  a.insert(2);
  IntTreap b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): defined state
  IntTreap c;
  c.insert(99);
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(99));
}

TEST(TreapArena, BulkOpsMatchStdSetOracleAndKeepBalance) {
  // Arena-backed split/union/subtract/from_sorted against a std::set
  // oracle, across many rounds sharing ONE arena — the exact op mix the
  // kBst engine drives per substep.
  TreapArena<std::uint64_t> arena;
  SplitRng rng(7);
  std::uint64_t op = 0;
  for (int round = 0; round < 40; ++round) {
    std::set<std::uint64_t> ref;
    IntTreap t(&arena);
    const std::size_t n = 50 + 40 * static_cast<std::size_t>(round);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = rng.bounded(0, op++, 4 * n);
      t.insert(k);
      ref.insert(k);
    }
    // split_leq at a random pivot.
    const std::uint64_t pivot = rng.bounded(1, op++, 4 * n);
    IntTreap lo = t.split_leq(pivot);
    std::vector<std::uint64_t> lo_ref, hi_ref;
    for (const auto k : ref) (k <= pivot ? lo_ref : hi_ref).push_back(k);
    ASSERT_EQ(lo.to_vector(), lo_ref);
    ASSERT_EQ(t.to_vector(), hi_ref);
    // union back via from_sorted (arena build), then subtract a slice.
    lo.union_with(IntTreap::from_sorted(hi_ref, &arena));
    std::vector<std::uint64_t> all(ref.begin(), ref.end());
    ASSERT_EQ(lo.to_vector(), all);
    std::vector<std::uint64_t> cut(all.begin(),
                                   all.begin() + all.size() / 2);
    lo.subtract(IntTreap::from_sorted(cut, &arena));
    ASSERT_EQ(lo.to_vector(), std::vector<std::uint64_t>(
                                  all.begin() + all.size() / 2, all.end()));
    // Height stays logarithmic (hash priorities, canonical shape).
    if (lo.size() >= 16) {
      EXPECT_LE(lo.height(), static_cast<std::size_t>(
                                 6 * std::log2(double(lo.size()))));
    }
    t = IntTreap(&arena);  // drop remaining nodes back to the pool
  }
  // Everything was released: the pool holds every node it ever carved.
  EXPECT_EQ(arena.free_nodes(), arena.total_nodes());
}

TEST(TreapArena, RecyclesNodesInsteadOfGrowing) {
  TreapArena<std::uint64_t> arena;
  std::vector<std::uint64_t> keys(2000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 3 * i;
  {
    IntTreap warm = IntTreap::from_sorted(keys, &arena);
  }
  const std::size_t high_water = arena.total_nodes();
  EXPECT_GE(high_water, keys.size());
  // Steady-state churn at the same working-set size must not grow the
  // pool: every build pops recycled nodes off the freelist.
  for (int round = 0; round < 10; ++round) {
    IntTreap t = IntTreap::from_sorted(keys, &arena);
    IntTreap half = t.split_leq(keys[keys.size() / 2]);
    t.union_with(std::move(half));
    EXPECT_EQ(t.size(), keys.size());
  }
  EXPECT_EQ(arena.total_nodes(), high_water);
  EXPECT_EQ(arena.free_nodes(), high_water);
}

TEST(TreapArena, EraseAndSubtractSpliceSkeletonsBack) {
  TreapArena<std::uint64_t> arena;
  IntTreap a(&arena), b(&arena);
  for (std::uint64_t k = 0; k < 500; ++k) a.insert(k);
  for (std::uint64_t k = 250; k < 750; ++k) b.insert(k);
  const std::size_t carved = arena.total_nodes();
  EXPECT_EQ(carved, 1000u);
  a.subtract(std::move(b));  // consumes b AND returns its skeleton
  EXPECT_EQ(a.size(), 250u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): defined state
  EXPECT_EQ(arena.free_nodes(), carved - a.size());
  for (std::uint64_t k = 0; k < 250; ++k) EXPECT_TRUE(a.erase(k));
  EXPECT_EQ(arena.free_nodes(), carved);
  EXPECT_EQ(arena.total_nodes(), carved);
}

TEST(TreapArenaPool, ParallelBulkOpsRecycleThroughWorkerArenas) {
  // Pool-backed treaps keep the task-parallel bulk-op recursion (unlike
  // single-arena treaps, which force it sequential): sets well past
  // kParallelCutoff exercise the parallel union/subtract/build paths with
  // every acquire/release going to the executing thread's own freelist.
  // Results must match the arena-less treap, and every node must come
  // home after release.
  TreapArenaPool<std::uint64_t> pool;
  pool.ensure(static_cast<std::size_t>(omp_get_max_threads()));
  std::vector<std::uint64_t> evens, odds, all;
  const std::size_t n = 20'000;  // ~5x the parallel cutoff
  for (std::uint64_t k = 0; k < n; ++k) {
    (k % 2 == 0 ? evens : odds).push_back(k);
    all.push_back(k);
  }
  for (int round = 0; round < 4; ++round) {
    IntTreap a = IntTreap::from_sorted(evens, &pool);
    IntTreap b = IntTreap::from_sorted(odds, &pool);
    a.union_with(std::move(b));
    ASSERT_EQ(a.size(), n);
    ASSERT_EQ(a.to_vector(), all);
    a.subtract(IntTreap::from_sorted(odds, &pool));
    ASSERT_EQ(a.to_vector(), evens);
    IntTreap lo = a.split_leq(evens[evens.size() / 2]);
    ASSERT_EQ(lo.size() + a.size(), evens.size());
  }
  // Every carved node was released back to some worker's freelist.
  EXPECT_EQ(pool.free_nodes(), pool.total_nodes());
  EXPECT_GE(pool.total_nodes(), n);
}

TEST(TreapArenaPool, SingleArenaViewStaysSequentialAndCompatible) {
  // The sequential kBst twin uses arena 0 of the same pool: plain
  // arena-backed treaps over pool.arena(0) interoperate and recycle.
  TreapArenaPool<std::uint64_t> pool;
  pool.ensure(1);
  IntTreap a(&pool.arena(0));
  for (std::uint64_t k = 0; k < 100; ++k) a.insert(k);
  a.subtract(IntTreap::from_sorted({10, 11, 12}, &pool.arena(0)));
  EXPECT_EQ(a.size(), 97u);
  a = IntTreap(&pool.arena(0));
  EXPECT_EQ(pool.free_nodes(), pool.total_nodes());
}

TEST(Treap, StressMixedOperationsAgainstStdSet) {
  SplitRng rng(99);
  std::set<std::uint64_t> ref;
  IntTreap t;
  std::uint64_t op = 0;
  for (int round = 0; round < 20'000; ++round) {
    const std::uint64_t k = rng.bounded(0, op++, 500);
    switch (rng.bounded(1, op++, 3)) {
      case 0:
        EXPECT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        EXPECT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      default:
        EXPECT_EQ(t.contains(k), ref.count(k) > 0);
    }
    if (round % 4096 == 0 && !ref.empty()) {
      EXPECT_EQ(t.min(), *ref.begin());
    }
  }
  EXPECT_EQ(t.to_vector(), std::vector<std::uint64_t>(ref.begin(), ref.end()));
}

}  // namespace
}  // namespace rs
