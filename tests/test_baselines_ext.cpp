// Extended baselines: direction-optimizing BFS, parallel connected
// components, random geometric graphs, and the Ullman–Yannakakis hub
// shortcutting (the paper's Section-6 related-work technique).
#include <gtest/gtest.h>

#include "baseline/bfs.hpp"
#include "baseline/dijkstra.hpp"
#include "baseline/uy_shortcut.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

class DirOptBfsTest : public ::testing::TestWithParam<int> {};

TEST_P(DirOptBfsTest, MatchesPlainBfsEverywhere) {
  for (const auto& [name, g] : test::unweighted_suite(GetParam())) {
    std::size_t plain_rounds = 0;
    std::size_t opt_rounds = 0;
    const auto plain = bfs(g, 0, &plain_rounds);
    const auto opt = bfs_direction_optimizing(g, 0, &opt_rounds);
    EXPECT_EQ(opt, plain) << name;
    EXPECT_EQ(opt_rounds, plain_rounds) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirOptBfsTest, ::testing::Range(1, 4));

TEST(DirOptBfs, ForcedBottomUpStillCorrect) {
  // alpha = 0 forces bottom-up from round one.
  const Graph g = gen::barabasi_albert(2000, 5, 9);
  EXPECT_EQ(bfs_direction_optimizing(g, 3, nullptr, 0.0), bfs(g, 3));
}

TEST(DirOptBfs, ForcedTopDownStillCorrect) {
  // alpha = 1 never switches.
  const Graph g = gen::grid2d(30, 30);
  EXPECT_EQ(bfs_direction_optimizing(g, 7, nullptr, 1.0), bfs(g, 7));
}

TEST(ParallelCC, MatchesSequentialPartition) {
  const Graph g = gen::erdos_renyi(2000, 2200, 11);  // several components
  const auto seq = connected_components(g);
  const auto par = connected_components_parallel(g);
  ASSERT_EQ(seq.size(), par.size());
  // Same partition: labels agree pairwise.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Vertex u : g.neighbors(v)) {
      EXPECT_EQ(par[u], par[v]);
    }
  }
  EXPECT_EQ(seq, par);  // identical densified numbering (first-seen order)
}

TEST(ParallelCC, SingleComponentAndIsolated) {
  const Graph connected = gen::grid2d(12, 12);
  const auto cc = connected_components_parallel(connected);
  for (const Vertex c : cc) EXPECT_EQ(c, 0u);

  const Graph isolated = build_graph(4, {});
  const auto iso = connected_components_parallel(isolated);
  EXPECT_EQ(iso, (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(RandomGeometric, StructureAndDeterminism) {
  const Graph g = gen::random_geometric(3000, 0.05, 5);
  EXPECT_EQ(g.num_vertices(), 3000u);
  EXPECT_GT(g.num_undirected_edges(), 3000u);  // well above a tree
  // Weights are scaled Euclidean lengths in [1, 1000].
  EXPECT_GE(g.min_weight(), 1u);
  EXPECT_LE(g.max_weight(), 1000u);
  EXPECT_EQ(g, gen::random_geometric(3000, 0.05, 5));
  EXPECT_NE(g, gen::random_geometric(3000, 0.05, 6));
}

TEST(RandomGeometric, ConnectivityAtWhpRadius) {
  // radius well above sqrt(2 ln n / (pi n)) => connected (fixed seed).
  const Vertex n = 2000;
  const double r = 0.08;
  const Graph g = largest_component(gen::random_geometric(n, r, 3));
  EXPECT_GT(g.num_vertices(), n * 95 / 100);
}

TEST(RandomGeometric, RejectsBadParameters) {
  EXPECT_THROW(gen::random_geometric(1, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_geometric(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_geometric(10, 1.5, 1), std::invalid_argument);
}

TEST(UYShortcut, ExactWithUnlimitedHops) {
  for (const auto& [name, g] : test::weighted_suite(2)) {
    const UYShortcutResult pre =
        uy_preprocess(g, std::max<Vertex>(2, g.num_vertices() / 10), 7,
                      /*hop_limit=*/g.num_vertices());
    const auto d = uy_query(pre, 0, g.num_vertices());
    EXPECT_EQ(d, dijkstra(g, 0)) << name;
  }
}

TEST(UYShortcut, AllHubsMakeQueriesTwoHops) {
  const Graph g = test::weighted_suite(3)[0].graph;
  const Vertex n = g.num_vertices();
  const UYShortcutResult pre = uy_preprocess(g, n, 1, n);
  std::size_t rounds = 0;
  const auto d = uy_query(pre, 5, /*hop_limit=*/2, &rounds);
  EXPECT_EQ(d, dijkstra(g, 5));
  EXPECT_LE(rounds, 2u);
}

TEST(UYShortcut, ShortcutsPreserveDistances) {
  const Graph g = test::weighted_suite(4)[2].graph;  // road
  const UYShortcutResult pre = uy_preprocess(g, 20, 5, g.num_vertices());
  EXPECT_GT(pre.added_edges, 0u);
  EXPECT_EQ(dijkstra(pre.graph, 0), dijkstra(g, 0));
  EXPECT_EQ(pre.hubs.size(), 20u);
}

TEST(UYShortcut, DefaultHopLimitIsExactOnSmallGraphs) {
  // The w.h.p. setting; verified deterministic-exact for these seeds.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = test::weighted_suite(seed)[0].graph;
    const UYShortcutResult pre = uy_preprocess(g, g.num_vertices() / 4, seed);
    EXPECT_EQ(uy_query(pre, 1), dijkstra(g, 1)) << seed;
  }
}

TEST(UYShortcut, RejectsBadParameters) {
  const Graph g = gen::chain(5);
  EXPECT_THROW(uy_preprocess(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(uy_preprocess(g, 6, 1), std::invalid_argument);
  const UYShortcutResult pre = uy_preprocess(g, 2, 1);
  EXPECT_THROW(uy_query(pre, 9), std::invalid_argument);
}

}  // namespace
}  // namespace rs
