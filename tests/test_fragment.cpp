// The fragment-partitioned substrate and its engine:
//
//  * Partition invariants — every vertex inner in exactly one fragment,
//    global<->local maps mutually inverse, contiguous sizes balanced —
//    for both modes, including F = 1 and F > n;
//  * FragmentedGraph covers every arc of the flat graph exactly once
//    (triple multisets equal) with consistent ghost tables, over the
//    weighted AND adversarial suites;
//  * the fragment engine's distances are BIT-IDENTICAL to the flat
//    engine's on every suite graph, for fragment counts {1, 2, 4, 8},
//    both partition modes, and worker counts {1, default, 8} — including
//    targeted serves with early termination, top-k, and serve_batch;
//  * kFragment requests are rejected (std::invalid_argument, not a
//    crash) when the engine was built without enable_fragments(), and
//    keep working across replace().
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_fragment.hpp"
#include "graph/fragment.hpp"
#include "graph/partition.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

struct WorkerGuard {
  int before = num_workers();
  ~WorkerGuard() { set_num_workers(before); }
};

SsspEngine raw_engine(const Graph& g, Dist r = 25) {
  PreprocessResult pre;
  pre.graph = g;
  pre.radius = constant_radii(g.num_vertices(), r);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  return SsspEngine(g, std::move(pre));
}

std::vector<Vertex> spread_targets(const Graph& g, std::size_t count) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>(((i + 1) * n) / (count + 1)));
  }
  return out;
}

std::vector<EdgeTriple> sorted_triples(std::vector<EdgeTriple> t) {
  std::sort(t.begin(), t.end(), [](const EdgeTriple& a, const EdgeTriple& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  return t;
}

// ---------------------------------------------------------------------------
// Partition

TEST(Partition, CoversEveryVertexExactlyOnceInBothModes) {
  for (const Vertex n : {Vertex{0}, Vertex{1}, Vertex{7}, Vertex{100}}) {
    for (const std::size_t f : {1u, 2u, 3u, 8u, 200u}) {
      for (const PartitionMode mode :
           {PartitionMode::kContiguous, PartitionMode::kHash}) {
        const Partition p = Partition::make(n, f, mode);
        EXPECT_EQ(p.num_vertices(), n);
        EXPECT_GE(p.num_fragments(), 1u);
        std::size_t covered = 0;
        for (std::size_t fr = 0; fr < p.num_fragments(); ++fr) {
          const auto& inner = p.inner(fr);
          EXPECT_TRUE(std::is_sorted(inner.begin(), inner.end()));
          for (std::size_t l = 0; l < inner.size(); ++l) {
            const Vertex v = inner[l];
            EXPECT_EQ(p.owner(v), fr);
            EXPECT_EQ(p.local_id(v), static_cast<Vertex>(l));
            EXPECT_EQ(p.global_id(fr, static_cast<Vertex>(l)), v);
          }
          covered += inner.size();
        }
        EXPECT_EQ(covered, static_cast<std::size_t>(n))
            << "n=" << n << " f=" << f;
      }
    }
  }
}

TEST(Partition, ContiguousRangesAreBalancedAndOrdered) {
  const Partition p = Partition::contiguous(103, 4);
  EXPECT_EQ(p.num_fragments(), 4u);
  std::size_t lo = 103 / 4, hi = lo + 1;
  Vertex next = 0;
  for (std::size_t f = 0; f < 4; ++f) {
    const auto& inner = p.inner(f);
    EXPECT_TRUE(inner.size() == lo || inner.size() == hi) << f;
    for (const Vertex v : inner) EXPECT_EQ(v, next++);  // contiguous ranges
  }
  EXPECT_EQ(next, 103u);
}

TEST(Partition, HashModeSpreadsVertices) {
  const Partition p = Partition::by_hash(1000, 8);
  for (std::size_t f = 0; f < 8; ++f) {
    // hash64 is close to uniform; a degenerate split would break this by
    // an order of magnitude.
    EXPECT_GT(p.fragment_size(f), 60u) << f;
    EXPECT_LT(p.fragment_size(f), 190u) << f;
  }
}

TEST(Partition, ParsesFragmentCountLikeWorkerCount) {
  EXPECT_EQ(parse_fragment_count(nullptr, 3), 3);
  EXPECT_EQ(parse_fragment_count("", 3), 3);
  EXPECT_EQ(parse_fragment_count("4", 3), 4);
  EXPECT_EQ(parse_fragment_count(" 12", 3), 12);
  EXPECT_EQ(parse_fragment_count("garbage", 3), 3);
  EXPECT_EQ(parse_fragment_count("0", 3), 3);
  EXPECT_EQ(parse_fragment_count("-2", 3), 3);
  EXPECT_GE(default_num_fragments(), 1);
}

// ---------------------------------------------------------------------------
// FragmentedGraph

TEST(FragmentedGraph, CoversEveryArcExactlyOnce) {
  for (const auto& suite :
       {test::weighted_suite(11), test::adversarial_suite(11)}) {
    for (const auto& [name, g] : suite) {
      const auto flat = sorted_triples(g.to_triples());
      for (const std::size_t f : {1u, 2u, 4u, 8u}) {
        for (const PartitionMode mode :
             {PartitionMode::kContiguous, PartitionMode::kHash}) {
          const FragmentedGraph fg(g, f, mode);
          EXPECT_EQ(fg.num_vertices(), g.num_vertices()) << name;
          EXPECT_EQ(fg.num_edges(), g.num_edges()) << name;
          EXPECT_EQ(sorted_triples(fg.to_triples()), flat)
              << name << " f=" << f;
        }
      }
    }
  }
}

TEST(FragmentedGraph, GhostTablesAreConsistent) {
  for (const auto& [name, g] : test::weighted_suite(12)) {
    const FragmentedGraph fg(g, 4, PartitionMode::kHash);
    const Partition& p = fg.partition();
    for (std::size_t f = 0; f < fg.num_fragments(); ++f) {
      const auto& frag = fg.fragment(f);
      EXPECT_EQ(frag.inner_global, p.inner(f)) << name;
      EXPECT_TRUE(std::is_sorted(frag.ghost_global.begin(),
                                 frag.ghost_global.end()))
          << name;
      for (Vertex i = 0; i < frag.num_ghosts(); ++i) {
        const Vertex v = frag.ghost_global[i];
        EXPECT_NE(p.owner(v), f) << name;  // a ghost is never inner here
        EXPECT_EQ(frag.ghost_owner[i], p.owner(v)) << name;
        // Universe index round-trips to the global id.
        EXPECT_EQ(frag.to_global(frag.num_inner() + i), v) << name;
      }
      // Every head is a valid universe index.
      for (const Vertex h : frag.heads) {
        EXPECT_LT(h, frag.num_inner() + frag.num_ghosts()) << name;
      }
    }
  }
}

TEST(FragmentedGraph, DefaultCountRespectsEnv) {
  const Graph g = test::weighted_suite(1)[0].graph;
  const FragmentedGraph fg(g, 0);
  EXPECT_EQ(fg.num_fragments(),
            static_cast<std::size_t>(default_num_fragments()));
}

// ---------------------------------------------------------------------------
// Fragment engine == flat engine, bit for bit

TEST(FragmentEngine, MatchesFlatOnBothSuitesAllFragmentAndWorkerCounts) {
  WorkerGuard guard;
  for (const auto& suite :
       {test::weighted_suite(21), test::adversarial_suite(21)}) {
    for (const auto& [name, g] : suite) {
      const auto radius = constant_radii(g.num_vertices(), 25);
      const auto flat = radius_stepping(g, 0, radius);
      EXPECT_EQ(flat, dijkstra(g, 0)) << name;
      for (const std::size_t f : {1u, 2u, 4u, 8u}) {
        for (const PartitionMode mode :
             {PartitionMode::kContiguous, PartitionMode::kHash}) {
          const FragmentedGraph fg(g, f, mode);
          for (const int nw : {1, guard.before, 8}) {
            set_num_workers(nw);
            RunStats stats;
            EXPECT_EQ(radius_stepping_fragment(fg, 0, radius, &stats), flat)
                << name << " f=" << f << " nw=" << nw;
            EXPECT_EQ(stats.settled, static_cast<std::size_t>(std::count_if(
                                         flat.begin(), flat.end(),
                                         [](Dist d) { return d != kInfDist; })))
                << name;
          }
        }
      }
    }
  }
}

TEST(FragmentEngine, SequentialTwinMatchesToo) {
  for (const auto& [name, g] : test::weighted_suite(22)) {
    const auto radius = constant_radii(g.num_vertices(), 25);
    const auto flat = radius_stepping(g, 0, radius);
    const FragmentedGraph fg(g, 4);
    QueryContext ctx(g.num_vertices());
    ctx.set_sequential(true);
    std::vector<Dist> out;
    radius_stepping_fragment(fg, 0, radius, ctx, out);
    EXPECT_EQ(out, flat) << name;
  }
}

TEST(FragmentEngine, StepSequenceMatchesFlat) {
  for (const auto& [name, g] : test::weighted_suite(23)) {
    const auto radius = all_radii(g, 8);
    RunStats flat_stats, frag_stats;
    const auto flat = radius_stepping(g, 0, radius, &flat_stats);
    const FragmentedGraph fg(g, 4);
    EXPECT_EQ(radius_stepping_fragment(fg, 0, radius, &frag_stats), flat)
        << name;
    EXPECT_EQ(flat_stats.steps, frag_stats.steps) << name;
    EXPECT_EQ(flat_stats.settled, frag_stats.settled) << name;
    EXPECT_EQ(flat_stats.touched, frag_stats.touched) << name;
  }
}

// ---------------------------------------------------------------------------
// Engine-level serving (kFragment)

TEST(FragmentServe, TargetedServeMatchesFlatWithEarlyTermination) {
  WorkerGuard guard;
  for (const auto& suite :
       {test::weighted_suite(31), test::adversarial_suite(31)}) {
    for (const auto& [name, g] : suite) {
      for (const std::size_t f : {2u, 4u}) {
        SsspEngine engine = raw_engine(g);
        engine.enable_fragments(f);
        for (const int nw : {1, guard.before, 8}) {
          set_num_workers(nw);
          QueryRequest req;
          req.source = 0;
          req.targets = spread_targets(g, 3);
          QueryRequest flat_req = req;
          flat_req.engine = QueryEngine::kFlat;
          req.engine = QueryEngine::kFragment;
          const QueryResponse a = engine.serve(req);
          const QueryResponse b = engine.serve(flat_req);
          ASSERT_EQ(a.targets.size(), b.targets.size()) << name;
          for (std::size_t i = 0; i < a.targets.size(); ++i) {
            EXPECT_EQ(a.targets[i].dist, b.targets[i].dist)
                << name << " f=" << f << " nw=" << nw;
          }
        }
      }
    }
  }
}

TEST(FragmentServe, EarlyExitActuallyFires) {
  // Long chain, near target: the targeted run must stop well before the
  // exhaustive one.
  const Graph g = assign_uniform_weights(gen::chain(400), 7, 1, 10);
  SsspEngine engine = raw_engine(g, 5);
  engine.enable_fragments(4);
  QueryRequest req;
  req.source = 0;
  req.targets = {3};
  req.engine = QueryEngine::kFragment;
  const QueryResponse early = engine.serve(req);
  EXPECT_TRUE(early.stats.early_exit);
  QueryRequest full = req;
  full.want_full_distances = true;
  const QueryResponse exhaustive = engine.serve(full);
  EXPECT_LT(early.stats.steps, exhaustive.stats.steps);
  EXPECT_EQ(early.targets[0].dist, exhaustive.dist[3]);
}

TEST(FragmentServe, TopKAndPathsAndBatchMatchFlat) {
  WorkerGuard guard;
  for (const auto& [name, g] : test::weighted_suite(32)) {
    SsspEngine engine = raw_engine(g);
    engine.enable_fragments(4);
    for (const int nw : {1, 8}) {
      set_num_workers(nw);
      QueryRequest topk;
      topk.source = 1;
      topk.kind = RequestKind::kTopK;
      topk.k = 10;
      topk.engine = QueryEngine::kFragment;
      QueryRequest topk_flat = topk;
      topk_flat.engine = QueryEngine::kFlat;
      const QueryResponse a = engine.serve(topk);
      const QueryResponse b = engine.serve(topk_flat);
      ASSERT_EQ(a.targets.size(), b.targets.size()) << name;
      for (std::size_t i = 0; i < a.targets.size(); ++i) {
        EXPECT_EQ(a.targets[i].target, b.targets[i].target) << name;
        EXPECT_EQ(a.targets[i].dist, b.targets[i].dist) << name;
      }

      QueryRequest paths;
      paths.source = 0;
      paths.targets = spread_targets(g, 2);
      paths.want_paths = true;
      paths.engine = QueryEngine::kFragment;
      const QueryResponse pr = engine.serve(paths);
      const auto dij = dijkstra(g, 0);
      for (const TargetResult& tr : pr.targets) {
        EXPECT_EQ(tr.dist, dij[tr.target]) << name;
        if (tr.dist != kInfDist) {
          ASSERT_FALSE(tr.path.empty()) << name;
          EXPECT_EQ(tr.path.front(), 0u) << name;
          EXPECT_EQ(tr.path.back(), tr.target) << name;
        }
      }

      // Batch == per-request serve, with kFragment mixed into the batch.
      std::vector<QueryRequest> batch;
      for (const Vertex s : {Vertex{0}, Vertex{1}, Vertex{2}, Vertex{3}}) {
        QueryRequest r;
        r.source = s;
        r.targets = spread_targets(g, 3);
        r.engine = (s % 2 == 0) ? QueryEngine::kFragment : QueryEngine::kFlat;
        batch.push_back(r);
      }
      const auto responses = engine.serve_batch(batch);
      ASSERT_EQ(responses.size(), batch.size()) << name;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const QueryResponse solo = engine.serve(batch[i]);
        ASSERT_EQ(responses[i].targets.size(), solo.targets.size()) << name;
        for (std::size_t t = 0; t < solo.targets.size(); ++t) {
          EXPECT_EQ(responses[i].targets[t].dist, solo.targets[t].dist)
              << name << " req=" << i;
        }
      }
    }
  }
}

TEST(FragmentServe, LowerBoundsStillExact) {
  for (const auto& [name, g] : test::weighted_suite(33)) {
    SsspEngine engine = raw_engine(g);
    engine.enable_fragments(3);
    const auto dij = dijkstra(g, 0);
    QueryRequest req;
    req.source = 0;
    req.targets = spread_targets(g, 3);
    req.engine = QueryEngine::kFragment;
    // Exact distances are admissible lower bounds — the strongest assist.
    for (const Vertex t : req.targets) {
      req.target_lower_bounds.push_back(dij[t]);
    }
    const QueryResponse resp = engine.serve(req);
    for (std::size_t i = 0; i < req.targets.size(); ++i) {
      EXPECT_EQ(resp.targets[i].dist, dij[req.targets[i]]) << name;
    }
  }
}

TEST(FragmentServe, RejectsRequestsWithoutSubstrate) {
  const Graph g = test::weighted_suite(1)[0].graph;
  const SsspEngine engine = raw_engine(g);
  QueryRequest req;
  req.source = 0;
  req.targets = {1};
  req.engine = QueryEngine::kFragment;
  EXPECT_THROW(engine.validate(req), std::invalid_argument);
  EXPECT_THROW(engine.serve(req), std::invalid_argument);
  EXPECT_THROW((void)engine.query(0, QueryEngine::kFragment),
               std::invalid_argument);
}

TEST(FragmentServe, SurvivesReplaceAndCopy) {
  const auto suite = test::weighted_suite(34);
  const Graph& g1 = suite[0].graph;
  const Graph& g2 = suite[1].graph;
  SsspEngine engine = raw_engine(g1);
  engine.enable_fragments(4);
  ASSERT_TRUE(engine.fragments_enabled());
  EXPECT_EQ(engine.fragments().num_fragments(), 4u);

  const SsspEngine copy = engine;  // shares the substrate
  EXPECT_TRUE(copy.fragments_enabled());
  EXPECT_EQ(&copy.fragments(), &engine.fragments());

  PreprocessResult pre;
  pre.graph = g2;
  pre.radius = constant_radii(g2.num_vertices(), 25);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  engine.replace(g2, std::move(pre));
  ASSERT_TRUE(engine.fragments_enabled());
  EXPECT_EQ(engine.fragments().num_fragments(), 4u);
  EXPECT_EQ(engine.fragments().num_vertices(), g2.num_vertices());
  const QueryResult after = engine.query(0, QueryEngine::kFragment);
  EXPECT_EQ(after.dist, dijkstra(g2, 0));
  // The copy still serves the OLD graph.
  const QueryResult old = copy.query(0, QueryEngine::kFragment);
  EXPECT_EQ(old.dist, dijkstra(g1, 0));
}

TEST(FragmentEngine, ValidatesInputs) {
  const Graph g = test::weighted_suite(1)[0].graph;
  const FragmentedGraph fg(g, 2);
  const auto radius = constant_radii(g.num_vertices(), 25);
  EXPECT_THROW((void)radius_stepping_fragment(fg, g.num_vertices(), radius),
               std::invalid_argument);
  EXPECT_THROW(
      (void)radius_stepping_fragment(fg, 0, std::vector<Dist>(3, 1)),
      std::invalid_argument);
  const FragmentedGraph empty;
  EXPECT_THROW((void)radius_stepping_fragment(empty, 0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rs
