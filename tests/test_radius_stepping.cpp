#include "core/radius_stepping.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

TEST(RadiusStepping, TinyHandComputedGraph) {
  const Graph g = build_graph(4, {{0, 1, 5}, {0, 2, 9}, {1, 3, 1}, {2, 3, 2}});
  const auto d = radius_stepping(g, 0, constant_radii(4, 3));
  EXPECT_EQ(d, (std::vector<Dist>{0, 5, 8, 6}));
}

TEST(RadiusStepping, SingleVertexGraph) {
  const Graph g = build_graph(1, {});
  RunStats stats;
  const auto d = radius_stepping(g, 0, constant_radii(1, 0), &stats);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(stats.settled, 1u);
}

TEST(RadiusStepping, DisconnectedVerticesStayInfinite) {
  const Graph g = build_graph(5, {{0, 1, 2}, {1, 2, 2}});
  const auto d = radius_stepping(g, 0, constant_radii(5, 10));
  EXPECT_EQ(d[3], kInfDist);
  EXPECT_EQ(d[4], kInfDist);
  EXPECT_EQ(d[2], 4u);
}

TEST(RadiusStepping, RejectsBadArguments) {
  const Graph g = gen::chain(4);
  EXPECT_THROW(radius_stepping(g, 0, constant_radii(3, 0)),
               std::invalid_argument);
  EXPECT_THROW(radius_stepping(g, 9, constant_radii(4, 0)),
               std::invalid_argument);
}

// The central correctness battery: every graph shape, several radius
// choices, several sources — always Dijkstra's answer.
class CorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorrectnessTest, MatchesDijkstraForAnyRadii) {
  const auto [seed, src_pick] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(seed)) {
    const Vertex n = g.num_vertices();
    const Vertex src =
        static_cast<Vertex>((static_cast<std::uint64_t>(src_pick) * 104729) %
                            n);
    const auto ref = dijkstra(g, src);

    EXPECT_EQ(radius_stepping(g, src, dijkstra_radii(n)), ref)
        << name << " r=0";
    EXPECT_EQ(radius_stepping(g, src, constant_radii(n, 7)), ref)
        << name << " r=7";
    EXPECT_EQ(radius_stepping(g, src, bellman_ford_radii(n)), ref)
        << name << " r=inf";
    EXPECT_EQ(radius_stepping(g, src, all_radii(g, 8)), ref)
        << name << " r=rho(8)";
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSources, CorrectnessTest,
                         ::testing::Combine(::testing::Range(1, 5),
                                            ::testing::Range(0, 3)));

TEST(RadiusStepping, ZeroRadiiStepsEqualDistinctDistanceClasses) {
  // r = 0 degenerates to Dijkstra-with-batched-extraction: one step per
  // distinct nonzero distance value (the paper's rho = 1 row).
  for (const auto& [name, g] : test::weighted_suite(9)) {
    RunStats stats;
    const auto d =
        radius_stepping(g, 0, dijkstra_radii(g.num_vertices()), &stats);
    EXPECT_EQ(stats.steps, count_distinct_distances(d)) << name;
  }
}

TEST(RadiusStepping, InfiniteRadiiIsOneStepOfBellmanFord) {
  for (const auto& [name, g] : test::weighted_suite(10)) {
    RunStats stats;
    const auto d =
        radius_stepping(g, 0, bellman_ford_radii(g.num_vertices()), &stats);
    EXPECT_EQ(stats.steps, 1u) << name;
    EXPECT_EQ(d, dijkstra(g, 0)) << name;
  }
}

// Theorem 3.2: on a (k, rho)-graph with r = r_rho, every step runs at most
// k + 2 substeps.
class SubstepBoundTest
    : public ::testing::TestWithParam<std::tuple<Vertex, ShortcutHeuristic>> {};

TEST_P(SubstepBoundTest, MaxSubstepsWithinKPlusTwo) {
  const auto [k, heuristic] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(11)) {
    PreprocessOptions opts;
    opts.rho = 12;
    opts.k = k;
    opts.heuristic = heuristic;
    const PreprocessResult pre = preprocess(g, opts);
    const Vertex effective_k =
        heuristic == ShortcutHeuristic::kFull1Rho ? 1 : k;
    for (const Vertex src : {Vertex{0}, g.num_vertices() - 1}) {
      RunStats stats;
      const auto d = radius_stepping(pre.graph, src, pre.radius, &stats);
      EXPECT_LE(stats.max_substeps_in_step, effective_k + 2u)
          << name << " k=" << k << " " << to_string(heuristic);
      EXPECT_EQ(d, dijkstra(g, src)) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KsAndHeuristics, SubstepBoundTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(ShortcutHeuristic::kFull1Rho,
                                         ShortcutHeuristic::kGreedy,
                                         ShortcutHeuristic::kDP)));

// Theorem 3.3: with |B(v, r(v))| >= rho, at most
// ceil(n/rho) * (1 + ceil(log2(rho * L))) steps.
class StepBoundTest : public ::testing::TestWithParam<Vertex> {};

TEST_P(StepBoundTest, StepsWithinTheoreticalBound) {
  const Vertex rho = GetParam();
  for (const auto& [name, g] : test::weighted_suite(12)) {
    const Vertex n = g.num_vertices();
    if (n < rho) continue;
    PreprocessOptions opts;
    opts.rho = rho;
    opts.k = 2;
    opts.heuristic = ShortcutHeuristic::kDP;
    const PreprocessResult pre = preprocess(g, opts);
    RunStats stats;
    radius_stepping(pre.graph, 0, pre.radius, &stats);
    const double L = pre.graph.max_weight();
    const std::size_t bound =
        static_cast<std::size_t>(std::ceil(double(n) / rho)) *
        (1 + static_cast<std::size_t>(std::ceil(std::log2(rho * L))));
    EXPECT_LE(stats.steps, bound) << name << " rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, StepBoundTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(RadiusStepping, StepsDecreaseWithRho) {
  // The paper's inverse-proportionality trend, in miniature: larger rho,
  // (weakly) fewer steps on every graph family.
  for (const auto& [name, g] : test::weighted_suite(13)) {
    std::size_t prev = ~std::size_t{0};
    for (const Vertex rho : {Vertex{1}, Vertex{8}, Vertex{32}}) {
      RunStats stats;
      radius_stepping(g, 0, all_radii(g, rho), &stats);
      EXPECT_LE(stats.steps, prev) << name << " rho=" << rho;
      prev = stats.steps;
    }
  }
}

TEST(RadiusStepping, StatsInternallyConsistent) {
  const Graph g = test::weighted_suite(14)[0].graph;
  RunStats stats;
  const auto d = radius_stepping(g, 0, all_radii(g, 8), &stats);
  std::size_t reachable = 0;
  for (const Dist x : d) {
    if (x != kInfDist) ++reachable;
  }
  EXPECT_EQ(stats.settled, reachable);
  EXPECT_GE(stats.substeps, stats.steps);
  EXPECT_GE(stats.max_substeps_in_step, 1u);
  EXPECT_LE(stats.max_active, static_cast<std::size_t>(g.num_vertices()));
  EXPECT_GT(stats.relaxations, 0u);
}

TEST(RadiusStepping, DeterministicAcrossRunsAndThreadCounts) {
  const Graph g = test::weighted_suite(15)[2].graph;
  const auto radius = all_radii(g, 8);
  RunStats s1, s2, s4;
  const auto d1 = radius_stepping(g, 3, radius, &s1);

  const int before = num_workers();
  set_num_workers(1);
  const auto d2 = radius_stepping(g, 3, radius, &s2);
  set_num_workers(4);
  const auto d4 = radius_stepping(g, 3, radius, &s4);
  set_num_workers(before);

  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
  // Step boundaries are schedule-independent (d_i is a pure min over a
  // deterministic frontier state).
  EXPECT_EQ(s1.steps, s2.steps);
  EXPECT_EQ(s1.steps, s4.steps);
}

TEST(RadiusStepping, SourceArgmin) {
  // Source with index != 0 works and distances are symmetric on an
  // undirected graph: d(a, b) == d(b, a).
  const Graph g = test::weighted_suite(16)[0].graph;
  const auto radius = all_radii(g, 4);
  const Vertex a = 1;
  const Vertex b = g.num_vertices() - 2;
  const auto da = radius_stepping(g, a, radius);
  const auto db = radius_stepping(g, b, radius);
  EXPECT_EQ(da[b], db[a]);
}

TEST(RadiusStepping, HeterogeneousRadiiStillCorrect) {
  // Adversarial radii: alternating 0 and large — correct for ANY radii.
  for (const auto& [name, g] : test::weighted_suite(17)) {
    const Vertex n = g.num_vertices();
    std::vector<Dist> radius(n);
    for (Vertex v = 0; v < n; ++v) radius[v] = (v % 2 == 0) ? 0 : 1000;
    EXPECT_EQ(radius_stepping(g, 0, radius), dijkstra(g, 0)) << name;
  }
}

TEST(RadiusStepping, ZeroWeightEdgesSettleWithinTheStep) {
  // Zero-weight chains extend an annulus at the same distance; the substep
  // loop must keep settling them before the step closes. (The paper's step
  // bound assumes min weight 1; correctness does not.)
  const SplitRng rng(88);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<EdgeTriple> edges;
    const Vertex n = 60;
    for (Vertex v = 0; v + 1 < n; ++v) {
      edges.push_back(
          {v, v + 1, static_cast<Weight>(rng.bounded(0, trial * 100 + v, 3))});
    }
    for (int extra = 0; extra < 40; ++extra) {
      const Vertex u =
          static_cast<Vertex>(rng.bounded(1, trial * 100 + extra, n));
      const Vertex v =
          static_cast<Vertex>(rng.bounded(2, trial * 100 + extra, n));
      if (u != v) {
        edges.push_back({u, v, static_cast<Weight>(rng.bounded(3, extra, 4))});
      }
    }
    const Graph g = build_graph(n, std::move(edges));
    const auto ref = dijkstra(g, 0);
    EXPECT_EQ(radius_stepping(g, 0, constant_radii(n, 2)), ref) << trial;
    EXPECT_EQ(radius_stepping(g, 0, dijkstra_radii(n)), ref) << trial;
  }
}

TEST(RadiusStepping, WorksOnPreprocessedAndOriginalGraphAlike) {
  // Running with r_rho radii but WITHOUT shortcut edges must still be
  // correct (substep bound no longer applies; distances do).
  for (const auto& [name, g] : test::weighted_suite(18)) {
    const auto radius = all_radii(g, 16);
    EXPECT_EQ(radius_stepping(g, 0, radius), dijkstra(g, 0)) << name;
  }
}

}  // namespace
}  // namespace rs
