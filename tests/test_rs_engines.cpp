// Cross-engine equivalence: the flat engine (practical), the BST engine
// (Algorithm 2 on the treap substrate) and the unweighted engine (§3.4)
// must agree on distances AND on the step sequence.
#include <gtest/gtest.h>

#include "baseline/bfs.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, Vertex>> {};

TEST_P(EngineEquivalenceTest, FlatAndBstProduceIdenticalResultsAndSteps) {
  const auto [seed, rho] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(seed)) {
    const auto radius = all_radii(g, rho);
    RunStats flat_stats, bst_stats;
    const auto flat = radius_stepping(g, 0, radius, &flat_stats);
    const auto bst = radius_stepping_bst(g, 0, radius, &bst_stats);
    EXPECT_EQ(flat, bst) << name << " rho=" << rho;
    EXPECT_EQ(flat_stats.steps, bst_stats.steps) << name << " rho=" << rho;
    EXPECT_EQ(flat_stats.settled, bst_stats.settled) << name;
    EXPECT_EQ(flat, dijkstra(g, 0)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndRhos, EngineEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 4, 16)));

TEST(EngineEquivalence, BstHandlesSpecialRadii) {
  for (const auto& [name, g] : test::weighted_suite(4)) {
    const Vertex n = g.num_vertices();
    EXPECT_EQ(radius_stepping_bst(g, 0, dijkstra_radii(n)),
              dijkstra(g, 0))
        << name << " r=0";
    RunStats stats;
    EXPECT_EQ(radius_stepping_bst(g, 0, bellman_ford_radii(n), &stats),
              dijkstra(g, 0))
        << name << " r=inf";
    EXPECT_EQ(stats.steps, 1u) << name;
  }
}

TEST(EngineEquivalence, BstRespectsSubstepBoundAfterPreprocessing) {
  for (const auto& [name, g] : test::weighted_suite(5)) {
    PreprocessOptions opts;
    opts.rho = 10;
    opts.k = 2;
    opts.heuristic = ShortcutHeuristic::kDP;
    const PreprocessResult pre = preprocess(g, opts);
    RunStats stats;
    const auto d = radius_stepping_bst(pre.graph, 0, pre.radius, &stats);
    EXPECT_LE(stats.max_substeps_in_step, opts.k + 2u) << name;
    EXPECT_EQ(d, dijkstra(g, 0)) << name;
  }
}

class UnweightedEngineTest
    : public ::testing::TestWithParam<std::tuple<int, Vertex>> {};

TEST_P(UnweightedEngineTest, MatchesWeightedEngineOnUnitGraphs) {
  const auto [seed, rho] = GetParam();
  for (const auto& [name, g] : test::unweighted_suite(seed)) {
    const auto radius = all_radii(g, rho);
    RunStats uw_stats, w_stats;
    const auto uw = radius_stepping_unweighted(g, 0, radius, &uw_stats);
    const auto w = radius_stepping(g, 0, radius, &w_stats);
    EXPECT_EQ(uw, w) << name << " rho=" << rho;
    EXPECT_EQ(uw_stats.steps, w_stats.steps) << name << " rho=" << rho;
    EXPECT_EQ(uw, bfs(g, 0)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndRhos, UnweightedEngineTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 4, 16)));

TEST(UnweightedEngine, RhoOneStepCountEqualsBfsRounds) {
  // rho = 1 -> r = 0 -> one step per BFS level: the Table 4/5 baseline row.
  for (const auto& [name, g] : test::unweighted_suite(3)) {
    RunStats stats;
    radius_stepping_unweighted(g, 0, dijkstra_radii(g.num_vertices()), &stats);
    std::size_t bfs_rounds = 0;
    bfs(g, 0, &bfs_rounds);
    EXPECT_EQ(stats.steps, bfs_rounds) << name;
  }
}

TEST(UnweightedEngine, SubstepsEqualLevelsSettled) {
  const Graph g = assign_unit_weights(gen::chain(20));
  RunStats stats;
  radius_stepping_unweighted(g, 0, constant_radii(20, 4), &stats);
  // 19 levels total; each step covers min-radius 4 extra levels.
  EXPECT_EQ(stats.substeps, 19u);
  EXPECT_LE(stats.steps, 5u);
  EXPECT_GE(stats.steps, 4u);
}

TEST(UnweightedEngine, RejectsBadArguments) {
  const Graph g = gen::chain(4);
  EXPECT_THROW(radius_stepping_unweighted(g, 0, constant_radii(3, 0)),
               std::invalid_argument);
  EXPECT_THROW(radius_stepping_unweighted(g, 4, constant_radii(4, 0)),
               std::invalid_argument);
}

TEST(EngineEquivalence, AllThreeOnUnitGridWithBallRadii) {
  // NOTE: the unweighted engine requires unit weights, so it runs on the
  // original graph with r_rho radii (shortcut edges would carry multi-hop
  // weights). The weighted engines agree with it there.
  const Graph g = assign_unit_weights(gen::grid2d(15, 15));
  const auto radius = all_radii(g, 12);
  RunStats s_flat, s_bst, s_uw;
  const auto d_flat = radius_stepping(g, 0, radius, &s_flat);
  const auto d_bst = radius_stepping_bst(g, 0, radius, &s_bst);
  const auto d_uw = radius_stepping_unweighted(g, 0, radius, &s_uw);
  EXPECT_EQ(d_flat, d_bst);
  EXPECT_EQ(d_flat, d_uw);
  EXPECT_EQ(s_flat.steps, s_bst.steps);
  EXPECT_EQ(s_flat.steps, s_uw.steps);
}

}  // namespace
}  // namespace rs
