#include "graph/io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"

namespace rs {
namespace {

TEST(Dimacs, ParsesWellFormedInput) {
  std::istringstream in(
      "c a comment\n"
      "p sp 3 2\n"
      "a 1 2 5\n"
      "a 2 3 7\n");
  const Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_EQ(g.arc_weight(g.first_arc(0)), 5u);
}

TEST(Dimacs, RoundTripPreservesGraph) {
  const Graph g = assign_uniform_weights(gen::grid2d(12, 9), 5);
  std::ostringstream out;
  io::write_dimacs(g, out);
  std::istringstream in(out.str());
  const Graph g2 = io::read_dimacs(in);
  EXPECT_EQ(g.with_target_sorted_adjacency(),
            g2.with_target_sorted_adjacency());
}

TEST(Dimacs, RejectsMissingHeader) {
  std::istringstream in("a 1 2 5\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsOutOfRangeVertex) {
  std::istringstream in("p sp 2 1\na 1 3 5\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsZeroBasedVertex) {
  std::istringstream in("p sp 2 1\na 0 1 5\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsUnknownTag) {
  std::istringstream in("p sp 2 1\nx 1 2 5\n");
  EXPECT_THROW(io::read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, EmptyBodyIsValid) {
  std::istringstream in("p sp 4 0\n");
  const Graph g = io::read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EdgeList, ParsesWithAndWithoutWeights) {
  std::istringstream in(
      "# comment\n"
      "% another\n"
      "0 1 5\n"
      "1 2\n");
  const Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.arc_weight(g.first_arc(0)), 5u);
  // Missing weight defaults to 1.
  bool found = false;
  for (EdgeId e = g.first_arc(1); e < g.last_arc(1); ++e) {
    if (g.arc_target(e) == 2) {
      EXPECT_EQ(g.arc_weight(e), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EdgeList, HonorsVertexCountHint) {
  std::istringstream in("0 1\n");
  const Graph g = io::read_edge_list(in, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(EdgeList, RoundTrip) {
  const Graph g = assign_uniform_weights(gen::road_network(10, 10, 2), 3);
  std::ostringstream out;
  io::write_edge_list(g, out);
  std::istringstream in(out.str());
  const Graph g2 = io::read_edge_list(in, g.num_vertices());
  EXPECT_EQ(g.with_target_sorted_adjacency(),
            g2.with_target_sorted_adjacency());
}

TEST(EdgeList, RejectsGarbageLine) {
  std::istringstream in("zero one\n");
  EXPECT_THROW(io::read_edge_list(in), std::runtime_error);
}

TEST(File, MissingFileThrows) {
  EXPECT_THROW(io::read_dimacs_file("/nonexistent/file.gr"),
               std::runtime_error);
  EXPECT_THROW(io::read_edge_list_file("/nonexistent/file.txt"),
               std::runtime_error);
}

TEST(File, WriteReadRoundTrip) {
  const Graph g = assign_uniform_weights(gen::grid2d(6, 6), 8);
  const std::string path = ::testing::TempDir() + "/rs_io_test.gr";
  io::write_dimacs_file(g, path);
  const Graph g2 = io::read_dimacs_file(path);
  EXPECT_EQ(g.with_target_sorted_adjacency(),
            g2.with_target_sorted_adjacency());
}

}  // namespace
}  // namespace rs
