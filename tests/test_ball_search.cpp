#include "shortcut/ball_search.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// The rho-th smallest distance (counting the source's 0 as the first).
Dist rho_th_distance(const std::vector<Dist>& dist, Vertex rho) {
  std::vector<Dist> finite;
  for (const Dist d : dist) {
    if (d != kInfDist) finite.push_back(d);
  }
  std::sort(finite.begin(), finite.end());
  if (finite.size() < rho) return finite.back();
  return finite[rho - 1];
}

class BallRadiusTest
    : public ::testing::TestWithParam<std::tuple<int, Vertex>> {};

TEST_P(BallRadiusTest, RadiusMatchesFullDijkstra) {
  const auto [seed, rho] = GetParam();
  for (const auto& [name, g] : test::weighted_suite(seed)) {
    const Graph gw = g.with_weight_sorted_adjacency();
    const Vertex src = g.num_vertices() / 3;
    const auto full = dijkstra(g, src);
    const Ball ball = ball_search(gw, src, rho);
    EXPECT_EQ(ball.radius, rho_th_distance(full, rho))
        << name << " rho=" << rho;

    // Every ball member's distance is exact.
    for (const BallVertex& bv : ball.vertices) {
      EXPECT_EQ(bv.dist, full[bv.v]) << name << " member " << bv.v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRhos, BallRadiusTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1, 2, 5, 16, 64)));

TEST(BallSearch, SourceIsFirstWithZeroDistance) {
  const Graph g =
      test::weighted_suite(1)[0].graph.with_weight_sorted_adjacency();
  const Ball ball = ball_search(g, 7, 10);
  ASSERT_FALSE(ball.vertices.empty());
  EXPECT_EQ(ball.vertices[0].v, 7u);
  EXPECT_EQ(ball.vertices[0].dist, 0u);
  EXPECT_EQ(ball.vertices[0].hops, 0u);
  EXPECT_EQ(ball.vertices[0].parent, kNoVertex);
}

TEST(BallSearch, SettleOrderIsNondecreasing) {
  const Graph g =
      test::weighted_suite(2)[2].graph.with_weight_sorted_adjacency();
  const Ball ball = ball_search(g, 0, 32);
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    EXPECT_LE(ball.vertices[i - 1].dist, ball.vertices[i].dist);
  }
}

TEST(BallSearch, SettleTiesIncludesWholeDistanceClass) {
  // Unit-weight star from a leaf: all other leaves tie at distance 2. With
  // an unrestricted edge limit the whole class settles; the default
  // lightest-rho-edges restriction (Lemma 4.2) only guarantees the rho
  // nearest, so it truncates the tie class.
  const Graph g = gen::star(50).with_weight_sorted_adjacency();
  const Ball full = ball_search(g, 1, 3, /*edge_limit=*/50);
  EXPECT_EQ(full.radius, 2u);
  EXPECT_EQ(full.vertices.size(), 50u);  // source + hub + all 48 tied leaves

  const Ball restricted = ball_search(g, 1, 3);
  EXPECT_EQ(restricted.radius, 2u);
  EXPECT_EQ(restricted.vertices.size(), 4u);  // source + hub + 2 leaves
}

TEST(BallSearch, ExactRhoModeStopsAtRho) {
  const Graph g = gen::star(50).with_weight_sorted_adjacency();
  BallSearchWorkspace ws(g.num_vertices());
  const Ball ball = ws.run(g, 1, BallOptions{3, 0, /*settle_ties=*/false});
  EXPECT_EQ(ball.radius, 2u);       // identical radius
  EXPECT_EQ(ball.vertices.size(), 3u);  // but only rho members
}

TEST(BallSearch, RhoOneIsJustTheSource) {
  const Graph g =
      test::weighted_suite(1)[0].graph.with_weight_sorted_adjacency();
  const Ball ball = ball_search(g, 4, 1);
  EXPECT_EQ(ball.radius, 0u);
  EXPECT_EQ(ball.vertices.size(), 1u);
}

TEST(BallSearch, ParentsFormInBallTreeWithCorrectHops) {
  for (const auto& [name, g0] : test::weighted_suite(4)) {
    const Graph g = g0.with_weight_sorted_adjacency();
    const Ball ball = ball_search(g, 0, 24);
    // Map each member to its position; parents must settle earlier.
    std::vector<std::int64_t> pos(g.num_vertices(), -1);
    for (std::size_t i = 0; i < ball.vertices.size(); ++i) {
      pos[ball.vertices[i].v] = static_cast<std::int64_t>(i);
    }
    for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
      const BallVertex& bv = ball.vertices[i];
      ASSERT_NE(bv.parent, kNoVertex) << name;
      const std::int64_t pp = pos[bv.parent];
      ASSERT_GE(pp, 0) << name;
      ASSERT_LT(pp, static_cast<std::int64_t>(i)) << name;
      EXPECT_EQ(bv.hops,
                ball.vertices[static_cast<std::size_t>(pp)].hops + 1)
          << name;
    }
  }
}

TEST(BallSearch, EdgeRestrictionPreservesRadiiOnDistinctWeights) {
  // Lemma 4.2's lightest-rho-edges restriction: with all-distinct weights
  // the rho-nearest set (and hence the radius) is unaffected.
  for (const auto& [name, g0] : test::weighted_suite(5)) {
    // Make weights effectively distinct by re-rolling into a huge range.
    const Graph g = assign_uniform_weights(g0, 77, 1, 1'000'000)
                        .with_weight_sorted_adjacency();
    BallSearchWorkspace ws(g.num_vertices());
    for (const Vertex rho : {Vertex{4}, Vertex{16}}) {
      const Ball restricted = ws.run(g, 1, rho);
      const Ball unrestricted =
          ws.run(g, 1, BallOptions{rho, static_cast<Vertex>(g.num_vertices()),
                                   true});
      EXPECT_EQ(restricted.radius, unrestricted.radius)
          << name << " rho=" << rho;
      EXPECT_EQ(restricted.vertices.size(), unrestricted.vertices.size())
          << name << " rho=" << rho;
    }
  }
}

TEST(BallSearch, SmallComponentExhaustsGracefully) {
  // rho larger than the component: ball = whole component.
  const Graph g = gen::chain(5).with_weight_sorted_adjacency();
  const Ball ball = ball_search(g, 2, 100, 100);
  EXPECT_EQ(ball.vertices.size(), 5u);
  EXPECT_EQ(ball.radius, 2u);  // farthest settled
}

TEST(BallSearch, RejectsRhoZero)  {
  const Graph g = gen::chain(5);
  EXPECT_THROW(ball_search(g, 0, 0), std::invalid_argument);
}

TEST(BallSearch, Figure2WorstCaseScansQuadraticEdges) {
  // Paper Figure 2: reaching rho > 3d vertices forces Theta(d^2) arc scans.
  const Vertex d = 24;
  const Graph g = gen::bipartite_chain(8, d).with_weight_sorted_adjacency();
  const Vertex rho = 3 * d + 1;
  const Ball ball = ball_search(g, d /*interior group member*/, rho,
                                /*edge_limit=*/rho);
  EXPECT_GE(ball.vertices.size(), rho);
  // Members of three groups each scan ~d arcs -> at least d^2 scans.
  EXPECT_GE(ball.arcs_scanned, static_cast<EdgeId>(d) * d);
}

TEST(AllRadii, MatchesPerSourceBalls) {
  const auto suite = test::weighted_suite(6);
  const auto& g = suite[0].graph;
  const Vertex rho = 12;
  const auto radii = all_radii(g, rho);
  const Graph gw = g.with_weight_sorted_adjacency();
  BallSearchWorkspace ws(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); v += 17) {
    EXPECT_EQ(radii[v], ws.run(gw, v, rho).radius) << v;
  }
}

TEST(AllRadii, RhoOneGivesAllZeros) {
  const Graph g = test::weighted_suite(1)[0].graph;
  for (const Dist r : all_radii(g, 1)) EXPECT_EQ(r, 0u);
}

TEST(RadiiEncloseRho, RhoRadiiAlwaysPass) {
  for (const auto& [name, g] : test::weighted_suite(7)) {
    for (const Vertex rho : {Vertex{2}, Vertex{8}, Vertex{24}}) {
      EXPECT_TRUE(radii_enclose_rho(g, all_radii(g, rho), rho))
          << name << " rho=" << rho;
    }
  }
}

TEST(RadiiEncloseRho, DetectsTooSmallRadii) {
  const Graph g = test::weighted_suite(8)[0].graph;
  // Zero radii enclose only the vertex itself: fails for rho >= 2.
  EXPECT_FALSE(radii_enclose_rho(g, std::vector<Dist>(g.num_vertices(), 0), 2));
  EXPECT_TRUE(radii_enclose_rho(g, std::vector<Dist>(g.num_vertices(), 0), 1));
  // Shrinking one vertex's r_rho by 1 must be caught.
  auto radius = all_radii(g, 8);
  radius[5] -= 1;
  EXPECT_FALSE(radii_enclose_rho(g, radius, 8));
  // Size mismatch.
  EXPECT_FALSE(radii_enclose_rho(g, std::vector<Dist>(3, 0), 1));
}

TEST(BallSearch, RadiusMonotoneInRho) {
  for (const auto& [name, g] : test::weighted_suite(9)) {
    Dist prev = 0;
    for (const Vertex rho : {Vertex{1}, Vertex{4}, Vertex{16}, Vertex{64}}) {
      const Ball ball = ball_search(g.with_weight_sorted_adjacency(), 2, rho);
      EXPECT_GE(ball.radius, prev) << name << " rho=" << rho;
      prev = ball.radius;
    }
  }
}

}  // namespace
}  // namespace rs
