#include "graph/generators.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "graph/weights.hpp"

namespace rs {
namespace {

TEST(Grid2d, SizeAndEdgeCount) {
  const Graph g = gen::grid2d(10, 7);
  EXPECT_EQ(g.num_vertices(), 70u);
  // rows*(cols-1) + (rows-1)*cols undirected edges.
  EXPECT_EQ(g.num_undirected_edges(), 10u * 6 + 9 * 7);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(Grid2d, DegenerateLine) {
  const Graph g = gen::grid2d(1, 5);
  EXPECT_EQ(g.num_undirected_edges(), 4u);
  EXPECT_EQ(approx_diameter(g), 4u);
}

TEST(Grid3d, SizeAndEdgeCount) {
  const Graph g = gen::grid3d(4, 5, 6);
  EXPECT_EQ(g.num_vertices(), 120u);
  EXPECT_EQ(g.num_undirected_edges(), 3u * 5 * 6 + 4 * 4 * 6 + 4 * 5 * 5);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 6u);
}

TEST(RoadNetwork, ConnectedWithRoadLikeDegrees) {
  const Graph g = gen::road_network(40, 40, 1);
  EXPECT_EQ(g.num_vertices(), 1600u);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.mean, 2.0);   // at least tree density
  EXPECT_LE(s.mean, 4.5);   // sparser than the full lattice + diagonals
  // Large hop diameter, like a road map.
  EXPECT_GE(approx_diameter(g), 39u);
}

TEST(RoadNetwork, DeterministicInSeed) {
  EXPECT_EQ(gen::road_network(20, 20, 5), gen::road_network(20, 20, 5));
  EXPECT_NE(gen::road_network(20, 20, 5), gen::road_network(20, 20, 6));
}

TEST(RoadNetwork, KeepProbExtremes) {
  // keep_prob = 1 with no diagonals: the full lattice.
  const Graph full = gen::road_network(10, 10, 3, 1.0, 0.0);
  EXPECT_EQ(full.num_undirected_edges(),
            gen::grid2d(10, 10).num_undirected_edges());
  // keep_prob = 0: exactly the spanning tree.
  const Graph tree = gen::road_network(10, 10, 3, 0.0, 0.0);
  EXPECT_EQ(tree.num_undirected_edges(), 99u);
  EXPECT_TRUE(is_connected(tree));
}

TEST(BarabasiAlbert, ConnectedScaleFree) {
  const Graph g = gen::barabasi_albert(5000, 4, 11);
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = degree_stats(g);
  // Preferential attachment produces hubs far above the mean degree.
  EXPECT_GE(s.max, static_cast<EdgeId>(8 * s.mean));
  EXPECT_GE(s.min, 1u);
  // Low diameter.
  EXPECT_LE(approx_diameter(g), 12u);
}

TEST(BarabasiAlbert, EdgeCountMatchesAttachment) {
  const Vertex n = 1000;
  const Vertex m0 = 3;
  const Graph g = gen::barabasi_albert(n, m0, 2);
  // Seed clique (m0+1 choose 2) + m0 per additional vertex; dedup can only
  // remove a handful (attachment picks are distinct by construction).
  const EdgeId expect = (m0 + 1) * m0 / 2 + (n - m0 - 1) * m0;
  EXPECT_EQ(g.num_undirected_edges(), expect);
}

TEST(BarabasiAlbert, RejectsTooSmallN) {
  EXPECT_THROW(gen::barabasi_albert(3, 4, 1), std::invalid_argument);
}

TEST(WebGraph, HubsPlusTendrils) {
  const Graph g = gen::web_graph(8000, 8, 5);
  EXPECT_EQ(g.num_vertices(), 8000u);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = degree_stats(g);
  // Hubs from the preferential core...
  EXPECT_GE(s.max, static_cast<EdgeId>(10 * s.mean));
  // ...and a degree-1 periphery.
  EXPECT_EQ(s.min, 1u);
  // Tendrils give it a larger hop diameter than the pure BA core.
  EXPECT_GE(approx_diameter(g), 10u);
  // Deterministic.
  EXPECT_EQ(gen::web_graph(1000, 6, 2), gen::web_graph(1000, 6, 2));
}

TEST(WebGraph, DegeneratesToBaWhenCoreCoversAll) {
  const Graph g = gen::web_graph(500, 4, 3, /*core_fraction=*/1.0);
  EXPECT_EQ(g, gen::barabasi_albert(500, 4, 3));
}

TEST(Rmat, ProducesSkewedGraphWithinVertexBound) {
  const Graph g = gen::rmat(12, 8, 7);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_GT(g.num_undirected_edges(), 1000u);
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.max, static_cast<EdgeId>(5 * s.mean));
}

TEST(ErdosRenyi, RoughEdgeCount) {
  const Graph g = gen::erdos_renyi(2000, 10000, 5);
  // Dedup and self-loop removal lose only a small fraction at this density.
  EXPECT_GT(g.num_undirected_edges(), 9000u);
  EXPECT_LE(g.num_undirected_edges(), 10000u);
}

TEST(ChainStarComplete, Shapes) {
  const Graph c = gen::chain(10);
  EXPECT_EQ(c.num_undirected_edges(), 9u);
  EXPECT_EQ(approx_diameter(c), 9u);

  const Graph s = gen::star(10);
  EXPECT_EQ(s.num_undirected_edges(), 9u);
  EXPECT_EQ(s.degree(0), 9u);
  EXPECT_EQ(approx_diameter(s), 2u);

  const Graph k = gen::complete(8);
  EXPECT_EQ(k.num_undirected_edges(), 28u);
  EXPECT_EQ(k.max_degree(), 7u);
}

TEST(BipartiteChain, Figure2Structure) {
  const Vertex d = 5;
  const Graph g = gen::bipartite_chain(4, d);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_undirected_edges(), 3u * d * d);
  EXPECT_TRUE(is_connected(g));
  // Interior vertices see two full neighbour groups.
  EXPECT_EQ(g.degree(d), 2 * d);
  // End-group vertices see one.
  EXPECT_EQ(g.degree(0), d);
}

TEST(Weights, UniformAssignmentSymmetricAndInRange) {
  const Graph g = assign_uniform_weights(gen::grid2d(20, 20), 9, 1, 100);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Weight w = g.arc_weight(e);
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 100u);
      // Reverse arc carries the same weight.
      const Vertex v = g.arc_target(e);
      bool found = false;
      for (EdgeId e2 = g.first_arc(v); e2 < g.last_arc(v); ++e2) {
        if (g.arc_target(e2) == u && g.arc_weight(e2) == w) found = true;
      }
      EXPECT_TRUE(found) << u << "->" << v;
    }
  }
}

TEST(Weights, DeterministicInSeedOnly) {
  const Graph base = gen::grid2d(15, 15);
  EXPECT_EQ(assign_uniform_weights(base, 3), assign_uniform_weights(base, 3));
  EXPECT_NE(assign_uniform_weights(base, 3), assign_uniform_weights(base, 4));
}

TEST(Weights, UnitWeights) {
  const Graph g = assign_unit_weights(
      assign_uniform_weights(gen::grid2d(5, 5), 1));
  EXPECT_EQ(g.max_weight(), 1u);
  EXPECT_EQ(g.min_weight(), 1u);
}

TEST(WebGraph, SimpleSymmetricAndConnected) {
  // Regression for the core-edge dedup pass in web_graph (the one-per-
  // undirected-edge filter): the output must stay simple — no self-loops,
  // no parallel arcs — symmetric, and connected.
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const Graph g = gen::web_graph(500, 4, seed);
    EXPECT_TRUE(is_connected(g)) << seed;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_NE(nbrs[i], v) << "self-loop at " << v << " seed " << seed;
        if (i > 0) {
          // Adjacency lists are target-sorted; equal neighbours adjacent.
          EXPECT_NE(nbrs[i], nbrs[i - 1])
              << "parallel arc at " << v << " seed " << seed;
        }
      }
    }
    // Symmetry: every arc has its reverse.
    for (const EdgeTriple& t : g.to_triples()) {
      const auto nbrs = g.neighbors(t.v);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), t.u) != nbrs.end())
          << t.u << "->" << t.v << " seed " << seed;
    }
  }
}

TEST(Weights, RejectsBadRange) {
  const Graph g = gen::grid2d(3, 3);
  EXPECT_THROW(assign_uniform_weights(g, 1, 0, 5), std::invalid_argument);
  EXPECT_THROW(assign_uniform_weights(g, 1, 9, 5), std::invalid_argument);
}

}  // namespace
}  // namespace rs
