#include "pset/flat_set.hpp"

#include <set>

#include <gtest/gtest.h>

#include "core/rs_bst.hpp"
#include "baseline/dijkstra.hpp"
#include "parallel/rng.hpp"
#include "shortcut/ball_search.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

using IntSet = FlatSet<std::uint64_t>;

TEST(FlatSet, BasicOperations) {
  IntSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(5));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.min(), 3u);
  EXPECT_EQ(s.extract_min(), 3u);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, SplitLeq) {
  IntSet s;
  for (std::uint64_t k = 0; k < 20; ++k) s.insert(k * 3);
  IntSet lo = s.split_leq(30);
  EXPECT_EQ(lo.size(), 11u);  // 0..30
  EXPECT_EQ(lo.to_vector().back(), 30u);
  EXPECT_EQ(s.min(), 33u);
}

class FlatSetOpTest : public ::testing::TestWithParam<int> {};

TEST_P(FlatSetOpTest, UnionAndDifferenceMatchStdSet) {
  const SplitRng rng(static_cast<std::uint64_t>(GetParam()));
  std::set<std::uint64_t> sa, sb;
  IntSet fa, fb, fa2, fb2;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.bounded(0, static_cast<std::uint64_t>(i), 700);
    const std::uint64_t b = rng.bounded(1, static_cast<std::uint64_t>(i), 700);
    sa.insert(a);
    fa.insert(a);
    fa2.insert(a);
    sb.insert(b);
    fb.insert(b);
    fb2.insert(b);
  }
  std::set<std::uint64_t> u = sa;
  u.insert(sb.begin(), sb.end());
  fa.union_with(std::move(fb));
  EXPECT_EQ(fa.to_vector(), std::vector<std::uint64_t>(u.begin(), u.end()));

  std::vector<std::uint64_t> d;
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::back_inserter(d));
  fa2.subtract(std::move(fb2));
  EXPECT_EQ(fa2.to_vector(), d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatSetOpTest, ::testing::Range(0, 6));

TEST(FlatSet, FromSortedAndEdgeCases) {
  IntSet s = IntSet::from_sorted({1, 4, 9});
  EXPECT_EQ(s.size(), 3u);
  IntSet empty;
  s.union_with(std::move(empty));
  EXPECT_EQ(s.size(), 3u);
  IntSet empty2;
  s.subtract(std::move(empty2));
  EXPECT_EQ(s.size(), 3u);
  IntSet below = s.split_leq(0);
  EXPECT_TRUE(below.empty());
}

class FlatSetEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(FlatSetEngineTest, EngineOnFlatSetMatchesTreapEngine) {
  for (const auto& [name, g] : test::weighted_suite(GetParam())) {
    const auto radius = all_radii(g, 8);
    RunStats treap_stats, flat_stats;
    const auto treap = radius_stepping_bst(g, 0, radius, &treap_stats);
    const auto flat = radius_stepping_flatset(g, 0, radius, &flat_stats);
    EXPECT_EQ(flat, treap) << name;
    EXPECT_EQ(flat_stats.steps, treap_stats.steps) << name;
    EXPECT_EQ(flat, dijkstra(g, 0)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatSetEngineTest, ::testing::Range(1, 4));

}  // namespace
}  // namespace rs
