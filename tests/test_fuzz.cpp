// Randomized cross-validation: every SSSP implementation in the repository
// against Dijkstra, over random graph shapes, weight ranges, sources and
// radius-stepping parameters. One parameterized case = one full pipeline.
#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/sp_tree.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "core/radii.hpp"
#include "parallel/rng.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

Graph random_graph(std::uint64_t seed) {
  const SplitRng rng(seed);
  Graph g;
  switch (rng.bounded(0, 1, 6)) {
    case 0:
      g = gen::grid2d(static_cast<Vertex>(5 + rng.bounded(0, 2, 15)),
                      static_cast<Vertex>(5 + rng.bounded(0, 3, 15)));
      break;
    case 1:
      g = gen::road_network(static_cast<Vertex>(6 + rng.bounded(0, 4, 10)),
                            static_cast<Vertex>(6 + rng.bounded(0, 5, 10)),
                            seed);
      break;
    case 2:
      g = gen::barabasi_albert(
          static_cast<Vertex>(100 + rng.bounded(0, 6, 300)),
          static_cast<Vertex>(2 + rng.bounded(0, 7, 4)), seed);
      break;
    case 3:
      g = largest_component(gen::erdos_renyi(
          static_cast<Vertex>(80 + rng.bounded(0, 8, 200)),
          static_cast<EdgeId>(200 + rng.bounded(0, 9, 600)), seed));
      break;
    case 4:
      g = gen::grid3d(static_cast<Vertex>(3 + rng.bounded(0, 10, 5)),
                      static_cast<Vertex>(3 + rng.bounded(0, 11, 5)),
                      static_cast<Vertex>(3 + rng.bounded(0, 12, 5)));
      break;
    default:
      g = gen::bipartite_chain(static_cast<Vertex>(3 + rng.bounded(0, 13, 6)),
                               static_cast<Vertex>(2 + rng.bounded(0, 14, 8)));
  }
  const Weight hi =
      static_cast<Weight>(1 + rng.bounded(0, 15, 10'000));
  return assign_uniform_weights(g, seed + 1, 1, hi);
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, EveryAlgorithmAgreesOnRandomPipelines) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const SplitRng rng(seed + 5000);
  const Graph g = random_graph(seed);
  const Vertex n = g.num_vertices();
  const Vertex src = static_cast<Vertex>(rng.bounded(0, 0, n));

  const auto ref = dijkstra(g, src);

  // Baselines.
  ASSERT_EQ(bellman_ford(g, src), ref) << "seed " << seed;
  ASSERT_EQ(bellman_ford_parallel(g, src), ref) << "seed " << seed;
  const Dist delta = 1 + rng.bounded(0, 1, g.max_weight());
  ASSERT_EQ(delta_stepping(g, src, delta), ref)
      << "seed " << seed << " delta " << delta;

  // Radius-Stepping with a random preprocessing configuration.
  PreprocessOptions opts;
  opts.rho = static_cast<Vertex>(2 + rng.bounded(0, 2, 24));
  opts.k = static_cast<Vertex>(1 + rng.bounded(0, 3, 4));
  opts.settle_ties = rng.bounded(0, 4, 2) == 0;
  switch (rng.bounded(0, 5, 4)) {
    case 0:
      opts.heuristic = ShortcutHeuristic::kNone;
      break;
    case 1:
      opts.heuristic = ShortcutHeuristic::kFull1Rho;
      break;
    case 2:
      opts.heuristic = ShortcutHeuristic::kGreedy;
      break;
    default:
      opts.heuristic = ShortcutHeuristic::kDP;
  }
  const PreprocessResult pre = preprocess(g, opts);

  RunStats flat_stats, bst_stats;
  const auto flat = radius_stepping(pre.graph, src, pre.radius, &flat_stats);
  const auto bst = radius_stepping_bst(pre.graph, src, pre.radius, &bst_stats);
  ASSERT_EQ(flat, ref) << "seed " << seed << " " << to_string(opts.heuristic)
                       << " rho=" << opts.rho << " k=" << opts.k;
  ASSERT_EQ(bst, flat) << "seed " << seed;
  ASSERT_EQ(flat_stats.steps, bst_stats.steps) << "seed " << seed;

  // Substep bound (Theorem 3.2) whenever shortcuts guarantee it.
  if (opts.heuristic == ShortcutHeuristic::kFull1Rho) {
    ASSERT_LE(flat_stats.max_substeps_in_step, 3u) << "seed " << seed;
  } else if (opts.heuristic != ShortcutHeuristic::kNone) {
    ASSERT_LE(flat_stats.max_substeps_in_step, opts.k + 2u) << "seed " << seed;
  }

  // Shortest-path tree reconstruction is always consistent.
  const auto parent = parents_from_distances(g, flat);
  ASSERT_TRUE(validate_shortest_path_tree(g, flat, parent)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 32));

// Regression sweep over the adversarial palette: directed graphs with
// self-loops and parallel arcs kept in the CSR. The preprocessing machinery
// assumes undirected inputs, so this sweeps the raw engines with
// constructed radii (correct for any radii by Theorem 3.1) instead.
class AdversarialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialFuzzTest, EnginesExactOnDirectedSelfLoopMultigraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const auto& c : test::adversarial_suite(seed)) {
    const Vertex n = c.graph.num_vertices();
    const SplitRng rng(seed + 9000);
    for (int s = 0; s < 3; ++s) {
      const Vertex src =
          static_cast<Vertex>(rng.bounded(1, static_cast<std::uint64_t>(s), n));
      const auto ref = dijkstra(c.graph, src);
      ASSERT_EQ(bellman_ford(c.graph, src), ref) << c.name << " src " << src;
      ASSERT_EQ(bellman_ford_parallel(c.graph, src), ref)
          << c.name << " src " << src;
      ASSERT_EQ(delta_stepping(c.graph, src), ref) << c.name << " src " << src;
      ASSERT_EQ(radius_stepping(c.graph, src, dijkstra_radii(n)), ref)
          << c.name << " src " << src;
      ASSERT_EQ(radius_stepping(c.graph, src, constant_radii(n, 33)), ref)
          << c.name << " src " << src;
      ASSERT_EQ(radius_stepping(c.graph, src, bellman_ford_radii(n)), ref)
          << c.name << " src " << src;
      ASSERT_EQ(radius_stepping_bst(c.graph, src, constant_radii(n, 33)), ref)
          << c.name << " src " << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rs
