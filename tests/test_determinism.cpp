// Thread-count determinism. Radius-Stepping's relaxations race through
// WriteMin, but the fixed point they converge to is the exact distance
// vector, so the OUTPUT must be bit-identical no matter how many OpenMP
// workers run — the property that makes parallel SSSP testable at all.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// RAII worker-count override so a failing assertion can't leak a weird
/// thread count into later tests.
class WorkerGuard {
 public:
  explicit WorkerGuard(int n) : before_(num_workers()) { set_num_workers(n); }
  ~WorkerGuard() { set_num_workers(before_); }

 private:
  int before_;
};

constexpr int kManyWorkers = 8;  // oversubscribed on small CI boxes — good

TEST(Determinism, RadiusSteppingMatchesAcrossWorkerCounts) {
  for (const auto& c : test::weighted_suite(/*seed=*/11)) {
    const Vertex n = c.graph.num_vertices();
    const auto radii = constant_radii(n, 25);

    std::vector<Dist> d1, dN;
    {
      WorkerGuard guard(1);
      d1 = radius_stepping(c.graph, 0, radii);
    }
    {
      WorkerGuard guard(kManyWorkers);
      dN = radius_stepping(c.graph, 0, radii);
    }
    EXPECT_EQ(d1, dN) << c.name;
    EXPECT_EQ(d1, dijkstra(c.graph, 0)) << c.name;
  }
}

TEST(Determinism, FullPipelineMatchesAcrossWorkerCounts) {
  // Preprocessing (parallel ball searches + shortcut merge) and both
  // engines, end to end: the whole pipeline is worker-count invariant.
  PreprocessOptions opts;
  opts.rho = 12;
  opts.k = 2;
  opts.heuristic = ShortcutHeuristic::kGreedy;

  for (const auto& c : test::weighted_suite(/*seed=*/23)) {
    PreprocessResult pre1, preN;
    std::vector<Dist> flat1, flatN, bst1, bstN;
    {
      WorkerGuard guard(1);
      pre1 = preprocess(c.graph, opts);
      flat1 = radius_stepping(pre1.graph, 0, pre1.radius);
      bst1 = radius_stepping_bst(pre1.graph, 0, pre1.radius);
    }
    {
      WorkerGuard guard(kManyWorkers);
      preN = preprocess(c.graph, opts);
      flatN = radius_stepping(preN.graph, 0, preN.radius);
      bstN = radius_stepping_bst(preN.graph, 0, preN.radius);
    }
    // The preprocessing output itself is deterministic (parallel sort with
    // a total order + pure-hash weights), not just the distances.
    EXPECT_EQ(pre1.graph, preN.graph) << c.name;
    EXPECT_EQ(pre1.radius, preN.radius) << c.name;
    EXPECT_EQ(flat1, flatN) << c.name;
    EXPECT_EQ(bst1, bstN) << c.name;
    EXPECT_EQ(flat1, bst1) << c.name;
    EXPECT_EQ(flat1, dijkstra(pre1.graph, 0)) << c.name;
  }
}

TEST(Determinism, StatsSettledCountIsWorkerInvariant) {
  // steps/substeps may differ across schedules in principle; the settled
  // count equals the number of reachable vertices and must not.
  for (const auto& c : test::weighted_suite(/*seed=*/31)) {
    RunStats s1, sN;
    {
      WorkerGuard guard(1);
      radius_stepping(c.graph, 0, constant_radii(c.graph.num_vertices(), 40),
                      &s1);
    }
    {
      WorkerGuard guard(kManyWorkers);
      radius_stepping(c.graph, 0, constant_radii(c.graph.num_vertices(), 40),
                      &sN);
    }
    EXPECT_EQ(s1.settled, sN.settled) << c.name;
    EXPECT_EQ(s1.steps, sN.steps) << c.name;
  }
}

}  // namespace
}  // namespace rs
