// IncrementalPreprocessor contract: after any sequence of weight-update
// batches, result() is BIT-IDENTICAL to a cold preprocess() of the
// current graph — same merged Graph (operator==), same radii, same edge
// accounting — across heuristics, worker counts, and the adversarial
// suite. Plus the accounting: small batches dirty a strict subset of the
// balls, and no-op batches dirty nothing.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "graph/update.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/incremental.hpp"
#include "shortcut/shortcut.hpp"
#include "test_util.hpp"

namespace rs {
namespace {

/// Restores the global worker count on scope exit.
struct WorkerGuard {
  int before = num_workers();
  ~WorkerGuard() { set_num_workers(before); }
};

std::vector<WeightUpdate> random_updates(const Graph& g, std::size_t count,
                                         std::mt19937& rng) {
  std::uniform_int_distribution<Weight> weight(1, 150);
  std::uniform_int_distribution<EdgeId> arc(0, g.num_edges() - 1);
  std::vector<WeightUpdate> out;
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId e = arc(rng);
    Vertex u = 0;
    while (g.last_arc(u) <= e) ++u;
    out.push_back(WeightUpdate{u, g.arc_target(e), weight(rng)});
  }
  return out;
}

void expect_identical(const PreprocessResult& got, const PreprocessResult& want,
                      const std::string& label) {
  EXPECT_TRUE(got.graph == want.graph) << label << ": merged graph differs";
  EXPECT_EQ(got.radius, want.radius) << label;
  EXPECT_EQ(got.added_edges, want.added_edges) << label;
  EXPECT_DOUBLE_EQ(got.added_factor, want.added_factor) << label;
}

TEST(IncrementalPreprocessor, InitMatchesColdBuild) {
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  for (const auto& c : test::weighted_suite(31)) {
    const IncrementalPreprocessor inc(c.graph, opts);
    expect_identical(inc.result(), preprocess(c.graph, opts), c.name);
  }
}

TEST(IncrementalPreprocessor, ValidatesOptions) {
  const Graph g = test::weighted_suite(32)[0].graph;
  PreprocessOptions bad;
  bad.rho = 0;
  EXPECT_THROW(IncrementalPreprocessor(g, bad), std::invalid_argument);
  bad.rho = 8;
  bad.k = 0;
  EXPECT_THROW(IncrementalPreprocessor(g, bad), std::invalid_argument);
}

/// Randomized churn: batches of growing size, each followed by a full
/// bit-identity check against a cold rebuild of the updated graph.
void churn(const std::vector<test::GraphCase>& suite,
           ShortcutHeuristic heuristic, std::uint64_t seed) {
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  opts.heuristic = heuristic;
  for (const auto& c : suite) {
    std::mt19937 rng(seed);
    IncrementalPreprocessor inc(c.graph, opts);
    for (int batch = 0; batch < 3; ++batch) {
      const std::size_t count = 1 + static_cast<std::size_t>(batch) * 5;
      const auto updates = random_updates(inc.graph(), count, rng);
      const IncrementalUpdateStats stats = inc.apply(updates);
      EXPECT_LE(stats.dirty_balls, stats.total_balls);
      expect_identical(inc.result(), preprocess(inc.graph(), opts),
                       c.name + " batch " + std::to_string(batch));
    }
  }
}

TEST(IncrementalPreprocessor, ChurnBitIdenticalKDP) {
  churn(test::weighted_suite(41), ShortcutHeuristic::kDP, 700);
}

TEST(IncrementalPreprocessor, ChurnBitIdenticalKGreedy) {
  // A shape subset keeps the cold-rebuild-per-batch cost in check.
  auto suite = test::weighted_suite(42);
  suite.resize(4);
  churn(suite, ShortcutHeuristic::kGreedy, 701);
}

TEST(IncrementalPreprocessor, ChurnBitIdenticalKNone) {
  // kNone still maintains radii incrementally; result().graph stays the
  // base graph.
  auto suite = test::weighted_suite(43);
  suite.resize(4);
  churn(suite, ShortcutHeuristic::kNone, 702);
}

TEST(IncrementalPreprocessor, ChurnBitIdenticalAdversarial) {
  // Directed/multigraph/self-loop inputs: merge_edges symmetrizes the
  // shortcut overlay identically on both paths, so bit-identity is the
  // meaningful contract here (serving equivalence is covered by the
  // raw-engine dynamic tests).
  churn(test::adversarial_suite(44), ShortcutHeuristic::kDP, 703);
}

TEST(IncrementalPreprocessor, ChurnBitIdenticalAcrossWorkerCounts) {
  WorkerGuard guard;
  auto suite = test::weighted_suite(45);
  suite.resize(3);
  for (const int workers : {1, 3, 8}) {
    set_num_workers(workers);
    churn(suite, ShortcutHeuristic::kDP, 704);
  }
}

TEST(IncrementalPreprocessor, NoOpBatchDirtiesNothing) {
  const Graph g = test::weighted_suite(46)[2].graph;
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  IncrementalPreprocessor inc(g, opts);
  // Re-state an existing weight: zero arcs change, zero balls recompute.
  Vertex u = 0;
  while (g.first_arc(u) == g.last_arc(u)) ++u;
  const EdgeId e = g.first_arc(u);
  const IncrementalUpdateStats stats =
      inc.apply({WeightUpdate{u, g.arc_target(e), g.arc_weight(e)}});
  EXPECT_EQ(stats.updated_arcs, 0u);
  EXPECT_EQ(stats.dirty_balls, 0u);
  expect_identical(inc.result(), preprocess(g, opts), "no-op");
}

TEST(IncrementalPreprocessor, SmallBatchDirtiesASubset) {
  // On a sparse grid a single edge update must not dirty every ball —
  // the locality that makes incremental rebuilds worth having.
  const Graph g = test::weighted_suite(47)[0].graph;  // grid2d
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  IncrementalPreprocessor inc(g, opts);
  std::mt19937 rng(55);
  const IncrementalUpdateStats stats =
      inc.apply(random_updates(g, 1, rng));
  EXPECT_GT(stats.dirty_balls, 0u);
  EXPECT_LT(stats.dirty_balls, stats.total_balls / 2);
}

TEST(IncrementalPreprocessor, CountDirtyPredictsApplyWithoutMutating) {
  const Graph g = test::weighted_suite(48)[0].graph;
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  IncrementalPreprocessor inc(g, opts);
  std::mt19937 rng(77);
  const std::vector<WeightUpdate> batch = random_updates(g, 3, rng);

  // Preview first: count_dirty must not change any state...
  const std::size_t predicted = inc.count_dirty(batch);
  EXPECT_TRUE(inc.graph() == g);
  // ...and it upper-bounds what apply() then actually recomputes (equal
  // when no update in the batch is a no-op).
  const IncrementalUpdateStats stats = inc.apply(batch);
  EXPECT_GE(predicted, stats.dirty_balls);
  EXPECT_GT(predicted, 0u);

  // A no-op batch still counts its balls (documented upper bound): the
  // preview has no arc-weight lookup, only the membership index.
  Vertex u = 0;
  while (inc.graph().first_arc(u) == inc.graph().last_arc(u)) ++u;
  const EdgeId e = inc.graph().first_arc(u);
  const std::vector<WeightUpdate> noop = {WeightUpdate{
      u, inc.graph().arc_target(e), inc.graph().arc_weight(e)}};
  EXPECT_GT(inc.count_dirty(noop), 0u);
  EXPECT_EQ(inc.apply(noop).dirty_balls, 0u);

  // Out-of-range vertices are simply not in any ball.
  EXPECT_EQ(inc.count_dirty({WeightUpdate{
                static_cast<Vertex>(inc.graph().num_vertices() + 7),
                static_cast<Vertex>(inc.graph().num_vertices() + 8), 1}}),
            0u);
}

TEST(IncrementalPreprocessor, ExceptionLeavesStateUsable) {
  const Graph g = test::weighted_suite(48)[1].graph;
  PreprocessOptions opts;
  opts.rho = 8;
  opts.k = 2;
  IncrementalPreprocessor inc(g, opts);
  const PreprocessResult before = inc.result();
  // Bad update: throws out of apply_weight_updates before any commit.
  EXPECT_THROW(inc.apply({WeightUpdate{0, 0, 5}}), std::invalid_argument);
  expect_identical(inc.result(), before, "after failed apply");
  EXPECT_TRUE(inc.graph() == g);
}

}  // namespace
}  // namespace rs
