#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "graph/types.hpp"

namespace rs {
namespace {

Graph triangle() {
  return build_graph(3, {{0, 1, 5}, {1, 2, 3}, {0, 2, 10}});
}

TEST(Graph, EmptyGraph) {
  const Graph g = build_graph(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, VerticesWithoutEdges) {
  const Graph g = build_graph(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, TriangleStructure) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);  // both arc directions
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.max_weight(), 10u);
  EXPECT_EQ(g.min_weight(), 3u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, NeighborSpansMatchArcAccessors) {
  const Graph g = triangle();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    ASSERT_EQ(nbrs.size(), ws.size());
    std::size_t idx = 0;
    for (EdgeId e = g.first_arc(v); e < g.last_arc(v); ++e, ++idx) {
      EXPECT_EQ(g.arc_target(e), nbrs[idx]);
      EXPECT_EQ(g.arc_weight(e), ws[idx]);
    }
  }
}

TEST(Builder, SymmetrizeAddsReverseArcs) {
  const Graph g = build_graph(2, {{0, 1, 7}});
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.arc_target(g.first_arc(1)), 0u);
  EXPECT_EQ(g.arc_weight(g.first_arc(1)), 7u);
}

TEST(Builder, NoSymmetrizeKeepsDirection) {
  BuildOptions opts;
  opts.symmetrize = false;
  const Graph g = build_graph(2, {{0, 1, 7}}, opts);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Builder, DedupKeepsMinimumWeight) {
  const Graph g = build_graph(2, {{0, 1, 9}, {0, 1, 4}, {1, 0, 6}});
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.arc_weight(g.first_arc(0)), 4u);
  EXPECT_EQ(g.arc_weight(g.first_arc(1)), 4u);
}

TEST(Builder, SelfLoopsRemovedByDefault) {
  const Graph g = build_graph(2, {{0, 0, 1}, {0, 1, 2}});
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Builder, SelfLoopsKeptWhenRequested) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  opts.symmetrize = false;
  opts.dedup = false;
  const Graph g = build_graph(2, {{0, 0, 1}, {0, 1, 2}}, opts);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(build_graph(2, {{0, 2, 1}}), std::invalid_argument);
}

TEST(Builder, AdjacencySortedByTarget) {
  const Graph g = build_graph(4, {{0, 3, 1}, {0, 1, 1}, {0, 2, 1}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, WeightSortedAdjacency) {
  const Graph g = build_graph(4, {{0, 1, 9}, {0, 2, 1}, {0, 3, 5}});
  const Graph gw = g.with_weight_sorted_adjacency();
  const auto ws = gw.neighbor_weights(0);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ws.begin(), ws.end()));
  // Same edge multiset.
  EXPECT_EQ(gw.with_target_sorted_adjacency(),
            g.with_target_sorted_adjacency());
}

TEST(Graph, ToTriplesRoundTrip) {
  const Graph g = triangle();
  const Graph g2 = build_graph(3, g.to_triples());
  EXPECT_EQ(g, g2.with_target_sorted_adjacency());
}

TEST(Graph, RejectsInconsistentCsr) {
  EXPECT_THROW(Graph({0, 2}, {1}, {1}), std::invalid_argument);  // offs vs arcs
  EXPECT_THROW(Graph({0, 1}, {5}, {1}), std::invalid_argument);  // target range
  EXPECT_THROW(Graph({0, 1}, {0}, {1, 2}), std::invalid_argument);  // wt size
  EXPECT_THROW(Graph({1, 0}, {}, {}), std::invalid_argument);  // non-monotone
}

TEST(MergeEdges, AddsNewEdgesAndDedups) {
  const Graph g = triangle();
  const Graph merged = merge_edges(g, {{0, 1, 2}, {1, 2, 99}});
  // (0,1) improved to weight 2; (1,2) keeps 3; no new pairs.
  EXPECT_EQ(merged.num_undirected_edges(), 3u);
  EXPECT_EQ(merged.arc_weight(merged.first_arc(0)), 2u);
}

TEST(MergeEdges, CountsNewPairs) {
  const Graph g = build_graph(4, {{0, 1, 1}, {1, 2, 1}});
  const Graph merged = merge_edges(g, {{0, 3, 5}});
  EXPECT_EQ(merged.num_undirected_edges(), 3u);
  EXPECT_EQ(merged.degree(3), 1u);
}

TEST(Stats, ConnectedComponents) {
  const Graph g = build_graph(5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Stats, LargestComponentExtraction) {
  const Graph g = build_graph(6, {{0, 1, 2}, {1, 2, 3}, {3, 4, 1}});
  std::vector<Vertex> map;
  const Graph big = largest_component(g, &map);
  EXPECT_EQ(big.num_vertices(), 3u);
  EXPECT_EQ(big.num_undirected_edges(), 2u);
  EXPECT_TRUE(is_connected(big));
  EXPECT_EQ(map[5], kNoVertex);
  EXPECT_NE(map[0], kNoVertex);
}

TEST(Stats, DegreeStats) {
  const Graph g = build_graph(4, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}});
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 3u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0 / 4.0);
}

TEST(Span, AdjacencyViewMatchesCsrArrays) {
  // rs::Span is the C++17 replacement for the std::span the accessors used
  // to return; pin its whole surface against the raw CSR arrays.
  const Graph g = triangle();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.neighbor_weights(v);
    ASSERT_EQ(nbrs.size(), static_cast<std::size_t>(g.degree(v)));
    ASSERT_EQ(wts.size(), nbrs.size());
    EXPECT_EQ(nbrs.data(), g.targets().data() + g.first_arc(v));
    EXPECT_EQ(wts.data(), g.weights().data() + g.first_arc(v));
    std::size_t i = 0;
    for (const Vertex u : nbrs) {  // range-for via begin()/end()
      EXPECT_EQ(u, nbrs[i]);
      EXPECT_EQ(u, g.arc_target(g.first_arc(v) + i));
      ++i;
    }
    EXPECT_EQ(i, nbrs.size());
    if (!nbrs.empty()) {
      EXPECT_EQ(nbrs.front(), nbrs[0]);
      EXPECT_EQ(nbrs.back(), nbrs[nbrs.size() - 1]);
    }
  }
  const Graph lonely = build_graph(1, {});
  EXPECT_TRUE(lonely.neighbors(0).empty());
  EXPECT_EQ(lonely.neighbors(0).size(), 0u);
}

TEST(Graph, EqualityComparesAllComponents) {
  // operator== / != were defaulted (C++20) and are now hand-written; make
  // sure every member participates.
  const Graph a = triangle();
  const Graph b = triangle();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
  const Graph different_weight =
      build_graph(3, {{0, 1, 6}, {1, 2, 3}, {0, 2, 10}});
  EXPECT_TRUE(a != different_weight);
  const Graph different_edge = build_graph(3, {{0, 1, 5}, {1, 2, 3}});
  EXPECT_TRUE(a != different_edge);
  const Graph different_n = build_graph(4, {{0, 1, 5}, {1, 2, 3}, {0, 2, 10}});
  EXPECT_TRUE(a != different_n);
}

TEST(EdgeTriple, EqualityComparesAllFields) {
  const EdgeTriple t{1, 2, 3};
  EXPECT_TRUE(t == (EdgeTriple{1, 2, 3}));
  EXPECT_TRUE(t != (EdgeTriple{9, 2, 3}));
  EXPECT_TRUE(t != (EdgeTriple{1, 9, 3}));
  EXPECT_TRUE(t != (EdgeTriple{1, 2, 9}));
}

TEST(Graph, TransposeReversesArcsAndIsInvolutive) {
  BuildOptions directed;
  directed.symmetrize = false;
  const Graph g = build_graph(
      4, {{0, 1, 5}, {0, 2, 9}, {2, 1, 3}, {3, 0, 7}, {1, 1, 2}}, directed);
  const Graph t = g.transposed();
  ASSERT_EQ(t.num_vertices(), g.num_vertices());
  ASSERT_EQ(t.num_edges(), g.num_edges());
  // Arc multisets must be exact mirrors (weights kept).
  auto fwd = g.to_triples();
  auto rev = t.to_triples();
  for (auto& e : rev) std::swap(e.u, e.v);
  const auto key = [](const EdgeTriple& a, const EdgeTriple& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  };
  std::sort(fwd.begin(), fwd.end(), key);
  std::sort(rev.begin(), rev.end(), key);
  EXPECT_EQ(fwd, rev);
  // Double transpose is the identity up to adjacency order.
  EXPECT_EQ(t.transposed().with_target_sorted_adjacency(),
            g.with_target_sorted_adjacency());
  // A symmetric graph transposes to itself (same arc multiset).
  const Graph und = build_graph(3, {{0, 1, 4}, {1, 2, 6}});
  EXPECT_EQ(und.transposed().with_target_sorted_adjacency(),
            und.with_target_sorted_adjacency());
}

TEST(Stats, EccentricityAndDiameter) {
  // Path 0-1-2-3: ecc(0)=3, diameter=3.
  const Graph g = build_graph(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  EXPECT_EQ(bfs_eccentricity(g, 0), 3u);
  EXPECT_EQ(bfs_eccentricity(g, 1), 2u);
  EXPECT_EQ(approx_diameter(g, 1), 3u);
}

}  // namespace
}  // namespace rs
