#include <algorithm>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/rng.hpp"
#include "pq/binary_heap.hpp"
#include "pq/bucket_queue.hpp"
#include "pq/pairing_heap.hpp"

namespace rs {
namespace {

// ---------------------------------------------------------------- IndexedHeap

TEST(IndexedHeap, BasicInsertExtract) {
  IndexedHeap<std::uint64_t> h(10);
  EXPECT_TRUE(h.empty());
  h.insert_or_decrease(3, 30);
  h.insert_or_decrease(1, 10);
  h.insert_or_decrease(2, 20);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.min().id, 1u);
  EXPECT_EQ(h.extract_min().key, 10u);
  EXPECT_EQ(h.extract_min().id, 2u);
  EXPECT_EQ(h.extract_min().id, 3u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, DecreaseKeyMovesElementUp) {
  IndexedHeap<std::uint64_t> h(10);
  for (Vertex v = 0; v < 10; ++v) h.insert_or_decrease(v, 100 + v);
  EXPECT_TRUE(h.insert_or_decrease(9, 1));
  EXPECT_EQ(h.min().id, 9u);
  EXPECT_EQ(h.key_of(9), 1u);
}

TEST(IndexedHeap, IncreaseKeyRejected) {
  IndexedHeap<std::uint64_t> h(4);
  h.insert_or_decrease(0, 5);
  EXPECT_FALSE(h.insert_or_decrease(0, 7));
  EXPECT_EQ(h.key_of(0), 5u);
}

TEST(IndexedHeap, RemoveArbitrary) {
  IndexedHeap<std::uint64_t> h(8);
  for (Vertex v = 0; v < 8; ++v) h.insert_or_decrease(v, v * 3);
  h.remove(0);  // remove the min
  h.remove(4);  // remove an interior element
  EXPECT_FALSE(h.contains(0));
  EXPECT_FALSE(h.contains(4));
  std::vector<Vertex> order;
  while (!h.empty()) order.push_back(h.extract_min().id);
  EXPECT_EQ(order, (std::vector<Vertex>{1, 2, 3, 5, 6, 7}));
}

TEST(IndexedHeap, ClearResetsMembership) {
  IndexedHeap<std::uint64_t> h(4);
  h.insert_or_decrease(2, 1);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
  h.insert_or_decrease(2, 9);
  EXPECT_EQ(h.key_of(2), 9u);
}

class HeapRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HeapRandomTest, MatchesReferenceHeapUnderMixedOps) {
  const int seed = GetParam();
  SplitRng rng(static_cast<std::uint64_t>(seed));
  const Vertex n = 500;
  IndexedHeap<std::uint64_t> h(n);
  PairingHeap<std::uint64_t> p(n);
  std::vector<std::uint64_t> best(n, ~std::uint64_t{0});

  // Mixed insert/decrease workload, then full drain; both heaps must agree
  // with the reference min tracking.
  std::uint64_t op = 0;
  for (int round = 0; round < 3000; ++round) {
    const Vertex v = static_cast<Vertex>(rng.bounded(0, op++, n));
    const std::uint64_t key = rng.bounded(1, op++, 1'000'000);
    if (key < best[v]) best[v] = key;
    h.insert_or_decrease(v, key);
    p.insert_or_decrease(v, key);
    EXPECT_EQ(h.key_of(v), best[v]);
    EXPECT_EQ(p.key_of(v), best[v]);
  }
  ASSERT_EQ(h.size(), p.size());
  std::uint64_t last = 0;
  while (!h.empty()) {
    const auto eh = h.extract_min();
    const auto ep = p.extract_min();
    EXPECT_EQ(eh.key, ep.key);
    EXPECT_GE(eh.key, last);  // nondecreasing extraction order
    last = eh.key;
    EXPECT_EQ(eh.key, best[eh.id]);
  }
  EXPECT_TRUE(p.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapRandomTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------- PairingHeap

TEST(PairingHeap, DeepMeldDetachStress) {
  // Exercises the meld/detach/two-pass-merge machinery (the code GCC's
  // -Warray-bounds false-positives on) with long decrease-key chains that
  // force detaches from deep child lists, validated against a binary heap.
  const Vertex n = 512;
  PairingHeap<std::uint64_t> p(n);
  IndexedHeap<std::uint64_t> ref(n);
  SplitRng rng(4242);
  // Keys are kept globally unique (low bits carry the vertex id) so both
  // heaps extract identical (key, id) sequences — no tie ambiguity.
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (Vertex v = 0; v < n; ++v) {
      const std::uint64_t key = (1 + rng.get(round, v) % 100'000) * n + v;
      EXPECT_EQ(p.insert_or_decrease(v, key), ref.insert_or_decrease(v, key));
    }
    // Decrease random subsets repeatedly: detach from arbitrary depths.
    for (std::uint64_t i = 0; i < 2000; ++i) {
      const Vertex v = static_cast<Vertex>(rng.bounded(round + 10, i, n));
      if (!p.contains(v)) continue;
      const std::uint64_t q = p.key_of(v) / n;
      if (q == 0) continue;
      const std::uint64_t nk = (rng.get(round + 20, i) % q) * n + v;
      EXPECT_EQ(p.insert_or_decrease(v, nk), ref.insert_or_decrease(v, nk));
      ASSERT_EQ(p.key_of(v), ref.key_of(v));
    }
    // Drain half, interleaving fresh inserts to rebuild structure.
    for (Vertex i = 0; i < n / 2; ++i) {
      ASSERT_FALSE(p.empty());
      const auto got = p.extract_min();
      const auto want = ref.extract_min();
      ASSERT_EQ(got.key, want.key);
      ASSERT_EQ(got.id, want.id);
      ASSERT_EQ(p.size(), ref.size());
    }
  }
  while (!p.empty()) {
    ASSERT_EQ(p.extract_min().key, ref.extract_min().key);
  }
  EXPECT_TRUE(ref.empty());
}

TEST(PairingHeap, BasicOrder) {
  PairingHeap<std::uint64_t> h(5);
  h.insert_or_decrease(0, 50);
  h.insert_or_decrease(1, 10);
  h.insert_or_decrease(2, 30);
  EXPECT_EQ(h.min_id(), 1u);
  EXPECT_EQ(h.min_key(), 10u);
  EXPECT_EQ(h.extract_min().id, 1u);
  EXPECT_EQ(h.extract_min().id, 2u);
  EXPECT_EQ(h.extract_min().id, 0u);
}

TEST(PairingHeap, DecreaseKeyOnNonRoot) {
  PairingHeap<std::uint64_t> h(6);
  for (Vertex v = 0; v < 6; ++v) h.insert_or_decrease(v, 100 + v);
  EXPECT_TRUE(h.insert_or_decrease(5, 1));
  EXPECT_EQ(h.min_id(), 5u);
  EXPECT_FALSE(h.insert_or_decrease(5, 2));  // raise rejected
}

TEST(PairingHeap, ReinsertAfterExtract) {
  PairingHeap<std::uint64_t> h(3);
  h.insert_or_decrease(0, 5);
  h.extract_min();
  EXPECT_FALSE(h.contains(0));
  h.insert_or_decrease(0, 9);
  EXPECT_TRUE(h.contains(0));
  EXPECT_EQ(h.min_key(), 9u);
}

TEST(PairingHeap, ClearEmptiesEverything) {
  PairingHeap<std::uint64_t> h(4);
  h.insert_or_decrease(1, 1);
  h.insert_or_decrease(2, 2);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(1));
}

// ---------------------------------------------------------------- BucketQueue

TEST(BucketQueue, MonotoneExtraction) {
  BucketQueue q(10, /*delta=*/5, /*max_edge_weight=*/100);
  q.insert_or_decrease(0, 12);  // bucket 2
  q.insert_or_decrease(1, 3);   // bucket 0
  q.insert_or_decrease(2, 7);   // bucket 1
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_bucket(), 0u);
  EXPECT_EQ(q.take_bucket(0), (std::vector<Vertex>{1}));
  EXPECT_EQ(q.next_bucket(), 1u);
  EXPECT_EQ(q.take_bucket(1), (std::vector<Vertex>{2}));
  EXPECT_EQ(q.next_bucket(), 2u);
  EXPECT_EQ(q.take_bucket(2), (std::vector<Vertex>{0}));
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, DecreaseMovesToEarlierBucket) {
  BucketQueue q(4, 10, 100);
  q.insert_or_decrease(0, 55);
  q.insert_or_decrease(0, 15);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_bucket(), 1u);
  EXPECT_EQ(q.take_bucket(1), (std::vector<Vertex>{0}));
}

TEST(BucketQueue, NeverMovesBackwards) {
  BucketQueue q(4, 10, 100);
  q.insert_or_decrease(0, 15);
  q.insert_or_decrease(0, 55);  // larger: ignored
  EXPECT_EQ(q.next_bucket(), 1u);
  EXPECT_EQ(q.take_bucket(1).size(), 1u);
}

TEST(BucketQueue, KeysBelowCursorClampIntoCurrentBucket) {
  BucketQueue q(4, 10, 100);
  q.insert_or_decrease(0, 35);
  EXPECT_EQ(q.next_bucket(), 3u);
  // While processing bucket 3, a relaxation yields key 31 for vertex 1:
  // same bucket. And key 5 would belong to a passed bucket; it clamps.
  q.insert_or_decrease(1, 5);
  EXPECT_EQ(q.next_bucket(), 3u);
  auto got = q.take_bucket(3);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<Vertex>{0, 1}));
}

TEST(BucketQueue, RemoveDropsElement) {
  BucketQueue q(4, 10, 100);
  q.insert_or_decrease(0, 15);
  q.insert_or_decrease(1, 15);
  q.remove(0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.contains(0));
  EXPECT_EQ(q.take_bucket(q.next_bucket()), (std::vector<Vertex>{1}));
}

TEST(BucketQueue, CyclicReuseAcrossManyBuckets) {
  // Cycle through many more buckets than the array holds.
  BucketQueue q(2, /*delta=*/1, /*max_edge_weight=*/4);
  Dist key = 0;
  for (int round = 0; round < 50; ++round) {
    q.insert_or_decrease(0, key);
    q.insert_or_decrease(1, key + 3);
    const std::size_t b0 = q.next_bucket();
    EXPECT_EQ(b0, static_cast<std::size_t>(key));
    EXPECT_EQ(q.take_bucket(b0), (std::vector<Vertex>{0}));
    const std::size_t b1 = q.next_bucket();
    EXPECT_EQ(b1, static_cast<std::size_t>(key + 3));
    EXPECT_EQ(q.take_bucket(b1), (std::vector<Vertex>{1}));
    key += 3;  // strictly increasing: monotone usage
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace rs
