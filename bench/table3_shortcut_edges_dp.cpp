// Reproduces Table 3: factors of additional edges added by the DYNAMIC
// PROGRAMMING shortcut heuristic (§4.2.2), k in {2..5}, rho in {10..1000}.
//
// Paper headline: DP tracks greedy on regular graphs (roads, grids) but is
// dramatically cheaper on webgraphs — 0.13 vs 39.99 at (k=3, rho=100) on
// Stanford — because it shortcuts straight to the hubs. Expect DP <= greedy
// everywhere and a web-graph gap of orders of magnitude.
#include "shortcut_edges.hpp"

int main() {
  rs::exp::run_shortcut_edge_table(
      "Table 3 — additional-edge factors, DP heuristic",
      rs::ShortcutHeuristic::kDP);
  return 0;
}
