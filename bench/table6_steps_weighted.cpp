// Reproduces Table 6: average Radius-Stepping step count on WEIGHTED
// graphs (uniform integer weights in [1, 10^4], the paper's protocol) as
// rho varies.
//
// Paper headline: at rho=1 (Dijkstra-with-batched-extraction) steps ~ n
// (986K on road-PA); rho=10 already cuts ~1000x on roads/grids and
// 50-100x on webgraphs; a few hundred steps at rho=100. Expect the same
// dramatic small-rho cliff and ordering.
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Table 6 — mean steps, weighted (w in [1, 10^4])", s, graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/true);
  print_steps_table(graphs, t, /*as_reduction=*/false);
  emit_steps_json("table6_steps_weighted", graphs, t, s);
  return 0;
}
