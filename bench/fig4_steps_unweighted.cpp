// Reproduces Figure 4(a-c): unweighted step counts vs rho as CSV series
// (log-log axes recover the paper's downward-linear plots; the webgraph
// curves flatten — the paper's noted exception).
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Figure 4 — steps vs rho, unweighted (CSV)", s, graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/false);
  print_steps_csv(graphs, t);
  emit_steps_json("fig4_steps_unweighted", graphs, t, s);
  return 0;
}
