// Shared driver for Tables 4-7 / Figures 4-5: mean Radius-Stepping step
// counts over sampled sources, as rho varies.
//
// Protocol notes (DESIGN.md §4-5):
//  * radii are r_rho(v) from ball searches; shortcut edges are NOT
//    materialized — the paper observes (§5.3) that the step count depends
//    on rho only, and the step sequence is driven purely by the radii;
//  * the same source sample is reused for every rho (paper §5.3);
//  * rho = 1 rows equal BFS rounds (unweighted) / distance classes
//    (weighted), the baselines Tables 5 and 7 divide by.
#pragma once

#include <cstdio>
#include <vector>

#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_unweighted.hpp"
#include "exp_common.hpp"
#include "shortcut/ball_search.hpp"

namespace rs::exp {

inline std::vector<Vertex> step_rhos(const Scale& s, bool weighted) {
  if (s.name == "ci") return {1, 2, 5, 10, 20};
  if (weighted) return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000};
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000};
}

/// Mean steps over `sources` for one (graph, rho).
inline double mean_steps(const Graph& g, const std::vector<Vertex>& sources,
                         Vertex rho, bool weighted) {
  const std::vector<Dist> radius =
      rho == 1 ? dijkstra_radii(g.num_vertices()) : all_radii(g, rho);
  double total = 0;
  for (const Vertex src : sources) {
    RunStats stats;
    if (weighted) {
      radius_stepping(g, src, radius, &stats);
    } else {
      radius_stepping_unweighted(g, src, radius, &stats);
    }
    total += static_cast<double>(stats.steps);
  }
  return total / static_cast<double>(sources.size());
}

struct StepsTable {
  std::vector<Vertex> rhos;
  // steps[graph][rho index]
  std::vector<std::vector<double>> steps;
};

inline StepsTable compute_steps_table(const std::vector<NamedGraph>& graphs,
                                      const Scale& s, bool weighted,
                                      std::uint64_t weight_seed = 999) {
  StepsTable t;
  t.rhos = step_rhos(s, weighted);
  for (const auto& [name, g0] : graphs) {
    const Graph g = weighted ? paper_weighted(g0, weight_seed) : g0;
    const auto sources = sample_sources(g, s.sources);
    std::vector<double> row;
    for (const Vertex rho : t.rhos) {
      row.push_back(mean_steps(g, sources, rho, weighted));
    }
    t.steps.push_back(std::move(row));
  }
  return t;
}

inline void print_steps_table(const std::vector<NamedGraph>& graphs,
                              const StepsTable& t, bool as_reduction) {
  std::printf("  %6s", "rho");
  for (const auto& [name, g] : graphs) std::printf("  %10s", name.c_str());
  std::printf("\n");
  for (std::size_t ri = 0; ri < t.rhos.size(); ++ri) {
    if (as_reduction && t.rhos[ri] == 1) continue;  // baseline row
    std::printf("  %6u", t.rhos[ri]);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      if (as_reduction) {
        std::printf("  %10.2f", t.steps[gi][0] / t.steps[gi][ri]);
      } else {
        std::printf("  %10.2f", t.steps[gi][ri]);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// Writes the steps table as BENCH_<bench>.json (one metric row per
/// graph x rho) so CI can track the perf trajectory; prints the path.
inline void emit_steps_json(const char* bench,
                            const std::vector<NamedGraph>& graphs,
                            const StepsTable& t, const Scale& s) {
  BenchJson json(bench, s);
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    for (std::size_t ri = 0; ri < t.rhos.size(); ++ri) {
      json.add("mean_steps", t.steps[gi][ri], "steps",
               {{"graph", graphs[gi].name},
                {"rho", std::to_string(t.rhos[ri])}});
    }
  }
  const std::string path = json.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
}

inline void print_steps_csv(const std::vector<NamedGraph>& graphs,
                            const StepsTable& t) {
  std::printf("rho");
  for (const auto& [name, g] : graphs) std::printf(",%s", name.c_str());
  std::printf("\n");
  for (std::size_t ri = 0; ri < t.rhos.size(); ++ri) {
    std::printf("%u", t.rhos[ri]);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      std::printf(",%.2f", t.steps[gi][ri]);
    }
    std::printf("\n");
  }
}

}  // namespace rs::exp
