// High-throughput query serving: queries/sec over a fixed source batch,
// comparing three serving strategies on the same preprocessed engine:
//
//   seq    — per-source engine.query() loop with fresh per-query state:
//            exactly the pre-batching query_batch() behaviour (baseline);
//   ctx    — the same sequential loop over one warm QueryContext
//            (zero-allocation hot path, intra-query parallelism);
//   batch  — engine.query_batch(): the two-level scheduler (source-parallel
//            across the per-worker context pool when the batch is at least
//            as wide as the worker count).
//
// The three strategies run for the flat engine (metric names seq_qps /
// ctx_qps / batch_qps) and for Algorithm 2 on both ordered-set substrates
// (bst_* for the arena treap, bstflat_* for the flat sorted array), so the
// BENCH json captures the substrate crossover and the arena's warm-context
// effect per commit. Every strategy's distances are checked against the
// flat baseline.
//
// Targeted point-to-point serving (PR 5) is tracked alongside: p2p1_qps /
// p2p8_qps / p2p64_qps time a warm-context serve() loop over the same
// source batch with 1, 8, and 64 random targets per request — the
// early-termination, O(|targets|)-response regime a router or
// reachability service runs. Each p2p strategy's per-target distances are
// checked against the flat full-SSSP reference too.
//
// Self-timed on purpose (no Google Benchmark dependency despite the gb_
// prefix) so it runs in every environment, including the CI bench-smoke
// job, and always writes BENCH_gb_query_throughput.json for the perf
// trajectory. Exits non-zero if any strategy disagrees with the baseline
// distances, so it doubles as an end-to-end smoke test.
//
// Knobs: RS_SCALE / RS_THREADS as usual, RS_BATCH (sources per batch,
// default 64), RS_REPS (timing repetitions, default 5; the slower bst
// strategies run max(2, RS_REPS - 2) reps), RS_RHO (preprocessing rho,
// default 32).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/query_context.hpp"
#include "exp_common.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

namespace {

using namespace rs;

/// Best-of-`reps` wall time of `run`, in seconds (min filters scheduler
/// noise; each rep redoes the whole batch).
double best_seconds(int reps, const std::function<void()>& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    run();
    const double s = t.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

/// One targeted request per source: `targets_per` random targets drawn
/// deterministically per request (same requests for every engine/rep).
std::vector<QueryRequest> make_p2p_requests(const Graph& g,
                                            const std::vector<Vertex>& sources,
                                            int targets_per,
                                            QueryEngine engine) {
  const SplitRng rng(4242);
  std::vector<QueryRequest> requests;
  requests.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    QueryRequest req;
    req.source = sources[i];
    req.engine = engine;
    req.targets.reserve(static_cast<std::size_t>(targets_per));
    for (int t = 0; t < targets_per; ++t) {
      req.targets.push_back(static_cast<Vertex>(rng.bounded(
          i, static_cast<std::uint64_t>(t), g.num_vertices())));
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const int batch = static_cast<int>(env_int64("RS_BATCH", 64));
  const int reps = static_cast<int>(env_int64("RS_REPS", 5));
  const auto rho = static_cast<Vertex>(env_int64("RS_RHO", 32));

  const auto graphs = shortcut_suite(s);
  print_header("Query throughput — serving strategies (queries/sec)", s,
               graphs);
  std::printf("batch=%d  reps=%d  rho=%u\n\n", batch, reps, rho);
  std::printf("  %-8s  %-8s  %10s  %10s  %10s  %8s  %10s  %10s  %10s\n",
              "graph", "engine", "seq_qps", "ctx_qps", "batch_qps", "speedup",
              "p2p1_qps", "p2p8_qps", "p2p64_qps");

  BenchJson json("gb_query_throughput", s);
  bool ok = true;

  struct EngineRow {
    QueryEngine engine;
    const char* label;   // table column / json label
    const char* prefix;  // metric-name prefix ("" = flat, the PR 2 names)
  };
  const EngineRow rows[] = {
      {QueryEngine::kFlat, "flat", ""},
      {QueryEngine::kBst, "bst", "bst_"},
      {QueryEngine::kBstFlat, "bstflat", "bstflat_"},
  };

  for (const auto& [name, g0] : graphs) {
    const Graph g = paper_weighted(g0);
    PreprocessOptions opts;
    opts.rho = rho;
    opts.k = 2;
    const SsspEngine engine(g, opts);
    const std::vector<Vertex> sources =
        sample_sources(g, batch, /*seed=*/777);

    // Reference distances: fresh flat queries, computed once per graph.
    std::vector<QueryResult> flat_ref;
    flat_ref.reserve(sources.size());
    for (const Vertex src : sources) flat_ref.push_back(engine.query(src));

    for (const auto& row : rows) {
      // The ordered-set engines are slower; trim their repetitions.
      const int row_reps =
          row.engine == QueryEngine::kFlat ? reps : std::max(2, reps - 2);

      // Baseline: the pre-batching query_batch — one fresh query/source.
      std::vector<QueryResult> seq_results;
      const auto run_seq = [&] {
        seq_results.clear();
        seq_results.reserve(sources.size());
        for (const Vertex src : sources) {
          seq_results.push_back(engine.query(src, row.engine));
        }
      };

      // One warm reused context, sequential batch loop.
      QueryContext ctx(g.num_vertices());
      std::vector<QueryResult> ctx_results;
      const auto run_ctx = [&] {
        ctx_results.clear();
        ctx_results.reserve(sources.size());
        for (const Vertex src : sources) {
          ctx_results.push_back(engine.query(src, row.engine, ctx));
        }
      };

      // The two-level batch scheduler.
      std::vector<QueryResult> batch_results;
      const auto run_batch = [&] {
        batch_results = engine.query_batch(sources, row.engine);
      };

      // Warm-up (also materializes every result for the equality check).
      run_seq();
      run_ctx();
      run_batch();
      for (std::size_t i = 0; i < sources.size(); ++i) {
        if (seq_results[i].dist != flat_ref[i].dist ||
            ctx_results[i].dist != flat_ref[i].dist ||
            batch_results[i].dist != flat_ref[i].dist) {
          std::fprintf(stderr, "MISMATCH on %s engine %s source %u\n",
                       name.c_str(), row.label, sources[i]);
          ok = false;
        }
      }

      const double t_seq = best_seconds(row_reps, run_seq);
      const double t_ctx = best_seconds(row_reps, run_ctx);
      const double t_batch = best_seconds(row_reps, run_batch);
      const double b = static_cast<double>(batch);
      const double seq_qps = b / t_seq;
      const double ctx_qps = b / t_ctx;
      const double batch_qps = b / t_batch;
      const double speedup = batch_qps / seq_qps;

      // Targeted point-to-point serving: one warm context + reused
      // response over per-source requests with 1 / 8 / 64 random targets
      // (early termination + O(|targets|) responses). Distances are
      // verified against the full-SSSP reference during warm-up.
      const int target_counts[] = {1, 8, 64};
      double p2p_qps[3] = {0.0, 0.0, 0.0};
      QueryContext p2p_ctx(g.num_vertices());
      QueryResponse p2p_resp;
      for (int ti = 0; ti < 3; ++ti) {
        const std::vector<QueryRequest> requests =
            make_p2p_requests(g, sources, target_counts[ti], row.engine);
        for (std::size_t i = 0; i < requests.size(); ++i) {  // warm + check
          engine.serve(requests[i], p2p_ctx, p2p_resp);
          for (const TargetResult& tr : p2p_resp.targets) {
            if (tr.dist != flat_ref[i].dist[tr.target]) {
              std::fprintf(stderr,
                           "P2P MISMATCH on %s engine %s source %u "
                           "target %u\n",
                           name.c_str(), row.label, requests[i].source,
                           tr.target);
              ok = false;
            }
          }
        }
        const double t_p2p = best_seconds(row_reps, [&] {
          for (const QueryRequest& req : requests) {
            engine.serve(req, p2p_ctx, p2p_resp);
          }
        });
        p2p_qps[ti] = b / t_p2p;
      }

      std::printf("  %-8s  %-8s  %10.1f  %10.1f  %10.1f  %7.2fx  %10.1f  "
                  "%10.1f  %10.1f\n",
                  name.c_str(), row.label, seq_qps, ctx_qps, batch_qps,
                  speedup, p2p_qps[0], p2p_qps[1], p2p_qps[2]);

      // The engine lives in the metric-name prefix, NOT in a label: the
      // flat metrics keep their PR 2 identity (name + labels), so the CI
      // comparator matches them against pre-existing baselines instead of
      // opening a blind window on the commit that adds the bst rows.
      const BenchJson::Labels labels{{"graph", name},
                                     {"batch", std::to_string(batch)},
                                     {"rho", std::to_string(rho)}};
      const std::string p(row.prefix);
      json.add(p + "seq_qps", seq_qps, "queries/sec", labels);
      json.add(p + "ctx_qps", ctx_qps, "queries/sec", labels);
      json.add(p + "batch_qps", batch_qps, "queries/sec", labels);
      json.add(p + "batch_speedup", speedup, "x", labels);
      json.add(p + "p2p1_qps", p2p_qps[0], "queries/sec", labels);
      json.add(p + "p2p8_qps", p2p_qps[1], "queries/sec", labels);
      json.add(p + "p2p64_qps", p2p_qps[2], "queries/sec", labels);
    }

    // Fragment-count sweep: the fragment-parallel engine over the
    // partitioned substrate at F = 1, 2, 4, 8, warm-context loop (the
    // ctx_qps regime), distances checked against the flat reference —
    // frag{F}_qps regression-locks the new path per fragment count.
    for (const std::size_t fc : {1, 2, 4, 8}) {
      SsspEngine frag_engine = engine;  // shares the preprocessed graph
      frag_engine.enable_fragments(fc);
      QueryContext fctx(g.num_vertices());
      std::vector<QueryResult> frag_results;
      const auto run_frag = [&] {
        frag_results.clear();
        frag_results.reserve(sources.size());
        for (const Vertex src : sources) {
          frag_results.push_back(
              frag_engine.query(src, QueryEngine::kFragment, fctx));
        }
      };
      run_frag();  // warm-up + equality check
      for (std::size_t i = 0; i < sources.size(); ++i) {
        if (frag_results[i].dist != flat_ref[i].dist) {
          std::fprintf(stderr, "MISMATCH on %s fragments=%zu source %u\n",
                       name.c_str(), fc, sources[i]);
          ok = false;
        }
      }
      const double t_frag = best_seconds(reps, run_frag);
      const double frag_qps = static_cast<double>(batch) / t_frag;
      std::printf("  %-8s  frag%-4zu  %10s  %10.1f\n", name.c_str(), fc, "-",
                  frag_qps);
      const BenchJson::Labels labels{{"graph", name},
                                     {"batch", std::to_string(batch)},
                                     {"rho", std::to_string(rho)}};
      json.add("frag" + std::to_string(fc) + "_qps", frag_qps, "queries/sec",
               labels);
    }
  }

  const std::string path = json.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAILED: strategy results diverged\n");
    return 1;
  }
  return 0;
}
