// Preprocessing-cost benchmark (Lemma 4.2's O(m log n + n rho^2) work
// term): ball-search throughput, all-radii computation, and full
// preprocessing — cold (fresh PreprocessPool) vs warm (reused pool, the
// steady state a long-lived serving process lives in).
//
// Self-timed on purpose (no Google Benchmark dependency despite the gb_
// prefix), like gb_query_throughput: it runs in every environment,
// including the CI bench-smoke job on runners without libbenchmark, and
// always writes BENCH_gb_preprocess.json for the perf trajectory. Exits
// non-zero if the pooled pipeline's output diverges from the plain path,
// so it doubles as an end-to-end smoke test.
//
// Knobs: RS_SCALE / RS_THREADS as usual, RS_RHO (ball size, default 32),
// RS_K (hop bound, default 3), RS_REPS (timing repetitions, default 5),
// RS_BALLS (sources for the single-context ball-rate loop, default 256).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "exp_common.hpp"
#include "parallel/primitives.hpp"
#include "parallel/timer.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/preprocess_context.hpp"
#include "shortcut/shortcut.hpp"

namespace {

using namespace rs;

/// Best-of-`reps` wall time of `run`, in seconds (min filters scheduler
/// noise; each rep redoes the whole pass).
double best_seconds(int reps, const std::function<void()>& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    run();
    const double s = t.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

bool same_result(const PreprocessResult& a, const PreprocessResult& b) {
  return a.graph == b.graph && a.radius == b.radius &&
         a.added_edges == b.added_edges;
}

}  // namespace

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto rho = static_cast<Vertex>(env_int64("RS_RHO", 32));
  const auto k = static_cast<Vertex>(env_int64("RS_K", 3));
  const int reps = static_cast<int>(env_int64("RS_REPS", 5));
  const int ball_sources = static_cast<int>(env_int64("RS_BALLS", 256));

  const auto graphs = shortcut_suite(s);
  print_header("Preprocessing throughput (cold vs warm pool)", s, graphs);
  std::printf("rho=%u  k=%u  reps=%d\n\n", rho, k, reps);
  std::printf("  %-8s  %12s  %12s  %12s  %12s  %8s\n", "graph", "balls/s",
              "radii_v/s", "cold_v/s", "warm_v/s", "warm/cold");

  BenchJson json("gb_preprocess", s);
  bool ok = true;

  for (const auto& [name, g0] : graphs) {
    const Graph g = paper_weighted(g0);
    const Graph gw = g.with_weight_sorted_adjacency();
    const double n = static_cast<double>(g.num_vertices());

    PreprocessOptions opts;
    opts.rho = rho;
    opts.k = k;
    opts.heuristic = ShortcutHeuristic::kDP;

    // Reference output: the plain (pool-internal) path.
    const PreprocessResult reference = preprocess(g, opts);

    // Single-context ball rate: the per-ball inner loop in isolation, on
    // one warm context (sequential, like one worker of the OpenMP loop).
    PreprocessContext ball_ctx(g.num_vertices());
    const std::vector<Vertex> sources =
        sample_sources(g, ball_sources, /*seed=*/4242);
    const BallOptions ball_opts{rho, 0, opts.settle_ties};
    const auto run_balls = [&] {
      for (const Vertex src : sources) {
        const Ball& ball = ball_ctx.ball(gw, src, ball_opts);
        (void)ball_ctx.select(ball, k, opts.heuristic);
      }
    };
    run_balls();  // warm the context before timing
    const double t_balls = best_seconds(reps, run_balls);

    // all_radii on a warm pool.
    PreprocessPool radii_pool;
    std::vector<Dist> radii = all_radii(g, rho, radii_pool);  // warm-up
    if (radii != reference.radius) {
      std::fprintf(stderr, "MISMATCH on %s: pooled all_radii != radii\n",
                   name.c_str());
      ok = false;
    }
    const double t_radii = best_seconds(
        reps, [&] { radii = all_radii(g, rho, radii_pool); });

    // Full preprocess, cold: a fresh pool every repetition (the one-shot
    // cost a new process pays).
    PreprocessResult result;
    const double t_cold = best_seconds(reps, [&] {
      PreprocessPool cold_pool;
      result = preprocess(g, opts, cold_pool);
    });
    if (!same_result(result, reference)) {
      std::fprintf(stderr, "MISMATCH on %s: cold pooled preprocess\n",
                   name.c_str());
      ok = false;
    }

    // Full preprocess, warm: one pool reused across repetitions — the
    // steady state of a serving process that re-preprocesses periodically.
    PreprocessPool warm_pool;
    result = preprocess(g, opts, warm_pool);  // warm-up run
    const double t_warm =
        best_seconds(reps, [&] { result = preprocess(g, opts, warm_pool); });
    if (!same_result(result, reference)) {
      std::fprintf(stderr, "MISMATCH on %s: warm pooled preprocess\n",
                   name.c_str());
      ok = false;
    }

    const double balls_rate = static_cast<double>(sources.size()) / t_balls;
    const double radii_vps = n / t_radii;
    const double cold_vps = n / t_cold;
    const double warm_vps = n / t_warm;
    std::printf("  %-8s  %12.1f  %12.1f  %12.1f  %12.1f  %7.2fx\n",
                name.c_str(), balls_rate, radii_vps, cold_vps, warm_vps,
                warm_vps / cold_vps);

    const BenchJson::Labels labels{{"graph", name},
                                   {"rho", std::to_string(rho)},
                                   {"k", std::to_string(k)}};
    json.add("ball_rate", balls_rate, "balls/sec", labels);
    json.add("allradii_vps", radii_vps, "vertices/sec", labels);
    json.add("preprocess_cold_vps", cold_vps, "vertices/sec", labels);
    json.add("preprocess_warm_vps", warm_vps, "vertices/sec", labels);
  }

  const std::string path = json.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAILED: pooled preprocessing diverged\n");
    return 1;
  }
  return 0;
}
