// Preprocessing-cost benchmarks (Lemma 4.2's O(m log n + n rho^2) work
// term): ball-search throughput and full preprocessing across rho, k, and
// heuristics.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"

namespace {

using namespace rs;

const Graph& road() {
  static const Graph g =
      assign_uniform_weights(gen::road_network(80, 80, 7), 3)
          .with_weight_sorted_adjacency();
  return g;
}

void BM_BallSearch(benchmark::State& state) {
  const Graph& g = road();
  const Vertex rho = static_cast<Vertex>(state.range(0));
  BallSearchWorkspace ws(g.num_vertices());
  Vertex src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.run(g, src, rho));
    src = (src + 97) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * rho);
}
BENCHMARK(BM_BallSearch)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_AllRadii(benchmark::State& state) {
  const Graph& g = road();
  const Vertex rho = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_radii(g, rho));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_AllRadii)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_PreprocessFull(benchmark::State& state) {
  const Graph g = assign_uniform_weights(gen::road_network(64, 64, 7), 3);
  PreprocessOptions opts;
  opts.rho = static_cast<Vertex>(state.range(0));
  opts.k = static_cast<Vertex>(state.range(1));
  opts.heuristic = state.range(1) == 1 ? ShortcutHeuristic::kFull1Rho
                                       : ShortcutHeuristic::kDP;
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess(g, opts));
  }
}
BENCHMARK(BM_PreprocessFull)
    ->Args({16, 1})
    ->Args({16, 3})
    ->Args({64, 1})
    ->Args({64, 3})
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicSelection(benchmark::State& state) {
  // Isolates greedy-vs-DP selection cost on a fixed ball.
  const Graph& g = road();
  const Ball ball = ball_search(g, g.num_vertices() / 2, 256);
  const auto heuristic = state.range(0) == 0 ? ShortcutHeuristic::kGreedy
                                             : ShortcutHeuristic::kDP;
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_shortcuts(ball, 3, heuristic));
  }
}
BENCHMARK(BM_HeuristicSelection)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
