// Wall-clock comparison of all SSSP implementations (engineering evidence,
// not a paper table): Radius-Stepping vs Dijkstra (binary + pairing heap),
// Bellman-Ford (seq + parallel) and Delta-stepping, on a weighted road
// network and a scale-free graph.
#include <benchmark/benchmark.h>

#include "baseline/bellman_ford.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/shortcut.hpp"

namespace {

using namespace rs;

struct Fixture {
  Graph graph;
  PreprocessResult pre;
};

const Fixture& road_fixture() {
  static const Fixture f = [] {
    Fixture out;
    out.graph = assign_uniform_weights(gen::road_network(96, 96, 7), 3);
    PreprocessOptions opts;
    opts.rho = 48;
    opts.k = 3;
    out.pre = preprocess(out.graph, opts);
    return out;
  }();
  return f;
}

const Fixture& web_fixture() {
  static const Fixture f = [] {
    Fixture out;
    out.graph = assign_uniform_weights(gen::barabasi_albert(12000, 6, 5), 4);
    PreprocessOptions opts;
    opts.rho = 48;
    opts.k = 3;
    opts.settle_ties = false;
    out.pre = preprocess(out.graph, opts);
    return out;
  }();
  return f;
}

const Fixture& fixture(int idx) {
  return idx == 0 ? road_fixture() : web_fixture();
}

void args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
}

void BM_Dijkstra(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(f.graph, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Apply(args);

void BM_DijkstraPairing(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_pairing(f.graph, 0));
  }
}
BENCHMARK(BM_DijkstraPairing)->Apply(args);

void BM_BellmanFordSeq(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bellman_ford(f.graph, 0));
  }
}
BENCHMARK(BM_BellmanFordSeq)->Apply(args);

void BM_BellmanFordParallel(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bellman_ford_parallel(f.graph, 0));
  }
}
BENCHMARK(BM_BellmanFordParallel)->Apply(args);

void BM_DeltaStepping(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_stepping(f.graph, 0));
  }
}
BENCHMARK(BM_DeltaStepping)->Apply(args);

void BM_RadiusStepping(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping(f.pre.graph, 0, f.pre.radius));
  }
}
BENCHMARK(BM_RadiusStepping)->Apply(args);

void BM_RadiusSteppingNoShortcuts(benchmark::State& state) {
  // Radii only, original graph: same steps, more substeps.
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping(f.graph, 0, f.pre.radius));
  }
}
BENCHMARK(BM_RadiusSteppingNoShortcuts)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
