// Load generator for the serving daemon (serve/server.hpp): drives an
// SsspServer with targeted point-to-point requests and reports sustained
// throughput plus the end-to-end latency distribution (p50/p99/p999) into
// BENCH_sssp_serve.json — the serving-side perf trajectory CI gates.
//
// Two drive modes (RS_MODE=closed|open|both, default closed):
//
//   closed — RS_CLIENTS threads in a closed loop: each submits a request,
//            blocks on its future, submits the next. Measures the
//            saturated-throughput regime (qps) and the latency under it;
//            this is the mode the CI bench-smoke job runs and gates.
//            Closed mode additionally measures the caching layer: a
//            second closed loop against a cache-enabled server under a
//            Zipf(s=1.0) source schedule (`hot_qps`, `hit_rate` — warm
//            rows answered at submit time), and a top-k closed loop
//            (`topk_qps`, every reply checked against the sorted
//            reference prefix).
//   open   — one dispatcher submits at a fixed offered rate (RS_RATE qps;
//            default 70% of a quick closed-loop calibration) without
//            waiting for completions. Measures the latency a NON-saturated
//            service shows and how much load sheds (queue-full rejections)
//            when the offered rate exceeds capacity.
//
// Each mode gets a fresh SsspServer so its latency histogram is not
// polluted by the other mode; the engine underneath is shared and
// pre-warmed, so measured numbers reflect the steady serving state.
// Every response is verified against full-SSSP reference distances, so
// the driver doubles as an end-to-end concurrency smoke test.
//
// Knobs: RS_SCALE / RS_THREADS as usual; RS_REQUESTS (total requests per
// mode; default 256 at ci scale, 4096 otherwise), RS_CLIENTS (closed-loop
// client threads, default 8), RS_TARGETS (targets per request, default 1),
// RS_RHO (preprocess rho, default 32), RS_QUEUE (queue capacity, 1024),
// RS_MAX_BATCH (64), RS_BUDGET_US (micro-batch budget, 200),
// RS_BATCHERS (2), RS_RATE (open-loop offered qps, 0 = auto),
// RS_TOPK (k for the top-k loop, default 8), RS_TRACE (trace every Nth
// request through the server's span pipeline, 0 = off — for measuring
// tracing overhead under load).
//
// `--engine flat|bst|bstflat|fragment` (or RS_ENGINE; argv wins) selects
// the query engine every request runs on; fragment builds the partitioned
// substrate first (RS_FRAGMENTS fragments). The engine label lands in the
// JSON only when it is NOT flat, so the default metrics stay comparable
// across history.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "exp_common.hpp"
#include "obs/trace.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"
#include "serve/server.hpp"

namespace {

using namespace rs;
using namespace rs::serve;

/// Request pool: one targeted request per pooled source, targets drawn
/// deterministically. Request i is always answered against reference i.
std::vector<QueryRequest> make_requests(const Graph& g,
                                        const std::vector<Vertex>& sources,
                                        int targets_per, QueryEngine qe) {
  const SplitRng rng(4242);
  std::vector<QueryRequest> requests;
  requests.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    QueryRequest req;
    req.source = sources[i];
    req.engine = qe;
    req.targets.reserve(static_cast<std::size_t>(targets_per));
    for (int t = 0; t < targets_per; ++t) {
      req.targets.push_back(static_cast<Vertex>(rng.bounded(
          i, static_cast<std::uint64_t>(t), g.num_vertices())));
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

bool verify(const QueryResponse& resp, const QueryResult& ref) {
  for (const TargetResult& tr : resp.targets) {
    if (tr.dist != ref.dist[tr.target]) {
      std::fprintf(stderr, "MISMATCH source %u target %u: %llu != %llu\n",
                   resp.source, tr.target,
                   static_cast<unsigned long long>(tr.dist),
                   static_cast<unsigned long long>(ref.dist[tr.target]));
      return false;
    }
  }
  return true;
}

/// Response checker, indexed by the request-pool slot it answered.
using VerifySlot = std::function<bool(const QueryResponse&, std::size_t)>;

/// Zipf(s=1.0) slot schedule over `pool` request slots: slot j is drawn
/// with probability proportional to 1/(j+1) — the hot-source skew a
/// result cache exists for. Deterministic in `seed`.
std::vector<std::size_t> zipf_schedule(std::uint64_t total, std::size_t pool,
                                       std::uint64_t seed) {
  std::vector<double> cdf(pool);
  double acc = 0.0;
  for (std::size_t j = 0; j < pool; ++j) {
    acc += 1.0 / static_cast<double>(j + 1);
    cdf[j] = acc;
  }
  const SplitRng rng(seed);
  std::vector<std::size_t> schedule(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const double u = rng.uniform(9, i) * acc;
    schedule[i] = static_cast<std::size_t>(
        std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (schedule[i] >= pool) schedule[i] = pool - 1;
  }
  return schedule;
}

struct ClosedResult {
  double qps = 0.0;
  double hit_rate = 0.0;  // timed-window cache hit rate (0 with cache off)
  bool ok = true;
};

/// Closed loop: `clients` threads race through `total` requests, each
/// blocking on its own future before submitting the next. Request i maps
/// to pool slot schedule[i] (round-robin when schedule is null). `warm`
/// requests are served synchronously before the timer starts — outside
/// the measured window and the reported hit rate.
ClosedResult run_closed(const SsspEngine& engine, ServerOptions opts,
                        const std::vector<QueryRequest>& requests,
                        const VerifySlot& check, std::uint64_t total,
                        int clients, LatencyHistogram::Snapshot* latency,
                        ServerStats* stats,
                        const std::vector<std::size_t>* schedule = nullptr,
                        const std::vector<QueryRequest>* warm = nullptr) {
  SsspServer server(engine, opts);
  if (warm != nullptr) {
    for (const QueryRequest& req : *warm) (void)server.serve_sync(req);
  }
  const ResultCacheStats warm_cache = server.cache_stats();
  std::atomic<std::uint64_t> next{0};
  std::atomic<bool> ok{true};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::uint64_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < total) {
        const std::size_t slot = schedule != nullptr
                                     ? (*schedule)[i]
                                     : i % requests.size();
        const QueryResponse resp = server.serve_sync(requests[slot]);
        if (!check(resp, slot)) ok.store(false);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.seconds();
  server.drain();
  if (latency != nullptr) *latency = server.latency().snapshot();
  if (stats != nullptr) *stats = server.stats();
  ClosedResult out;
  out.qps = static_cast<double>(total) / seconds;
  out.ok = ok.load();
  const ResultCacheStats cache = server.cache_stats();
  const std::uint64_t hits = cache.hits - warm_cache.hits;
  const std::uint64_t lookups =
      hits + (cache.misses - warm_cache.misses) +
      (cache.single_flight_waits - warm_cache.single_flight_waits);
  if (lookups != 0) {
    out.hit_rate =
        static_cast<double>(hits) / static_cast<double>(lookups);
  }
  server.shutdown();
  return out;
}

struct OpenResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t rejected = 0;
  bool ok = true;
};

/// Open loop: submit `total` requests at `rate` qps without waiting;
/// queue-full rejections are counted as shed load, not failures.
OpenResult run_open(const SsspEngine& engine, ServerOptions opts,
                    const std::vector<QueryRequest>& requests,
                    const std::vector<QueryResult>& ref, std::uint64_t total,
                    double rate, LatencyHistogram::Snapshot* latency) {
  SsspServer server(engine, opts);
  OpenResult out;
  out.offered_qps = rate;
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      1.0 / (rate > 0.0 ? rate : 1.0)));

  std::vector<std::future<QueryResponse>> futures;
  std::vector<std::size_t> slots;
  futures.reserve(total);
  slots.reserve(total);
  Timer timer;
  auto tick = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::size_t slot = i % requests.size();
    std::future<QueryResponse> fut;
    const SubmitStatus status = server.submit(requests[slot], fut);
    if (status == SubmitStatus::kAccepted) {
      futures.push_back(std::move(fut));
      slots.push_back(slot);
    } else if (status == SubmitStatus::kQueueFull) {
      ++out.rejected;  // backpressure did its job; shed and move on
    } else {
      out.ok = false;
    }
    tick += interval;
    std::this_thread::sleep_until(tick);
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResponse resp = futures[i].get();
    if (!verify(resp, ref[slots[i]])) out.ok = false;
  }
  const double seconds = timer.seconds();
  out.achieved_qps = static_cast<double>(futures.size()) / seconds;
  if (latency != nullptr) *latency = server.latency().snapshot();
  server.shutdown();
  return out;
}

/// Engine selector: `--engine X` on the command line wins over RS_ENGINE;
/// unknown names abort loudly rather than silently benching flat.
QueryEngine parse_engine(int argc, char** argv, std::string& name_out) {
  std::string name = rs::env_string("RS_ENGINE", "flat");
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--engine") name = argv[i + 1];
  }
  name_out = name;
  if (name == "flat") return QueryEngine::kFlat;
  if (name == "bst") return QueryEngine::kBst;
  if (name == "bstflat") return QueryEngine::kBstFlat;
  if (name == "fragment") return QueryEngine::kFragment;
  std::fprintf(stderr,
               "loadgen: unknown engine '%s' (flat|bst|bstflat|fragment)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const bool ci = s.name == "ci";
  const auto total = static_cast<std::uint64_t>(
      env_int64("RS_REQUESTS", ci ? 256 : 4096));
  const int clients = static_cast<int>(env_int64("RS_CLIENTS", 8));
  const int targets_per = static_cast<int>(env_int64("RS_TARGETS", 1));
  const auto rho = static_cast<Vertex>(env_int64("RS_RHO", 32));
  const std::string mode = env_string("RS_MODE", "closed");
  std::string engine_name;
  const QueryEngine qe = parse_engine(argc, argv, engine_name);

  ServerOptions opts;
  opts.queue_capacity =
      static_cast<std::size_t>(env_int64("RS_QUEUE", 1024));
  opts.max_batch =
      static_cast<std::size_t>(env_int64("RS_MAX_BATCH", 64));
  opts.batch_budget =
      std::chrono::microseconds(env_int64("RS_BUDGET_US", 200));
  opts.batchers = static_cast<int>(env_int64("RS_BATCHERS", 2));
  opts.trace_sample = rs::obs::trace_sample_from_env();
  if (opts.trace_sample != 0) {
    std::printf("tracing: every %u%s request\n\n", opts.trace_sample,
                opts.trace_sample == 1 ? "st" : "th");
  }

  auto graphs = shortcut_suite(s);
  // One graph keeps the runtime bounded; the road network is the serving
  // workload the paper's preprocessing shines on.
  const std::string graph_name = graphs.front().name;
  const Graph g = paper_weighted(graphs.front().graph);
  std::printf("loadgen — sssp_serve daemon (scale=%s graph=%s n=%u m=%zu)\n",
              s.name.c_str(), graph_name.c_str(), g.num_vertices(),
              static_cast<std::size_t>(g.num_edges()));
  std::printf(
      "requests=%llu clients=%d targets=%d queue=%zu max_batch=%zu "
      "budget=%lldus batchers=%d mode=%s engine=%s\n\n",
      static_cast<unsigned long long>(total), clients, targets_per,
      opts.queue_capacity, opts.max_batch,
      static_cast<long long>(opts.batch_budget.count()), opts.batchers,
      mode.c_str(), engine_name.c_str());

  PreprocessOptions popts;
  popts.rho = rho;
  popts.k = 2;
  SsspEngine engine(g, popts);
  if (qe == QueryEngine::kFragment) {
    engine.enable_fragments();  // RS_FRAGMENTS (default: worker count)
    std::printf("fragment substrate: %zu fragments\n\n",
                engine.fragments().num_fragments());
  }

  const int pool = 64;
  const std::vector<Vertex> sources = sample_sources(g, pool, /*seed=*/777);
  const std::vector<QueryRequest> requests =
      make_requests(g, sources, targets_per, qe);
  std::vector<QueryResult> ref;
  ref.reserve(sources.size());
  for (const Vertex src : sources) ref.push_back(engine.query(src));

  // Warm the engine's leased batch pools (and code paths) outside any
  // measured window, so the server latencies reflect steady state.
  (void)engine.serve_batch(requests);

  BenchJson json("sssp_serve", s);
  BenchJson::Labels labels{
      {"graph", graph_name},
      {"clients", std::to_string(clients)},
      {"targets", std::to_string(targets_per)},
      {"max_batch", std::to_string(opts.max_batch)}};
  // Only a non-default engine gets a label: the flat metrics must stay
  // byte-comparable to every historical run the comparator holds.
  if (qe != QueryEngine::kFlat) labels.push_back({"engine", engine_name});
  bool ok = true;

  const VerifySlot check_targets = [&](const QueryResponse& resp,
                                       std::size_t slot) {
    return verify(resp, ref[slot]);
  };

  if (mode == "closed" || mode == "both") {
    LatencyHistogram::Snapshot lat;
    ServerStats stats;
    const ClosedResult r = run_closed(engine, opts, requests, check_targets,
                                      total, clients, &lat, &stats);
    ok = ok && r.ok;
    const auto p50 = lat.value_at_quantile(0.50);
    const auto p99 = lat.value_at_quantile(0.99);
    const auto p999 = lat.value_at_quantile(0.999);
    std::printf("closed-loop: %10.1f qps   p50=%llu us  p99=%llu us  "
                "p999=%llu us  mean_batch=%.2f  batches=%llu\n",
                r.qps, static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(p999), stats.mean_batch(),
                static_cast<unsigned long long>(stats.batches));
    json.add("closed_qps", r.qps, "queries/sec", labels);
    json.add("p50_us", static_cast<double>(p50), "us", labels);
    json.add("p99_us", static_cast<double>(p99), "us", labels);
    json.add("p999_us", static_cast<double>(p999), "us", labels);
    json.add("mean_batch", stats.mean_batch(), "x", labels);

    // Hot-source regime: cache-enabled server, Zipf(s=1.0) source skew,
    // one warm pass over the pool before the timer. Steady state is all
    // submit-time cache hits, so hot_qps gates the cache fast path and
    // hit_rate its effectiveness (both higher-is-better).
    ServerOptions hot_opts = opts;
    hot_opts.enable_cache = true;
    const std::vector<std::size_t> schedule =
        zipf_schedule(total, requests.size(), /*seed=*/90210);
    ServerStats hot_stats;
    const ClosedResult hot =
        run_closed(engine, hot_opts, requests, check_targets, total, clients,
                   nullptr, &hot_stats, &schedule, &requests);
    ok = ok && hot.ok;
    std::printf("hot closed-loop (zipf s=1.0, cache on): %10.1f qps   "
                "hit_rate=%.3f (%.1fx uncached)\n",
                hot.qps, hot.hit_rate, hot.qps / r.qps);
    json.add("hot_qps", hot.qps, "queries/sec", labels);
    json.add("hit_rate", hot.hit_rate, "ratio", labels);

    // Top-k closed loop: k-nearest requests over the same source pool,
    // every reply checked against the sorted reference prefix.
    const auto k = static_cast<std::size_t>(env_int64("RS_TOPK", 8));
    std::vector<QueryRequest> topk_requests;
    std::vector<std::vector<std::pair<Dist, Vertex>>> topk_ref;
    topk_requests.reserve(sources.size());
    topk_ref.reserve(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      QueryRequest req;
      req.source = sources[i];
      req.engine = qe;
      req.kind = RequestKind::kTopK;
      req.k = k;
      topk_requests.push_back(std::move(req));
      std::vector<std::pair<Dist, Vertex>> prefix;
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (ref[i].dist[v] < kInfDist) prefix.push_back({ref[i].dist[v], v});
      }
      const std::size_t m = std::min(k, prefix.size());
      std::partial_sort(prefix.begin(),
                        prefix.begin() + static_cast<std::ptrdiff_t>(m),
                        prefix.end());
      prefix.resize(m);
      topk_ref.push_back(std::move(prefix));
    }
    const VerifySlot check_topk = [&](const QueryResponse& resp,
                                      std::size_t slot) {
      const auto& want = topk_ref[slot];
      if (resp.targets.size() != want.size()) return false;
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (resp.targets[i].target != want[i].second ||
            resp.targets[i].dist != want[i].first) {
          return false;
        }
      }
      return true;
    };
    const ClosedResult tk = run_closed(engine, opts, topk_requests,
                                       check_topk, total, clients, nullptr,
                                       nullptr);
    ok = ok && tk.ok;
    std::printf("topk closed-loop (k=%zu): %10.1f qps\n", k, tk.qps);
    json.add("topk_qps", tk.qps, "queries/sec", labels);
  }

  if (mode == "open" || mode == "both") {
    double rate = static_cast<double>(env_int64("RS_RATE", 0));
    if (rate <= 0.0) {
      // Calibrate: a short closed-loop burst, then offer 70% of it — the
      // non-saturated regime open-loop latency is meaningful in.
      const ClosedResult cal =
          run_closed(engine, opts, requests, check_targets,
                     std::max<std::uint64_t>(total / 4, 32), clients,
                     nullptr, nullptr);
      ok = ok && cal.ok;
      rate = 0.7 * cal.qps;
      if (rate < 1.0) rate = 1.0;
    }
    LatencyHistogram::Snapshot lat;
    const OpenResult r =
        run_open(engine, opts, requests, ref, total, rate, &lat);
    ok = ok && r.ok;
    const auto p50 = lat.value_at_quantile(0.50);
    const auto p99 = lat.value_at_quantile(0.99);
    std::printf("open-loop:   offered %.1f qps, achieved %.1f qps, "
                "rejected %llu   p50=%llu us  p99=%llu us\n",
                r.offered_qps, r.achieved_qps,
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99));
    json.add("open_offered_qps", r.offered_qps, "queries/sec", labels);
    json.add("open_achieved_qps", r.achieved_qps, "queries/sec", labels);
    json.add("open_p50_us", static_cast<double>(p50), "us", labels);
    json.add("open_p99_us", static_cast<double>(p99), "us", labels);
    json.add("open_rejected", static_cast<double>(r.rejected), "requests",
             labels);
  }

  const std::string path = json.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAILED: serving results diverged or rejected\n");
    return 1;
  }
  return 0;
}
