// The paper's motivating claim (Section 1): Delta-stepping's steps "can
// take Theta(n) substeps, each requiring Theta(m) work", because a fixed
// Delta cannot bound how many light-edge phases one bucket needs —
// a chain of unit edges inside a single bucket relaxes one hop per phase.
// Radius-Stepping's variable step size bounds substeps by k + 2.
//
// This ablation runs both on the adversarial unit chain and on a normal
// road network, reporting phases/substeps per step.
#include <algorithm>
#include <cstdio>

#include "baseline/delta_stepping.hpp"
#include "core/radius_stepping.hpp"
#include "exp_common.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/shortcut.hpp"

namespace {

void report(const char* name, const rs::Graph& g) {
  using namespace rs;
  std::printf("%s (|V|=%u, |E|=%llu, L=%u)\n", name, g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              g.max_weight());

  // Delta-stepping with a "large" Delta: few buckets, many phases each.
  for (const Dist delta :
       {Dist{1}, Dist(std::max<Dist>(1, g.max_weight())),
        Dist(g.num_vertices()) * g.max_weight()}) {
    DeltaSteppingStats stats;
    delta_stepping(g, 0, delta, &stats);
    std::printf("  delta-stepping  delta=%-10llu buckets=%-8zu phases=%-8zu "
                "max-phases/bucket~%.1f\n",
                static_cast<unsigned long long>(delta),
                stats.buckets_processed, stats.phases,
                static_cast<double>(stats.phases) /
                    static_cast<double>(std::max<std::size_t>(
                        1, stats.buckets_processed)));
  }

  // Radius-Stepping after (k = 2, rho = 32) preprocessing.
  PreprocessOptions opts;
  opts.rho = 32;
  opts.k = 2;
  const PreprocessResult pre = preprocess(g, opts);
  RunStats stats;
  radius_stepping(pre.graph, 0, pre.radius, &stats);
  std::printf("  radius-stepping rho=32 k=2    steps=%-8zu substeps=%-8zu "
              "max-substeps/step=%zu (bound %u)\n\n",
              stats.steps, stats.substeps, stats.max_substeps_in_step,
              opts.k + 2);
}

}  // namespace

int main() {
  using namespace rs;
  using namespace rs::exp;
  Scale s = scale_from_env();
  std::printf("=== Ablation — Delta-stepping's unbounded substeps vs "
              "Radius-Stepping's k+2 ===\n\n");

  // Adversarial: a unit-weight chain. Any Delta spanning h hops forces h
  // light phases in one bucket.
  report("unit chain", gen::chain(std::min<Vertex>(s.road_side * 50, 6000)));

  // Typical: weighted road network.
  report("weighted road network",
         paper_weighted(gen::road_network(
             std::min<Vertex>(s.road_side, 72),
             std::min<Vertex>(s.road_side, 72), 101)));

  std::printf("Expected: on the chain, delta-stepping's phases per bucket "
              "grow with delta (up to Theta(n) for one bucket) while "
              "radius-stepping stays at <= k+2 substeps per step.\n");
  return 0;
}
