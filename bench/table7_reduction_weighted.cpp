// Reproduces Table 7: weighted step-count REDUCTION factors vs rho = 1
// (essentially Dijkstra's extraction order).
//
// Paper headline: 37x at rho=2 on roads, ~1000x at rho=10, >10000x at
// rho=1000; webgraphs reduce less (their rho=1 step count is already far
// below n). Expect matching ordering and magnitudes scaled by our n.
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Table 7 — step reduction vs rho=1, weighted", s, graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/true);
  print_steps_table(graphs, t, /*as_reduction=*/true);
  emit_steps_json("table7_reduction_weighted", graphs, t, s);
  return 0;
}
