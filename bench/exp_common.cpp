#include "exp_common.hpp"

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs::exp {

Scale scale_from_env() {
  const std::string which = env_string("RS_SCALE", "default");
  Scale s;
  if (which == "ci") {
    s = Scale{"ci", 40, 2'000, 40, 12, 5};
  } else if (which == "full") {
    // Paper-size graphs (~1M vertices for roads/grids, ~300k webgraphs).
    s = Scale{"full", 1000, 300'000, 1000, 100, 1000};
  } else {
    // Laptop-friendly: every bench finishes in minutes, trends intact.
    s = Scale{"default", 160, 30'000, 160, 30, 12};
  }
  s.sources = static_cast<int>(env_int64("RS_SOURCES", s.sources));
  const int threads = static_cast<int>(env_int64("RS_THREADS", 0));
  if (threads > 0) set_num_workers(threads);
  return s;
}

std::vector<NamedGraph> paper_suite(const Scale& s) {
  std::vector<NamedGraph> out;
  // Two road networks of different sizes mirror Pennsylvania vs Texas.
  out.push_back({"road-A", gen::road_network(s.road_side, s.road_side, 101)});
  out.push_back({"road-B",
                 gen::road_network(s.road_side + s.road_side / 4,
                                   s.road_side + s.road_side / 4, 202)});
  // Scale-free graphs mirror NotreDame vs Stanford: web-A is a pure hub
  // graph (small diameter), web-B adds the low-degree tendrils real crawls
  // have (larger hop radius, like Stanford's 109 BFS rounds).
  out.push_back({"web-A", gen::barabasi_albert(s.web_n, 5, 303)});
  out.push_back({"web-B", gen::web_graph(s.web_n * 9 / 10, 10, 404)});
  out.push_back({"grid2d", gen::grid2d(s.grid2d_side, s.grid2d_side)});
  out.push_back({"grid3d",
                 gen::grid3d(s.grid3d_side, s.grid3d_side, s.grid3d_side)});
  return out;
}

std::vector<NamedGraph> shortcut_suite(const Scale& s) {
  std::vector<NamedGraph> out;
  out.push_back({"road", gen::road_network(s.road_side, s.road_side, 101)});
  // Hub core + degree-1 tendrils: the structure that makes greedy explode
  // and DP cheap on real web crawls (§5.2).
  out.push_back({"web", gen::web_graph(s.web_n, 10, 404)});
  out.push_back({"grid2d", gen::grid2d(s.grid2d_side, s.grid2d_side)});
  return out;
}

std::vector<Vertex> sample_sources(const Graph& g, int count,
                                   std::uint64_t seed) {
  const SplitRng rng(seed);
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(i), g.num_vertices())));
  }
  return out;
}

Graph paper_weighted(const Graph& g, std::uint64_t seed) {
  return assign_uniform_weights(g, seed, 1, kPaperMaxWeight);
}

void print_header(const char* title, const Scale& s,
                  const std::vector<NamedGraph>& graphs) {
  std::printf("=== %s ===\n", title);
  std::printf("scale=%s  sources=%d  threads=%d\n", s.name.c_str(), s.sources,
              num_workers());
  for (const auto& [name, g] : graphs) {
    std::printf("  %-8s |V|=%-8u |E|=%llu\n", name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_undirected_edges()));
  }
  std::printf("\n");
}

}  // namespace rs::exp
