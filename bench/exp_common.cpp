#include "exp_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs::exp {

Scale scale_from_env() {
  const std::string which = env_string("RS_SCALE", "default");
  Scale s;
  if (which == "ci") {
    s = Scale{"ci", 40, 2'000, 40, 12, 5};
  } else if (which == "full") {
    // Paper-size graphs (~1M vertices for roads/grids, ~300k webgraphs).
    s = Scale{"full", 1000, 300'000, 1000, 100, 1000};
  } else {
    // Laptop-friendly: every bench finishes in minutes, trends intact.
    s = Scale{"default", 160, 30'000, 160, 30, 12};
  }
  s.sources = static_cast<int>(env_int64("RS_SOURCES", s.sources));
  // 0 = "leave the worker count alone"; invalid values warn and fall back.
  const int threads = parse_worker_count(std::getenv("RS_THREADS"), 0);
  if (threads > 0) set_num_workers(threads);
  return s;
}

std::vector<NamedGraph> paper_suite(const Scale& s) {
  std::vector<NamedGraph> out;
  // Two road networks of different sizes mirror Pennsylvania vs Texas.
  out.push_back({"road-A", gen::road_network(s.road_side, s.road_side, 101)});
  out.push_back({"road-B",
                 gen::road_network(s.road_side + s.road_side / 4,
                                   s.road_side + s.road_side / 4, 202)});
  // Scale-free graphs mirror NotreDame vs Stanford: web-A is a pure hub
  // graph (small diameter), web-B adds the low-degree tendrils real crawls
  // have (larger hop radius, like Stanford's 109 BFS rounds).
  out.push_back({"web-A", gen::barabasi_albert(s.web_n, 5, 303)});
  out.push_back({"web-B", gen::web_graph(s.web_n * 9 / 10, 10, 404)});
  out.push_back({"grid2d", gen::grid2d(s.grid2d_side, s.grid2d_side)});
  out.push_back({"grid3d",
                 gen::grid3d(s.grid3d_side, s.grid3d_side, s.grid3d_side)});
  return out;
}

std::vector<NamedGraph> shortcut_suite(const Scale& s) {
  std::vector<NamedGraph> out;
  out.push_back({"road", gen::road_network(s.road_side, s.road_side, 101)});
  // Hub core + degree-1 tendrils: the structure that makes greedy explode
  // and DP cheap on real web crawls (§5.2).
  out.push_back({"web", gen::web_graph(s.web_n, 10, 404)});
  out.push_back({"grid2d", gen::grid2d(s.grid2d_side, s.grid2d_side)});
  return out;
}

std::vector<Vertex> sample_sources(const Graph& g, int count,
                                   std::uint64_t seed) {
  const SplitRng rng(seed);
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(i), g.num_vertices())));
  }
  return out;
}

Graph paper_weighted(const Graph& g, std::uint64_t seed) {
  return assign_uniform_weights(g, seed, 1, kPaperMaxWeight);
}

namespace {

/// Minimal JSON string escaping: quotes, backslashes, control characters.
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string bench, const Scale& s)
    : bench_(std::move(bench)), scale_name_(s.name), sources_(s.sources) {}

void BenchJson::add(const std::string& name, double value,
                    const std::string& unit, Labels labels) {
  metrics_.push_back({name, value, unit, std::move(labels)});
}

std::string BenchJson::write() const {
  const std::string dir = env_string("RS_BENCH_DIR", ".");
  const std::string path = dir + "/BENCH_" + bench_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[rs] warning: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(bench_).c_str());
  std::fprintf(f, "  \"scale\": \"%s\",\n", json_escape(scale_name_).c_str());
  std::fprintf(f, "  \"threads\": %d,\n", num_workers());
  std::fprintf(f, "  \"sources\": %d,\n", sources_);
  std::fprintf(f, "  \"metrics\": [");
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    std::fprintf(f, "%s\n    { \"name\": \"%s\", \"value\": %.10g, "
                 "\"unit\": \"%s\"",
                 i == 0 ? "" : ",", json_escape(m.name).c_str(), m.value,
                 json_escape(m.unit).c_str());
    if (!m.labels.empty()) {
      std::fprintf(f, ", \"labels\": { ");
      for (std::size_t l = 0; l < m.labels.size(); ++l) {
        std::fprintf(f, "%s\"%s\": \"%s\"", l == 0 ? "" : ", ",
                     json_escape(m.labels[l].first).c_str(),
                     json_escape(m.labels[l].second).c_str());
      }
      std::fprintf(f, " }");
    }
    std::fprintf(f, " }");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return path;
}

void print_header(const char* title, const Scale& s,
                  const std::vector<NamedGraph>& graphs) {
  std::printf("=== %s ===\n", title);
  std::printf("scale=%s  sources=%d  threads=%d\n", s.name.c_str(), s.sources,
              num_workers());
  for (const auto& [name, g] : graphs) {
    std::printf("  %-8s |V|=%-8u |E|=%llu\n", name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_undirected_edges()));
  }
  std::printf("\n");
}

}  // namespace rs::exp
