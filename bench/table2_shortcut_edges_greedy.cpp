// Reproduces Table 2: factors of additional edges added by the GREEDY
// shortcut heuristic (§4.2.1), k in {2..5}, rho in {10..1000}, on the
// unweighted road / web / grid suite.
//
// Paper headline (1.09M-vertex Pennsylvania road map): factors grow from
// 0.41 (k=3, rho=10) to >100x at rho=1000; the webgraph explodes under
// greedy (e.g. 39.99 at k=3, rho=100). Expect the same shape here.
#include "shortcut_edges.hpp"

int main() {
  rs::exp::run_shortcut_edge_table(
      "Table 2 — additional-edge factors, greedy heuristic",
      rs::ShortcutHeuristic::kGreedy);
  return 0;
}
