// Flat vs BST engine: the practical atomic-array engine against the
// faithful Algorithm 2 treap formulation, plus the unweighted specialist.
// Quantifies the O(log n)-factor bookkeeping the paper's analysis charges.
#include <benchmark/benchmark.h>

#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/ball_search.hpp"

namespace {

using namespace rs;

struct Setup {
  Graph weighted;
  Graph unit;
  std::vector<Dist> radius_w;
  std::vector<Dist> radius_u;
};

const Setup& setup() {
  static const Setup s = [] {
    Setup out;
    out.unit = gen::grid2d(96, 96);
    out.weighted = assign_uniform_weights(out.unit, 3);
    out.radius_w = all_radii(out.weighted, 32);
    out.radius_u = all_radii(out.unit, 32);
    return out;
  }();
  return s;
}

void BM_FlatEngine(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping(s.weighted, 0, s.radius_w));
  }
}
BENCHMARK(BM_FlatEngine)->Unit(benchmark::kMillisecond);

void BM_BstEngine(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping_bst(s.weighted, 0, s.radius_w));
  }
}
BENCHMARK(BM_BstEngine)->Unit(benchmark::kMillisecond);

void BM_FlatSetEngine(benchmark::State& state) {
  // Algorithm 2 on the sorted-array substrate: O(n)-copy bulk ops vs the
  // treap's O(p log q) — measures the substrate crossover.
  const Setup& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        radius_stepping_flatset(s.weighted, 0, s.radius_w));
  }
}
BENCHMARK(BM_FlatSetEngine)->Unit(benchmark::kMillisecond);

void BM_UnweightedEngine(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping_unweighted(s.unit, 0, s.radius_u));
  }
}
BENCHMARK(BM_UnweightedEngine)->Unit(benchmark::kMillisecond);

void BM_FlatEngineRhoSweep(benchmark::State& state) {
  // Step-count vs work trade-off: same graph, radii from different rho.
  const Setup& s = setup();
  const Vertex rho = static_cast<Vertex>(state.range(0));
  const auto radius =
      rho == 1 ? dijkstra_radii(s.weighted.num_vertices())
               : all_radii(s.weighted, rho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping(s.weighted, 0, radius));
  }
}
BENCHMARK(BM_FlatEngineRhoSweep)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
