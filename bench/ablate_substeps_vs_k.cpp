// Ablation for Theorem 3.2: with preprocessing at parameter k, the maximum
// number of Bellman-Ford substeps in any step is bounded by k + 2 — and the
// bound is nearly tight in practice. Also shows the cost side of the
// trade-off: larger k => fewer added edges but more substeps (total depth),
// the tension §5.4 discusses.
#include <cstdio>

#include "core/radius_stepping.hpp"
#include "exp_common.hpp"
#include "graph/generators.hpp"
#include "shortcut/shortcut.hpp"

int main() {
  using namespace rs;
  using namespace rs::exp;
  Scale s = scale_from_env();
  // Preprocessing with materialized shortcuts is the expensive part; a
  // smaller road network keeps this ablation snappy.
  s.road_side = std::min<Vertex>(s.road_side, 96);
  const Graph g0 = gen::road_network(s.road_side, s.road_side, 101);
  const Graph g = paper_weighted(g0);
  std::printf("=== Ablation — substeps vs k (Theorem 3.2: max substeps <= "
              "k+2) ===\n");
  std::printf("road network |V|=%u |E|=%llu, rho=32, DP heuristic\n\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  std::printf("  %3s %12s %10s %12s %14s %12s\n", "k", "added-factor",
              "steps", "substeps", "max-substeps", "bound(k+2)");
  const auto sources = sample_sources(g, std::min(s.sources, 6));
  for (const Vertex k :
       {Vertex{1}, Vertex{2}, Vertex{3}, Vertex{4}, Vertex{6}}) {
    PreprocessOptions opts;
    opts.rho = 32;
    opts.k = k;
    opts.heuristic =
        k == 1 ? ShortcutHeuristic::kFull1Rho : ShortcutHeuristic::kDP;
    const PreprocessResult pre = preprocess(g, opts);

    double steps = 0, substeps = 0;
    std::size_t max_sub = 0;
    for (const Vertex src : sources) {
      RunStats stats;
      radius_stepping(pre.graph, src, pre.radius, &stats);
      steps += double(stats.steps);
      substeps += double(stats.substeps);
      max_sub = std::max(max_sub, stats.max_substeps_in_step);
    }
    steps /= double(sources.size());
    substeps /= double(sources.size());
    std::printf("  %3u %12.3f %10.1f %12.1f %14zu %12u\n", k,
                pre.added_factor, steps, substeps, max_sub, k + 2);
    std::fflush(stdout);
  }
  std::printf("\nExpected: added-factor decreases with k; max-substeps "
              "stays <= k+2; steps stay ~flat (rho fixed).\n");
  return 0;
}
