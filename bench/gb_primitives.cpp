// Parallel-primitive throughput: the building blocks every engine leans on
// (reduce, scan, pack, sort, WriteMin under contention).
#include <atomic>

#include <benchmark/benchmark.h>

#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "parallel/write_min.hpp"

namespace {

using namespace rs;

void BM_ParallelSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> v(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel_sum<std::uint64_t>(0, n, [&](std::size_t i) { return v[i]; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSum)->Arg(1 << 16)->Arg(1 << 22);

void BM_ExclusiveScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> in(n, 1);
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exclusive_scan(in, out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 16)->Arg(1 << 22);

void BM_Pack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<std::uint32_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pack(in, [&](std::size_t i) { return (in[i] & 7) == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Pack)->Arg(1 << 16)->Arg(1 << 22);

void BM_ParallelSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SplitRng rng(5);
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = rng.get(0, i);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::uint64_t> v = base;
    state.ResumeTiming();
    parallel_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 16)->Arg(1 << 20);

void BM_WriteMinContended(benchmark::State& state) {
  // All relaxations hammer a small window of cells — worst-case contention
  // for the CAS loop.
  const std::size_t cells = static_cast<std::size_t>(state.range(0));
  std::vector<std::atomic<std::uint64_t>> arr(cells);
  const std::size_t n = 1 << 20;
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& a : arr) a.store(~std::uint64_t{0});
    state.ResumeTiming();
    parallel_for(0, n, [&](std::size_t i) {
      write_min(arr[i % cells], static_cast<std::uint64_t>(n - i));
    });
    benchmark::DoNotOptimize(arr[0].load());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WriteMinContended)->Arg(1)->Arg(64)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
