// Reproduces Table 5: step-count REDUCTION factors vs standard BFS
// (the rho = 1 row of Table 4) on unweighted graphs.
//
// Paper headline: ~3x at rho=10, ~6-10x at rho=100, 13-75x at rho >= 1000;
// webgraphs show smaller factors because their hub structure already gives
// few BFS rounds. Expect the same ordering.
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Table 5 — step reduction vs BFS (rho=1), unweighted", s,
               graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/false);
  print_steps_table(graphs, t, /*as_reduction=*/true);
  emit_steps_json("table5_reduction_unweighted", graphs, t, s);
  return 0;
}
