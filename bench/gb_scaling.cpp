// Thread-scaling harness: the same SSSP query and preprocessing run under
// an explicit worker-count sweep (what RS_THREADS controls globally). On a
// multicore host this charts the speedup curves; on a single hardware
// thread the rows document the (small) oversubscription overhead.
#include <benchmark/benchmark.h>

#include "core/radius_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/primitives.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"

namespace {

using namespace rs;

struct Setup {
  Graph graph;
  std::vector<Dist> radius;
};

const Setup& setup() {
  static const Setup s = [] {
    Setup out;
    out.graph = assign_uniform_weights(gen::road_network(96, 96, 5), 6);
    out.radius = all_radii(out.graph, 48);
    return out;
  }();
  return s;
}

class WorkerGuard {
 public:
  explicit WorkerGuard(int workers) : before_(num_workers()) {
    set_num_workers(workers);
  }
  ~WorkerGuard() { set_num_workers(before_); }

 private:
  int before_;
};

void BM_QueryAtThreadCount(benchmark::State& state) {
  const Setup& s = setup();
  const WorkerGuard guard(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(radius_stepping(s.graph, 0, s.radius));
  }
}
BENCHMARK(BM_QueryAtThreadCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_RadiiAtThreadCount(benchmark::State& state) {
  const Setup& s = setup();
  const WorkerGuard guard(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(all_radii(s.graph, 32));
  }
}
BENCHMARK(BM_RadiiAtThreadCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PreprocessAtThreadCount(benchmark::State& state) {
  const Setup& s = setup();
  const WorkerGuard guard(static_cast<int>(state.range(0)));
  PreprocessOptions opts;
  opts.rho = 32;
  opts.k = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(preprocess(s.graph, opts));
  }
}
BENCHMARK(BM_PreprocessAtThreadCount)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
