// Priority-queue microbenchmarks: the indexed d-ary heap, the pairing heap
// and the treap under Dijkstra-like workloads (insert / decrease-key /
// extract-min mixes).
#include <benchmark/benchmark.h>

#include "parallel/rng.hpp"
#include "pq/binary_heap.hpp"
#include "pq/pairing_heap.hpp"
#include "pset/treap.hpp"

namespace {

using namespace rs;

constexpr Vertex kN = 100'000;

template <typename Heap>
void dijkstra_like_workload(Heap& h, const SplitRng& rng) {
  std::uint64_t op = 0;
  // Seed, then alternate extract-min with a burst of decrease/inserts —
  // the pattern Dijkstra produces.
  for (Vertex v = 0; v < kN / 10; ++v) {
    h.insert_or_decrease(v, rng.get(0, op++) % 1'000'000);
  }
  while (!h.empty()) {
    const auto e = h.extract_min();
    for (int j = 0; j < 3; ++j) {
      const Vertex v = static_cast<Vertex>(rng.bounded(1, op++, kN));
      const auto key = e.key + 1 + rng.get(2, op++) % 1000;
      if (v != e.id) h.insert_or_decrease(v, key);
      if (h.size() > kN / 5) break;
    }
    if (op > 400'000) break;
  }
}

void BM_IndexedHeapDijkstraMix(benchmark::State& state) {
  const SplitRng rng(1);
  for (auto _ : state) {
    IndexedHeap<std::uint64_t> h(kN);
    dijkstra_like_workload(h, rng);
    benchmark::DoNotOptimize(h.size());
  }
}
BENCHMARK(BM_IndexedHeapDijkstraMix)->Unit(benchmark::kMillisecond);

void BM_PairingHeapDijkstraMix(benchmark::State& state) {
  const SplitRng rng(1);
  for (auto _ : state) {
    PairingHeap<std::uint64_t> h(kN);
    dijkstra_like_workload(h, rng);
    benchmark::DoNotOptimize(h.size());
  }
}
BENCHMARK(BM_PairingHeapDijkstraMix)->Unit(benchmark::kMillisecond);

void BM_TreapInsertExtract(benchmark::State& state) {
  const SplitRng rng(2);
  for (auto _ : state) {
    Treap<std::uint64_t> t;
    for (std::uint64_t i = 0; i < 50'000; ++i) t.insert(rng.get(0, i));
    while (!t.empty()) benchmark::DoNotOptimize(t.extract_min());
  }
}
BENCHMARK(BM_TreapInsertExtract)->Unit(benchmark::kMillisecond);

void BM_TreapBulkUnion(benchmark::State& state) {
  // The Algorithm 2 batch shape: union a sorted batch into a large set.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> base_keys;
  for (std::uint64_t i = 0; i < 200'000; ++i) base_keys.push_back(2 * i);
  for (auto _ : state) {
    state.PauseTiming();
    Treap<std::uint64_t> base = Treap<std::uint64_t>::from_sorted(base_keys);
    std::vector<std::uint64_t> batch_keys;
    for (std::size_t i = 0; i < batch; ++i) {
      batch_keys.push_back(2 * (i * 37 % 300'000) + 1);
    }
    std::sort(batch_keys.begin(), batch_keys.end());
    batch_keys.erase(std::unique(batch_keys.begin(), batch_keys.end()),
                     batch_keys.end());
    Treap<std::uint64_t> add = Treap<std::uint64_t>::from_sorted(batch_keys);
    state.ResumeTiming();
    base.union_with(std::move(add));
    benchmark::DoNotOptimize(base.size());
  }
}
BENCHMARK(BM_TreapBulkUnion)->Arg(100)->Arg(10'000)->Arg(100'000);

void BM_TreapSplit(benchmark::State& state) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 200'000; ++i) keys.push_back(i);
  for (auto _ : state) {
    state.PauseTiming();
    Treap<std::uint64_t> t = Treap<std::uint64_t>::from_sorted(keys);
    state.ResumeTiming();
    auto lo = t.split_leq(100'000);
    benchmark::DoNotOptimize(lo.size());
  }
}
BENCHMARK(BM_TreapSplit);

}  // namespace

BENCHMARK_MAIN();
