// Reproduces Table 4: average Radius-Stepping step count on UNWEIGHTED
// graphs as rho varies, over the six-graph suite (road x2, web x2, 2-D and
// 3-D grid), mean over a fixed random source sample.
//
// Paper headline (1M-vertex graphs, 1000 sources): road-PA falls 619 ->
// 101 -> 46 steps at rho = 1 / 100 / 1000; webgraphs start far lower
// (28-109 at rho=1) and flatten early; grids behave like roads. Expect the
// same ordering and slopes (absolute counts scale with graph diameter).
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Table 4 — mean steps, unweighted (BFS setting)", s, graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/false);
  print_steps_table(graphs, t, /*as_reduction=*/false);
  emit_steps_json("table4_steps_unweighted", graphs, t, s);
  return 0;
}
