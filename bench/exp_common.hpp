// Shared harness for the paper-reproduction benches (Tables 2-7,
// Figures 2-5). Builds the six-graph suite of Section 5.1 (with the
// DESIGN.md §3 substitutions), samples sources, and prints paper-style
// tables.
//
// Scaling: RS_SCALE=ci|default|full picks graph sizes; RS_SOURCES overrides
// the number of sampled sources; RS_THREADS the worker count.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rs::exp {

struct Scale {
  std::string name;       // ci / default / full
  Vertex road_side;       // road networks: side x side lattice
  Vertex web_n;           // scale-free vertex count
  Vertex grid2d_side;     // 2-D grid side
  Vertex grid3d_side;     // 3-D grid side
  int sources;            // sampled sources per graph
};

/// Reads RS_SCALE / RS_SOURCES and returns the active configuration.
Scale scale_from_env();

struct NamedGraph {
  std::string name;   // paper column label
  Graph graph;        // unit weights (weighted variants derived per bench)
};

/// The paper's six evaluation graphs (§5.1), at the given scale:
/// two road networks, two scale-free "webgraphs", a 2-D and a 3-D grid.
std::vector<NamedGraph> paper_suite(const Scale& s);

/// The three-graph subset used by the shortcut experiments (Tables 2-3,
/// Figure 3): road network, webgraph, 2-D grid.
std::vector<NamedGraph> shortcut_suite(const Scale& s);

/// Deterministic source sample (same sources for every rho, mirroring the
/// paper's fixed 1000-source sample).
std::vector<Vertex> sample_sources(const Graph& g, int count,
                                   std::uint64_t seed = 12345);

/// Weighted copy with the paper's uniform [1, 10^4] weights.
Graph paper_weighted(const Graph& g, std::uint64_t seed = 999);

/// Prints the standard bench header (graph inventory + scale).
void print_header(const char* title, const Scale& s,
                  const std::vector<NamedGraph>& graphs);

}  // namespace rs::exp
