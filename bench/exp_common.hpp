// Shared harness for the paper-reproduction benches (Tables 2-7,
// Figures 2-5). Builds the six-graph suite of Section 5.1 (with the
// DESIGN.md §3 substitutions), samples sources, and prints paper-style
// tables.
//
// Scaling: RS_SCALE=ci|default|full picks graph sizes; RS_SOURCES overrides
// the number of sampled sources; RS_THREADS the worker count.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace rs::exp {

struct Scale {
  std::string name;       // ci / default / full
  Vertex road_side;       // road networks: side x side lattice
  Vertex web_n;           // scale-free vertex count
  Vertex grid2d_side;     // 2-D grid side
  Vertex grid3d_side;     // 3-D grid side
  int sources;            // sampled sources per graph
};

/// Reads RS_SCALE / RS_SOURCES and returns the active configuration.
Scale scale_from_env();

struct NamedGraph {
  std::string name;   // paper column label
  Graph graph;        // unit weights (weighted variants derived per bench)
};

/// The paper's six evaluation graphs (§5.1), at the given scale:
/// two road networks, two scale-free "webgraphs", a 2-D and a 3-D grid.
std::vector<NamedGraph> paper_suite(const Scale& s);

/// The three-graph subset used by the shortcut experiments (Tables 2-3,
/// Figure 3): road network, webgraph, 2-D grid.
std::vector<NamedGraph> shortcut_suite(const Scale& s);

/// Deterministic source sample (same sources for every rho, mirroring the
/// paper's fixed 1000-source sample).
std::vector<Vertex> sample_sources(const Graph& g, int count,
                                   std::uint64_t seed = 12345);

/// Weighted copy with the paper's uniform [1, 10^4] weights.
Graph paper_weighted(const Graph& g, std::uint64_t seed = 999);

/// Prints the standard bench header (graph inventory + scale).
void print_header(const char* title, const Scale& s,
                  const std::vector<NamedGraph>& graphs);

/// Machine-readable bench results: collects named metrics and writes
/// BENCH_<bench>.json into RS_BENCH_DIR (default: current directory) —
/// the perf-trajectory format CI's bench-smoke job uploads as an artifact.
/// Schema (see README "Perf tracking"):
///
///   { "schema_version": 1, "bench": "...", "scale": "ci", "threads": N,
///     "sources": N,
///     "metrics": [ { "name": "...", "value": 1.5, "unit": "...",
///                    "labels": { "graph": "road", ... } }, ... ] }
class BenchJson {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  BenchJson(std::string bench, const Scale& s);

  /// Adds one metric row. `labels` carry free-form context (graph name,
  /// rho, batch size, ...).
  void add(const std::string& name, double value, const std::string& unit,
           Labels labels = {});

  /// Writes BENCH_<bench>.json; returns the path, or "" when the file
  /// could not be written (missing directory is a warning, not an error —
  /// benches still succeed without the perf trail).
  std::string write() const;

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    Labels labels;
  };

  std::string bench_;
  std::string scale_name_;
  int sources_;
  std::vector<Metric> metrics_;
};

}  // namespace rs::exp
