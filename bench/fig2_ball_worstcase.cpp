// Reproduces Figure 2's claim: there are sparse graphs where reaching
// rho = 3d + 1 vertices from any vertex forces a ball search to scan
// Theta(d^2) edges — the O(rho^2) preprocessing work term is tight.
//
// The construction is the bipartite group chain of the figure. For each d
// we measure arcs_scanned / rho; quadratic growth shows as a linear series
// in d (the paper's point), while real-world graphs stay near-constant
// (shown for contrast on a road network).
#include <cstdio>

#include "exp_common.hpp"
#include "graph/generators.hpp"
#include "shortcut/ball_search.hpp"

int main() {
  using namespace rs;
  using namespace rs::exp;
  const Scale s = scale_from_env();
  std::printf("=== Figure 2 — ball-search worst case: arcs scanned to reach "
              "rho vertices ===\n\n");

  std::printf("bipartite-chain worst case (groups of size d):\n");
  std::printf("  %6s %8s %14s %16s\n", "d", "rho=3d+1", "arcs_scanned",
              "arcs per vertex");
  for (const Vertex d : {8, 16, 32, 64, 128, 256}) {
    const Graph g = gen::bipartite_chain(8, d).with_weight_sorted_adjacency();
    const Vertex rho = 3 * d + 1;
    // Source in an interior group: sees full d x d bipartite fans.
    const Ball ball = ball_search(g, d, rho, rho);
    std::printf("  %6u %8u %14llu %16.1f\n", d, rho,
                static_cast<unsigned long long>(ball.arcs_scanned),
                double(ball.arcs_scanned) / double(ball.vertices.size()));
  }

  std::printf("\nroad network for contrast (constant-degree graph):\n");
  std::printf("  %6s %8s %14s %16s\n", "-", "rho", "arcs_scanned",
              "arcs per vertex");
  const Graph road = gen::road_network(s.road_side, s.road_side, 101)
                         .with_weight_sorted_adjacency();
  for (const Vertex rho : {25u, 49u, 97u, 193u, 385u, 769u}) {
    const Ball ball = ball_search(road, road.num_vertices() / 2, rho, rho);
    std::printf("  %6s %8u %14llu %16.1f\n", "-", rho,
                static_cast<unsigned long long>(ball.arcs_scanned),
                double(ball.arcs_scanned) / double(ball.vertices.size()));
  }
  std::printf("\nExpected: worst-case arcs/vertex grows ~linearly in d "
              "(Theta(rho^2) total); road network stays near its constant "
              "degree.\n");
  return 0;
}
