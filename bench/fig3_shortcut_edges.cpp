// Reproduces Figure 3(a-c): additional-edge factors of greedy vs DP at
// k = 3 as rho sweeps 10..1000, one CSV series per graph (road / web /
// grid). Plot rho on a log axis and factor on a log axis to recover the
// paper's figure.
#include <cstdio>

#include "shortcut_edges.hpp"

int main() {
  using namespace rs;
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = shortcut_suite(s);
  print_header("Figure 3 — greedy vs DP added-edge factors at k=3 (CSV)", s,
               graphs);

  const std::vector<Vertex> ks{3};
  for (const auto& [name, g] : graphs) {
    const bool hub_graph = name == "web";
    std::printf("# figure3 %s\n", name.c_str());
    std::printf("rho,greedy,dp\n");
    for (const Vertex rho : table_rhos(s)) {
      const double greedy =
          count_shortcut_edges(g, rho, ks, ShortcutHeuristic::kGreedy,
                               !hub_graph)
              .factor[0];
      const double dp =
          count_shortcut_edges(g, rho, ks, ShortcutHeuristic::kDP, !hub_graph)
              .factor[0];
      std::printf("%u,%.4f,%.4f\n", rho, greedy, dp);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
