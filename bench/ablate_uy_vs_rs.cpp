// Related-work ablation (paper §6): Ullman–Yannakakis-style hub
// shortcutting vs Radius-Stepping preprocessing on the same road network.
// UY trades a randomized w.h.p. guarantee and O(hubs * n) added edges for
// hop-limited Bellman-Ford queries; Radius-Stepping's (k, rho) machinery is
// deterministic and adds O(n * rho) edges with per-step substep bounds.
// The table shows added edges and the rounds/steps each needs per query.
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "baseline/uy_shortcut.hpp"
#include "core/radius_stepping.hpp"
#include "exp_common.hpp"
#include "graph/generators.hpp"
#include "shortcut/shortcut.hpp"

int main() {
  using namespace rs;
  using namespace rs::exp;
  Scale s = scale_from_env();
  s.road_side = std::min<Vertex>(s.road_side, 72);
  const Graph g =
      paper_weighted(gen::road_network(s.road_side, s.road_side, 101));
  const Vertex n = g.num_vertices();
  std::printf("=== Ablation — UY hub shortcutting vs Radius-Stepping ===\n");
  std::printf("road network |V|=%u |E|=%llu\n\n", n,
              static_cast<unsigned long long>(g.num_undirected_edges()));
  const auto sources = sample_sources(g, std::min(s.sources, 5));
  const auto ref_src = sources[0];
  const auto ref = dijkstra(g, ref_src);

  std::printf("UY (hop limit = whp default):\n");
  std::printf("  %8s %14s %12s %8s\n", "hubs", "added-edges", "rounds",
              "exact");
  for (const Vertex hubs : {Vertex(n / 64), Vertex(n / 16), Vertex(n / 4)}) {
    const UYShortcutResult pre = uy_preprocess(g, std::max<Vertex>(1, hubs), 7);
    std::size_t rounds = 0;
    const auto d = uy_query(pre, ref_src, 0, &rounds);
    std::size_t bad = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (d[v] != ref[v]) ++bad;
    }
    std::printf("  %8u %14llu %12zu %8s\n", hubs,
                static_cast<unsigned long long>(pre.added_edges), rounds,
                bad == 0 ? "yes" : "NO");
    std::fflush(stdout);
  }

  std::printf("\nRadius-Stepping (k = 3, DP):\n");
  std::printf("  %8s %14s %12s %8s\n", "rho", "added-edges", "steps", "exact");
  for (const Vertex rho : {Vertex{16}, Vertex{64}, Vertex{256}}) {
    PreprocessOptions opts;
    opts.rho = rho;
    opts.k = 3;
    const PreprocessResult pre = preprocess(g, opts);
    RunStats stats;
    const auto d = radius_stepping(pre.graph, ref_src, pre.radius, &stats);
    std::size_t bad = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (d[v] != ref[v]) ++bad;
    }
    std::printf("  %8u %14llu %12zu %8s\n", rho,
                static_cast<unsigned long long>(pre.added_edges), stats.steps,
                bad == 0 ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\nExpected: both exact; UY needs far more added edges for "
              "comparable round counts — the gap the paper's preprocessing "
              "closes.\n");
  return 0;
}
