// Reproduces Figure 5(a-c): weighted step counts vs rho as CSV series
// (near-linear on log-log axes; steepest drops at small rho — the paper's
// inverse-proportionality observation).
#include "steps_common.hpp"

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto graphs = paper_suite(s);
  print_header("Figure 5 — steps vs rho, weighted (CSV)", s, graphs);
  const StepsTable t = compute_steps_table(graphs, s, /*weighted=*/true);
  print_steps_csv(graphs, t);
  emit_steps_json("fig5_steps_weighted", graphs, t, s);
  return 0;
}
