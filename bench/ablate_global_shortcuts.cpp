// Ablation for the paper's open problem (Section 7): per-tree heuristics
// vs the global sequential selection (shortcut/global_opt.hpp). Reports
// added-edge counts after merging (unique new edges) for greedy, DP, and
// global on the shortcut suite — global should win wherever balls overlap
// (roads, grids) and tie on hub graphs where DP already adds almost
// nothing.
#include <cstdio>

#include "exp_common.hpp"
#include "shortcut/global_opt.hpp"
#include "shortcut/shortcut.hpp"

int main() {
  using namespace rs;
  using namespace rs::exp;
  Scale s = scale_from_env();
  // The global pass is sequential; keep graphs modest.
  s.road_side = std::min<Vertex>(s.road_side, 96);
  s.web_n = std::min<Vertex>(s.web_n, 12'000);
  s.grid2d_side = std::min<Vertex>(s.grid2d_side, 96);
  const auto graphs = shortcut_suite(s);
  print_header("Ablation — per-tree heuristics vs global shortcut selection "
               "(unique edges after merge)", s, graphs);

  std::printf("  %-8s %5s %5s  %12s %12s %12s\n", "graph", "rho", "k",
              "greedy", "dp", "global");
  for (const auto& [name, g] : graphs) {
    const bool hub = name == "web";
    for (const Vertex rho : {Vertex{16}, Vertex{64}}) {
      for (const Vertex k : {Vertex{2}, Vertex{3}}) {
        PreprocessOptions opts;
        opts.rho = rho;
        opts.k = k;
        opts.settle_ties = !hub;

        opts.heuristic = ShortcutHeuristic::kGreedy;
        const EdgeId greedy = preprocess(g, opts).added_edges;
        opts.heuristic = ShortcutHeuristic::kDP;
        const EdgeId dp = preprocess(g, opts).added_edges;
        const EdgeId global = preprocess_global(g, opts).added_edges;

        std::printf("  %-8s %5u %5u  %12llu %12llu %12llu\n", name.c_str(),
                    rho, k, static_cast<unsigned long long>(greedy),
                    static_cast<unsigned long long>(dp),
                    static_cast<unsigned long long>(global));
        std::fflush(stdout);
      }
    }
  }
  std::printf("\nExpected: global wins where balls overlap strongly (the "
              "k=2 rows, ~20-40%% fewer edges than DP); at larger k the "
              "per-tree DP's optimal choices can beat the global pass's "
              "cover rule — the open problem stays open, but sharing "
              "clearly pays.\n");
  return 0;
}
