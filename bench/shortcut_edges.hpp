// Shared driver for Tables 2-3 / Figure 3: counts the shortcut edges a
// heuristic adds, as a factor of the original edge count, over (k, rho)
// combinations — on the unweighted three-graph suite (road / web / grid),
// matching §5.2 ("performance of the heuristics is independent of edge
// weights").
//
// Counting protocol: raw per-tree additions, i.e. the sum over all sources
// of the heuristic's selections. This matches the paper's accounting (its
// (1, rho) scheme is described as "up to n*rho edges"). Engineering reality
// is slightly cheaper: preprocess() deduplicates the union of shortcut sets
// (symmetric picks collapse), which EXPERIMENTS.md quantifies separately.
#pragma once

#include <cstdio>
#include <vector>

#include "exp_common.hpp"
#include "graph/graph.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs::exp {

struct ShortcutEdgeResult {
  // factor[i] for k = ks[i]: (raw added edges) / m.
  std::vector<double> factor;
};

inline const std::vector<Vertex>& table_ks() {
  static const std::vector<Vertex> ks{2, 3, 4, 5};
  return ks;
}

inline std::vector<Vertex> table_rhos(const Scale& s) {
  if (s.name == "ci") return {10, 20, 50};
  return {10, 20, 50, 100, 200, 500, 1000};
}

/// One (graph, rho) evaluation: runs all ball searches once and applies the
/// heuristic for every k in `ks`. `settle_ties` follows the paper protocol
/// except on hub graphs (see DESIGN.md).
inline ShortcutEdgeResult count_shortcut_edges(const Graph& g, Vertex rho,
                                               const std::vector<Vertex>& ks,
                                               ShortcutHeuristic heuristic,
                                               bool settle_ties) {
  const Graph gw = g.with_weight_sorted_adjacency();
  const Vertex n = g.num_vertices();
  const int nw = num_workers();

  std::vector<std::vector<std::uint64_t>> counts(
      ks.size(), std::vector<std::uint64_t>(static_cast<std::size_t>(nw), 0));
  const BallOptions opts{rho, 0, settle_ties};
#pragma omp parallel num_threads(nw)
  {
    BallSearchWorkspace ws(n);
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t sv = 0; sv < static_cast<std::int64_t>(n); ++sv) {
      const Ball ball = ws.run(gw, static_cast<Vertex>(sv), opts);
      for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        counts[ki][tid] += select_shortcuts(ball, ks[ki], heuristic).size();
      }
    }
  }

  ShortcutEdgeResult out;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::uint64_t added = 0;
    for (const std::uint64_t c : counts[ki]) added += c;
    out.factor.push_back(static_cast<double>(added) /
                         static_cast<double>(g.num_undirected_edges()));
  }
  return out;
}

/// Prints one paper-style table (the layout of Tables 2/3) for `heuristic`.
inline void run_shortcut_edge_table(const char* title,
                                    ShortcutHeuristic heuristic) {
  const Scale s = scale_from_env();
  const auto graphs = shortcut_suite(s);
  print_header(title, s, graphs);

  const auto& ks = table_ks();
  for (const auto& [name, g] : graphs) {
    const bool hub_graph = name == "web";
    std::printf("%s (factors of additional edges, %s heuristic%s)\n",
                name.c_str(), to_string(heuristic),
                hub_graph ? "; exactly-rho ties" : "");
    std::printf("  %6s", "rho");
    for (const Vertex k : ks) std::printf("  k=%-7u", k);
    std::printf("\n");
    for (const Vertex rho : table_rhos(s)) {
      const ShortcutEdgeResult r =
          count_shortcut_edges(g, rho, ks, heuristic, !hub_graph);
      std::printf("  %6u", rho);
      for (const double f : r.factor) std::printf("  %-9.3f", f);
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace rs::exp
