// Dynamic-update benchmark: the cost of keeping a (k,rho)-preprocessed
// serving engine current while edge weights churn.
//
//   update_latency_us  wall time for one weight-update batch end to end
//                      through the incremental path: apply the updates,
//                      recompute the dirty balls, splice a full
//                      PreprocessResult (lower is better);
//   rebuild_speedup    cold full preprocess (warm pool) over that same
//                      incremental latency — the factor the incremental
//                      path saves (higher is better, ratio unit);
//   churn_qps          serve_sync throughput through DynamicSsspService
//                      while update batches flush epoch swaps under it.
//
// Self-timed (no Google Benchmark dependency despite the gb_ prefix) so
// the CI bench-smoke job can run it anywhere; writes
// BENCH_gb_dynamic_update.json for the perf trajectory. Every
// incremental result is checked bit-identical against a cold rebuild of
// the same graph and the post-churn engine is checked against Dijkstra;
// exits non-zero on any divergence.
//
// Knobs: RS_SCALE / RS_THREADS as usual, RS_RHO (default 32), RS_K
// (default 3), RS_REPS (timing repetitions, default 5), RS_CHURN_Q
// (queries per churn round, default 64).
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "exp_common.hpp"
#include "graph/update.hpp"
#include "parallel/primitives.hpp"
#include "parallel/timer.hpp"
#include "serve/dynamic.hpp"
#include "shortcut/incremental.hpp"
#include "shortcut/shortcut.hpp"

namespace {

using namespace rs;

/// A batch of `count` random re-weightings over arcs that exist in `g`.
std::vector<WeightUpdate> random_batch(const Graph& g, std::size_t count,
                                       std::mt19937& rng) {
  std::uniform_int_distribution<Weight> weight(1, 10000);
  std::uniform_int_distribution<EdgeId> arc(0, g.num_edges() - 1);
  std::vector<WeightUpdate> batch;
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId e = arc(rng);
    Vertex u = 0;
    while (g.last_arc(u) <= e) ++u;
    batch.push_back(WeightUpdate{u, g.arc_target(e), weight(rng)});
  }
  return batch;
}

double best_seconds(int reps, const std::function<void()>& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    run();
    const double s = t.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

bool same_result(const PreprocessResult& a, const PreprocessResult& b) {
  return a.graph == b.graph && a.radius == b.radius &&
         a.added_edges == b.added_edges;
}

}  // namespace

int main() {
  using namespace rs::exp;
  const Scale s = scale_from_env();
  const auto rho = static_cast<Vertex>(env_int64("RS_RHO", 32));
  const auto k = static_cast<Vertex>(env_int64("RS_K", 3));
  const int reps = static_cast<int>(env_int64("RS_REPS", 5));
  const int churn_q = static_cast<int>(env_int64("RS_CHURN_Q", 64));

  const auto graphs = shortcut_suite(s);
  print_header("Dynamic weight updates (incremental vs cold rebuild)", s,
               graphs);
  std::printf("rho=%u  k=%u  reps=%d\n\n", rho, k, reps);
  std::printf("  %-8s  %6s  %14s  %12s  %12s\n", "graph", "batch",
              "update_us", "speedup", "churn_qps");

  BenchJson json("gb_dynamic_update", s);
  bool ok = true;

  for (const auto& [name, g0] : graphs) {
    const Graph g = paper_weighted(g0);

    PreprocessOptions opts;
    opts.rho = rho;
    opts.k = k;
    opts.heuristic = ShortcutHeuristic::kDP;

    IncrementalPreprocessor inc(g, opts);
    PreprocessPool cold_pool;
    (void)preprocess(g, opts, cold_pool);  // warm the cold-path pool

    std::mt19937 rng(2026);
    for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                         std::size_t{64}}) {
      // Each rep applies a fresh random batch; the state evolves, which
      // is exactly the steady churn a live service sees.
      const double t_inc = best_seconds(reps, [&] {
        const auto batch = random_batch(inc.graph(), batch_size, rng);
        (void)inc.apply(batch);
        (void)inc.result();
      });
      // Cold rebuild of the SAME current graph on a warm pool, and the
      // bit-identity check that keeps the fast path honest.
      PreprocessResult cold;
      const double t_cold = best_seconds(
          reps, [&] { cold = preprocess(inc.graph(), opts, cold_pool); });
      if (!same_result(inc.result(), cold)) {
        std::fprintf(stderr, "MISMATCH on %s batch=%zu: incremental != "
                     "cold rebuild\n", name.c_str(), batch_size);
        ok = false;
      }

      const double update_us = t_inc * 1e6;
      const double speedup = t_cold / t_inc;
      std::printf("  %-8s  %6zu  %14.1f  %11.2fx  %12s\n", name.c_str(),
                  batch_size, update_us, speedup, "-");
      const BenchJson::Labels labels{{"graph", name},
                                     {"batch", std::to_string(batch_size)},
                                     {"rho", std::to_string(rho)},
                                     {"k", std::to_string(k)}};
      json.add("update_latency_us", update_us, "us", labels);
      json.add("rebuild_speedup", speedup, "ratio", labels);
    }

    // Churn-under-load: targeted queries through the dynamic service
    // while staged batches flush epoch swaps beneath them.
    serve::DynamicSsspService::Options dopts;
    dopts.preprocess = opts;
    serve::DynamicSsspService dyn(g, dopts);
    const std::vector<Vertex> sources =
        sample_sources(g, churn_q, /*seed=*/31);
    std::size_t served = 0;
    Timer churn_timer;
    for (int round = 0; round < reps; ++round) {
      dyn.stage(random_batch(dyn.server()
                                 .engine_snapshot()
                                 ->original_graph(),
                             8, rng));
      for (const Vertex src : sources) {
        QueryRequest req;
        req.source = src;
        req.targets.push_back(static_cast<Vertex>(
            (src + g.num_vertices() / 2) % g.num_vertices()));
        (void)dyn.serve_corrected(req);
        ++served;
      }
      (void)dyn.flush();
    }
    const double churn_qps =
        static_cast<double>(served) / churn_timer.seconds();

    // Post-churn exactness: the swapped-in engine vs Dijkstra.
    {
      const auto eng = dyn.server().engine_snapshot();
      const std::vector<Dist> want =
          dijkstra(eng->original_graph(), sources[0]);
      QueryRequest req;
      req.source = sources[0];
      req.want_full_distances = true;
      const QueryResponse got = dyn.server().serve_sync(req);
      if (got.dist != want) {
        std::fprintf(stderr, "MISMATCH on %s: post-churn engine row\n",
                     name.c_str());
        ok = false;
      }
    }
    std::printf("  %-8s  %6s  %14s  %12s  %12.1f\n", name.c_str(), "-",
                "-", "-", churn_qps);
    json.add("churn_qps", churn_qps, "queries/sec",
             {{"graph", name},
              {"rho", std::to_string(rho)},
              {"k", std::to_string(k)}});
  }

  const std::string path = json.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAILED: dynamic update paths diverged\n");
    return 1;
  }
  return 0;
}
