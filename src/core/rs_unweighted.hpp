// Radius-Stepping for unweighted graphs (Section 3.4).
//
// On a unit-weight graph every frontier vertex carries the same tentative
// distance, so no priority structure is needed: the engine is a
// level-synchronous BFS whose step boundaries d_i are chosen by the radius
// rule d_i = level + min r(v). One step settles levels (d_{i-1}, d_i]; each
// level is one parallel substep, giving the O(m + n) work and
// O((n / rho) log rho) round bound of Lemma 3.10.
#pragma once

#include <vector>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Hop distances from `source` using radius-guided BFS. Edge weights are
/// ignored (treated as 1). Step/substep accounting matches the weighted
/// engine run on the unit-weighted graph (tested).
std::vector<Dist> radius_stepping_unweighted(const Graph& g, Vertex source,
                                             const std::vector<Dist>& radius,
                                             RunStats* stats = nullptr);

/// Context-reusing form: identical results, scratch state in `ctx`, output
/// in `out`. Honors ctx.sequential() (see core/radius_stepping.hpp).
/// Always runs to exhaustion (any stale target stamps are cleared).
void radius_stepping_unweighted(const Graph& g, Vertex source,
                                const std::vector<Dist>& radius,
                                QueryContext& ctx, std::vector<Dist>& out,
                                RunStats* stats = nullptr);

/// Serving primitive: distances stay in `ctx` (read via ctx.read_dist(),
/// then finish_query() or the O(touched) reset_touched()); honors
/// ctx.has_targets() early
/// termination — with unit weights the exit is per-level, right after the
/// expansion that claims the last target (claimed == final).
void radius_stepping_unweighted_partial(const Graph& g, Vertex source,
                                        const std::vector<Dist>& radius,
                                        QueryContext& ctx,
                                        RunStats* stats = nullptr);

}  // namespace rs
