// Radius-Stepping, Algorithm 2: the BST formulation.
//
// This engine follows the paper's efficient implementation literally: two
// ordered sets Q (tentative distances) and R (tentative distance + vertex
// radius) stored in join-based treaps; the round distance d_i is R's
// minimum, the active set A_i is Q.split(d_i), and each substep's batch of
// successful relaxations is applied to Q and R with bulk
// difference / union operations — the O(log n)-per-update bookkeeping the
// work/depth analysis (Lemma 3.9) charges.
//
// It computes identical distances AND an identical step sequence to the
// flat engine (core/radius_stepping.hpp); tests assert both.
#pragma once

#include <vector>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Serving form: runs out of a reusable QueryContext (distance array,
/// stamps, key buffers, and the treap node arena all come from `ctx`).
/// After warm-up, a sequential-mode context answers with zero heap
/// allocations — treap nodes are recycled through the context's freelist
/// arena. Distances land in `out` (resized to n).
void radius_stepping_bst(const Graph& g, Vertex source,
                         const std::vector<Dist>& radius, QueryContext& ctx,
                         std::vector<Dist>& out, RunStats* stats = nullptr);

/// Convenience form: fresh context per call.
std::vector<Dist> radius_stepping_bst(const Graph& g, Vertex source,
                                      const std::vector<Dist>& radius,
                                      RunStats* stats = nullptr);

/// Serving primitive: distances stay in `ctx` (read via ctx.read_dist(),
/// then finish_query() or the O(touched) reset_touched()); honors
/// ctx.has_targets() step-boundary early termination (see
/// core/radius_stepping.hpp).
void radius_stepping_bst_partial(const Graph& g, Vertex source,
                                 const std::vector<Dist>& radius,
                                 QueryContext& ctx, RunStats* stats = nullptr);

/// The same Algorithm 2 on the flat sorted-array substrate
/// (pset/flat_set.hpp): O(n)-copy bulk operations instead of the treap's
/// O(p log q). Identical results; exists to show the analysis only needs
/// the ordered-set interface and to benchmark the substrate crossover.
void radius_stepping_flatset(const Graph& g, Vertex source,
                             const std::vector<Dist>& radius,
                             QueryContext& ctx, std::vector<Dist>& out,
                             RunStats* stats = nullptr);

std::vector<Dist> radius_stepping_flatset(const Graph& g, Vertex source,
                                          const std::vector<Dist>& radius,
                                          RunStats* stats = nullptr);

/// Serving primitive for the flat-set substrate (see *_bst_partial).
void radius_stepping_flatset_partial(const Graph& g, Vertex source,
                                     const std::vector<Dist>& radius,
                                     QueryContext& ctx,
                                     RunStats* stats = nullptr);

}  // namespace rs
