// Radius-function helpers. Radius-Stepping is correct for *any* radii
// (Section 3); these constructors give the instructive special cases:
//   r ≡ 0        -> Dijkstra-like (settle one distance class per step)
//   r ≡ infinity -> Bellman-Ford (single step, substeps to convergence)
//   r ≡ Delta    -> almost Delta-stepping (Delta added to the nearest
//                   frontier distance rather than to d_{i-1})
// The bounded-step/substep behaviour of the paper needs r(v) = r_rho(v)
// from preprocessing (shortcut/shortcut.hpp).
#pragma once

#include <vector>

#include "graph/types.hpp"

namespace rs {

inline std::vector<Dist> constant_radii(Vertex n, Dist r) {
  return std::vector<Dist>(n, r);
}

inline std::vector<Dist> dijkstra_radii(Vertex n) {
  return constant_radii(n, 0);
}

/// Large enough that delta + r exceeds every real distance, small enough
/// never to overflow when added to a tentative distance.
inline std::vector<Dist> bellman_ford_radii(Vertex n) {
  return constant_radii(n, kInfDist / 2);
}

}  // namespace rs
