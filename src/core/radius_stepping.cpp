#include "core/radius_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

namespace {

/// Algorithm 1 over a QueryContext. `Par` selects the substrate: parallel
/// edge-maps with atomic WriteMin, or the strictly sequential twin the
/// batch scheduler runs one-per-worker (plain loads/stores, no CAS, no
/// OpenMP regions — it must be nestable inside an outer parallel region).
/// Both produce identical distances and an identical step sequence: by the
/// end of a step every vertex settled in it has relaxed its out-arcs with
/// its final value, so step-boundary distances — and with them the
/// frontier, d_i, steps, and settled counts — are schedule-independent.
/// Substep counts are NOT: relaxations read neighbor distances live
/// (chaotic relaxation), so how fast a step converges internally depends
/// on processing order. Only Theorem 3.2's k+2 upper bound is invariant.
///
/// Targeted early termination: when ctx.has_targets(), the run stops at
/// the first STEP boundary with every stamped target settled. Vertices
/// marked settled mid-step can still improve while the annulus converges,
/// so the check only ever fires between steps, where Theorem 3.1 makes
/// every settled distance final — the exit is exact.
template <bool Par>
void radius_stepping_run(const Graph& g, Vertex source,
                         const std::vector<Dist>& radius, QueryContext& ctx,
                         RunStats& local) {
  std::atomic<Dist>* dist = ctx.dist();
  const auto load = [&](Vertex v) {
    return dist[v].load(std::memory_order_relaxed);
  };
  // Sequential relaxation: same contract as write_min without the RMW.
  const auto relax_seq = [&](Vertex v, Dist nd) {
    if (nd >= dist[v].load(std::memory_order_relaxed)) return false;
    dist[v].store(nd, std::memory_order_relaxed);
    return true;
  };
  const bool targeted = ctx.has_targets();
  const bool bounds = targeted && ctx.has_target_bounds();
  const std::size_t k_goal = ctx.k_goal();
  // All settle sites run in sequential sections (both twins), so the
  // target bookkeeping needs no atomics.
  const auto settle = [&](Vertex v) {
    ctx.mark_settled(v);
    if (targeted) ctx.note_target_settled(v);
  };
  // Exactness of both exits holds only at STEP boundaries (Theorem 3.1):
  // targets all settled (by distance order or by lower-bound proof), or —
  // for kTopK — at least k vertices settled, which makes the k smallest
  // settled (dist, vertex) pairs exactly the k nearest.
  const auto goals_met = [&](std::size_t settled_count) {
    if (targeted && ctx.targets_remaining() == 0) return true;
    return k_goal != 0 && settled_count >= k_goal;
  };

  // Traced requests take two clock readings per substep (relax end is
  // partition start, so the phases tile the substep); untraced runs take
  // none — the disabled path costs one predictable branch per substep.
  using TraceClock = std::chrono::steady_clock;
  const bool timed = ctx.trace_phases();
  const auto phase_ns = [](TraceClock::time_point a, TraceClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  // First-touch records feeding the O(touched) reset epilogue: sequential
  // sections push into bucket 0 after observing the old distance was
  // kInfDist; the parallel substep uses the pre-CAS value write_min
  // reports, whose kInfDist observation has exactly one winner.
  const int nw = Par ? num_workers() : 1;
  std::vector<std::vector<Vertex>>& touch = ctx.touch_buckets(nw);

  dist[source].store(0, std::memory_order_relaxed);
  touch[0].push_back(source);
  settle(source);
  local.settled = 1;

  // Frontier: unsettled vertices with finite tentative distance. Seeded by
  // relaxing the source (Line 2 of Algorithm 1). Membership is deduplicated
  // with mark stamps under one epoch for the whole query: a vertex only
  // ever leaves the frontier by settling, which is final (Theorem 3.1), so
  // "has ever been a frontier candidate" is exactly "must not re-enter".
  // The frontier is a set; no order matters to the step sequence, so it is
  // never sorted.
  std::vector<Vertex>& frontier = ctx.frontier();
  frontier.clear();
  ctx.next_mark_epoch();
  for (EdgeId e = g.first_arc(source); e < g.last_arc(source); ++e) {
    const Vertex v = g.arc_target(e);
    if (v == source) continue;
    const auto w = static_cast<Dist>(g.arc_weight(e));
    // The seed loop runs single-threaded in both twins, so the pre-relax
    // load is an exact first-touch observation.
    const Dist dv = load(v);
    const bool lowered = Par ? write_min(dist[v], w) : relax_seq(v, w);
    if (lowered) {
      ++local.relaxations;
      if (dv == kInfDist) touch[0].push_back(v);
      if (bounds) ctx.note_bound_check(v, w);
    }
    if (!ctx.is_settled(v) && ctx.mark(v)) frontier.push_back(v);
  }
  // Min over the CURRENT frontier of delta(v) + r(v), maintained across
  // steps: distances cannot change between a rebuild and the next step's
  // Line 4, so the sequential path folds the min into the rebuild pass.
  Dist pending_di = kInfDist;
  if constexpr (!Par) {
    for (const Vertex v : frontier) {
      pending_di = std::min(pending_di, load(v) + radius[v]);
    }
  }

  std::vector<std::vector<Vertex>>& buckets = ctx.buckets(nw);
  std::vector<Vertex>& active = ctx.active();
  std::vector<Vertex>& updated = ctx.updated();
  std::vector<Vertex>& newly_frontier = ctx.scratch();
  std::vector<Vertex>& next = ctx.next();

  // Round distance of the previous step (d_{i-1}). Vertices with
  // delta <= prev_di are exactly S_{i-1} (Theorem 3.1): final, safe to skip
  // as relaxation targets. d_0 = 0 covers the source.
  Dist prev_di = 0;

  // The entry check covers requests whose targets are already settled
  // (source-only target sets); the per-step check is at the bottom.
  while (!frontier.empty()) {
    if (goals_met(local.settled)) {
      local.early_exit = true;
      break;
    }
    ++local.steps;

    // Line 4: d_i = min over the frontier of delta(v) + r(v).
    Dist di;
    if constexpr (Par) {
      di = parallel_min(std::size_t{0}, frontier.size(), kInfDist,
                        [&](std::size_t i) {
                          const Vertex v = frontier[i];
                          return load(v) + radius[v];
                        });
    } else {
      di = pending_di;
    }

    // First substep's active set: every unsettled vertex with delta <= d_i.
    // Vertices inside d_i are settled the moment they appear; mark now so
    // relaxations skip them as targets-for-activation bookkeeping.
    active.clear();
    for (const Vertex v : frontier) {
      if (load(v) <= di) {
        active.push_back(v);
        settle(v);
      }
    }
    local.settled += active.size();
    local.max_active = std::max(local.max_active, active.size());

    // Lines 5-9: Bellman-Ford substeps until no delta(v) <= d_i changes.
    std::size_t substeps_this_step = 0;
    std::size_t relaxed_this_step = 0;
    newly_frontier.clear();
    while (!active.empty()) {
      ++substeps_this_step;
      // One claim epoch per substep: each updated vertex is collected once
      // no matter how many relaxations hit it.
      ctx.next_claim_epoch();
      const auto t_relax = timed ? TraceClock::now() : TraceClock::time_point{};
      if constexpr (Par) {
        std::atomic<std::size_t> relax_count{0};
#pragma omp parallel num_threads(nw)
        {
          std::size_t my_relax = 0;
          const auto tid = static_cast<std::size_t>(omp_get_thread_num());
          auto& mine = buckets[tid];
          auto& my_touch = touch[tid];
#pragma omp for schedule(dynamic, 64)
          for (std::int64_t i = 0;
               i < static_cast<std::int64_t>(active.size()); ++i) {
            const Vertex u = active[static_cast<std::size_t>(i)];
            const Dist du = load(u);
            for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
              const Vertex v = g.arc_target(e);
              // Line 7 relaxes targets outside S_{i-1} only; vertices
              // settled in *this* step may still improve while the annulus
              // converges, so they stay relaxable.
              if (load(v) <= prev_di) continue;
              Dist before = kInfDist;
              if (write_min(dist[v], du + g.arc_weight(e), before)) {
                ++my_relax;
                if (before == kInfDist) my_touch.push_back(v);
                if (ctx.claim(v)) mine.push_back(v);
              }
            }
          }
          relax_count.fetch_add(my_relax, std::memory_order_relaxed);
        }
        relaxed_this_step += relax_count.load(std::memory_order_relaxed);
      } else {
        auto& mine = buckets[0];
        for (const Vertex u : active) {
          const Dist du = load(u);
          for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
            const Vertex v = g.arc_target(e);
            // Single load serves both the S_{i-1} skip and the relax test.
            const Dist dv = load(v);
            if (dv <= prev_di) continue;
            const Dist nd = du + g.arc_weight(e);
            if (nd < dv) {
              if (dv == kInfDist) touch[0].push_back(v);
              dist[v].store(nd, std::memory_order_relaxed);
              ++relaxed_this_step;
              if (ctx.claim_sequential(v)) mine.push_back(v);
            }
          }
        }
      }

      const auto t_drain = timed ? TraceClock::now() : TraceClock::time_point{};
      if (timed) local.relax_ns += phase_ns(t_relax, t_drain);

      // Drain this substep's updated vertices, then partition: inside d_i
      // -> active for the next substep (and settled); beyond d_i ->
      // frontier candidates. Sequential mode partitions straight out of the
      // single bucket; parallel mode concatenates the worker buckets first.
      if constexpr (Par) {
        updated.clear();
        for (int t = 0; t < nw; ++t) {
          auto& b = buckets[static_cast<std::size_t>(t)];
          updated.insert(updated.end(), b.begin(), b.end());
          b.clear();
        }
      } else {
        updated.swap(buckets[0]);
        buckets[0].clear();
      }
      active.clear();
      for (const Vertex v : updated) {
        const Dist dv = load(v);
        // Lower-bound proof site (sequential partition pass, both twins):
        // a pending target whose tentative distance reached its admissible
        // floor is provably final even though it lies beyond d_i.
        if (bounds) ctx.note_bound_check(v, dv);
        if (dv <= di) {
          active.push_back(v);
          if (!ctx.is_settled(v)) {
            settle(v);
            ++local.settled;
          }
        } else if (!ctx.is_settled(v) && ctx.mark(v)) {
          newly_frontier.push_back(v);
        }
      }
      local.max_active = std::max(local.max_active, active.size());
      if (timed) local.partition_ns += phase_ns(t_drain, TraceClock::now());
    }
    // Loop iterations equal Algorithm 1's repeat-until iterations: the
    // final iteration relaxes the last-updated vertices and observes no
    // further update with delta <= d_i (the Line 9 exit), so no extra
    // "observation" substep is added.
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
    local.relaxations += relaxed_this_step;

    // Step boundary: every settled vertex is now final (Theorem 3.1), so a
    // run that has met its goal — all targets settled, or k vertices for a
    // top-k request — is done; skip the frontier rebuild entirely.
    if (goals_met(local.settled)) {
      local.early_exit = true;
      break;
    }

    // Rebuild the frontier: drop settled vertices, add the new arrivals.
    // Every member was marked on first insertion, so the two lists are
    // disjoint and individually duplicate-free. The sequential path
    // computes the next step's d_i in the same pass.
    next.clear();
    if constexpr (Par) {
      for (const Vertex v : frontier) {
        if (!ctx.is_settled(v)) next.push_back(v);
      }
      for (const Vertex v : newly_frontier) {
        if (!ctx.is_settled(v)) next.push_back(v);
      }
    } else {
      pending_di = kInfDist;
      for (const Vertex v : frontier) {
        if (!ctx.is_settled(v)) {
          next.push_back(v);
          pending_di = std::min(pending_di, load(v) + radius[v]);
        }
      }
      for (const Vertex v : newly_frontier) {
        if (!ctx.is_settled(v)) {
          next.push_back(v);
          pending_di = std::min(pending_di, load(v) + radius[v]);
        }
      }
    }
    frontier.swap(next);
    prev_di = di;
  }
}

}  // namespace

void radius_stepping_partial(const Graph& g, Vertex source,
                             const std::vector<Dist>& radius,
                             QueryContext& ctx, RunStats* stats) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping: radius size mismatch");
  }
  if (source >= n) {
    throw std::invalid_argument("radius_stepping: bad source");
  }

  ctx.begin_query(n);
  RunStats local;
  if (ctx.sequential()) {
    radius_stepping_run<false>(g, source, radius, ctx, local);
  } else {
    radius_stepping_run<true>(g, source, radius, ctx, local);
  }
  local.touched = ctx.touched_count();
  if (stats != nullptr) *stats = local;
}

void radius_stepping(const Graph& g, Vertex source,
                     const std::vector<Dist>& radius, QueryContext& ctx,
                     std::vector<Dist>& out, RunStats* stats) {
  // A full distance vector must come from an exhaustive run: stale target
  // stamps on a reused context must never truncate it.
  ctx.clear_targets();
  radius_stepping_partial(g, source, radius, ctx, stats);
  ctx.finish_query(g.num_vertices(), out);
}

std::vector<Dist> radius_stepping(const Graph& g, Vertex source,
                                  const std::vector<Dist>& radius,
                                  RunStats* stats) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  radius_stepping(g, source, radius, ctx, out, stats);
  return out;
}

}  // namespace rs
