#include "core/radius_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

namespace {

/// Thread-bucketed collection of vertices updated in one substep. A vertex
/// is recorded once no matter how many relaxations hit it (claim flag).
class UpdateCollector {
 public:
  explicit UpdateCollector(Vertex n)
      : claimed_(n), buckets_(static_cast<std::size_t>(num_workers())) {
    parallel_for(0, n, [&](std::size_t i) {
      claimed_[i].store(0, std::memory_order_relaxed);
    });
  }

  /// Call from inside a parallel region.
  void record(Vertex v) {
    if (claimed_[v].exchange(1, std::memory_order_relaxed) == 0) {
      buckets_[static_cast<std::size_t>(omp_get_thread_num())].push_back(v);
    }
  }

  /// Drains all buckets into one list and resets the claim flags.
  std::vector<Vertex> take() {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b.size();
    std::vector<Vertex> out;
    out.reserve(total);
    for (auto& b : buckets_) {
      out.insert(out.end(), b.begin(), b.end());
      b.clear();
    }
    for (const Vertex v : out) {
      claimed_[v].store(0, std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::vector<std::atomic<std::uint8_t>> claimed_;
  std::vector<std::vector<Vertex>> buckets_;
};

}  // namespace

std::vector<Dist> radius_stepping(const Graph& g, Vertex source,
                                  const std::vector<Dist>& radius,
                                  RunStats* stats) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping: radius size mismatch");
  }
  if (source >= n) {
    throw std::invalid_argument("radius_stepping: bad source");
  }

  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  std::vector<std::uint8_t> settled(n, 0);

  RunStats local;
  dist[source].store(0, std::memory_order_relaxed);
  settled[source] = 1;
  local.settled = 1;

  // Frontier: unsettled vertices with finite tentative distance. Seeded by
  // relaxing the source (Line 2 of Algorithm 1).
  std::vector<Vertex> frontier;
  for (EdgeId e = g.first_arc(source); e < g.last_arc(source); ++e) {
    const Vertex v = g.arc_target(e);
    if (v == source) continue;
    if (write_min(dist[v], static_cast<Dist>(g.arc_weight(e)))) {
      ++local.relaxations;
    }
    if (!settled[v]) frontier.push_back(v);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());

  UpdateCollector collector(n);
  const int nw = num_workers();

  // Round distance of the previous step (d_{i-1}). Vertices with
  // delta <= prev_di are exactly S_{i-1} (Theorem 3.1): final, safe to skip
  // as relaxation targets. d_0 = 0 covers the source.
  Dist prev_di = 0;

  while (!frontier.empty()) {
    ++local.steps;

    // Line 4: d_i = min over the frontier of delta(v) + r(v).
    const Dist di = parallel_min(
        std::size_t{0}, frontier.size(), kInfDist, [&](std::size_t i) {
          const Vertex v = frontier[i];
          return dist[v].load(std::memory_order_relaxed) + radius[v];
        });

    // First substep's active set: every unsettled vertex with delta <= d_i.
    std::vector<Vertex> active;
    for (const Vertex v : frontier) {
      if (dist[v].load(std::memory_order_relaxed) <= di) active.push_back(v);
    }
    // Vertices inside d_i are settled the moment they appear; mark now so
    // relaxations skip them as targets-for-activation bookkeeping.
    for (const Vertex v : active) settled[v] = 1;
    local.settled += active.size();
    local.max_active = std::max(local.max_active, active.size());

    // Lines 5-9: Bellman-Ford substeps until no delta(v) <= d_i changes.
    std::size_t substeps_this_step = 0;
    std::size_t relaxed_this_step = 0;
    std::vector<Vertex> newly_frontier;
    while (!active.empty()) {
      ++substeps_this_step;
      std::atomic<std::size_t> relax_count{0};
#pragma omp parallel num_threads(nw)
      {
        std::size_t my_relax = 0;
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(active.size());
             ++i) {
          const Vertex u = active[static_cast<std::size_t>(i)];
          const Dist du = dist[u].load(std::memory_order_relaxed);
          for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
            const Vertex v = g.arc_target(e);
            // Line 7 relaxes targets outside S_{i-1} only; vertices settled
            // in *this* step may still improve while the annulus converges,
            // so they stay relaxable.
            if (dist[v].load(std::memory_order_relaxed) <= prev_di) continue;
            if (write_min(dist[v], du + g.arc_weight(e))) {
              ++my_relax;
              collector.record(v);
            }
          }
        }
        relax_count.fetch_add(my_relax, std::memory_order_relaxed);
      }
      relaxed_this_step += relax_count.load(std::memory_order_relaxed);

      // Partition this substep's updated vertices: inside d_i -> active for
      // the next substep (and settled); beyond d_i -> frontier candidates.
      active.clear();
      for (const Vertex v : collector.take()) {
        if (dist[v].load(std::memory_order_relaxed) <= di) {
          active.push_back(v);
          if (!settled[v]) {
            settled[v] = 1;
            ++local.settled;
          }
        } else if (!settled[v]) {
          newly_frontier.push_back(v);
        }
      }
      local.max_active = std::max(local.max_active, active.size());
    }
    // Loop iterations equal Algorithm 1's repeat-until iterations: the
    // final iteration relaxes the last-updated vertices and observes no
    // further update with delta <= d_i (the Line 9 exit), so no extra
    // "observation" substep is added.
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
    local.relaxations += relaxed_this_step;

    // Rebuild the frontier: drop settled vertices, add the new arrivals.
    std::sort(newly_frontier.begin(), newly_frontier.end());
    newly_frontier.erase(
        std::unique(newly_frontier.begin(), newly_frontier.end()),
        newly_frontier.end());
    std::vector<Vertex> next;
    next.reserve(frontier.size() + newly_frontier.size());
    for (const Vertex v : frontier) {
      if (!settled[v]) next.push_back(v);
    }
    for (const Vertex v : newly_frontier) {
      if (!settled[v]) next.push_back(v);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier.swap(next);
    prev_di = di;
  }

  if (stats != nullptr) *stats = local;
  std::vector<Dist> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace rs
