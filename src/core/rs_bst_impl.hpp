// Algorithm 2 templated over the ordered-set substrate, running entirely
// out of a QueryContext.
//
// Anything providing empty/min/insert/erase/split_leq/union_with/subtract/
// from_sorted/to_vector over std::pair<Dist, Vertex> keys works: the treap
// (pset/treap.hpp, the paper's O(p log q) substrate) and the flat sorted
// array (pset/flat_set.hpp) are both instantiated in rs_bst.cpp. See
// core/rs_bst.hpp for the algorithmic commentary.
//
// Like the flat engine (radius_stepping.cpp), the implementation is a
// Par/Seq template twin: `Par` selects parallel Jacobi-style proposal
// gathering (OpenMP, per-worker buckets) or the strictly sequential twin
// the batch scheduler runs one-per-worker. All per-query state — the
// distance array, settled/touched stamps, vertex lists, proposal buckets,
// the four sorted batch-update key buffers, and (for the treap substrate)
// the node arena — comes from the context, so the sequential twin answers
// warm-context queries with zero heap allocations: treap nodes are
// recycled through the arena freelist, and every vector keeps its
// capacity across queries.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include <omp.h>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "parallel/primitives.hpp"
#include "pset/treap.hpp"

namespace rs::detail {

template <typename OrderedSet, bool Par>
void radius_stepping_ordered_run(const Graph& g, Vertex source,
                                 const std::vector<Dist>& radius,
                                 QueryContext& ctx, RunStats& local) {
  using Key = std::pair<Dist, Vertex>;
  // Treap node recycling: the Par twin hands its treaps the context's
  // per-worker arena POOL — every acquire/release goes to the executing
  // thread's own freelist, so the bulk set ops keep the paper's task-
  // parallel recursion AND recycle nodes across queries. The Seq twin
  // pins arena 0 of the same pool (single-owner freelist, which also
  // keeps the bulk ops strictly sequential — no regions to nest inside
  // the batch scheduler's). The pool must cover the largest team the
  // treap regions can open: they use the default team size, not
  // num_workers(), so size for whichever is larger.
  constexpr bool kArena = std::is_same_v<OrderedSet, Treap<Key>>;
  const Vertex n = g.num_vertices();
  const bool targeted = ctx.has_targets();
  const bool bounds = targeted && ctx.has_target_bounds();
  const std::size_t k_goal = ctx.k_goal();
  // Settle sites are all in the sequential spine, so the target counter
  // needs no atomics. Like the flat engine, the early exit only fires at
  // step boundaries: vertices settled mid-step can still improve while
  // the annulus converges (the re-relax branch below).
  const auto settle = [&ctx, targeted](Vertex v) {
    ctx.mark_settled(v);
    if (targeted) ctx.note_target_settled(v);
  };
  // Goal checks fire at step boundaries only, where Theorem 3.1 makes
  // every settled distance final: all targets settled (by order or by
  // lower-bound proof), or — kTopK — at least k vertices settled.
  const auto goals_met = [&](std::size_t settled_count) {
    if (targeted && ctx.targets_remaining() == 0) return true;
    return k_goal != 0 && settled_count >= k_goal;
  };

  std::atomic<Dist>* dist = ctx.dist();
  const auto load = [&](Vertex v) {
    return dist[v].load(std::memory_order_relaxed);
  };
  const auto store = [&](Vertex v, Dist d) {
    dist[v].store(d, std::memory_order_relaxed);
  };
  // Substrate construction: the treap draws nodes from the context's
  // arena pool (recycled across queries); the flat set owns plain vectors.
  [[maybe_unused]] TreapArenaPool<Key>* pool = nullptr;
  if constexpr (kArena) {
    const std::size_t team = static_cast<std::size_t>(
        Par ? std::max(num_workers(), omp_get_max_threads()) : 1);
    pool = &ctx.tree_arenas(team);
  }
  const auto make_set = [&]() {
    if constexpr (kArena && Par) {
      return OrderedSet(pool);
    } else if constexpr (kArena) {
      return OrderedSet(&pool->arena(0));
    } else {
      return OrderedSet();
    }
  };
  const auto from_sorted = [&](const std::vector<Key>& keys) {
    if constexpr (kArena && Par) {
      return OrderedSet::from_sorted(keys, pool);
    } else if constexpr (kArena) {
      return OrderedSet::from_sorted(keys, &pool->arena(0));
    } else {
      return OrderedSet::from_sorted(keys);
    }
  };

  // First-touch records: every distance store of this engine happens in
  // the sequential spine (seed loop + batch application), so bucket 0
  // suffices in both twins.
  std::vector<Vertex>& touch = ctx.touch_buckets(1)[0];

  store(source, 0);
  touch.push_back(source);
  settle(source);  // settled == the paper's "in some A_i" flag
  local.settled = 1;

  // Lines 3-4: seed Q and R with the source's relaxed neighbours.
  OrderedSet q = make_set();  // {(delta(v), v)} for the inactive frontier
  OrderedSet r = make_set();  // {(delta(v) + r(v), v)}, same membership as Q
  for (EdgeId e = g.first_arc(source); e < g.last_arc(source); ++e) {
    const Vertex v = g.arc_target(e);
    if (v == source) continue;
    const Dist nd = g.arc_weight(e);
    const Dist dv = load(v);
    if (nd < dv) {
      if (dv != kInfDist) {
        q.erase({dv, v});
        r.erase({dv + radius[v], v});
      } else {
        touch.push_back(v);
      }
      store(v, nd);
      q.insert({nd, v});
      r.insert({nd + radius[v], v});
      ++local.relaxations;
      if (bounds) ctx.note_bound_check(v, nd);
    }
  }

  // Context-owned per-vertex state: `ctx.mark(v)` under one mark epoch per
  // substep plays the touched-stamp ("updated this substep") role;
  // `old_dist[v]` remembers a touched vertex's pre-substep distance;
  // settled stamps mark membership in the current or any previous A_i.
  std::vector<Dist>& old_dist = ctx.old_dist(n);
  std::vector<Vertex>& active = ctx.active();
  std::vector<Vertex>& next_active = ctx.next();
  std::vector<Vertex>& touched = ctx.updated();
  QueryContext::KeyBuffers& kb = ctx.key_buffers();
  Dist prev_di = 0;

  const int nw = Par ? num_workers() : 1;
  std::vector<std::vector<std::pair<Vertex, Dist>>>& proposals =
      ctx.pair_buckets(nw);

  while (!q.empty()) {
    // Step boundary: all settled distances are final, so a run that has
    // met its goal — all targets settled, or k vertices for a top-k
    // request — is done (also covers source-only sets).
    if (goals_met(local.settled)) {
      local.early_exit = true;
      break;
    }
    ++local.steps;

    // Line 6: d_i = min of R.
    const Dist di = r.min().first;

    // Line 7: A_i = Q.split(d_i); Line 8: drop A_i's keys from R.
    OrderedSet moved = q.split_leq({di, kNoVertex});
    moved.to_vector(kb.moved);
    active.clear();
    kb.r_moved.clear();
    for (const auto& [d, v] : kb.moved) {
      active.push_back(v);
      settle(v);
      kb.r_moved.push_back({d + radius[v], v});
    }
    std::sort(kb.r_moved.begin(), kb.r_moved.end());
    r.subtract(from_sorted(kb.r_moved));
    // R's minimum is delta(v) + r(v) >= delta(v) for some frontier v, so the
    // split must free at least that vertex; an empty active set means Q and
    // R lost sync (a structural bug, not an input condition).
    if (active.empty()) {
      throw std::logic_error("radius_stepping_bst: Q/R inconsistency");
    }
    local.settled += active.size();
    local.max_active = std::max(local.max_active, active.size());

    // Lines 9-19: substeps. Each substep gathers relaxation proposals
    // (Jacobi-style, from the pre-substep distances), applies them, and
    // pushes the Q/R updates as batched set operations.
    std::size_t substeps_this_step = 0;
    while (!active.empty()) {
      ++substeps_this_step;
      ctx.next_mark_epoch();  // one touched-stamp scope per substep
      if constexpr (Par) {
        for (int t = 0; t < nw; ++t) {
          proposals[static_cast<std::size_t>(t)].clear();
        }
#pragma omp parallel num_threads(nw)
        {
          auto& mine =
              proposals[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
          for (std::int64_t i = 0;
               i < static_cast<std::int64_t>(active.size()); ++i) {
            const Vertex u = active[static_cast<std::size_t>(i)];
            const Dist du = load(u);
            for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
              const Vertex v = g.arc_target(e);
              const Dist dv = load(v);
              if (dv <= prev_di) continue;  // v in S_{i-1}: final
              const Dist nd = du + g.arc_weight(e);
              if (nd < dv) mine.push_back({v, nd});
            }
          }
        }
      } else {
        auto& mine = proposals[0];
        mine.clear();
        for (const Vertex u : active) {
          const Dist du = load(u);
          for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
            const Vertex v = g.arc_target(e);
            const Dist dv = load(v);
            if (dv <= prev_di) continue;  // v in S_{i-1}: final
            const Dist nd = du + g.arc_weight(e);
            if (nd < dv) mine.push_back({v, nd});
          }
        }
      }

      // Apply the batch sequentially (set-structure updates are the
      // sequential spine of this engine; the paper batches them with
      // pack/sort — the bulk union/difference below are those ops).
      touched.clear();
      for (int t = 0; t < nw; ++t) {
        for (const auto& [v, nd] : proposals[static_cast<std::size_t>(t)]) {
          const Dist dv = load(v);
          if (nd >= dv) continue;  // superseded within the batch
          if (dv == kInfDist) touch.push_back(v);  // first ever finite value
          if (ctx.mark(v)) {
            old_dist[v] = dv;
            touched.push_back(v);
          }
          store(v, nd);
          ++local.relaxations;
        }
      }

      // Classify touched vertices and build the Q/R batch updates.
      kb.q_remove.clear();
      kb.r_remove.clear();
      kb.q_insert.clear();
      kb.r_insert.clear();
      next_active.clear();
      for (const Vertex v : touched) {
        const Dist nd = load(v);
        const Dist od = old_dist[v];
        // Lower-bound proof site (sequential classify pass, both twins).
        if (bounds) ctx.note_bound_check(v, nd);
        if (ctx.is_settled(v)) {
          // Already in A_i: improved again within the annulus; re-relax.
          next_active.push_back(v);
          continue;
        }
        if (od != kInfDist) {
          kb.q_remove.push_back({od, v});
          kb.r_remove.push_back({od + radius[v], v});
        }
        if (nd <= di) {
          // Line 11-14: migrate from Q/R into A_i.
          settle(v);
          next_active.push_back(v);
          ++local.settled;
        } else {
          kb.q_insert.push_back({nd, v});
          kb.r_insert.push_back({nd + radius[v], v});
        }
      }
      std::sort(kb.q_remove.begin(), kb.q_remove.end());
      std::sort(kb.r_remove.begin(), kb.r_remove.end());
      std::sort(kb.q_insert.begin(), kb.q_insert.end());
      std::sort(kb.r_insert.begin(), kb.r_insert.end());
      q.subtract(from_sorted(kb.q_remove));
      r.subtract(from_sorted(kb.r_remove));
      q.union_with(from_sorted(kb.q_insert));
      r.union_with(from_sorted(kb.r_insert));

      active.swap(next_active);
      local.max_active = std::max(local.max_active, active.size());
    }
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
    prev_di = di;
  }
}

template <typename OrderedSet>
void radius_stepping_ordered_partial(const Graph& g, Vertex source,
                                     const std::vector<Dist>& radius,
                                     QueryContext& ctx, RunStats* stats) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping_bst: radius size mismatch");
  }
  if (source >= n) throw std::invalid_argument("radius_stepping_bst: source");

  ctx.begin_query(n);
  RunStats local;
  if (ctx.sequential()) {
    radius_stepping_ordered_run<OrderedSet, false>(g, source, radius, ctx,
                                                   local);
  } else {
    radius_stepping_ordered_run<OrderedSet, true>(g, source, radius, ctx,
                                                  local);
  }
  local.touched = ctx.touched_count();
  if (stats != nullptr) *stats = local;
}

template <typename OrderedSet>
void radius_stepping_ordered(const Graph& g, Vertex source,
                             const std::vector<Dist>& radius,
                             QueryContext& ctx, std::vector<Dist>& out,
                             RunStats* stats) {
  ctx.clear_targets();  // full output == exhaustive run, always
  radius_stepping_ordered_partial<OrderedSet>(g, source, radius, ctx, stats);
  ctx.finish_query(g.num_vertices(), out);
}

}  // namespace rs::detail
