// Algorithm 2 templated over the ordered-set substrate.
//
// Anything providing empty/size/min/insert/erase/split_leq/union_with/
// subtract/from_sorted over std::pair<Dist, Vertex> keys works: the treap
// (pset/treap.hpp, the paper's O(p log q) substrate) and the flat sorted
// array (pset/flat_set.hpp) are both instantiated in rs_bst.cpp. See
// core/rs_bst.hpp for the algorithmic commentary.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include <omp.h>

#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "parallel/primitives.hpp"

namespace rs::detail {

template <typename OrderedSet>
std::vector<Dist> radius_stepping_ordered(const Graph& g, Vertex source,
                                          const std::vector<Dist>& radius,
                                          RunStats* stats) {
  using Key = std::pair<Dist, Vertex>;
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping_bst: radius size mismatch");
  }
  if (source >= n) throw std::invalid_argument("radius_stepping_bst: source");

  std::vector<Dist> dist(n, kInfDist);
  RunStats local;
  dist[source] = 0;
  local.settled = 1;

  // Lines 3-4: seed Q and R with the source's relaxed neighbours.
  OrderedSet q;  // {(delta(v), v)} for the inactive frontier
  OrderedSet r;  // {(delta(v) + radius(v), v)}, same membership as Q
  for (EdgeId e = g.first_arc(source); e < g.last_arc(source); ++e) {
    const Vertex v = g.arc_target(e);
    if (v == source) continue;
    const Dist nd = g.arc_weight(e);
    if (nd < dist[v]) {
      if (dist[v] != kInfDist) {
        q.erase({dist[v], v});
        r.erase({dist[v] + radius[v], v});
      }
      dist[v] = nd;
      q.insert({nd, v});
      r.insert({nd + radius[v], v});
      ++local.relaxations;
    }
  }

  // `touched_stamp[v] == substep_id` marks v as updated this substep;
  // `old_dist[v]` remembers its distance before the substep's batch.
  std::vector<std::uint64_t> touched_stamp(n, 0);
  std::vector<Dist> old_dist(n, 0);
  std::vector<std::uint8_t> in_this_step(n, 0);  // member of A_i (settled)
  std::uint64_t substep_id = 0;
  Dist prev_di = 0;

  const int nw = num_workers();
  std::vector<std::vector<std::pair<Vertex, Dist>>> proposals(
      static_cast<std::size_t>(nw));

  while (!q.empty()) {
    ++local.steps;

    // Line 6: d_i = min of R.
    const Dist di = r.min().first;

    // Line 7: A_i = Q.split(d_i); Line 8: drop A_i's keys from R.
    OrderedSet moved = q.split_leq({di, kNoVertex});
    std::vector<Key> moved_keys = moved.to_vector();
    std::vector<Vertex> active;
    active.reserve(moved_keys.size());
    {
      std::vector<Key> r_keys;
      r_keys.reserve(moved_keys.size());
      for (const auto& [d, v] : moved_keys) {
        active.push_back(v);
        in_this_step[v] = 1;
        r_keys.push_back({d + radius[v], v});
      }
      std::sort(r_keys.begin(), r_keys.end());
      r.subtract(OrderedSet::from_sorted(std::move(r_keys)));
    }
    // R's minimum is delta(v) + r(v) >= delta(v) for some frontier v, so the
    // split must free at least that vertex; an empty active set means Q and
    // R lost sync (a structural bug, not an input condition).
    if (active.empty()) {
      throw std::logic_error("radius_stepping_bst: Q/R inconsistency");
    }
    local.settled += active.size();
    local.max_active = std::max(local.max_active, active.size());

    // Lines 9-19: substeps. Each substep gathers relaxation proposals in
    // parallel (Jacobi-style, from the pre-substep distances), applies
    // them, and pushes the Q/R updates as batched set operations.
    std::size_t substeps_this_step = 0;
    while (!active.empty()) {
      ++substeps_this_step;
      ++substep_id;
      for (auto& p : proposals) p.clear();
#pragma omp parallel num_threads(nw)
      {
        auto& mine = proposals[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(active.size());
             ++i) {
          const Vertex u = active[static_cast<std::size_t>(i)];
          const Dist du = dist[u];
          for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
            const Vertex v = g.arc_target(e);
            if (dist[v] <= prev_di) continue;  // v in S_{i-1}: final
            const Dist nd = du + g.arc_weight(e);
            if (nd < dist[v]) mine.push_back({v, nd});
          }
        }
      }

      // Apply the batch sequentially (set-structure updates are the
      // sequential spine of this engine; the paper batches them with
      // pack/sort — the bulk union/difference below are those ops).
      std::vector<Vertex> touched;
      for (const auto& ps : proposals) {
        for (const auto& [v, nd] : ps) {
          if (nd >= dist[v]) continue;  // superseded within the batch
          if (touched_stamp[v] != substep_id) {
            touched_stamp[v] = substep_id;
            old_dist[v] = dist[v];
            touched.push_back(v);
          }
          dist[v] = nd;
          ++local.relaxations;
        }
      }

      // Classify touched vertices and build the Q/R batch updates.
      std::vector<Key> q_remove;
      std::vector<Key> r_remove;
      std::vector<Key> q_insert;
      std::vector<Key> r_insert;
      std::vector<Vertex> next_active;
      for (const Vertex v : touched) {
        const Dist nd = dist[v];
        const Dist od = old_dist[v];
        if (in_this_step[v]) {
          // Already in A_i: improved again within the annulus; re-relax.
          next_active.push_back(v);
          continue;
        }
        if (od != kInfDist) {
          q_remove.push_back({od, v});
          r_remove.push_back({od + radius[v], v});
        }
        if (nd <= di) {
          // Line 11-14: migrate from Q/R into A_i.
          in_this_step[v] = 1;
          next_active.push_back(v);
          ++local.settled;
        } else {
          q_insert.push_back({nd, v});
          r_insert.push_back({nd + radius[v], v});
        }
      }
      std::sort(q_remove.begin(), q_remove.end());
      std::sort(r_remove.begin(), r_remove.end());
      std::sort(q_insert.begin(), q_insert.end());
      std::sort(r_insert.begin(), r_insert.end());
      q.subtract(OrderedSet::from_sorted(std::move(q_remove)));
      r.subtract(OrderedSet::from_sorted(std::move(r_remove)));
      q.union_with(OrderedSet::from_sorted(std::move(q_insert)));
      r.union_with(OrderedSet::from_sorted(std::move(r_insert)));

      active.swap(next_active);
      local.max_active = std::max(local.max_active, active.size());
    }
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
    prev_di = di;
  }

  if (stats != nullptr) *stats = local;
  return dist;
}

}  // namespace rs::detail
