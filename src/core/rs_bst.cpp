#include "core/rs_bst.hpp"

#include "core/rs_bst_impl.hpp"
#include "pset/flat_set.hpp"
#include "pset/treap.hpp"

namespace rs {

std::vector<Dist> radius_stepping_bst(const Graph& g, Vertex source,
                                      const std::vector<Dist>& radius,
                                      RunStats* stats) {
  return detail::radius_stepping_ordered<Treap<std::pair<Dist, Vertex>>>(
      g, source, radius, stats);
}

std::vector<Dist> radius_stepping_flatset(const Graph& g, Vertex source,
                                          const std::vector<Dist>& radius,
                                          RunStats* stats) {
  return detail::radius_stepping_ordered<FlatSet<std::pair<Dist, Vertex>>>(
      g, source, radius, stats);
}

}  // namespace rs
