#include "core/rs_bst.hpp"

#include "core/rs_bst_impl.hpp"
#include "pset/flat_set.hpp"
#include "pset/treap.hpp"

namespace rs {

void radius_stepping_bst(const Graph& g, Vertex source,
                         const std::vector<Dist>& radius, QueryContext& ctx,
                         std::vector<Dist>& out, RunStats* stats) {
  detail::radius_stepping_ordered<Treap<std::pair<Dist, Vertex>>>(
      g, source, radius, ctx, out, stats);
}

std::vector<Dist> radius_stepping_bst(const Graph& g, Vertex source,
                                      const std::vector<Dist>& radius,
                                      RunStats* stats) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  radius_stepping_bst(g, source, radius, ctx, out, stats);
  return out;
}

void radius_stepping_bst_partial(const Graph& g, Vertex source,
                                 const std::vector<Dist>& radius,
                                 QueryContext& ctx, RunStats* stats) {
  detail::radius_stepping_ordered_partial<Treap<std::pair<Dist, Vertex>>>(
      g, source, radius, ctx, stats);
}

void radius_stepping_flatset(const Graph& g, Vertex source,
                             const std::vector<Dist>& radius,
                             QueryContext& ctx, std::vector<Dist>& out,
                             RunStats* stats) {
  detail::radius_stepping_ordered<FlatSet<std::pair<Dist, Vertex>>>(
      g, source, radius, ctx, out, stats);
}

std::vector<Dist> radius_stepping_flatset(const Graph& g, Vertex source,
                                          const std::vector<Dist>& radius,
                                          RunStats* stats) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  radius_stepping_flatset(g, source, radius, ctx, out, stats);
  return out;
}

void radius_stepping_flatset_partial(const Graph& g, Vertex source,
                                     const std::vector<Dist>& radius,
                                     QueryContext& ctx, RunStats* stats) {
  detail::radius_stepping_ordered_partial<FlatSet<std::pair<Dist, Vertex>>>(
      g, source, radius, ctx, stats);
}

}  // namespace rs
