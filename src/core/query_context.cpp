#include "core/query_context.hpp"

#include "parallel/primitives.hpp"

namespace rs {

void QueryContext::reserve(Vertex n) {
  if (n <= n_) return;
  // Atomics are neither copyable nor movable, so growth reconstructs the
  // atomic arrays; this is the warm-up path, never the per-query path.
  dist_ = std::vector<std::atomic<Dist>>(n);
  for (Vertex v = 0; v < n; ++v) {
    dist_[v].store(kInfDist, std::memory_order_relaxed);
  }
  claim_ = std::vector<std::atomic<std::uint64_t>>(n);
  for (Vertex v = 0; v < n; ++v) {
    claim_[v].store(0, std::memory_order_relaxed);
  }
  settled_gen_.resize(n, 0);
  mark_gen_.resize(n, 0);
  heap_.reserve(n);
  n_ = n;
}

void QueryContext::finish_query(Vertex n, std::vector<Dist>& out) {
  // The fused copy below restores the all-infinite invariant for every
  // vertex; any first-touch records are redundant — drop them.
  for (auto& bucket : touched_) bucket.clear();
  out.resize(n);
  Dist* out_data = out.data();
  std::atomic<Dist>* dist = dist_.data();
  if (sequential_) {
    for (Vertex v = 0; v < n; ++v) {
      out_data[v] = dist[v].load(std::memory_order_relaxed);
      dist[v].store(kInfDist, std::memory_order_relaxed);
    }
  } else {
    parallel_for(0, n, [&](std::size_t v) {
      out_data[v] = dist[v].load(std::memory_order_relaxed);
      dist[v].store(kInfDist, std::memory_order_relaxed);
    });
  }
}

void QueryContext::reset_distances(Vertex n) {
  std::atomic<Dist>* dist = dist_.data();
  if (sequential_) {
    for (Vertex v = 0; v < n; ++v) {
      dist[v].store(kInfDist, std::memory_order_relaxed);
    }
  } else {
    parallel_for(0, n, [&](std::size_t v) {
      dist[v].store(kInfDist, std::memory_order_relaxed);
    });
  }
}

std::vector<std::vector<Vertex>>& QueryContext::touch_buckets(int workers) {
  const auto w = static_cast<std::size_t>(workers < 1 ? 1 : workers);
  if (touched_.size() < w) touched_.resize(w);
  // Records from a run that was abandoned mid-query (an engine threw) are
  // dropped here; the distance array is equally unrecoverable in that case
  // and the caller must not reuse the context without a full reset.
  for (auto& bucket : touched_) bucket.clear();
  return touched_;
}

std::size_t QueryContext::touched_count() const {
  std::size_t total = 0;
  for (const auto& bucket : touched_) total += bucket.size();
  return total;
}

void QueryContext::reset_touched() {
  std::atomic<Dist>* dist = dist_.data();
  for (auto& bucket : touched_) {
    for (const Vertex v : bucket) {
      dist[v].store(kInfDist, std::memory_order_relaxed);
    }
    bucket.clear();
  }
}

void QueryContext::set_targets(Vertex n, const Vertex* targets,
                               std::size_t count, const Dist* lower_bounds) {
  if (target_gen_.size() < n) target_gen_.resize(n, 0);
  if (lower_bounds != nullptr && target_lb_.size() < n) {
    target_lb_.resize(n, 0);
  }
  ++target_epoch_;  // starts at 1 on first use, so zero-init never matches
  targeted_ = true;
  target_bounds_ = lower_bounds != nullptr;
  targets_remaining_ = 0;
  lb_exits_ = 0;
  k_goal_ = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex v = targets[i];
    if (target_gen_[v] != target_epoch_) {  // duplicates stamp once
      target_gen_[v] = target_epoch_;
      if (lower_bounds != nullptr) target_lb_[v] = lower_bounds[i];
      ++targets_remaining_;
    } else if (lower_bounds != nullptr && lower_bounds[i] > target_lb_[v]) {
      // Duplicate target with a tighter bound: keep the larger floor.
      target_lb_[v] = lower_bounds[i];
    }
  }
}

std::vector<std::vector<Vertex>>& QueryContext::buckets(int workers) {
  const auto w = static_cast<std::size_t>(workers < 1 ? 1 : workers);
  if (buckets_.size() < w) buckets_.resize(w);
  for (std::size_t i = 0; i < w; ++i) buckets_[i].clear();
  return buckets_;
}

std::vector<std::vector<std::pair<Vertex, Dist>>>& QueryContext::pair_buckets(
    int workers) {
  const auto w = static_cast<std::size_t>(workers < 1 ? 1 : workers);
  if (pair_buckets_.size() < w) pair_buckets_.resize(w);
  for (std::size_t i = 0; i < w; ++i) pair_buckets_[i].clear();
  return pair_buckets_;
}

std::vector<std::vector<Vertex>>& QueryContext::bucket_slots(
    std::size_t count) {
  if (bucket_slots_.size() < count) bucket_slots_.resize(count);
  for (auto& slot : bucket_slots_) slot.clear();
  return bucket_slots_;
}

IndexedHeap<Dist>& QueryContext::heap() {
  heap_.clear();
  return heap_;
}

QueryContext::FragmentScratch& QueryContext::fragment_scratch(
    std::size_t fragments) {
  FragmentScratch& fs = fragment_scratch_;
  const auto prepare = [fragments](std::vector<std::vector<Vertex>>& lists) {
    if (lists.size() < fragments) lists.resize(fragments);
    for (std::size_t f = 0; f < fragments; ++f) lists[f].clear();
  };
  prepare(fs.frontier);
  prepare(fs.rebuilt);
  prepare(fs.active);
  prepare(fs.next_active);
  prepare(fs.updated);
  prepare(fs.newly_frontier);
  prepare(fs.newly_settled);
  if (fs.frontier_min.size() < fragments) fs.frontier_min.resize(fragments);
  if (fs.relaxed.size() < fragments) fs.relaxed.resize(fragments);
  fs.messages.reset(fragments);
  return fs;
}

}  // namespace rs
