#include "core/rs_unweighted.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs {

namespace {

/// BFS-regime Radius-Stepping over a QueryContext. `Par` selects parallel
/// level expansion (CAS claims) or the strictly sequential twin used by
/// the batch scheduler (no atomics, no OpenMP regions). One claim epoch
/// spans the whole query: a vertex is claimed when first reached, which is
/// final for unit weights.
///
/// Targeted early termination: with unit weights a claimed vertex's level
/// is already final, so the run may stop right after the level expansion
/// that claims the last stamped target — finer-grained than the weighted
/// engines' step-boundary exit, and still exact. The bookkeeping lives in
/// the sequential level-stamping pass, so no atomics are needed.
template <bool Par>
void rs_unweighted_run(const Graph& g, Vertex source,
                       const std::vector<Dist>& radius, QueryContext& ctx,
                       RunStats& local) {
  std::atomic<Dist>* dist = ctx.dist();
  const bool targeted = ctx.has_targets();
  // First-touch records: every distance store happens in the sequential
  // level-stamping pass over freshly-claimed vertices (claims are
  // exactly-once per query), so bucket 0 suffices even in the Par twin.
  std::vector<Vertex>& touch = ctx.touch_buckets(1)[0];
  ctx.next_claim_epoch();
  if constexpr (Par) {
    ctx.claim(source);
  } else {
    ctx.claim_sequential(source);
  }
  dist[source].store(0, std::memory_order_relaxed);
  touch.push_back(source);
  if (targeted) ctx.note_target_settled(source);
  local.settled = 1;

  const int nw = Par ? num_workers() : 1;
  std::vector<std::vector<Vertex>>& buckets = ctx.buckets(nw);
  std::vector<Vertex>& frontier = ctx.frontier();
  std::vector<Vertex>& next = ctx.next();
  frontier.clear();
  next.clear();

  // Expands `from` (all at hop `level - 1`) by one BFS level into `into`.
  const auto expand = [&](const std::vector<Vertex>& from,
                          std::vector<Vertex>& into, Dist level) {
    if constexpr (Par) {
      for (int t = 0; t < nw; ++t) buckets[static_cast<std::size_t>(t)].clear();
#pragma omp parallel num_threads(nw)
      {
        auto& mine = buckets[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(from.size());
             ++i) {
          const Vertex u = from[static_cast<std::size_t>(i)];
          for (const Vertex v : g.neighbors(u)) {
            if (ctx.claim(v)) mine.push_back(v);
          }
        }
      }
      std::size_t total = 0;
      for (int t = 0; t < nw; ++t) {
        total += buckets[static_cast<std::size_t>(t)].size();
      }
      into.clear();
      into.reserve(total);
      for (int t = 0; t < nw; ++t) {
        auto& b = buckets[static_cast<std::size_t>(t)];
        into.insert(into.end(), b.begin(), b.end());
      }
    } else {
      into.clear();
      for (const Vertex u : from) {
        for (const Vertex v : g.neighbors(u)) {
          if (ctx.claim_sequential(v)) into.push_back(v);
        }
      }
    }
    for (const Vertex v : into) {
      dist[v].store(level, std::memory_order_relaxed);
      touch.push_back(v);
      if (targeted) ctx.note_target_settled(v);
    }
    local.relaxations += into.size();
  };
  // Goal check: all stamped targets claimed, or — kTopK — at least k
  // vertices claimed. Claims only ever complete whole BFS levels, so every
  // claimed vertex is final AND every unclaimed vertex is strictly farther
  // than every claimed one; the exits (including the mid-step one) stay
  // exact. Claimed count = settled-so-far + the current uncounted
  // frontier. Lower bounds are ignored here: claimed == final already, so
  // a bound can never prove a target earlier than its claim does.
  const std::size_t k_goal = ctx.k_goal();
  const auto targets_done = [&] {
    if (targeted && ctx.targets_remaining() == 0) return true;
    return k_goal != 0 && local.settled + frontier.size() >= k_goal;
  };

  // Seed: one expansion from the source (reuses the active list as a
  // single-element frontier).
  std::vector<Vertex>& seed = ctx.active();
  seed.clear();
  seed.push_back(source);
  expand(seed, frontier, 1);
  Dist level = 1;  // hop distance of the current frontier

  while (!frontier.empty()) {
    if (targets_done()) {
      local.early_exit = true;
      break;
    }
    ++local.steps;
    // d_i = min over the frontier of delta(v) + r(v); all deltas == level.
    Dist min_r;
    if constexpr (Par) {
      min_r = parallel_min(std::size_t{0}, frontier.size(), kInfDist,
                           [&](std::size_t i) { return radius[frontier[i]]; });
    } else {
      min_r = kInfDist;
      for (const Vertex v : frontier) min_r = std::min(min_r, radius[v]);
    }
    const Dist di = level + min_r;

    // Settle levels level .. d_i, one parallel substep per level.
    std::size_t substeps_this_step = 0;
    while (!frontier.empty() && level <= di) {
      ++substeps_this_step;
      local.max_active = std::max(local.max_active, frontier.size());
      local.settled += frontier.size();
      expand(frontier, next, level + 1);
      frontier.swap(next);
      ++level;
      if (targets_done()) break;  // claimed == final: exit mid-step too
    }
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
  }
}

}  // namespace

void radius_stepping_unweighted_partial(const Graph& g, Vertex source,
                                        const std::vector<Dist>& radius,
                                        QueryContext& ctx, RunStats* stats) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping_unweighted: radius size");
  }
  if (source >= n) {
    throw std::invalid_argument("radius_stepping_unweighted: bad source");
  }

  ctx.begin_query(n);
  RunStats local;
  if (ctx.sequential()) {
    rs_unweighted_run<false>(g, source, radius, ctx, local);
  } else {
    rs_unweighted_run<true>(g, source, radius, ctx, local);
  }
  local.touched = ctx.touched_count();
  if (stats != nullptr) *stats = local;
}

void radius_stepping_unweighted(const Graph& g, Vertex source,
                                const std::vector<Dist>& radius,
                                QueryContext& ctx, std::vector<Dist>& out,
                                RunStats* stats) {
  ctx.clear_targets();  // full output == exhaustive run, always
  radius_stepping_unweighted_partial(g, source, radius, ctx, stats);
  ctx.finish_query(g.num_vertices(), out);
}

std::vector<Dist> radius_stepping_unweighted(const Graph& g, Vertex source,
                                             const std::vector<Dist>& radius,
                                             RunStats* stats) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  radius_stepping_unweighted(g, source, radius, ctx, out, stats);
  return out;
}

}  // namespace rs
