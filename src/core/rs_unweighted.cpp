#include "core/rs_unweighted.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs {

std::vector<Dist> radius_stepping_unweighted(const Graph& g, Vertex source,
                                             const std::vector<Dist>& radius,
                                             RunStats* stats) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) {
    throw std::invalid_argument("radius_stepping_unweighted: radius size");
  }
  if (source >= n) {
    throw std::invalid_argument("radius_stepping_unweighted: bad source");
  }

  std::vector<Dist> dist(n, kInfDist);
  std::vector<std::atomic<Vertex>> owner(n);
  parallel_for(0, n, [&](std::size_t i) {
    owner[i].store(kNoVertex, std::memory_order_relaxed);
  });

  RunStats local;
  dist[source] = 0;
  owner[source].store(source, std::memory_order_relaxed);
  local.settled = 1;

  const int nw = num_workers();
  std::vector<std::vector<Vertex>> buckets(static_cast<std::size_t>(nw));

  // Expands `frontier` (all at hop `level`) by one BFS level.
  auto expand = [&](const std::vector<Vertex>& frontier, Dist level) {
    for (auto& b : buckets) b.clear();
#pragma omp parallel num_threads(nw)
    {
      auto& mine = buckets[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const Vertex u = frontier[static_cast<std::size_t>(i)];
        for (const Vertex v : g.neighbors(u)) {
          Vertex expect = kNoVertex;
          if (owner[v].compare_exchange_strong(expect, u,
                                               std::memory_order_relaxed)) {
            mine.push_back(v);
          }
        }
      }
    }
    std::size_t total = 0;
    for (const auto& b : buckets) total += b.size();
    std::vector<Vertex> next;
    next.reserve(total);
    for (const auto& b : buckets) next.insert(next.end(), b.begin(), b.end());
    for (const Vertex v : next) dist[v] = level;
    local.relaxations += total;
    return next;
  };

  std::vector<Vertex> frontier = expand({source}, 1);
  Dist level = 1;  // hop distance of the current frontier

  while (!frontier.empty()) {
    ++local.steps;
    // d_i = min over the frontier of delta(v) + r(v); all deltas == level.
    const Dist min_r = parallel_min(
        std::size_t{0}, frontier.size(), kInfDist,
        [&](std::size_t i) { return radius[frontier[i]]; });
    const Dist di = level + min_r;

    // Settle levels level .. d_i, one parallel substep per level.
    std::size_t substeps_this_step = 0;
    while (!frontier.empty() && level <= di) {
      ++substeps_this_step;
      local.max_active = std::max(local.max_active, frontier.size());
      local.settled += frontier.size();
      std::vector<Vertex> next = expand(frontier, level + 1);
      frontier.swap(next);
      ++level;
    }
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);
  }

  if (stats != nullptr) *stats = local;
  return dist;
}

}  // namespace rs
