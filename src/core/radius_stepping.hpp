// Radius-Stepping (Algorithm 1) — the paper's primary contribution.
//
// The "flat" engine here keeps tentative distances in an atomic array and
// runs each Bellman-Ford substep as a parallel edge-map with WriteMin; the
// step boundary d_i is a parallel min-reduce over the frontier. This is the
// engine a practical implementation uses (the BST engine of Algorithm 2
// lives in core/rs_bst.hpp and produces identical results).
//
// Given radii from preprocessing (r(v) = r_rho(v) on a (k, rho)-graph) the
// run obeys the paper's bounds: <= ceil(n/rho) * (1 + ceil(log2(rho * L)))
// steps (Theorem 3.3) and <= k + 2 substeps per step (Theorem 3.2).
#pragma once

#include <vector>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Single-source shortest paths from `source`. `radius[v]` is the per-vertex
/// radius r(v); any nonnegative values are correct (see core/radii.hpp),
/// preprocessing radii give the bounded step counts.
std::vector<Dist> radius_stepping(const Graph& g, Vertex source,
                                  const std::vector<Dist>& radius,
                                  RunStats* stats = nullptr);

/// Context-reusing form: identical results, but all scratch state lives in
/// `ctx` (zero engine allocations once the context is warm) and distances
/// are written into `out`. Honors ctx.sequential(): in sequential mode the
/// whole query runs on the calling thread with no atomics or OpenMP
/// regions, so it can execute inside an outer source-parallel batch.
/// Always runs to exhaustion (any stale target stamps are cleared).
void radius_stepping(const Graph& g, Vertex source,
                     const std::vector<Dist>& radius, QueryContext& ctx,
                     std::vector<Dist>& out, RunStats* stats = nullptr);

/// Serving primitive: runs the engine leaving tentative distances IN the
/// context — read the ones you need with ctx.read_dist(), then restore the
/// invariant with ctx.finish_query() or the O(touched) ctx.reset_touched()
/// (every engine records first-touches). Honors
/// ctx.has_targets(): a targeted run may stop at the first step boundary
/// where every stamped target is settled (targets are then exact; other
/// vertices hold upper bounds). SsspEngine::serve builds on this.
void radius_stepping_partial(const Graph& g, Vertex source,
                             const std::vector<Dist>& radius,
                             QueryContext& ctx, RunStats* stats = nullptr);

}  // namespace rs
