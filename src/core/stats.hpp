// Per-run instrumentation. Steps and substeps are the quantities the
// paper's evaluation reports (Tables 4-7 and Figures 4-5 are step counts;
// Theorem 3.2's k+2 bound is a substep count), so every engine records them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rs {

struct RunStats {
  /// Outer while-loop iterations of Algorithm 1 (one d_i per step).
  std::size_t steps = 0;
  /// Total inner repeat-loop iterations across all steps.
  std::size_t substeps = 0;
  /// Largest number of substeps any single step needed; Theorem 3.2 bounds
  /// this by k + 2 on a (k, rho)-graph.
  std::size_t max_substeps_in_step = 0;
  /// Successful relaxations (tentative-distance improvements).
  std::size_t relaxations = 0;
  /// Largest active set |A_i| seen.
  std::size_t max_active = 0;
  /// Vertices settled (== n reachable from the source on termination; a
  /// targeted early exit stops once every requested target is in here).
  std::size_t settled = 0;
  /// Vertices whose tentative distance left kInfDist during the run (the
  /// first-touch records; a targeted early exit's epilogue resets exactly
  /// these instead of sweeping all n — see QueryContext::reset_touched).
  std::size_t touched = 0;
  /// True when a targeted run stopped before exhausting the frontier —
  /// every requested target settled early (core/request.hpp semantics).
  bool early_exit = false;

  // Per-phase wall time, filled ONLY when the request is traced
  // (QueryContext::trace_phases; see obs/trace.hpp) — the RunStats hooks
  // the observability subsystem turns into engine-detail trace spans.
  // Zero on untraced runs: the engines take no clock readings then.
  /// Relaxation substeps (Algorithm 1's inner loop; fragment Phase 1).
  std::uint64_t relax_ns = 0;
  /// Fragment ghost exchange (kFragment only).
  std::uint64_t exchange_ns = 0;
  /// Frontier drain + A_i/B_i partitioning after each substep.
  std::uint64_t partition_ns = 0;
};

}  // namespace rs
