// SsspEngine: the batteries-included entry point a downstream application
// uses. Owns the preprocessed (k, rho)-graph and radii, answers queries
// from any source with the engine of your choice, and reconstructs paths.
//
//   SsspEngine engine(graph, {.rho = 64, .k = 3});
//   auto q = engine.query(source);
//   auto hop_route = engine.path(q, target);
//
// Serving hot path: query() with a caller-owned QueryContext answers with
// zero engine allocations once the context is warm, and query_batch() runs
// the multi-source regime preprocessing is amortized over (§5.4) with
// two-level parallelism — source-parallel across a per-worker context pool
// when the batch is at least as wide as the worker count, intra-query
// parallelism otherwise.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "parallel/context_pool.hpp"
#include "shortcut/preprocess_context.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

/// Which Radius-Stepping implementation answers queries.
enum class QueryEngine : std::uint8_t {
  kFlat,        // atomic-array engine (default; fastest)
  kBst,         // Algorithm 2 on the arena-treap substrate (O(p log q) sets)
  kBstFlat,     // Algorithm 2 on the flat sorted-array substrate
  kUnweighted,  // BFS-style engine; only valid when the graph is unit-weight
                // and preprocessing added no shortcut edges
};

struct QueryResult {
  Vertex source = kNoVertex;
  std::vector<Dist> dist;
  RunStats stats;
};

class SsspEngine {
 public:
  /// Preprocesses `g` (ball searches + shortcuts per `opts`). The original
  /// graph is kept for path reconstruction so paths never use shortcut
  /// edges.
  SsspEngine(Graph g, const PreprocessOptions& opts);

  /// Same, drawing all per-ball preprocessing scratch from a caller-owned
  /// warm PreprocessPool — the entry point for building many engines
  /// (parameter sweeps, periodic re-preprocessing, multi-graph serving)
  /// without paying per-ball allocations after the first build.
  SsspEngine(Graph g, const PreprocessOptions& opts, PreprocessPool& pool);

  /// Wraps an existing preprocessing result (e.g. loaded from disk).
  SsspEngine(Graph original, PreprocessResult pre);

  // Copies share nothing: each engine gets its own (cold) context pool.
  // Moves transfer the warm pool with the engine.
  SsspEngine(const SsspEngine& other);
  SsspEngine& operator=(const SsspEngine& other);
  SsspEngine(SsspEngine&&) = default;
  SsspEngine& operator=(SsspEngine&&) = default;

  /// Distances from `source` (plus run statistics). Allocates fresh
  /// per-query state; use the QueryContext overload on the serving path.
  QueryResult query(Vertex source,
                    QueryEngine engine = QueryEngine::kFlat) const;

  /// Same, over a caller-owned reusable context: after the first query the
  /// engine hot path performs no heap allocations (the returned
  /// QueryResult::dist is the one unavoidable output allocation). This
  /// covers every engine, including kBst — its treap nodes come from the
  /// context's arena and are recycled across queries.
  QueryResult query(Vertex source, QueryEngine engine,
                    QueryContext& ctx) const;

  /// One query per source (the multi-source regime preprocessing is
  /// amortized over, §5.4). Results are returned in input order and are
  /// identical to per-source query() calls.
  ///
  /// Scheduling: with W workers and B sources, B >= W runs source-parallel
  /// (one strictly sequential query per worker, contexts from an internal
  /// per-worker pool); B < W keeps the batch loop sequential and lets each
  /// query use intra-query parallelism. Thread-safe: concurrent batches on
  /// one engine fall back to a batch-local context pool.
  std::vector<QueryResult> query_batch(
      const std::vector<Vertex>& sources,
      QueryEngine engine = QueryEngine::kFlat) const;

  /// Shortest path from a query's source to `target`, as vertices of the
  /// ORIGINAL graph (shortcut edges expanded away). Empty if unreachable.
  /// Throws std::invalid_argument if `q` does not belong to this engine
  /// (wrong-sized or default-constructed distance vector).
  std::vector<Vertex> path(const QueryResult& q, Vertex target) const;

  const Graph& original_graph() const { return original_; }
  const Graph& preprocessed_graph() const { return pre_.graph; }
  const PreprocessResult& preprocessing() const { return pre_; }

 private:
  /// Engine dispatch into `out` (source/dist/stats filled). `ctx` may be
  /// null (fresh state). Validation must have happened already — this is
  /// the noexcept-in-practice body run inside parallel regions.
  void run_query(Vertex source, QueryEngine engine, QueryContext* ctx,
                 QueryResult& out) const;

  /// Throws if `engine` cannot run on this preprocessing (kUnweighted on a
  /// weighted/shortcutted graph).
  void check_engine(QueryEngine engine) const;

  Graph original_;
  PreprocessResult pre_;

  // Reusable per-worker contexts for query_batch, boxed so the engine
  // stays movable despite the mutex. The first batch to arrive takes the
  // warm pool; concurrent batches use a batch-local one (correctness over
  // warmth). Never null except in a moved-from engine, which query_batch
  // tolerates by falling back to the local pool.
  struct BatchPool {
    std::mutex mutex;
    WorkerPool<QueryContext> pool;
  };
  std::unique_ptr<BatchPool> batch_pool_ = std::make_unique<BatchPool>();

  // Lazily-built transpose of the original graph: path reconstruction walks
  // INCOMING arcs (directed-correct parents), and repeated path() calls
  // share one transpose. Boxed for movability; built at most once.
  struct TransposeCache {
    std::once_flag once;
    Graph graph;
  };
  std::unique_ptr<TransposeCache> transpose_ =
      std::make_unique<TransposeCache>();
};

}  // namespace rs
