// SsspEngine: the batteries-included entry point a downstream application
// uses. Owns the preprocessed (k, rho)-graph and radii, answers queries
// from any source with the engine of your choice, and reconstructs paths.
//
//   SsspEngine engine(graph, {.rho = 64, .k = 3});
//   auto q = engine.query(source);
//   auto hop_route = engine.path(q, target);
#pragma once

#include <vector>

#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

/// Which Radius-Stepping implementation answers queries.
enum class QueryEngine : std::uint8_t {
  kFlat,        // atomic-array engine (default; fastest)
  kBst,         // Algorithm 2 on the treap substrate
  kUnweighted,  // BFS-style engine; only valid when the graph is unit-weight
                // and preprocessing added no shortcut edges
};

struct QueryResult {
  Vertex source = kNoVertex;
  std::vector<Dist> dist;
  RunStats stats;
};

class SsspEngine {
 public:
  /// Preprocesses `g` (ball searches + shortcuts per `opts`). The original
  /// graph is kept for path reconstruction so paths never use shortcut
  /// edges.
  SsspEngine(Graph g, const PreprocessOptions& opts);

  /// Wraps an existing preprocessing result (e.g. loaded from disk).
  SsspEngine(Graph original, PreprocessResult pre);

  /// Distances from `source` (plus run statistics).
  QueryResult query(Vertex source, QueryEngine engine = QueryEngine::kFlat) const;

  /// One query per source (the multi-source regime preprocessing is
  /// amortized over, §5.4). Results are returned in input order.
  std::vector<QueryResult> query_batch(
      const std::vector<Vertex>& sources,
      QueryEngine engine = QueryEngine::kFlat) const;

  /// Shortest path from a query's source to `target`, as vertices of the
  /// ORIGINAL graph (shortcut edges expanded away). Empty if unreachable.
  std::vector<Vertex> path(const QueryResult& q, Vertex target) const;

  const Graph& original_graph() const { return original_; }
  const Graph& preprocessed_graph() const { return pre_.graph; }
  const PreprocessResult& preprocessing() const { return pre_; }

 private:
  Graph original_;
  PreprocessResult pre_;
};

}  // namespace rs
