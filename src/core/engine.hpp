/// \file
/// SsspEngine: the batteries-included entry point a downstream application
/// uses. Owns the preprocessed (k, rho)-graph and radii and serves typed
/// QueryRequests with the engine of your choice (core/request.hpp).
///
/// \code
///   SsspEngine engine(graph, {.rho = 64, .k = 3});
///   QueryRequest req;
///   req.source = s;
///   req.targets = {a, b, c};   // early termination: exits once a, b, c
///   req.want_paths = true;     // expanded original-graph paths
///   QueryResponse resp = engine.serve(req);
/// \endcode
///
/// Serving hot path: serve() with a caller-owned QueryContext (and a
/// reused QueryResponse) answers warm targeted requests with zero heap
/// allocations; serve_batch() runs the multi-source regime preprocessing
/// is amortized over (§5.4) with two-level parallelism —
/// request-parallel across a per-worker context pool when the batch is at
/// least as wide as the worker count, intra-query parallelism otherwise.
///
/// The pre-PR5 API (query / query_batch / path) remains as thin wrappers
/// over serve*: a query() is exactly a serve() with want_full_distances.
///
/// Dynamic graphs: engines are immutable-after-publish snapshots. A live
/// deployment wraps each engine in a shared_ptr, serves through
/// SnapshotSwap pins (graph/graph_swap.hpp), and produces successors with
/// next_epoch() — the epoch stamp keeps cache/oracle invalidation exact
/// across swaps.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/query_context.hpp"
#include "core/request.hpp"
#include "core/stats.hpp"
#include "graph/fragment.hpp"
#include "graph/graph.hpp"
#include "parallel/context_pool.hpp"
#include "shortcut/preprocess_context.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

/// Legacy full-distance query result (the pre-PR5 API shape).
struct QueryResult {
  /// The query's source vertex.
  Vertex source = kNoVertex;
  /// dist[v] = shortest distance source -> v (kInfDist if unreachable).
  std::vector<Dist> dist;
  /// Execution counters of the run (steps, relaxations, ...).
  RunStats stats;
};

/// Radius-Stepping SSSP engine over one preprocessed (k, rho)-graph
/// snapshot (see file comment for the serving model).
class SsspEngine {
 public:
  /// Preprocesses `g` (ball searches + shortcuts per `opts`). The original
  /// graph is kept for path reconstruction so paths never use shortcut
  /// edges.
  SsspEngine(Graph g, const PreprocessOptions& opts);

  /// Same, drawing all per-ball preprocessing scratch from a caller-owned
  /// warm PreprocessPool — the entry point for building many engines
  /// (parameter sweeps, periodic re-preprocessing, multi-graph serving)
  /// without paying per-ball allocations after the first build.
  SsspEngine(Graph g, const PreprocessOptions& opts, PreprocessPool& pool);

  /// Wraps an existing preprocessing result (e.g. loaded from disk).
  SsspEngine(Graph original, PreprocessResult pre);

  /// Copies share the immutable fragment substrate and keep the epoch but
  /// get their own (cold) context pool.
  SsspEngine(const SsspEngine& other);
  /// Copy assignment: same sharing rules as the copy constructor.
  SsspEngine& operator=(const SsspEngine& other);
  /// Moves transfer the warm pool with the engine.
  SsspEngine(SsspEngine&&) = default;
  /// Move assignment: transfers the warm pool with the engine.
  SsspEngine& operator=(SsspEngine&&) = default;

  /// Builds the successor snapshot of `prior` for a graph swap: a fresh
  /// engine over (original, pre) whose graph_epoch() is
  /// prior.graph_epoch() + 1, with the fragment substrate re-partitioned
  /// the same way when `prior` had one. `prior` is not touched — it keeps
  /// serving until the caller publishes the successor (e.g. via
  /// SsspServer::swap_engine) and the last reader unpins it.
  static SsspEngine next_epoch(const SsspEngine& prior, Graph original,
                               PreprocessResult pre);

  /// Serves one request (semantics in core/request.hpp): per-target
  /// distances — and optional expanded paths — in O(|targets|) space,
  /// with early termination once every target is settled; or the full
  /// distance vector when asked. Validates source, targets, and engine
  /// choice (std::invalid_argument). This overload allocates fresh
  /// per-request state; use the QueryContext form on the serving path.
  QueryResponse serve(const QueryRequest& req) const;

  /// Same over a caller-owned reusable context: the engine hot path
  /// performs no heap allocations once the context is warm (the returned
  /// response is the one unavoidable output allocation).
  QueryResponse serve(const QueryRequest& req, QueryContext& ctx) const;

  /// Lowest-level form: writes into `resp`, reusing its capacity. A warm
  /// context + reused response serves targeted requests with ZERO heap
  /// allocations (pinned by tests/test_alloc_free.cpp).
  void serve(const QueryRequest& req, QueryContext& ctx,
             QueryResponse& resp) const;

  /// One response per request, in input order, bit-identical to per-
  /// request serve() calls. Requests may mix sources, target sets, flags,
  /// and engines.
  ///
  /// Scheduling: with W workers and B requests, B >= W runs
  /// request-parallel (one strictly sequential query per worker, contexts
  /// from an internal per-worker pool); B < W keeps the batch loop
  /// sequential and lets each query use intra-query parallelism.
  /// Thread-safe: each concurrent batch leases its own warm context-pool
  /// slot (the slot set grows to the peak concurrency and stays warm), so
  /// a serving daemon running parallel micro-batches never re-pays
  /// context construction. Path reconstruction shares the cached
  /// transpose (built once, before the parallel region).
  std::vector<QueryResponse> serve_batch(
      const std::vector<QueryRequest>& requests) const;

  /// Throws std::invalid_argument unless source, every target, and the
  /// engine choice are valid for this preprocessing. serve/serve_batch
  /// call it implicitly; admission layers (serve/server.hpp) call it at
  /// accept time so one bad request is rejected on its own instead of
  /// failing the micro-batch it would have been coalesced into.
  void validate(const QueryRequest& req) const;

  /// Legacy wrapper: full distances from `source` == serve() with
  /// want_full_distances. Allocates fresh per-query state.
  QueryResult query(Vertex source,
                    QueryEngine engine = QueryEngine::kFlat) const;

  /// Legacy wrapper over a caller-owned reusable context: after the first
  /// query the engine hot path performs no heap allocations (the returned
  /// QueryResult::dist is the one unavoidable output allocation). This
  /// covers every engine, including kBst — its treap nodes come from the
  /// context's arena and are recycled across queries.
  QueryResult query(Vertex source, QueryEngine engine,
                    QueryContext& ctx) const;

  /// Legacy wrapper: one full-distance query per source (== serve_batch
  /// over want_full_distances requests), same two-level scheduling.
  std::vector<QueryResult> query_batch(
      const std::vector<Vertex>& sources,
      QueryEngine engine = QueryEngine::kFlat) const;

  /// Shortest path from a query's source to `target`, as vertices of the
  /// ORIGINAL graph (shortcut edges expanded away). Empty if unreachable.
  /// Throws std::invalid_argument if `q` does not belong to this engine
  /// (wrong-sized or default-constructed distance vector).
  std::vector<Vertex> path(const QueryResult& q, Vertex target) const;

  /// The input graph (no shortcuts) — the one paths are expressed in.
  const Graph& original_graph() const { return original_; }
  /// The (k, rho)-graph queries actually run on (original + shortcuts).
  const Graph& preprocessed_graph() const { return pre_.graph; }
  /// Full preprocessing artifact: graph, radii, options, edge accounting.
  const PreprocessResult& preprocessing() const { return pre_; }

  /// Preprocessing generation this engine is serving. Starts at 1 and is
  /// bumped by every replace() and next_epoch(); responses are stamped
  /// with it
  /// (QueryResponse::graph_epoch), and the caching layer
  /// (serve/result_cache.hpp, serve/landmark_oracle.hpp) keys on it so a
  /// graph swap implicitly invalidates every cached row. Copies keep the
  /// epoch: they serve the same preprocessing, so their answers are
  /// interchangeable with the original's.
  std::uint64_t graph_epoch() const { return graph_epoch_; }

  // --- fragment-partitioned substrate (QueryEngine::kFragment) -------------
  /// Builds the fragment-partitioned view of the preprocessed graph so
  /// kFragment requests can be served. `count` == 0 means
  /// default_num_fragments() (the RS_FRAGMENTS env var, else a
  /// worker-count-derived default). Idempotent in effect: calling again
  /// rebuilds with the new count/mode. replace() re-partitions the new
  /// graph with the same resolved count and mode automatically.
  void enable_fragments(std::size_t count = 0,
                        PartitionMode mode = PartitionMode::kContiguous);
  /// True once enable_fragments() has built the substrate; kFragment
  /// requests are rejected by validate() until then.
  bool fragments_enabled() const { return fragments_ != nullptr; }
  /// The fragmented view (requires fragments_enabled()).
  const FragmentedGraph& fragments() const { return *fragments_; }

  /// Swaps in a new graph + preprocessing (same validation as the wrapping
  /// constructor) and bumps graph_epoch(), instantly staling every cached
  /// answer derived from the old preprocessing. Warm context pools are
  /// kept (contexts grow on demand and never shrink); the transpose cache
  /// is rebuilt lazily. NOT thread-safe against concurrent serves — stop
  /// serving, swap, resume (the serving daemon does exactly that).
  void replace(Graph original, PreprocessResult pre);

 private:
  /// Request execution into `resp`. Validation must have happened already
  /// — this is the noexcept-in-practice body run inside parallel regions.
  /// `transpose` must be non-null when req.want_paths.
  void run_serve(const QueryRequest& req, QueryContext& ctx,
                 const Graph* transpose, QueryResponse& resp) const;

  /// Throws if `engine` cannot run on this preprocessing (kUnweighted on a
  /// weighted/shortcutted graph).
  void check_engine(QueryEngine engine) const;

  /// The cached transpose of the original graph (built at most once,
  /// shared by all path reconstructions). On a moved-from engine the
  /// cache is gone: the transpose is built into `local` instead.
  const Graph& transpose(Graph& local) const;

  Graph original_;
  PreprocessResult pre_;
  // Fragment substrate for kFragment requests. Immutable once built, so
  // copies SHARE it (shared_ptr) — a copied engine serves identical
  // answers from the identical partition without re-partitioning. Null
  // until enable_fragments(). The resolved count/mode are kept so
  // replace() can re-partition the new graph the same way.
  std::shared_ptr<const FragmentedGraph> fragments_;
  PartitionMode fragment_mode_ = PartitionMode::kContiguous;
  // Plain (not atomic) by design: replace() is documented as mutually
  // exclusive with serving, and an atomic member would forfeit the
  // defaulted move operations.
  std::uint64_t graph_epoch_ = 1;

  // Reusable per-worker context pools for serve_batch, boxed so the
  // engine stays movable despite the mutexes. Each concurrent batch
  // LEASES one slot for its duration: serve_batch try-locks the existing
  // slots and, when all are busy, grows the set by one — so N concurrent
  // batches end up with N dedicated pools that each stay warm for the
  // next batch to lease. (The pre-PR6 design had a single slot whose
  // try-lock loser fell back to a cold batch-local pool: under a serving
  // daemon running concurrent micro-batches that re-paid full context
  // construction on every collision.) Slots live in a deque so growth
  // never moves a leased slot; the scan-or-grow runs under grow_mutex,
  // which is never held while waiting on a slot (try-lock only), so
  // acquisition cannot deadlock or block behind a running batch. Null
  // only in a moved-from engine, which serve_batch tolerates by using a
  // batch-local pool.
  struct BatchPoolSlot {
    std::mutex mutex;
    WorkerPool<QueryContext> pool;
  };
  struct BatchPools {
    std::mutex grow_mutex;
    std::deque<BatchPoolSlot> slots;
  };
  std::unique_ptr<BatchPools> batch_pools_ = std::make_unique<BatchPools>();

  // Lazily-built transpose of the original graph: path reconstruction walks
  // INCOMING arcs (directed-correct parents), and repeated path() calls
  // share one transpose. Boxed for movability; built at most once.
  struct TransposeCache {
    std::once_flag once;
    Graph graph;
  };
  std::unique_ptr<TransposeCache> transpose_ =
      std::make_unique<TransposeCache>();
};

}  // namespace rs
