#include "core/rs_fragment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs {

namespace {

/// Runs `fn(f)` for every fragment — one OpenMP task per fragment in the
/// Par twin, a plain ordered loop in the Seq twin (no regions: the batch
/// scheduler nests the Seq twin inside its own parallel region).
template <bool Par, typename Fn>
void for_each_fragment(std::size_t nf, Fn&& fn) {
  if constexpr (Par) {
    const int team = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(num_workers()), nf));
    if (team > 1) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(team)
      for (std::int64_t f = 0; f < static_cast<std::int64_t>(nf); ++f) {
        fn(static_cast<std::size_t>(f));
      }
      return;
    }
  }
  for (std::size_t f = 0; f < nf; ++f) fn(f);
}

/// The fragment-parallel Algorithm 1. Ownership discipline: every
/// per-vertex slot (distance, settled/mark stamp, claim word, touch
/// record) is written only by the vertex's owner fragment inside parallel
/// phases, so the non-atomic stamp families are safe; the only
/// cross-fragment reads are relaxed atomic loads of foreign distances in
/// the ghost prefilter, where staleness is harmless (the owner re-checks
/// on apply). Shared bookkeeping — target counters, bound proofs, stats —
/// runs in the sequential coordinator sections between phases.
template <bool Par>
void radius_stepping_fragment_run(const FragmentedGraph& fg, Vertex source,
                                  const std::vector<Dist>& radius,
                                  QueryContext& ctx, RunStats& local) {
  const std::size_t nf = fg.num_fragments();
  const Partition& part = fg.partition();
  QueryContext::FragmentScratch& fs = ctx.fragment_scratch(nf);
  MessageBuffer<DistMessage>& messages = fs.messages;

  std::atomic<Dist>* dist = ctx.dist();
  const auto load = [&](Vertex v) {
    return dist[v].load(std::memory_order_relaxed);
  };
  const bool targeted = ctx.has_targets();
  const bool bounds = targeted && ctx.has_target_bounds();
  const std::size_t k_goal = ctx.k_goal();
  const auto goals_met = [&](std::size_t settled_count) {
    if (targeted && ctx.targets_remaining() == 0) return true;
    return k_goal != 0 && settled_count >= k_goal;
  };
  // Coordinator-side settle bookkeeping: fragments hand the vertices they
  // settled over in newly_settled; the coordinator drains them here (the
  // target counter is not thread-safe).
  const auto drain_settled = [&] {
    for (std::size_t f = 0; f < nf; ++f) {
      auto& list = fs.newly_settled[f];
      local.settled += list.size();
      if (targeted) {
        for (const Vertex v : list) ctx.note_target_settled(v);
      }
      list.clear();
    }
  };

  std::vector<std::vector<Vertex>>& touch =
      ctx.touch_buckets(static_cast<int>(nf));

  // Seed (sequential; same single-threaded pass as the flat engine): the
  // source settles at 0 and relaxes its out-arcs from its owner's CSR row.
  const std::size_t sf = part.owner(source);
  dist[source].store(0, std::memory_order_relaxed);
  touch[sf].push_back(source);
  ctx.mark_settled(source);
  if (targeted) ctx.note_target_settled(source);
  local.settled = 1;

  ctx.next_mark_epoch();  // one frontier-dedup epoch for the whole query
  const FragmentedGraph::Fragment& sfrag = fg.fragment(sf);
  const Vertex slu = part.local_id(source);
  for (EdgeId e = sfrag.first_arc(slu); e < sfrag.last_arc(slu); ++e) {
    const Vertex v = sfrag.to_global(sfrag.heads[e]);
    if (v == source) continue;
    const auto w = static_cast<Dist>(sfrag.weights[e]);
    const Dist dv = load(v);
    if (w < dv) {
      dist[v].store(w, std::memory_order_relaxed);
      ++local.relaxations;
      const std::uint32_t fo = part.owner(v);
      if (dv == kInfDist) touch[fo].push_back(v);
      if (bounds) ctx.note_bound_check(v, w);
    }
    if (!ctx.is_settled(v) && ctx.mark(v)) {
      fs.frontier[part.owner(v)].push_back(part.local_id(v));
    }
  }

  const auto any_nonempty = [&](const std::vector<std::vector<Vertex>>& ll) {
    for (std::size_t f = 0; f < nf; ++f) {
      if (!ll[f].empty()) return true;
    }
    return false;
  };

  // Traced requests take two clock readings per substep (local relax =
  // relax_ns, ghost exchange + partition = exchange_ns); untraced runs
  // take none.
  using TraceClock = std::chrono::steady_clock;
  const bool timed = ctx.trace_phases();
  const auto phase_ns = [](TraceClock::time_point a, TraceClock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };

  Dist prev_di = 0;
  while (any_nonempty(fs.frontier)) {
    if (goals_met(local.settled)) {
      local.early_exit = true;
      break;
    }
    ++local.steps;

    // Line 4: d_i = min over the frontier of delta(v) + r(v). Per-fragment
    // minima in parallel (each fragment reads only its own vertices),
    // folded by the coordinator.
    for_each_fragment<Par>(nf, [&](std::size_t f) {
      const auto& inner = fg.fragment(f).inner_global;
      Dist m = kInfDist;
      for (const Vertex lu : fs.frontier[f]) {
        const Vertex v = inner[lu];
        m = std::min(m, load(v) + radius[v]);
      }
      fs.frontier_min[f] = m;
    });
    Dist di = kInfDist;
    for (std::size_t f = 0; f < nf; ++f) {
      di = std::min(di, fs.frontier_min[f]);
    }

    // First substep's active set: every frontier vertex with delta <= d_i,
    // settled the moment it appears (owner-fragment stamp writes).
    for_each_fragment<Par>(nf, [&](std::size_t f) {
      const auto& inner = fg.fragment(f).inner_global;
      auto& active = fs.active[f];
      active.clear();
      for (const Vertex lu : fs.frontier[f]) {
        const Vertex v = inner[lu];
        if (load(v) <= di) {
          active.push_back(lu);
          ctx.mark_settled(v);
          fs.newly_settled[f].push_back(v);
        }
      }
      fs.newly_frontier[f].clear();
    });
    drain_settled();
    {
      std::size_t total_active = 0;
      for (std::size_t f = 0; f < nf; ++f) total_active += fs.active[f].size();
      local.max_active = std::max(local.max_active, total_active);
    }

    // Substeps: local-relax per fragment, then ghost exchange — repeated
    // until no fragment has active vertices (the Line 9 fixed point).
    std::size_t substeps_this_step = 0;
    while (any_nonempty(fs.active)) {
      ++substeps_this_step;
      // One claim epoch per substep: a vertex updated by local relaxation
      // AND by an incoming message still lands in `updated` once.
      ctx.next_claim_epoch();
      const auto t_relax = timed ? TraceClock::now() : TraceClock::time_point{};

      // Phase 1 — local relax: each fragment walks its active rows. Inner
      // heads relax in place; ghost heads stage a message to the owner
      // (the foreign-distance load is a prefilter only).
      for_each_fragment<Par>(nf, [&](std::size_t f) {
        const FragmentedGraph::Fragment& frag = fg.fragment(f);
        const Vertex ni = frag.num_inner();
        auto& updated = fs.updated[f];
        auto& my_touch = touch[f];
        updated.clear();
        std::size_t relaxed = 0;
        for (const Vertex lu : fs.active[f]) {
          const Dist du = load(frag.inner_global[lu]);
          for (EdgeId e = frag.first_arc(lu); e < frag.last_arc(lu); ++e) {
            const Vertex h = frag.heads[e];
            const auto w = static_cast<Dist>(frag.weights[e]);
            if (h < ni) {
              const Vertex v = frag.inner_global[h];
              const Dist dv = load(v);
              if (dv <= prev_di) continue;  // v in S_{i-1}: final
              const Dist nd = du + w;
              if (nd < dv) {
                if (dv == kInfDist) my_touch.push_back(v);
                dist[v].store(nd, std::memory_order_relaxed);
                ++relaxed;
                if (ctx.claim_sequential(v)) updated.push_back(h);
              }
            } else {
              const Vertex gi = h - ni;
              const Vertex v = frag.ghost_global[gi];
              const Dist dv = load(v);  // possibly stale: prefilter only
              if (dv <= prev_di) continue;
              const Dist nd = du + w;
              if (nd < dv) {
                messages.outbox(f, frag.ghost_owner[gi]).push_back({v, nd});
              }
            }
          }
        }
        fs.relaxed[f] = relaxed;
      });

      const auto t_exch = timed ? TraceClock::now() : TraceClock::time_point{};
      if (timed) local.relax_ns += phase_ns(t_relax, t_exch);

      // Substep boundary: staged out-lanes become in-lanes.
      messages.swap_epoch();

      // Phase 2 — ghost exchange + partition: each OWNER drains its
      // incoming lanes and applies the relaxations to its own vertices,
      // then partitions everything it updated this substep: inside d_i ->
      // next substep's active set (and settled); beyond d_i -> frontier
      // candidate. A message to a vertex final since an earlier step can
      // never win (nd >= its final distance), so no prev_di check is
      // needed on apply.
      for_each_fragment<Par>(nf, [&](std::size_t f) {
        const FragmentedGraph::Fragment& frag = fg.fragment(f);
        auto& updated = fs.updated[f];
        auto& my_touch = touch[f];
        std::size_t relaxed = 0;
        for (std::size_t s = 0; s < nf; ++s) {
          auto& in = messages.inbox(s, f);
          for (const DistMessage& msg : in) {
            const Dist dv = load(msg.vertex);
            if (msg.dist < dv) {
              if (dv == kInfDist) my_touch.push_back(msg.vertex);
              dist[msg.vertex].store(msg.dist, std::memory_order_relaxed);
              ++relaxed;
              if (ctx.claim_sequential(msg.vertex)) {
                updated.push_back(part.local_id(msg.vertex));
              }
            }
          }
          in.clear();
        }
        fs.relaxed[f] += relaxed;

        auto& next_active = fs.next_active[f];
        next_active.clear();
        for (const Vertex lv : updated) {
          const Vertex v = frag.inner_global[lv];
          const Dist dv = load(v);
          if (dv <= di) {
            next_active.push_back(lv);
            if (!ctx.is_settled(v)) {
              ctx.mark_settled(v);
              fs.newly_settled[f].push_back(v);
            }
          } else if (!ctx.is_settled(v) && ctx.mark(v)) {
            fs.newly_frontier[f].push_back(lv);
          }
        }
      });

      // Coordinator: aggregate stats, settle/bound bookkeeping, promote
      // the next active sets.
      std::size_t total_active = 0;
      for (std::size_t f = 0; f < nf; ++f) {
        local.relaxations += fs.relaxed[f];
        fs.relaxed[f] = 0;
        if (bounds) {
          // Lower-bound proof site (sequential, like the flat engine's
          // partition pass): every vertex updated this substep.
          const auto& inner = fg.fragment(f).inner_global;
          for (const Vertex lv : fs.updated[f]) {
            const Vertex v = inner[lv];
            ctx.note_bound_check(v, load(v));
          }
        }
        fs.active[f].swap(fs.next_active[f]);
        total_active += fs.active[f].size();
      }
      drain_settled();
      local.max_active = std::max(local.max_active, total_active);
      if (timed) local.exchange_ns += phase_ns(t_exch, TraceClock::now());
    }
    local.substeps += substeps_this_step;
    local.max_substeps_in_step =
        std::max(local.max_substeps_in_step, substeps_this_step);

    // Step boundary: every settled distance is final (Theorem 3.1) — the
    // exact exit point, shared with the flat engine.
    if (goals_met(local.settled)) {
      local.early_exit = true;
      break;
    }

    // Frontier rebuild per fragment: drop settled members, append the
    // step's new arrivals (both lists are duplicate-free and disjoint by
    // the mark discipline).
    for_each_fragment<Par>(nf, [&](std::size_t f) {
      const auto& inner = fg.fragment(f).inner_global;
      auto& rebuilt = fs.rebuilt[f];
      rebuilt.clear();
      for (const Vertex lv : fs.frontier[f]) {
        if (!ctx.is_settled(inner[lv])) rebuilt.push_back(lv);
      }
      for (const Vertex lv : fs.newly_frontier[f]) {
        if (!ctx.is_settled(inner[lv])) rebuilt.push_back(lv);
      }
      fs.frontier[f].swap(rebuilt);
    });
    prev_di = di;
  }
}

}  // namespace

void radius_stepping_fragment_partial(const FragmentedGraph& fg,
                                      Vertex source,
                                      const std::vector<Dist>& radius,
                                      QueryContext& ctx, RunStats* stats) {
  const Vertex n = fg.num_vertices();
  if (fg.num_fragments() == 0) {
    throw std::invalid_argument("radius_stepping_fragment: empty substrate");
  }
  if (radius.size() != n) {
    throw std::invalid_argument(
        "radius_stepping_fragment: radius size mismatch");
  }
  if (source >= n) {
    throw std::invalid_argument("radius_stepping_fragment: bad source");
  }

  ctx.begin_query(n);
  RunStats local;
  if (ctx.sequential()) {
    radius_stepping_fragment_run<false>(fg, source, radius, ctx, local);
  } else {
    radius_stepping_fragment_run<true>(fg, source, radius, ctx, local);
  }
  local.touched = ctx.touched_count();
  if (stats != nullptr) *stats = local;
}

void radius_stepping_fragment(const FragmentedGraph& fg, Vertex source,
                              const std::vector<Dist>& radius,
                              QueryContext& ctx, std::vector<Dist>& out,
                              RunStats* stats) {
  ctx.clear_targets();  // full output == exhaustive run, always
  radius_stepping_fragment_partial(fg, source, radius, ctx, stats);
  ctx.finish_query(fg.num_vertices(), out);
}

std::vector<Dist> radius_stepping_fragment(const FragmentedGraph& fg,
                                           Vertex source,
                                           const std::vector<Dist>& radius,
                                           RunStats* stats) {
  QueryContext ctx(fg.num_vertices());
  std::vector<Dist> out;
  radius_stepping_fragment(fg, source, radius, ctx, out, stats);
  return out;
}

}  // namespace rs
