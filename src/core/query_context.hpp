// QueryContext: reusable per-query scratch state for the serving hot path.
//
// Every SSSP engine needs the same O(n) working set — a tentative-distance
// array, visited/claim flags, frontier lists, per-worker collection
// buckets, a priority queue. Allocating and zeroing that per query is what
// caps throughput in the multi-source regime the preprocessing cost is
// amortized over (§5.4). A QueryContext owns all of it once:
//
//  * buffers are sized on first use (warm-up) and never shrink, so a warm
//    context answers queries with zero heap allocations in the engine;
//  * the visited and claim arrays are generation-stamped — starting a new
//    query is a counter bump, not an O(n) memset;
//  * the distance array keeps the invariant "all entries kInfDist between
//    queries"; its reset is fused into the mandatory output copy, so no
//    separate O(n) initialization pass runs per query.
//
// A context is single-owner state: one query at a time, but the query
// running on it may use intra-query parallelism (the default) or run
// strictly sequentially (set_sequential(true)) — the mode the batch
// scheduler uses when it runs one query per worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "parallel/message_buffer.hpp"
#include "pq/binary_heap.hpp"
#include "pset/treap.hpp"

namespace rs {

class QueryContext {
 public:
  QueryContext() = default;
  explicit QueryContext(Vertex n) { reserve(n); }

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;
  QueryContext(QueryContext&&) = default;
  QueryContext& operator=(QueryContext&&) = default;

  /// Grows every per-vertex buffer to cover `n` vertices. All allocation
  /// happens here; engines only ever read/write in [0, n).
  void reserve(Vertex n);

  /// Largest vertex count this context is warmed up for.
  Vertex capacity() const { return n_; }

  /// True when the engines must not open parallel regions on this context
  /// (it is owned by one worker of an outer source-parallel batch).
  bool sequential() const { return sequential_; }
  void set_sequential(bool sequential) { sequential_ = sequential; }

  /// True when the engines should take per-phase clock readings into
  /// RunStats (relax/exchange/partition ns) for this run — set per
  /// request by SsspEngine::run_serve from QueryRequest::trace. Off by
  /// default: untraced runs take zero clock readings.
  bool trace_phases() const { return trace_phases_; }
  void set_trace_phases(bool trace) { trace_phases_ = trace; }

  /// Starts a query over `n` vertices: grows buffers if needed and bumps
  /// the visited generation (O(1)). The distance array is already all
  /// kInfDist — finish_query() restored the invariant.
  void begin_query(Vertex n) {
    reserve(n);
    ++query_gen_;
  }

  /// Copies distances of [0, n) into `out` and restores the all-infinite
  /// invariant in the same pass. Every begin_query() must be paired with
  /// exactly one finish_query() OR reset_distances().
  void finish_query(Vertex n, std::vector<Dist>& out);

  /// Restores the all-infinite invariant WITHOUT producing the O(n)
  /// output copy, by sweeping every entry. Prefer reset_touched() after an
  /// engine run that recorded first-touches — this full sweep is the
  /// fallback for distance arrays of unknown provenance.
  void reset_distances(Vertex n);

  /// Current tentative distance of `v` (valid between an engine run and
  /// the finish_query()/reset_distances() that ends it). Exact for every
  /// settled vertex; an upper bound elsewhere.
  Dist read_dist(Vertex v) const {
    return dist_[v].load(std::memory_order_relaxed);
  }

  // --- targeted queries (early termination) --------------------------------
  // serve() stamps the request's target set before running an engine;
  // every engine twin calls note_target_settled() as it settles vertices
  // and may stop at the next step boundary once targets_remaining() hits
  // zero (Theorem 3.1 makes step-boundary distances final, so the exit is
  // exact). Settle sites are single-writer in every twin — the counter is
  // plain. clear_targets() is O(1); stamps are epoch-invalidated.
  //
  // Optionally each target carries an admissible LOWER BOUND on its true
  // distance (ALT landmark bounds — serve/landmark_oracle.hpp). Engines
  // then call note_bound_checks() on updated target vertices in their
  // sequential sections: a target whose tentative distance has reached its
  // bound is provably final (tentative >= true >= bound) and counts as
  // settled immediately, steps before it would settle by distance order.
  void set_targets(Vertex n, const Vertex* targets, std::size_t count,
                   const Dist* lower_bounds = nullptr);
  void clear_targets() {
    targeted_ = false;
    target_bounds_ = false;
    targets_remaining_ = 0;
    k_goal_ = 0;
    lb_exits_ = 0;
  }
  bool has_targets() const { return targeted_; }
  std::size_t targets_remaining() const { return targets_remaining_; }
  /// Records that `v` settled; decrements the remaining count the first
  /// time a stamped target settles (idempotent per query).
  void note_target_settled(Vertex v) {
    if (target_gen_[v] == target_epoch_) {
      target_gen_[v] = target_epoch_ - 1;  // un-stamp: exactly-once
      --targets_remaining_;
    }
  }
  /// True when the current target set carries lower bounds worth checking.
  bool has_target_bounds() const { return target_bounds_; }
  /// Lower-bound proof site: if `v` is a still-pending target whose
  /// tentative distance `dv` has reached its admissible floor, count it
  /// settled. Sequential sections only (same discipline as
  /// note_target_settled). Engines call this on every vertex whose
  /// distance they just lowered.
  void note_bound_check(Vertex v, Dist dv) {
    if (target_gen_[v] == target_epoch_ && dv <= target_lb_[v]) {
      target_gen_[v] = target_epoch_ - 1;
      --targets_remaining_;
      ++lb_exits_;
    }
  }
  /// Targets settled by lower-bound proof in the current query.
  std::size_t lower_bound_exits() const { return lb_exits_; }

  // --- k-nearest queries (top-k early termination) -------------------------
  // The kTopK request kind: engines stop at the first step boundary with
  // at least `k` vertices settled (exact for the same Theorem 3.1 reason
  // as the targeted exit — see core/request.hpp). Cleared with
  // clear_targets(); zero means no goal.
  void set_k_goal(std::size_t k) { k_goal_ = k; }
  std::size_t k_goal() const { return k_goal_; }

  /// Read-only view of the per-worker first-touch records of the last run
  /// (valid until reset_touched()/finish_query()). The serve layer derives
  /// top-k answers from it: settled touched vertices carry final
  /// distances.
  const std::vector<std::vector<Vertex>>& touched_lists() const {
    return touched_;
  }

  /// Reusable (dist, vertex) staging buffer for top-k extraction; keeps
  /// its capacity across queries like every other context buffer.
  std::vector<std::pair<Dist, Vertex>>& topk_buffer() {
    topk_buffer_.clear();
    return topk_buffer_;
  }

  // --- first-touch tracking (O(touched) reset) -----------------------------
  // Every radius-stepping engine records each vertex whose tentative
  // distance leaves kInfDist — exactly once per query, at the moment of
  // the inf -> finite transition — into a per-worker touch bucket.
  // reset_touched() then restores the all-infinite invariant by writing
  // kInfDist back over just those vertices: the epilogue of a targeted
  // serve costs O(touched), not O(n). (finish_query()'s fused full copy
  // already restores the invariant; it discards the records.)
  //
  // Exactly-once discipline: sequential twins record after observing the
  // old value == kInfDist; parallel twins use the write_min overload that
  // reports the pre-CAS value, whose kInfDist observation has a unique
  // winner. A missed record would leak a stale finite distance into the
  // next query, so the contract is pinned by tests over every engine.

  /// Ensures `workers` touch buckets exist and are empty. Engines call
  /// this once per run, before any recording.
  std::vector<std::vector<Vertex>>& touch_buckets(int workers);
  /// Records the inf -> finite transition of `v` from worker `w` (must
  /// only be called by worker `w`; bucket 0 in sequential sections).
  void note_touched(Vertex v, int w = 0) { touched_[std::size_t(w)].push_back(v); }
  /// Vertices recorded since the buckets were prepared (== finite entries
  /// in the distance array after an engine run).
  std::size_t touched_count() const;
  /// O(touched) epilogue: restores the all-infinite invariant by resetting
  /// exactly the recorded vertices, then clears the records. Only valid
  /// when every inf -> finite transition since touch_buckets() was
  /// recorded (all radius-stepping engine partials guarantee this).
  void reset_touched();

  // --- tentative distances -------------------------------------------------
  // Shared by parallel engines (CAS WriteMin) and sequential ones (relaxed
  // load/store, no CAS); a relaxed atomic costs the same as a plain word on
  // the sequential path.
  std::atomic<Dist>* dist() { return dist_.data(); }

  // --- visited flags (single-writer, sequential sections only) -------------
  bool is_settled(Vertex v) const { return settled_gen_[v] == query_gen_; }
  void mark_settled(Vertex v) { settled_gen_[v] = query_gen_; }

  // --- claim flags (first claimer per epoch wins) --------------------------
  // An epoch is one dedup scope: a Bellman-Ford substep, a BFS level, a
  // Delta-stepping bucket. Bumping the epoch invalidates every claim in
  // O(1); the counter is monotone across queries so stale stamps can never
  // collide.
  void next_claim_epoch() { ++claim_epoch_; }
  /// Atomic claim for parallel relaxations: exactly one caller per epoch
  /// gets `true` for a given vertex.
  bool claim(Vertex v) {
    return claim_[v].exchange(claim_epoch_, std::memory_order_relaxed) !=
           claim_epoch_;
  }
  /// Same contract without the atomic RMW; only valid in sequential mode.
  bool claim_sequential(Vertex v) {
    if (claim_[v].load(std::memory_order_relaxed) == claim_epoch_) return false;
    claim_[v].store(claim_epoch_, std::memory_order_relaxed);
    return true;
  }

  // --- mark flags (single-writer list dedup) -------------------------------
  // A second, non-atomic epoch-stamp family for deduplicating list
  // membership in sequential sections (frontier rebuilds), independent of
  // the claim epochs the relaxation substeps burn through.
  void next_mark_epoch() { ++mark_epoch_; }
  /// True the first time `v` is marked in the current mark epoch.
  bool mark(Vertex v) {
    if (mark_gen_[v] == mark_epoch_) return false;
    mark_gen_[v] = mark_epoch_;
    return true;
  }

  // --- reusable vertex lists ----------------------------------------------
  // Distinct roles so engines can hold several live lists at once; all keep
  // their capacity across queries.
  std::vector<Vertex>& frontier() { return frontier_; }
  std::vector<Vertex>& next() { return next_; }
  std::vector<Vertex>& active() { return active_; }
  std::vector<Vertex>& updated() { return updated_; }
  std::vector<Vertex>& scratch() { return scratch_; }

  /// Per-worker collection buckets; returns at least `workers` empty
  /// buckets (buckets [0, workers) are cleared, capacities kept).
  std::vector<std::vector<Vertex>>& buckets(int workers);

  /// Per-worker (vertex, distance) pair buckets (Delta-stepping phases).
  std::vector<std::vector<std::pair<Vertex, Dist>>>& pair_buckets(int workers);

  /// Cyclic bucket slot storage (Delta-stepping); at least `count` slots,
  /// all empty, capacities kept.
  std::vector<std::vector<Vertex>>& bucket_slots(std::size_t count);

  /// Indexed heap sized to capacity() (Dijkstra). Cleared on hand-out.
  IndexedHeap<Dist>& heap();

  // --- ordered-set engine state (Algorithm 2 / kBst) -----------------------
  /// Ordered-set keys are (distance, vertex) pairs — Q holds (delta(v), v),
  /// R holds (delta(v) + r(v), v).
  using SetKey = std::pair<Dist, Vertex>;

  /// Reusable sorted-key staging buffers for the batched Q/R updates: the
  /// step's split-off active keys, their R counterparts, and the four
  /// per-substep batch-update lists. All keep capacity across queries; the
  /// engine clears what it uses.
  struct KeyBuffers {
    std::vector<SetKey> moved;     // A_i keys split off Q (sorted)
    std::vector<SetKey> r_moved;   // same vertices keyed for R
    std::vector<SetKey> q_remove;  // per-substep batch updates
    std::vector<SetKey> r_remove;
    std::vector<SetKey> q_insert;
    std::vector<SetKey> r_insert;
  };
  KeyBuffers& key_buffers() { return key_buffers_; }

  /// Freelist-backed node pools for the treap substrate: Q/R nodes are
  /// recycled across substeps AND across queries, so a warm context runs
  /// kBst without per-key-move heap traffic. The pool holds one arena per
  /// worker — the parallel kBst twin hands the whole pool to its treaps
  /// (each OpenMP thread recycles through its own arena, keeping the
  /// bulk-op task recursion), while the sequential twin uses arena 0 alone
  /// (tree_arena()), never opening a region. `workers` must cover the
  /// largest team the caller's treap operations can run with.
  TreapArenaPool<SetKey>& tree_arenas(std::size_t workers) {
    tree_arenas_.ensure(workers);
    return tree_arenas_;
  }
  /// The sequential twin's single arena (arena 0 of the pool).
  TreapArena<SetKey>& tree_arena() {
    tree_arenas_.ensure(1);
    return tree_arenas_.arena(0);
  }

  /// Pre-substep distance snapshot array for touched vertices, grown to
  /// cover `n` vertices (values unspecified; the engine writes before it
  /// reads). Lazily sized so non-kBst contexts never pay for it.
  std::vector<Dist>& old_dist(Vertex n) {
    if (old_dist_.size() < n) old_dist_.resize(n);
    return old_dist_;
  }

  // --- fragment-parallel engine state (core/rs_fragment.hpp) ---------------
  /// Per-fragment scratch: the list families the fragment engine keeps one
  /// of per fragment (mirroring the flat engine's frontier/next/active/
  /// updated/scratch roles, plus the settled hand-off to the coordinator),
  /// per-fragment reduction slots, and the boundary message buffer. All of
  /// it keeps capacity across queries — a warm fragment serve allocates
  /// nothing.
  struct FragmentScratch {
    std::vector<std::vector<Vertex>> frontier;        // local inner ids
    std::vector<std::vector<Vertex>> rebuilt;         // frontier rebuild out
    std::vector<std::vector<Vertex>> active;          // current substep
    std::vector<std::vector<Vertex>> next_active;     // partition pass out
    std::vector<std::vector<Vertex>> updated;         // claimed this substep
    std::vector<std::vector<Vertex>> newly_frontier;  // beyond-d_i arrivals
    std::vector<std::vector<Vertex>> newly_settled;   // GLOBAL ids, drained
                                                      // by the coordinator
    std::vector<Dist> frontier_min;     // per-fragment d_i candidate
    std::vector<std::size_t> relaxed;   // per-fragment relaxation count
    MessageBuffer<DistMessage> messages;
  };

  /// Hands out the fragment scratch sized for `fragments` fragments: every
  /// list family has one empty entry per fragment (capacities kept), the
  /// reduction slots are sized, and the message buffer is reset.
  FragmentScratch& fragment_scratch(std::size_t fragments);

 private:
  Vertex n_ = 0;
  bool sequential_ = false;
  bool trace_phases_ = false;
  bool targeted_ = false;
  bool target_bounds_ = false;
  std::size_t targets_remaining_ = 0;
  std::size_t k_goal_ = 0;
  std::size_t lb_exits_ = 0;

  std::uint64_t query_gen_ = 0;
  std::uint64_t claim_epoch_ = 0;
  std::uint64_t mark_epoch_ = 0;
  std::uint64_t target_epoch_ = 0;

  std::vector<std::atomic<Dist>> dist_;       // invariant: all kInfDist
  std::vector<std::uint64_t> settled_gen_;    // == query_gen_ => settled
  std::vector<std::uint64_t> mark_gen_;       // == mark_epoch_ => marked
  std::vector<std::uint64_t> target_gen_;     // == target_epoch_ => wanted,
                                              // unsettled (lazily sized)
  std::vector<Dist> target_lb_;               // admissible floor per stamped
                                              // target (lazily sized)
  std::vector<std::atomic<std::uint64_t>> claim_;  // == claim_epoch_ => claimed

  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::vector<Vertex> active_;
  std::vector<Vertex> updated_;
  std::vector<Vertex> scratch_;
  std::vector<std::vector<Vertex>> buckets_;
  std::vector<std::vector<std::pair<Vertex, Dist>>> pair_buckets_;
  std::vector<std::vector<Vertex>> bucket_slots_;
  std::vector<std::vector<Vertex>> touched_{1};  // per-worker first-touches
  IndexedHeap<Dist> heap_{0};
  KeyBuffers key_buffers_;
  TreapArenaPool<SetKey> tree_arenas_;
  std::vector<Dist> old_dist_;
  std::vector<std::pair<Dist, Vertex>> topk_buffer_;
  FragmentScratch fragment_scratch_;
};

}  // namespace rs
