// Shortest-path tree reconstruction and path extraction on top of a
// distance array.
//
// The parallel engines compute distances only (an atomic parent array would
// double the relaxation traffic); a downstream user who wants actual paths
// derives parents afterwards with one deterministic O(m) pass — for each v,
// the predecessor minimizing (delta(u) + w(u, v), u). This matches how
// production SSSP systems (and the paper's work accounting) treat paths.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace rs {

/// Parents realizing `dist` (which must be a valid SSSP distance vector for
/// `g`, e.g. from radius_stepping). parent[source] = kNoVertex; unreachable
/// vertices get kNoVertex. Deterministic: ties pick the smallest vertex id.
/// v's predecessor u must have an arc u->v, so the scan walks v's INCOMING
/// arcs; this overload builds the transpose internally (O(m)).
std::vector<Vertex> parents_from_distances(const Graph& g,
                                           const std::vector<Dist>& dist);

/// Same, over a caller-provided transpose (`tg` must be `g.transposed()`) —
/// the form SsspEngine::path uses so repeated path queries share one
/// transpose instead of rebuilding it per call.
std::vector<Vertex> parents_from_distances(const Graph& g, const Graph& tg,
                                           const std::vector<Dist>& dist);

/// Vertices of the shortest s->t path implied by `parent` (s first, t
/// last); empty if t is unreachable.
std::vector<Vertex> extract_path(const std::vector<Vertex>& parent,
                                 Vertex target);

/// Targeted backward walk: writes the shortest source->target path into
/// `out` (source first, target last; cleared to empty when unreachable)
/// reading distances through `dist_of(v)` — a plain vector, the engine's
/// atomic working array, anything callable. O(path length * in-degree)
/// instead of the O(m + n) full parents pass: the serving-path form.
///
/// `tg` is the TRANSPOSE of the graph the path lives in. `dist_of(target)`
/// must be exact; predecessors are found by exact closure (dist_of(u) +
/// w(u, v) == dist_of(v)), which self-selects exact vertices even when
/// other entries are tentative upper bounds from an early-terminated run:
/// an overestimate can never close an exact distance (closure would imply
/// a shorter-than-shortest path), so every hop walked is a true shortest-
/// path edge. Ties pick the smallest vertex id (deterministic; matches
/// parents_from_distances on fully-exact distance arrays).
template <typename DistFn>
void extract_path_by_closure(const Graph& tg, Vertex target, DistFn&& dist_of,
                             std::vector<Vertex>& out) {
  out.clear();
  Dist d = dist_of(target);
  if (d == kInfDist) return;
  Vertex cur = target;
  out.push_back(cur);
  while (d > 0) {
    Vertex best = kNoVertex;
    Dist best_d = 0;
    for (EdgeId e = tg.first_arc(cur); e < tg.last_arc(cur); ++e) {
      const Vertex u = tg.arc_target(e);
      if (u >= best) continue;  // only a smaller id can improve the tie
      const Dist du = dist_of(u);
      if (du != kInfDist && du + tg.arc_weight(e) == d) {
        best = u;
        best_d = du;
      }
    }
    if (best == kNoVertex) {
      throw std::logic_error("extract_path_by_closure: no exact predecessor");
    }
    cur = best;
    d = best_d;
    out.push_back(cur);
    if (out.size() > tg.num_vertices()) {
      throw std::logic_error("extract_path_by_closure: predecessor cycle");
    }
  }
  std::reverse(out.begin(), out.end());
}

/// Validates that (dist, parent) form a consistent shortest-path tree:
/// every parent edge exists and closes the distance exactly. Test oracle
/// and debugging aid.
bool validate_shortest_path_tree(const Graph& g, const std::vector<Dist>& dist,
                                 const std::vector<Vertex>& parent);

}  // namespace rs
