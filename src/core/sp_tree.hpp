// Shortest-path tree reconstruction and path extraction on top of a
// distance array.
//
// The parallel engines compute distances only (an atomic parent array would
// double the relaxation traffic); a downstream user who wants actual paths
// derives parents afterwards with one deterministic O(m) pass — for each v,
// the predecessor minimizing (delta(u) + w(u, v), u). This matches how
// production SSSP systems (and the paper's work accounting) treat paths.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rs {

/// Parents realizing `dist` (which must be a valid SSSP distance vector for
/// `g`, e.g. from radius_stepping). parent[source] = kNoVertex; unreachable
/// vertices get kNoVertex. Deterministic: ties pick the smallest vertex id.
/// v's predecessor u must have an arc u->v, so the scan walks v's INCOMING
/// arcs; this overload builds the transpose internally (O(m)).
std::vector<Vertex> parents_from_distances(const Graph& g,
                                           const std::vector<Dist>& dist);

/// Same, over a caller-provided transpose (`tg` must be `g.transposed()`) —
/// the form SsspEngine::path uses so repeated path queries share one
/// transpose instead of rebuilding it per call.
std::vector<Vertex> parents_from_distances(const Graph& g, const Graph& tg,
                                           const std::vector<Dist>& dist);

/// Vertices of the shortest s->t path implied by `parent` (s first, t
/// last); empty if t is unreachable.
std::vector<Vertex> extract_path(const std::vector<Vertex>& parent,
                                 Vertex target);

/// Validates that (dist, parent) form a consistent shortest-path tree:
/// every parent edge exists and closes the distance exactly. Test oracle
/// and debugging aid.
bool validate_shortest_path_tree(const Graph& g, const std::vector<Dist>& dist,
                                 const std::vector<Vertex>& parent);

}  // namespace rs
