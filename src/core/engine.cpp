#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

#include <omp.h>

#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "core/sp_tree.hpp"
#include "parallel/primitives.hpp"

namespace rs {

SsspEngine::SsspEngine(Graph g, const PreprocessOptions& opts)
    : original_(std::move(g)), pre_(preprocess(original_, opts)) {}

SsspEngine::SsspEngine(Graph g, const PreprocessOptions& opts,
                       PreprocessPool& pool)
    : original_(std::move(g)), pre_(preprocess(original_, opts, pool)) {}

SsspEngine::SsspEngine(Graph original, PreprocessResult pre)
    : original_(std::move(original)), pre_(std::move(pre)) {
  if (pre_.graph.num_vertices() != original_.num_vertices() ||
      pre_.radius.size() != original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine: preprocessing/graph mismatch");
  }
}

SsspEngine::SsspEngine(const SsspEngine& other)
    : original_(other.original_), pre_(other.pre_) {}

SsspEngine& SsspEngine::operator=(const SsspEngine& other) {
  if (this != &other) {
    original_ = other.original_;
    pre_ = other.pre_;
    batch_pool_ = std::make_unique<BatchPool>();
    transpose_ = std::make_unique<TransposeCache>();
  }
  return *this;
}

void SsspEngine::check_engine(QueryEngine engine) const {
  if (engine == QueryEngine::kUnweighted &&
      (pre_.added_edges != 0 || pre_.graph.max_weight() != 1)) {
    throw std::invalid_argument(
        "SsspEngine: unweighted engine needs a unit-weight graph with no "
        "shortcut edges (use ShortcutHeuristic::kNone)");
  }
}

void SsspEngine::run_query(Vertex source, QueryEngine engine,
                           QueryContext* ctx, QueryResult& out) const {
  out.source = source;
  switch (engine) {
    case QueryEngine::kFlat:
      if (ctx != nullptr) {
        radius_stepping(pre_.graph, source, pre_.radius, *ctx, out.dist,
                        &out.stats);
      } else {
        out.dist = radius_stepping(pre_.graph, source, pre_.radius, &out.stats);
      }
      break;
    case QueryEngine::kBst:
      if (ctx != nullptr) {
        radius_stepping_bst(pre_.graph, source, pre_.radius, *ctx, out.dist,
                            &out.stats);
      } else {
        out.dist =
            radius_stepping_bst(pre_.graph, source, pre_.radius, &out.stats);
      }
      break;
    case QueryEngine::kBstFlat:
      if (ctx != nullptr) {
        radius_stepping_flatset(pre_.graph, source, pre_.radius, *ctx,
                                out.dist, &out.stats);
      } else {
        out.dist = radius_stepping_flatset(pre_.graph, source, pre_.radius,
                                           &out.stats);
      }
      break;
    case QueryEngine::kUnweighted:
      if (ctx != nullptr) {
        radius_stepping_unweighted(pre_.graph, source, pre_.radius, *ctx,
                                   out.dist, &out.stats);
      } else {
        out.dist = radius_stepping_unweighted(pre_.graph, source, pre_.radius,
                                              &out.stats);
      }
      break;
  }
}

QueryResult SsspEngine::query(Vertex source, QueryEngine engine) const {
  check_engine(engine);
  QueryResult out;
  run_query(source, engine, nullptr, out);
  return out;
}

QueryResult SsspEngine::query(Vertex source, QueryEngine engine,
                              QueryContext& ctx) const {
  check_engine(engine);
  QueryResult out;
  run_query(source, engine, &ctx, out);
  return out;
}

std::vector<QueryResult> SsspEngine::query_batch(
    const std::vector<Vertex>& sources, QueryEngine engine) const {
  const std::size_t batch = sources.size();
  std::vector<QueryResult> out(batch);
  if (batch == 0) return out;

  // Validate everything up front: nothing may throw inside the parallel
  // region below.
  check_engine(engine);
  const Vertex n = pre_.graph.num_vertices();
  for (const Vertex s : sources) {
    if (s >= n) throw std::invalid_argument("query_batch: bad source");
  }

  // Take the engine's warm context pool if it is free; concurrent batches
  // (or a moved-from engine) fall back to a batch-local pool rather than
  // sharing state.
  std::unique_lock<std::mutex> lock;
  if (batch_pool_ != nullptr) {
    lock = std::unique_lock<std::mutex>(batch_pool_->mutex, std::try_to_lock);
  }
  WorkerPool<QueryContext> local_pool;
  WorkerPool<QueryContext>& pool =
      lock.owns_lock() ? batch_pool_->pool : local_pool;

  const int nw = num_workers();
  if (nw > 1 && batch >= static_cast<std::size_t>(nw)) {
    // Source-parallel: one strictly sequential query per worker. Dynamic
    // schedule — per-source cost varies with eccentricity.
    pool.ensure(static_cast<std::size_t>(nw));
    for (int w = 0; w < nw; ++w) {
      pool.at(static_cast<std::size_t>(w)).set_sequential(true);
    }
#pragma omp parallel for schedule(dynamic, 1) num_threads(nw)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(batch); ++i) {
      QueryContext& ctx =
          pool.at(static_cast<std::size_t>(omp_get_thread_num()));
      run_query(sources[static_cast<std::size_t>(i)], engine, &ctx,
                out[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  // Batch narrower than the worker count (or one worker): sequential batch
  // loop over one reused context. With several workers each query keeps
  // intra-query parallelism; with one worker the sequential engine twin
  // skips atomics and OpenMP entirely.
  pool.ensure(1);
  QueryContext& ctx = pool.at(0);
  ctx.set_sequential(nw <= 1);
  for (std::size_t i = 0; i < batch; ++i) {
    run_query(sources[i], engine, &ctx, out[i]);
  }
  return out;
}

std::vector<Vertex> SsspEngine::path(const QueryResult& q,
                                     Vertex target) const {
  if (q.dist.size() != original_.num_vertices()) {
    // A default-constructed or foreign-engine QueryResult would index
    // q.dist out of bounds below; reject it up front.
    throw std::invalid_argument(
        "SsspEngine::path: QueryResult does not belong to this engine");
  }
  if (target >= original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine::path: bad target");
  }
  if (q.dist[target] == kInfDist) return {};
  // Distances are identical on the original graph (shortcuts preserve
  // them), so parents derived there avoid shortcut edges entirely. Parents
  // come from each vertex's incoming arcs (directed-correct); the transpose
  // that exposes them is built once and shared across path() calls.
  Graph local;
  const Graph* tg;
  if (transpose_ != nullptr) {
    std::call_once(transpose_->once,
                   [&] { transpose_->graph = original_.transposed(); });
    tg = &transpose_->graph;
  } else {  // moved-from engine: stay correct, skip the cache
    local = original_.transposed();
    tg = &local;
  }
  const std::vector<Vertex> parent =
      parents_from_distances(original_, *tg, q.dist);
  return extract_path(parent, target);
}

}  // namespace rs
