#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

#include <omp.h>

#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_fragment.hpp"
#include "core/rs_unweighted.hpp"
#include "core/sp_tree.hpp"
#include "parallel/primitives.hpp"

namespace rs {

SsspEngine::SsspEngine(Graph g, const PreprocessOptions& opts)
    : original_(std::move(g)), pre_(preprocess(original_, opts)) {}

SsspEngine::SsspEngine(Graph g, const PreprocessOptions& opts,
                       PreprocessPool& pool)
    : original_(std::move(g)), pre_(preprocess(original_, opts, pool)) {}

SsspEngine::SsspEngine(Graph original, PreprocessResult pre)
    : original_(std::move(original)), pre_(std::move(pre)) {
  if (pre_.graph.num_vertices() != original_.num_vertices() ||
      pre_.radius.size() != original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine: preprocessing/graph mismatch");
  }
}

SsspEngine::SsspEngine(const SsspEngine& other)
    : original_(other.original_),
      pre_(other.pre_),
      // The fragment substrate is immutable once built: share it.
      fragments_(other.fragments_),
      fragment_mode_(other.fragment_mode_),
      graph_epoch_(other.graph_epoch_) {}

SsspEngine& SsspEngine::operator=(const SsspEngine& other) {
  if (this != &other) {
    original_ = other.original_;
    pre_ = other.pre_;
    graph_epoch_ = other.graph_epoch_;
    fragments_ = other.fragments_;
    fragment_mode_ = other.fragment_mode_;
    batch_pools_ = std::make_unique<BatchPools>();
    transpose_ = std::make_unique<TransposeCache>();
  }
  return *this;
}

SsspEngine SsspEngine::next_epoch(const SsspEngine& prior, Graph original,
                                  PreprocessResult pre) {
  SsspEngine next(std::move(original), std::move(pre));
  next.graph_epoch_ = prior.graph_epoch_ + 1;
  if (prior.fragments_ != nullptr) {
    next.enable_fragments(prior.fragments_->num_fragments(),
                          prior.fragment_mode_);
  }
  return next;
}

void SsspEngine::enable_fragments(std::size_t count, PartitionMode mode) {
  fragments_ = std::make_shared<const FragmentedGraph>(pre_.graph, count, mode);
  fragment_mode_ = mode;
}

void SsspEngine::replace(Graph original, PreprocessResult pre) {
  if (pre.graph.num_vertices() != original.num_vertices() ||
      pre.radius.size() != original.num_vertices()) {
    throw std::invalid_argument(
        "SsspEngine::replace: preprocessing/graph mismatch");
  }
  original_ = std::move(original);
  pre_ = std::move(pre);
  if (fragments_ != nullptr) {
    // Re-partition the new graph the same way (resolved count, same mode),
    // so kFragment keeps working across the swap.
    fragments_ = std::make_shared<const FragmentedGraph>(
        pre_.graph, fragments_->num_fragments(), fragment_mode_);
  }
  transpose_ = std::make_unique<TransposeCache>();
  ++graph_epoch_;
}

void SsspEngine::check_engine(QueryEngine engine) const {
  if (engine == QueryEngine::kUnweighted &&
      (pre_.added_edges != 0 || pre_.graph.max_weight() != 1)) {
    throw std::invalid_argument(
        "SsspEngine: unweighted engine needs a unit-weight graph with no "
        "shortcut edges (use ShortcutHeuristic::kNone)");
  }
  if (engine == QueryEngine::kFragment && fragments_ == nullptr) {
    throw std::invalid_argument(
        "SsspEngine: fragment engine needs enable_fragments() first");
  }
}

void SsspEngine::validate(const QueryRequest& req) const {
  check_engine(req.engine);
  const Vertex n = pre_.graph.num_vertices();
  if (req.source >= n) {
    throw std::invalid_argument("SsspEngine: bad source");
  }
  if (req.kind == RequestKind::kTopK) {
    if (req.k == 0) {
      throw std::invalid_argument("SsspEngine: kTopK needs k >= 1");
    }
    if (!req.targets.empty()) {
      throw std::invalid_argument("SsspEngine: kTopK takes no targets");
    }
    if (!req.target_lower_bounds.empty()) {
      throw std::invalid_argument("SsspEngine: kTopK takes no lower bounds");
    }
    return;
  }
  for (const Vertex t : req.targets) {
    if (t >= n) throw std::invalid_argument("SsspEngine: bad target");
  }
  if (!req.target_lower_bounds.empty() &&
      req.target_lower_bounds.size() != req.targets.size()) {
    throw std::invalid_argument(
        "SsspEngine: target_lower_bounds must be empty or parallel to "
        "targets");
  }
}

const Graph& SsspEngine::transpose(Graph& local) const {
  if (transpose_ != nullptr) {
    std::call_once(transpose_->once,
                   [&] { transpose_->graph = original_.transposed(); });
    return transpose_->graph;
  }
  // Moved-from engine: stay correct, skip the cache.
  local = original_.transposed();
  return local;
}

void SsspEngine::run_serve(const QueryRequest& req, QueryContext& ctx,
                           const Graph* transpose, QueryResponse& resp) const {
  const Vertex n = pre_.graph.num_vertices();
  resp.source = req.source;
  resp.stats = RunStats{};
  resp.dist.clear();
  resp.trace = obs::TraceBuffer{};
  // Per-phase clock readings only for traced requests; the flag is
  // per-run (set fresh here every time), so context reuse cannot leak it.
  ctx.set_trace_phases(req.trace);

  // Early termination only when it cannot change what the caller sees: a
  // full distance vector needs the exhaustive run, an untargeted kTargets
  // request has no settled-set to wait for, and a kTopK run may stop at
  // the first step boundary with k vertices settled.
  const bool topk = req.kind == RequestKind::kTopK;
  const bool early = !topk && !req.targets.empty() && !req.want_full_distances;
  if (early) {
    const Dist* lb = req.target_lower_bounds.empty()
                         ? nullptr
                         : req.target_lower_bounds.data();
    ctx.set_targets(n, req.targets.data(), req.targets.size(), lb);
  } else {
    ctx.clear_targets();
    if (topk && !req.want_full_distances) ctx.set_k_goal(req.k);
  }

  switch (req.engine) {
    case QueryEngine::kFlat:
      radius_stepping_partial(pre_.graph, req.source, pre_.radius, ctx,
                              &resp.stats);
      break;
    case QueryEngine::kBst:
      radius_stepping_bst_partial(pre_.graph, req.source, pre_.radius, ctx,
                                  &resp.stats);
      break;
    case QueryEngine::kBstFlat:
      radius_stepping_flatset_partial(pre_.graph, req.source, pre_.radius,
                                      ctx, &resp.stats);
      break;
    case QueryEngine::kUnweighted:
      radius_stepping_unweighted_partial(pre_.graph, req.source, pre_.radius,
                                         ctx, &resp.stats);
      break;
    case QueryEngine::kFragment:
      radius_stepping_fragment_partial(*fragments_, req.source, pre_.radius,
                                       ctx, &resp.stats);
      break;
  }

  if (topk) {
    // k-nearest extraction from the first-touch records: at the exit
    // boundary every SETTLED touched vertex carries its final distance and
    // every unsettled vertex is strictly farther (Theorem 3.1), so the k
    // smallest settled (dist, vertex) pairs are exactly the k nearest. The
    // unweighted engine claims whole levels and never marks settled
    // stamps; all its touched vertices are final. All buffers come from
    // the context, so a warm top-k serve allocates nothing.
    auto& buf = ctx.topk_buffer();
    const bool all_final = req.engine == QueryEngine::kUnweighted;
    for (const auto& bucket : ctx.touched_lists()) {
      for (const Vertex v : bucket) {
        if (all_final || ctx.is_settled(v)) {
          buf.push_back({ctx.read_dist(v), v});
        }
      }
    }
    const std::size_t m = std::min<std::size_t>(req.k, buf.size());
    std::partial_sort(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(m), buf.end());
    resp.targets.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      TargetResult& tr = resp.targets[i];
      tr.target = buf[i].second;
      tr.dist = buf[i].first;
      tr.path.clear();
    }
  } else {
    // Per-target answers, read straight out of the context's working array
    // (zero-copy: the O(n) vector is never materialized for targeted
    // requests). Every target is exact here: either the run was
    // exhaustive, or it stopped only once all of them settled — by
    // distance order or by lower-bound proof.
    resp.targets.resize(req.targets.size());
    for (std::size_t i = 0; i < req.targets.size(); ++i) {
      TargetResult& tr = resp.targets[i];
      tr.target = req.targets[i];
      tr.dist = ctx.read_dist(tr.target);
      tr.path.clear();
    }
  }
  if (req.want_paths && transpose != nullptr) {
    const auto dist_of = [&ctx](Vertex v) { return ctx.read_dist(v); };
    for (TargetResult& tr : resp.targets) {
      if (tr.dist != kInfDist) {
        // Distances are identical on the original graph (shortcuts
        // preserve them), so the walk over the original's transpose never
        // uses a shortcut edge.
        extract_path_by_closure(*transpose, tr.target, dist_of, tr.path);
      }
    }
  }

  // End the query: the full copy only when asked, otherwise restore the
  // context's all-infinite invariant in O(touched) — every engine records
  // first-touches, so a targeted serve that early-terminated after a
  // handful of vertices no longer pays an O(n) sweep per request.
  if (req.want_full_distances) {
    ctx.finish_query(n, resp.dist);
  } else {
    ctx.reset_touched();
  }
  // Provenance: which preprocessing generation answered, and how. The
  // lower-bound exit count must be read before the stamps are cleared.
  resp.graph_epoch = graph_epoch_;
  resp.served_from_cache = false;
  resp.lower_bound_exits = ctx.lower_bound_exits();
  ctx.clear_targets();
}

QueryResponse SsspEngine::serve(const QueryRequest& req) const {
  QueryContext ctx(pre_.graph.num_vertices());
  return serve(req, ctx);
}

QueryResponse SsspEngine::serve(const QueryRequest& req,
                                QueryContext& ctx) const {
  QueryResponse resp;
  serve(req, ctx, resp);
  return resp;
}

void SsspEngine::serve(const QueryRequest& req, QueryContext& ctx,
                       QueryResponse& resp) const {
  validate(req);
  Graph local;
  // The transpose is only ever dereferenced for an actual result's path.
  const bool paths = req.want_paths && (req.kind == RequestKind::kTopK ||
                                        !req.targets.empty());
  const Graph* tp = paths ? &transpose(local) : nullptr;
  run_serve(req, ctx, tp, resp);
}

std::vector<QueryResponse> SsspEngine::serve_batch(
    const std::vector<QueryRequest>& requests) const {
  const std::size_t batch = requests.size();
  std::vector<QueryResponse> out(batch);
  if (batch == 0) return out;

  // Validate everything up front: nothing may throw inside the parallel
  // region below.
  bool any_paths = false;
  for (const QueryRequest& req : requests) {
    validate(req);
    any_paths = any_paths ||
                (req.want_paths && (req.kind == RequestKind::kTopK ||
                                    !req.targets.empty()));
  }
  // All workers share the one cached transpose; build it before they run.
  Graph local;
  const Graph* tp = any_paths ? &transpose(local) : nullptr;

  // Lease a warm context pool slot for this batch: try-lock an existing
  // slot, or grow the slot set by one so every concurrent batch gets a
  // dedicated pool that stays warm for future batches. Only a moved-from
  // engine falls back to a cold batch-local pool.
  WorkerPool<QueryContext> local_pool;
  WorkerPool<QueryContext>* leased = &local_pool;
  std::unique_lock<std::mutex> lease;
  if (batch_pools_ != nullptr) {
    BatchPools& pools = *batch_pools_;
    // grow_mutex also serializes the slot scan: deque growth never moves
    // existing slots, but the scan must not race the emplace itself. The
    // critical section is tiny — try-locks never wait on a running batch.
    std::lock_guard<std::mutex> grow(pools.grow_mutex);
    for (BatchPoolSlot& slot : pools.slots) {
      std::unique_lock<std::mutex> l(slot.mutex, std::try_to_lock);
      if (l.owns_lock()) {
        lease = std::move(l);
        leased = &slot.pool;
        break;
      }
    }
    if (!lease.owns_lock()) {
      BatchPoolSlot& slot = pools.slots.emplace_back();
      lease = std::unique_lock<std::mutex>(slot.mutex);
      leased = &slot.pool;
    }
  }
  WorkerPool<QueryContext>& pool = *leased;

  const int nw = num_workers();
  if (nw > 1 && batch >= static_cast<std::size_t>(nw)) {
    // Request-parallel: one strictly sequential query per worker. Dynamic
    // schedule — per-request cost varies with eccentricity and targets.
    pool.ensure(static_cast<std::size_t>(nw));
    for (int w = 0; w < nw; ++w) {
      pool.at(static_cast<std::size_t>(w)).set_sequential(true);
    }
#pragma omp parallel for schedule(dynamic, 1) num_threads(nw)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(batch); ++i) {
      QueryContext& ctx =
          pool.at(static_cast<std::size_t>(omp_get_thread_num()));
      run_serve(requests[static_cast<std::size_t>(i)], ctx, tp,
                out[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  // Batch narrower than the worker count (or one worker): sequential batch
  // loop over one reused context. With several workers each query keeps
  // intra-query parallelism; with one worker the sequential engine twin
  // skips atomics and OpenMP entirely.
  pool.ensure(1);
  QueryContext& ctx = pool.at(0);
  ctx.set_sequential(nw <= 1);
  for (std::size_t i = 0; i < batch; ++i) {
    run_serve(requests[i], ctx, tp, out[i]);
  }
  return out;
}

QueryResult SsspEngine::query(Vertex source, QueryEngine engine) const {
  QueryContext ctx(pre_.graph.num_vertices());
  return query(source, engine, ctx);
}

QueryResult SsspEngine::query(Vertex source, QueryEngine engine,
                              QueryContext& ctx) const {
  QueryRequest req;
  req.source = source;
  req.want_full_distances = true;
  req.engine = engine;
  QueryResponse resp = serve(req, ctx);
  QueryResult out;
  out.source = resp.source;
  out.dist = std::move(resp.dist);
  out.stats = resp.stats;
  return out;
}

std::vector<QueryResult> SsspEngine::query_batch(
    const std::vector<Vertex>& sources, QueryEngine engine) const {
  std::vector<QueryRequest> requests(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    requests[i].source = sources[i];
    requests[i].want_full_distances = true;
    requests[i].engine = engine;
  }
  std::vector<QueryResponse> responses = serve_batch(requests);
  std::vector<QueryResult> out(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    out[i].source = responses[i].source;
    out[i].dist = std::move(responses[i].dist);
    out[i].stats = responses[i].stats;
  }
  return out;
}

std::vector<Vertex> SsspEngine::path(const QueryResult& q,
                                     Vertex target) const {
  if (q.dist.size() != original_.num_vertices()) {
    // A default-constructed or foreign-engine QueryResult would index
    // q.dist out of bounds below; reject it up front.
    throw std::invalid_argument(
        "SsspEngine::path: QueryResult does not belong to this engine");
  }
  if (target >= original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine::path: bad target");
  }
  if (q.dist[target] == kInfDist) return {};
  Graph local;
  const Graph& tg = transpose(local);
  std::vector<Vertex> out;
  extract_path_by_closure(tg, target, [&q](Vertex v) { return q.dist[v]; },
                          out);
  return out;
}

}  // namespace rs
