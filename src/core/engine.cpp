#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

#include "core/radius_stepping.hpp"
#include "core/rs_bst.hpp"
#include "core/rs_unweighted.hpp"
#include "core/sp_tree.hpp"

namespace rs {

SsspEngine::SsspEngine(Graph g, const PreprocessOptions& opts)
    : original_(std::move(g)), pre_(preprocess(original_, opts)) {}

SsspEngine::SsspEngine(Graph original, PreprocessResult pre)
    : original_(std::move(original)), pre_(std::move(pre)) {
  if (pre_.graph.num_vertices() != original_.num_vertices() ||
      pre_.radius.size() != original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine: preprocessing/graph mismatch");
  }
}

QueryResult SsspEngine::query(Vertex source, QueryEngine engine) const {
  QueryResult out;
  out.source = source;
  switch (engine) {
    case QueryEngine::kFlat:
      out.dist = radius_stepping(pre_.graph, source, pre_.radius, &out.stats);
      break;
    case QueryEngine::kBst:
      out.dist =
          radius_stepping_bst(pre_.graph, source, pre_.radius, &out.stats);
      break;
    case QueryEngine::kUnweighted:
      if (pre_.added_edges != 0 || pre_.graph.max_weight() != 1) {
        throw std::invalid_argument(
            "SsspEngine: unweighted engine needs a unit-weight graph with no "
            "shortcut edges (use ShortcutHeuristic::kNone)");
      }
      out.dist = radius_stepping_unweighted(pre_.graph, source, pre_.radius,
                                            &out.stats);
      break;
  }
  return out;
}

std::vector<QueryResult> SsspEngine::query_batch(
    const std::vector<Vertex>& sources, QueryEngine engine) const {
  std::vector<QueryResult> out;
  out.reserve(sources.size());
  for (const Vertex s : sources) out.push_back(query(s, engine));
  return out;
}

std::vector<Vertex> SsspEngine::path(const QueryResult& q,
                                     Vertex target) const {
  if (target >= original_.num_vertices()) {
    throw std::invalid_argument("SsspEngine::path: bad target");
  }
  if (q.dist[target] == kInfDist) return {};
  // Distances are identical on the original graph (shortcuts preserve
  // them), so parents derived there avoid shortcut edges entirely.
  const std::vector<Vertex> parent = parents_from_distances(original_, q.dist);
  return extract_path(parent, target);
}

}  // namespace rs
