/// \file
/// The typed serving surface of SsspEngine: QueryRequest in,
/// QueryResponse out.
///
/// The paper's preprocessing cost is amortized over many queries (§5.4),
/// and most consumers of such a service — point-to-point routers,
/// reachability checks, k-nearest lookups — read a handful of targets per
/// request. A QueryRequest says exactly what the caller needs; the engine
/// then does only that much work:
///
///  * `targets` non-empty and `want_full_distances` false is the targeted
///    regime: the run terminates early, at the first step boundary where
///    every requested target is settled. Radius-Stepping settles vertices
///    in rounds of nondecreasing distance (Theorem 3.1: by the end of
///    step i every vertex with delta <= d_i is final), so the early exit
///    is EXACT — the per-target distances equal a full run's — while
///    executing a fraction of the rounds when the targets are near the
///    source.
///  * the response is O(|targets|) space: per-target distances are read
///    straight out of the engine's working distance array (zero-copy —
///    the O(n) dist vector is neither copied nor allocated) and optional
///    paths are expanded by a targeted backward walk over the cached
///    transpose. The request epilogue is O(touched), not O(n): every
///    engine records first-touches in its relax loop and the context
///    resets exactly those entries (QueryContext::reset_touched), so an
///    early-terminated request does work proportional to what it actually
///    explored.
///  * `want_full_distances` requests the classic O(n) dist vector; it
///    disables early termination (a partial vector would not be the full
///    answer) and makes the response equivalent to the legacy query()
///    API.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/types.hpp"
#include "obs/trace.hpp"

namespace rs {

/// Which Radius-Stepping implementation answers a request.
enum class QueryEngine : std::uint8_t {
  kFlat,        ///< Atomic-array engine (default; fastest).
  kBst,         ///< Algorithm 2 on the arena-treap substrate (O(p log q)
                ///< set operations).
  kBstFlat,     ///< Algorithm 2 on the flat sorted-array substrate.
  kUnweighted,  ///< BFS-style engine; only valid when the graph is
                ///< unit-weight and preprocessing added no shortcuts.
  kFragment,    ///< Fragment-parallel engine over the partitioned
                ///< substrate (core/rs_fragment.hpp); only valid after
                ///< SsspEngine::enable_fragments(); distances
                ///< bit-identical to kFlat.
};

/// What a request asks for.
enum class RequestKind : std::uint8_t {
  /// Distances (and optionally paths) to the listed `targets`, or the full
  /// distance vector when `want_full_distances` — the classic regime.
  kTargets,
  /// The `k` vertices nearest to `source` (POI workloads). Served by the
  /// same step-boundary machinery: the run stops at the first boundary
  /// with at least k vertices settled; Theorem 3.1 makes every settled
  /// distance final and every unsettled true distance larger than the
  /// boundary radius, so the k smallest settled (dist, vertex) pairs are
  /// exactly the k nearest. Results arrive in nondecreasing (dist, vertex)
  /// order; fewer than k when fewer vertices are reachable.
  kTopK,
};

/// One serving request: distances (and optionally paths) from `source` to
/// `targets`, the `k` nearest vertices (kTopK), or the full distance
/// vector when `want_full_distances`.
struct QueryRequest {
  /// The SSSP source vertex; must be < num_vertices().
  Vertex source = kNoVertex;

  /// What is being asked: targeted distances (default) or k-nearest.
  RequestKind kind = RequestKind::kTargets;

  /// Vertices whose distances the caller wants (kTargets only; must be
  /// empty for kTopK). Order is preserved in the response (duplicates
  /// allowed; each occurrence is answered). Empty with
  /// `want_full_distances` unset still runs the query — useful only for
  /// its RunStats — but the natural targeted request lists 1..k targets
  /// and leaves `want_full_distances` off to get early termination.
  std::vector<Vertex> targets;

  /// kTopK: how many nearest vertices to return (>= 1). The source itself
  /// counts (it is the nearest vertex, at distance 0). Ignored for
  /// kTargets.
  std::uint32_t k = 0;

  /// Optional admissible per-target lower bounds on d(source, target),
  /// parallel to `targets` (empty = none; otherwise exactly one entry per
  /// target). A landmark oracle (serve/landmark_oracle.hpp) fills these
  /// with ALT bounds max_L(d(L,t) - d(L,s)); the engines then declare a
  /// target settled the moment its tentative distance reaches its bound
  /// (tentative >= true >= bound forces equality), which can prove distant
  /// targets done steps before the plain step-boundary exit would.
  /// Bounds must be true lower bounds — an inadmissible bound silently
  /// yields wrong distances. Only consulted for early-terminating
  /// targeted requests; ignored by kUnweighted (claimed == final already).
  std::vector<Dist> target_lower_bounds;

  /// Expand the shortest path for every reachable target (vertices of the
  /// ORIGINAL graph; shortcut edges never appear).
  bool want_paths = false;

  /// Fill QueryResponse::dist with distances to every vertex (O(n)).
  /// Forces a full run: early termination is disabled.
  bool want_full_distances = false;

  /// Which Radius-Stepping implementation answers this request.
  QueryEngine engine = QueryEngine::kFlat;

  /// Trace this request: the engines take per-phase clock readings into
  /// RunStats (relax/exchange/partition ns) and the server assembles a
  /// span breakdown into QueryResponse::trace. Normally set by the
  /// server's sampling knob (ServerOptions::trace_sample), not by hand.
  bool trace = false;
};

/// Per-result slice of a response — one layout for both request kinds:
/// kTargets fills one entry per requested target (request order);
/// kTopK fills the k nearest vertices in nondecreasing (dist, vertex)
/// order, `target` being the ranked vertex itself.
struct TargetResult {
  Vertex target = kNoVertex;  ///< The vertex this entry answers for.
  Dist dist = kInfDist;       ///< d(source, target); kInfDist == unreachable.
  /// source..target inclusive; empty when unreachable or !want_paths.
  /// For target == source the path is the single vertex {source}.
  std::vector<Vertex> path;
};

/// The answer to one QueryRequest; layout mirrors the request.
struct QueryResponse {
  /// Echo of QueryRequest::source.
  Vertex source = kNoVertex;
  /// kTargets: parallel to QueryRequest::targets (same order, same
  /// multiplicity). kTopK: the k nearest vertices, nearest first.
  std::vector<TargetResult> targets;
  /// Full distance vector; filled iff want_full_distances, else empty.
  std::vector<Dist> dist;
  /// Step/relaxation counters from the run that produced this answer.
  RunStats stats;

  // Provenance: where and when this answer came from.
  /// SsspEngine::graph_epoch() at serve time — the preprocessing
  /// generation the distances belong to. A consumer holding responses
  /// across a graph swap can tell stale answers apart.
  std::uint64_t graph_epoch = 0;
  /// True when the answer was read from a cached full-distance row
  /// (serve/result_cache.hpp) instead of running an engine.
  bool served_from_cache = false;
  /// How many targets were declared settled by a lower-bound proof
  /// (target_lower_bounds) rather than by actually settling — the ALT
  /// assist's contribution to this request's early exit.
  std::size_t lower_bound_exits = 0;

  /// Span breakdown of where this request's latency went; populated only
  /// when the request was traced (QueryRequest::trace — enabled==true
  /// then). Fixed-capacity POD: carrying it costs no allocation.
  obs::TraceBuffer trace;
};

}  // namespace rs
