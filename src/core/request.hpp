// The typed serving surface of SsspEngine: QueryRequest in, QueryResponse
// out.
//
// The paper's preprocessing cost is amortized over many queries (§5.4),
// and most consumers of such a service — point-to-point routers,
// reachability checks, k-nearest lookups — read a handful of targets per
// request. A QueryRequest says exactly what the caller needs; the engine
// then does only that much work:
//
//  * `targets` non-empty and `want_full_distances` false is the targeted
//    regime: the run terminates early, at the first step boundary where
//    every requested target is settled. Radius-Stepping settles vertices
//    in rounds of nondecreasing distance (Theorem 3.1: by the end of step
//    i every vertex with delta <= d_i is final), so the early exit is
//    EXACT — the per-target distances equal a full run's — while executing
//    a fraction of the rounds when the targets are near the source.
//  * the response is O(|targets|) space: per-target distances are read
//    straight out of the engine's working distance array (zero-copy — the
//    O(n) dist vector is neither copied nor allocated) and optional paths
//    are expanded by a targeted backward walk over the cached transpose.
//    The request epilogue is O(touched), not O(n): every engine records
//    first-touches in its relax loop and the context resets exactly those
//    entries (QueryContext::reset_touched), so an early-terminated request
//    does work proportional to what it actually explored.
//  * `want_full_distances` requests the classic O(n) dist vector; it
//    disables early termination (a partial vector would not be the full
//    answer) and makes the response equivalent to the legacy query() API.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "graph/types.hpp"

namespace rs {

/// Which Radius-Stepping implementation answers a request.
enum class QueryEngine : std::uint8_t {
  kFlat,        // atomic-array engine (default; fastest)
  kBst,         // Algorithm 2 on the arena-treap substrate (O(p log q) sets)
  kBstFlat,     // Algorithm 2 on the flat sorted-array substrate
  kUnweighted,  // BFS-style engine; only valid when the graph is unit-weight
                // and preprocessing added no shortcut edges
};

/// One serving request: distances (and optionally paths) from `source` to
/// `targets`, or the full distance vector when `want_full_distances`.
struct QueryRequest {
  Vertex source = kNoVertex;

  /// Vertices whose distances the caller wants. Order is preserved in the
  /// response (duplicates allowed; each occurrence is answered). Empty
  /// with `want_full_distances` unset still runs the query — useful only
  /// for its RunStats — but the natural targeted request lists 1..k
  /// targets and leaves `want_full_distances` off to get early
  /// termination.
  std::vector<Vertex> targets;

  /// Expand the shortest path for every reachable target (vertices of the
  /// ORIGINAL graph; shortcut edges never appear).
  bool want_paths = false;

  /// Fill QueryResponse::dist with distances to every vertex (O(n)).
  /// Forces a full run: early termination is disabled.
  bool want_full_distances = false;

  QueryEngine engine = QueryEngine::kFlat;
};

/// Per-target slice of a response.
struct TargetResult {
  Vertex target = kNoVertex;
  Dist dist = kInfDist;  // kInfDist == unreachable
  /// source..target inclusive; empty when unreachable or !want_paths.
  /// For target == source the path is the single vertex {source}.
  std::vector<Vertex> path;
};

struct QueryResponse {
  Vertex source = kNoVertex;
  /// Parallel to QueryRequest::targets (same order, same multiplicity).
  std::vector<TargetResult> targets;
  /// Full distance vector; filled iff want_full_distances, else empty.
  std::vector<Dist> dist;
  RunStats stats;
};

}  // namespace rs
