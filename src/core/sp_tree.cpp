#include "core/sp_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/primitives.hpp"

namespace rs {

std::vector<Vertex> parents_from_distances(const Graph& g,
                                           const std::vector<Dist>& dist) {
  return parents_from_distances(g, g.transposed(), dist);
}

std::vector<Vertex> parents_from_distances(const Graph& g, const Graph& tg,
                                           const std::vector<Dist>& dist) {
  const Vertex n = g.num_vertices();
  if (dist.size() != n) {
    throw std::invalid_argument("parents_from_distances: size mismatch");
  }
  if (tg.num_vertices() != n || tg.num_edges() != g.num_edges()) {
    throw std::invalid_argument("parents_from_distances: transpose mismatch");
  }
  std::vector<Vertex> parent(n, kNoVertex);
  parallel_for(0, n, [&](std::size_t vi) {
    const Vertex v = static_cast<Vertex>(vi);
    const Dist dv = dist[v];
    if (dv == kInfDist || dv == 0) return;  // unreachable or source
    // v's predecessor u needs an arc u->v: scan v's INCOMING arcs (the
    // transpose's out-arcs). Walking v's out-arcs instead would only be
    // right on symmetric graphs and returns wrong parents on directed ones.
    Vertex best = kNoVertex;
    for (EdgeId e = tg.first_arc(v); e < tg.last_arc(v); ++e) {
      const Vertex u = tg.arc_target(e);
      if (dist[u] != kInfDist && dist[u] + tg.arc_weight(e) == dv) {
        best = std::min(best, u);
      }
    }
    parent[v] = best;
  }, /*grain=*/256);
  return parent;
}

std::vector<Vertex> extract_path(const std::vector<Vertex>& parent,
                                 Vertex target) {
  std::vector<Vertex> path;
  Vertex cur = target;
  while (cur != kNoVertex) {
    path.push_back(cur);
    if (path.size() > parent.size()) {
      throw std::logic_error("extract_path: parent cycle");
    }
    cur = parent[cur];
  }
  // A lone unreachable target has parent kNoVertex and dist infinity; the
  // caller distinguishes source (path == {source}) from unreachable by
  // checking its distance. We return the walked chain reversed.
  std::reverse(path.begin(), path.end());
  return path;
}

bool validate_shortest_path_tree(const Graph& g, const std::vector<Dist>& dist,
                                 const std::vector<Vertex>& parent) {
  const Vertex n = g.num_vertices();
  if (dist.size() != n || parent.size() != n) return false;
  for (Vertex v = 0; v < n; ++v) {
    if (dist[v] == kInfDist) {
      if (parent[v] != kNoVertex) return false;
      continue;
    }
    if (dist[v] == 0) continue;  // source (or zero-weight chain head)
    const Vertex p = parent[v];
    if (p == kNoVertex || p >= n) return false;
    bool edge_ok = false;
    for (EdgeId e = g.first_arc(p); e < g.last_arc(p); ++e) {
      if (g.arc_target(e) == v && dist[p] + g.arc_weight(e) == dist[v]) {
        edge_ok = true;
        break;
      }
    }
    if (!edge_ok) return false;
  }
  return true;
}

}  // namespace rs
