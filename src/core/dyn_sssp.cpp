#include "core/dyn_sssp.hpp"

#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace rs {

void repair_distance_row(const Graph& g, const Graph& transpose,
                         Vertex source,
                         const std::vector<ArcChange>& changes,
                         std::vector<Dist>& dist, RepairStats* stats) {
  const Vertex n = g.num_vertices();
  if (dist.size() != n || source >= n || dist[source] != 0) {
    throw std::invalid_argument(
        "repair_distance_row: dist must be a full row with dist[source]==0");
  }
  if (changes.empty()) return;

  // Old weight per arc: the change list for touched arcs, the (unchanged)
  // CSR weight for everything else.
  std::unordered_map<EdgeId, Weight> old_w;
  old_w.reserve(changes.size());
  for (const ArcChange& c : changes) old_w.emplace(c.arc, c.w_old);
  const auto weight_before = [&](EdgeId e) {
    const auto it = old_w.find(e);
    return it == old_w.end() ? g.arc_weight(e) : it->second;
  };

  // Phase 1 — dirty closure. A vertex is dirty when its old label was
  // supported (possibly transitively) by an increased arc: seed at heads
  // whose label the increased arc produced, then follow support arcs
  // d[x] + w_old(x, y) == d[y] forward. Over-approximation is fine (a
  // falsely-dirty vertex is just re-derived); missing a truly dirty vertex
  // is not, so ANY supporting arc propagates. The source (label 0) can
  // never be supported (weights >= 1), and infinite labels have no
  // support, so both stay clean.
  std::vector<std::uint8_t> dirty(n, 0);
  std::vector<Vertex> dirty_list;
  for (const ArcChange& c : changes) {
    if (c.w_new <= c.w_old) continue;
    if (dirty[c.v] || c.v == source) continue;
    if (dist[c.u] == kInfDist || dist[c.v] == kInfDist) continue;
    if (dist[c.u] + c.w_old == dist[c.v]) {
      dirty[c.v] = 1;
      dirty_list.push_back(c.v);
    }
  }
  for (std::size_t qi = 0; qi < dirty_list.size(); ++qi) {
    const Vertex x = dirty_list[qi];
    for (EdgeId e = g.first_arc(x); e < g.last_arc(x); ++e) {
      const Vertex y = g.arc_target(e);
      if (dirty[y] || y == source || dist[y] == kInfDist) continue;
      if (dist[x] + weight_before(e) == dist[y]) {
        dirty[y] = 1;
        dirty_list.push_back(y);
      }
    }
  }
  if (stats != nullptr) stats->dirty = dirty_list.size();

  // Phase 2 — seeds. Dirty vertices are re-derived from their CLEAN
  // in-neighbours under the new weights (clean labels are achievable
  // upper bounds, so the derived label is too); decreased arcs relax
  // their heads directly. Both kinds enter one lazy-deletion heap.
  using HeapEntry = std::pair<Dist, Vertex>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (const Vertex x : dirty_list) {
    Dist best = kInfDist;
    for (EdgeId e = transpose.first_arc(x); e < transpose.last_arc(x); ++e) {
      const Vertex y = transpose.arc_target(e);
      if (dirty[y] || dist[y] == kInfDist) continue;
      const Dist cand = dist[y] + transpose.arc_weight(e);
      if (cand < best) best = cand;
    }
    dist[x] = best;
    if (best != kInfDist) heap.emplace(best, x);
  }
  for (const ArcChange& c : changes) {
    if (c.w_new >= c.w_old) continue;
    if (dist[c.u] == kInfDist) continue;
    const Dist cand = dist[c.u] + c.w_new;
    if (cand < dist[c.v]) {
      dist[c.v] = cand;
      heap.emplace(cand, c.v);
    }
  }

  // Phase 3 — lazy-deletion Dijkstra over the new weights. Labels only
  // ever decrease from here, so an entry whose key no longer matches its
  // label is stale and skipped. Clean vertices that were already exact
  // never enter the heap; their outgoing influence on dirty neighbours
  // was captured by the transpose seeding above.
  while (!heap.empty()) {
    const auto [d, x] = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (d != dist[x]) continue;  // stale
    for (EdgeId e = g.first_arc(x); e < g.last_arc(x); ++e) {
      if (stats != nullptr) ++stats->relaxations;
      const Vertex y = g.arc_target(e);
      const Dist nd = d + g.arc_weight(e);
      if (nd < dist[y]) {
        dist[y] = nd;
        heap.emplace(nd, y);
      }
    }
  }
}

}  // namespace rs
