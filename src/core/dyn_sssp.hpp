/// \file
/// Online correction of a shortest-path row after weight updates — the
/// serving stopgap between incremental re-preprocesses.
///
/// A full (even incremental) re-preprocess is too heavy to run per update
/// batch under live traffic. Following the self-stabilizing SSSP kernels
/// of Kanewala et al. (PAPERS.md), an exact distance row for the OLD
/// weights can be repaired into an exact row for the NEW weights with
/// work proportional to the affected region:
///
///  * weight DECREASES are plain relaxations seeded from the changed
///    arcs: d[v] <- min(d[v], d[u] + w_new) and propagate;
///  * weight INCREASES may strand vertices on labels that are no longer
///    achievable. Every vertex whose shortest path USED an increased arc
///    is found by a forward closure over the old tree's support arcs
///    (d[x] + w_old(x,y) == d[y]) — the "dirty subtree" — and re-seeded
///    from its clean in-neighbours through the cached transpose;
///  * one lazy-deletion Dijkstra pass over the seeds then settles both
///    kinds exactly.
///
/// Weight updates never change topology, so reachability is invariant:
/// infinite labels stay infinite and are skipped wholesale. The kernel is
/// exact on directed graphs, self-loops, and parallel arcs (the
/// adversarial suite pins this against a from-scratch Dijkstra).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "graph/update.hpp"

namespace rs {

/// Work counters of one repair_distance_row() call.
struct RepairStats {
  /// Vertices invalidated by the increase closure.
  std::size_t dirty = 0;
  /// Heap pops of the settling pass (stale entries included).
  std::size_t heap_pops = 0;
  /// Arc relaxations attempted by the settling pass.
  std::size_t relaxations = 0;
};

/// Repairs `dist` — an exact distance row from `source` under the OLD
/// weights — into the exact row under the NEW weights of `g`, in place.
///
/// `g` is the post-update graph, `transpose` its transposed() view (in-arc
/// access for re-seeding dirty vertices), and `changes` the per-arc deltas
/// from apply_weight_updates() — arc ids must refer to `g`'s CSR. `dist`
/// must have one entry per vertex with dist[source] == 0; throws
/// std::invalid_argument otherwise. Cost is roughly the settled region's
/// Dijkstra work plus the dirty closure — independent of n when the
/// change's influence is local.
void repair_distance_row(const Graph& g, const Graph& transpose,
                         Vertex source,
                         const std::vector<ArcChange>& changes,
                         std::vector<Dist>& dist,
                         RepairStats* stats = nullptr);

}  // namespace rs
