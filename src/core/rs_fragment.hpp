// Radius-Stepping over the fragment-partitioned substrate
// (graph/fragment.hpp): the bulk-synchronous twin of the flat engine.
//
// Each step computes the same global d_i as the flat engine, then runs
// Bellman-Ford substeps where every substep is "local-relax, then ghost
// exchange": fragments relax the arcs of their active inner vertices in
// parallel (one task per fragment), staging relaxations that cross a
// fragment boundary as (ghost vertex, tentative distance) messages in the
// per-fragment-pair MessageBuffer; after a barrier, each OWNER drains its
// incoming lanes and applies the minima to its own vertices. A vertex's
// distance / settled stamp / claim / touch record is only ever written by
// its owner fragment, so the whole substep needs no atomics beyond relaxed
// loads of foreign distances (used purely as a staging prefilter — the
// owner re-checks on apply, so stale reads cost messages, never
// correctness).
//
// Distances are BIT-IDENTICAL to the flat engine on every input: the
// substep loop converges each step to the same fixed point (by the end of
// step i every vertex with delta <= d_i holds its final distance —
// Theorem 3.1 — regardless of the relaxation schedule), both engines exit
// at the same STEP boundaries, and step-boundary distances are
// schedule-independent. Substep counts and relaxation totals may differ
// (chaotic relaxation converges at schedule-dependent speed); the step
// sequence, settled sets, and every distance do not. This holds for any
// fragment count, both partition modes, and both twins — the Par twin runs
// fragments on an OpenMP team, the strictly sequential twin loops them in
// order (no regions: it is the form the batch scheduler nests inside its
// own parallel region).
//
// Targeted early termination, kTopK goals, ALT lower-bound proofs, and the
// O(touched) reset all work unchanged: target/bound bookkeeping runs in
// the sequential coordinator sections between parallel phases (the shared
// counters are not thread-safe), and fragment f records first-touches into
// touch bucket f (single-writer per bucket).
#pragma once

#include <vector>

#include "core/query_context.hpp"
#include "core/stats.hpp"
#include "graph/fragment.hpp"

namespace rs {

/// Serving primitive: distances stay in `ctx` (read via ctx.read_dist(),
/// then finish_query() or the O(touched) reset_touched()); honors
/// ctx.has_targets() / k-goal step-boundary early termination.
void radius_stepping_fragment_partial(const FragmentedGraph& fg,
                                      Vertex source,
                                      const std::vector<Dist>& radius,
                                      QueryContext& ctx,
                                      RunStats* stats = nullptr);

/// Full-output form: distances land in `out` (resized to n), context
/// invariant restored.
void radius_stepping_fragment(const FragmentedGraph& fg, Vertex source,
                              const std::vector<Dist>& radius,
                              QueryContext& ctx, std::vector<Dist>& out,
                              RunStats* stats = nullptr);

/// Convenience form: fresh context per call.
std::vector<Dist> radius_stepping_fragment(const FragmentedGraph& fg,
                                           Vertex source,
                                           const std::vector<Dist>& radius,
                                           RunStats* stats = nullptr);

}  // namespace rs
