#include "shortcut/kradius.hpp"

#include <omp.h>

#include "baseline/dijkstra.hpp"
#include "parallel/primitives.hpp"

namespace rs {

Dist k_radius_exact(const Graph& g, Vertex source, Vertex k) {
  const ShortestPathTreeResult tree = dijkstra_min_hop_tree(g, source);
  Dist best = kInfDist;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (tree.dist[v] == kInfDist || v == source) continue;
    if (tree.hops[v] > k && tree.dist[v] < best) best = tree.dist[v];
  }
  return best;
}

std::vector<Dist> all_k_radii_exact(const Graph& g, Vertex k) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> out(n, kInfDist);
#pragma omp parallel for schedule(dynamic, 4) num_threads(num_workers())
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    out[static_cast<std::size_t>(v)] =
        k_radius_exact(g, static_cast<Vertex>(v), k);
  }
  return out;
}

bool is_k_rho_graph(const Graph& g, const std::vector<Dist>& radius, Vertex k) {
  const std::vector<Dist> kr = all_k_radii_exact(g, k);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (radius[v] > kr[v]) return false;
  }
  return true;
}

}  // namespace rs
