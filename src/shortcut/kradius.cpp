#include "shortcut/kradius.hpp"

#include <limits>

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs {

Dist k_radius_exact(const Graph& g, Vertex source, Vertex k,
                    PreprocessContext& ctx) {
  const Vertex n = g.num_vertices();
  if (n == 0) return kInfDist;
  // An unrestricted, whole-graph ball search settles every reachable
  // vertex in (dist, hops) order — exactly the min-hop shortest-path tree
  // dijkstra_min_hop_tree builds, but on the context's reusable scratch.
  // The edge limit must cover every arc of every vertex (so adjacency
  // order doesn't matter): use the max Vertex, not n — a multigraph vertex
  // can carry more than n parallel arcs.
  const BallOptions opts{n, std::numeric_limits<Vertex>::max(), true};
  const Ball& ball = ctx.ball(g, source, opts);
  Dist best = kInfDist;
  for (const BallVertex& bv : ball.vertices) {
    if (bv.hops > k && bv.dist < best) best = bv.dist;
  }
  return best;
}

Dist k_radius_exact(const Graph& g, Vertex source, Vertex k) {
  PreprocessContext ctx(g.num_vertices());
  return k_radius_exact(g, source, k, ctx);
}

std::vector<Dist> all_k_radii_exact(const Graph& g, Vertex k,
                                    PreprocessPool& pool) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> out(n, kInfDist);
  const int nw = num_workers();
  pool.ensure(static_cast<std::size_t>(nw));
#pragma omp parallel num_threads(nw)
  {
    PreprocessContext& ctx =
        pool.at(static_cast<std::size_t>(omp_get_thread_num()));
    ctx.reserve(n);
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      out[static_cast<std::size_t>(v)] =
          k_radius_exact(g, static_cast<Vertex>(v), k, ctx);
    }
  }
  return out;
}

std::vector<Dist> all_k_radii_exact(const Graph& g, Vertex k) {
  PreprocessPool pool;
  return all_k_radii_exact(g, k, pool);
}

bool is_k_rho_graph(const Graph& g, const std::vector<Dist>& radius, Vertex k) {
  const std::vector<Dist> kr = all_k_radii_exact(g, k);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (radius[v] > kr[v]) return false;
  }
  return true;
}

}  // namespace rs
