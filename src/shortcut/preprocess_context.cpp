#include "shortcut/preprocess_context.hpp"

#include <atomic>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"

namespace rs {

PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options,
                            PreprocessPool& pool) {
  if (options.rho == 0) throw std::invalid_argument("preprocess: rho >= 1");
  if (options.k == 0) throw std::invalid_argument("preprocess: k >= 1");
  const Vertex n = g.num_vertices();
  const Graph gw = g.with_weight_sorted_adjacency();

  PreprocessResult result;
  result.options = options;
  result.radius.assign(n, 0);

  const int nw = num_workers();
  pool.ensure(static_cast<std::size_t>(nw));
  // Clear every slot's staging (capacity kept), not just the nw used this
  // run: a pool warmed at a higher worker count must not leak stale edges.
  for (std::size_t w = 0; w < pool.size(); ++w) pool.at(w).staging().clear();

  const BallOptions ball_opts{options.rho, 0, options.settle_ties};
  // Exceptions may not escape an OpenMP region: record overflow in a flag
  // and throw after the join instead of aborting the process.
  std::atomic<bool> overflow{false};
#pragma omp parallel num_threads(nw)
  {
    PreprocessContext& ctx =
        pool.at(static_cast<std::size_t>(omp_get_thread_num()));
    ctx.reserve(n);
    auto& mine = ctx.staging();
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t sv = 0; sv < static_cast<std::int64_t>(n); ++sv) {
      const Vertex s = static_cast<Vertex>(sv);
      const Ball& ball = ctx.ball(gw, s, ball_opts);
      result.radius[s] = ball.radius;
      for (const std::uint32_t idx :
           ctx.select(ball, options.k, options.heuristic)) {
        const BallVertex& bv = ball.vertices[idx];
        if (bv.dist > std::numeric_limits<Weight>::max()) {
          overflow.store(true, std::memory_order_relaxed);
          continue;
        }
        mine.push_back(EdgeTriple{s, bv.v, static_cast<Weight>(bv.dist)});
      }
    }
  }
  if (overflow.load()) {
    for (std::size_t w = 0; w < pool.size(); ++w) pool.at(w).staging().clear();
    throw std::overflow_error("preprocess: shortcut weight overflow");
  }

  std::vector<EdgeTriple> all;
  std::size_t total = 0;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    total += pool.at(w).staging().size();
  }
  all.reserve(total);
  for (std::size_t w = 0; w < pool.size(); ++w) {
    auto& mine = pool.at(w).staging();
    all.insert(all.end(), mine.begin(), mine.end());
    mine.clear();  // keeps capacity: the pool stays warm for the next run
  }

  const EdgeId before = g.num_undirected_edges();
  result.graph = (options.heuristic == ShortcutHeuristic::kNone)
                     ? g
                     : merge_edges(g, std::move(all));
  result.added_edges = result.graph.num_undirected_edges() - before;
  result.added_factor =
      before == 0 ? 0.0
                  : static_cast<double>(result.added_edges) /
                        static_cast<double>(before);
  return result;
}

std::vector<Dist> all_radii(const Graph& g, Vertex rho) {
  PreprocessPool pool;
  return all_radii(g, rho, pool);
}

std::vector<Dist> all_radii(const Graph& g, Vertex rho, PreprocessPool& pool) {
  const Graph gw = g.with_weight_sorted_adjacency();
  const Vertex n = g.num_vertices();
  std::vector<Dist> radius(n, 0);
  // Radii only: the tie class never affects r_rho, so stop at the rho-th
  // pop (far cheaper on unweighted hub graphs than the full §5.1 protocol).
  const BallOptions opts{rho, 0, /*settle_ties=*/false};
  const int nw = num_workers();
  pool.ensure(static_cast<std::size_t>(nw));
#pragma omp parallel num_threads(nw)
  {
    PreprocessContext& ctx =
        pool.at(static_cast<std::size_t>(omp_get_thread_num()));
    ctx.reserve(n);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      radius[static_cast<std::size_t>(v)] =
          ctx.ball(gw, static_cast<Vertex>(v), opts).radius;
    }
  }
  return radius;
}

}  // namespace rs
