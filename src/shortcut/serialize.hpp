// Binary serialization of preprocessing results. Preprocessing costs
// O(m log n + n rho^2) work; persisting it lets a service pay that once and
// reload in O(n + m).
//
// Format (little-endian, versioned):
//   magic "RSPP", u32 version,
//   u32 rho, u32 k, u8 heuristic, u8 settle_ties,
//   u64 added_edges, f64 added_factor,
//   u32 n, u64 m_arcs,
//   offsets[n+1] (u64), targets[m] (u32), weights[m] (u32),
//   radius[n] (u64)
#pragma once

#include <iosfwd>
#include <string>

#include "shortcut/shortcut.hpp"

namespace rs {

void save_preprocessing(const PreprocessResult& pre, std::ostream& out);
void save_preprocessing_file(const PreprocessResult& pre,
                             const std::string& path);

/// Throws std::runtime_error on malformed or version-mismatched input.
PreprocessResult load_preprocessing(std::istream& in);
PreprocessResult load_preprocessing_file(const std::string& path);

}  // namespace rs
