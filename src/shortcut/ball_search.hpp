// Truncated Dijkstra "ball search": finds the rho-nearest neighbourhood of
// a vertex, the building block of all preprocessing (Lemma 4.2).
//
// Two details follow the paper exactly:
//  * only the lightest `edge_limit` (default rho) arcs of each visited
//    vertex are considered — graphs must have weight-sorted adjacency
//    (Graph::with_weight_sorted_adjacency);
//  * the search continues through ties: it settles *every* vertex at
//    distance r_rho, not exactly rho of them (Section 5.1), which makes the
//    result deterministic and slightly pessimistic.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "pq/binary_heap.hpp"

namespace rs {

struct BallVertex {
  Vertex v = kNoVertex;
  Dist dist = 0;
  Vertex hops = 0;          // hop length of the min-hop shortest path
  Vertex parent = kNoVertex;  // predecessor on that path (in-ball)
};

struct Ball {
  Vertex source = kNoVertex;
  /// Settled vertices in nondecreasing (dist, hops) order; entry 0 is the
  /// source itself.
  std::vector<BallVertex> vertices;
  /// r_rho(source): distance of the rho-th closest vertex (counting the
  /// source as the first). 0 when rho <= 1.
  Dist radius = 0;
  /// Arcs examined — the paper's O(rho^2) work term (Figure 2 probes this).
  EdgeId arcs_scanned = 0;
};

struct BallOptions {
  Vertex rho = 1;
  /// Arcs considered per vertex (0 = use rho) — the lightest-rho-edges
  /// restriction of Lemma 4.2.
  Vertex edge_limit = 0;
  /// true  = settle the whole distance class of the rho-th vertex
  ///         (the paper's §5.1 protocol; deterministic, pessimistic);
  /// false = stop at exactly rho settled vertices (the paper's footnote
  ///         variant; same radii, same experimental conclusions, and much
  ///         cheaper on unweighted hub graphs where tie classes are huge).
  /// The reported `radius` is identical either way.
  bool settle_ties = true;
};

/// Reusable per-thread state so that n parallel ball searches don't pay an
/// O(n) reset each. All arrays are lazily stamped; capacity only grows, so
/// one workspace serves graphs of different sizes back to back (stale
/// stamps from a larger graph can never alias — the epoch is monotone).
class BallSearchWorkspace {
 public:
  BallSearchWorkspace() = default;
  explicit BallSearchWorkspace(Vertex n) { reserve(n); }

  /// Grows every per-vertex array to cover `n` vertices; never shrinks.
  void reserve(Vertex n);

  /// Largest vertex count the workspace is warmed up for.
  Vertex capacity() const { return static_cast<Vertex>(stamp_.size()); }

  /// Computes the rho-ball of `source` into `out`, reusing its capacity —
  /// a warm workspace + ball pair performs zero heap allocations. `g` must
  /// have weight-sorted adjacency (any adjacency order is fine when
  /// opts.edge_limit covers every arc).
  void run(const Graph& g, Vertex source, const BallOptions& opts, Ball& out);

  /// Value-returning form (allocates the ball's vertex list).
  Ball run(const Graph& g, Vertex source, const BallOptions& opts) {
    Ball ball;
    run(g, source, opts, ball);
    return ball;
  }

  /// Convenience overload with default options.
  Ball run(const Graph& g, Vertex source, Vertex rho, Vertex edge_limit = 0) {
    return run(g, source, BallOptions{rho, edge_limit, true});
  }

 private:
  struct Key {
    Dist d;
    Vertex h;
    bool operator<(const Key& o) const { return d != o.d ? d < o.d : h < o.h; }
    bool operator<=(const Key& o) const { return !(o < *this); }
    bool operator>=(const Key& o) const { return !(*this < o); }
  };

  bool fresh(Vertex v) const { return stamp_[v] != epoch_; }

  std::vector<Dist> dist_;
  std::vector<Vertex> hops_;
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  IndexedHeap<Key> heap_{0};
};

/// One-shot convenience wrapper (allocates a workspace internally).
Ball ball_search(const Graph& g, Vertex source, Vertex rho,
                 Vertex edge_limit = 0);

/// rho-nearest radii r(v) = r_rho(v) for all vertices, in parallel.
/// `g` need not be weight-sorted (a sorted copy is made internally).
std::vector<Dist> all_radii(const Graph& g, Vertex rho);

/// Checks Theorem 3.3's precondition |B(v, radius[v])| >= rho for every
/// vertex (by bounded Dijkstra, unrestricted edges). Users supplying custom
/// radii can verify the step bound applies; r_rho radii always pass.
bool radii_enclose_rho(const Graph& g, const std::vector<Dist>& radius,
                       Vertex rho);

}  // namespace rs
