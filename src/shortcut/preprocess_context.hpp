// PreprocessContext: reusable per-worker scratch state for the
// preprocessing pipeline — the shortcut-construction mirror of the serving
// path's QueryContext.
//
// Every preprocessing pass (k-radius computation, limited ball search,
// shortcut construction, parameter tuning) runs the same per-ball inner
// loop: a truncated Dijkstra into a ball, a selection pass over the ball's
// shortest-path tree, and a staging append of the chosen shortcut edges.
// Allocating that scratch per ball is what used to dominate the OpenMP
// loops (one vertex-list + one hash map + DP tables per ball). A
// PreprocessContext owns all of it once:
//
//  * the ball-search Dijkstra heap and the visited/settled stamp arrays
//    live in an embedded BallSearchWorkspace (lazily stamped — starting a
//    ball is an epoch bump, not an O(n) reset);
//  * the ball's vertex list, the selection scratch (tree CSR, DP tables,
//    global->local map), and the shortcut-edge staging buffer keep their
//    capacity across balls AND across graphs;
//  * capacity only grows (reserve() never shrinks), and every stamp family
//    is monotone, so one context can preprocess graphs of different sizes
//    back to back without stale-stamp bugs.
//
// A context is single-owner state: one ball at a time, no internal
// locking. Parallel preprocessing hands each OpenMP worker its own context
// from a WorkerPool<PreprocessContext> (see preprocess() below) — the same
// shape as the batch query scheduler. Steady state (the second run on a
// warm pool) performs zero heap allocations per ball, pinned by
// tests/test_alloc_free.cpp.
#pragma once

#include <vector>

#include "parallel/context_pool.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

class PreprocessContext {
 public:
  PreprocessContext() = default;
  explicit PreprocessContext(Vertex n) { reserve(n); }

  PreprocessContext(const PreprocessContext&) = delete;
  PreprocessContext& operator=(const PreprocessContext&) = delete;
  PreprocessContext(PreprocessContext&&) = default;
  PreprocessContext& operator=(PreprocessContext&&) = default;

  /// Grows every per-vertex buffer to cover `n` vertices; never shrinks.
  /// Called implicitly by ball() — explicit calls just pre-warm.
  void reserve(Vertex n) {
    workspace_.reserve(n);
    select_.reserve(n);
  }

  /// Largest vertex count this context is warmed up for.
  Vertex capacity() const { return workspace_.capacity(); }

  /// Runs the truncated-Dijkstra ball search for `source` into the
  /// context's reusable ball. The reference stays valid until the next
  /// ball() call on this context. `g` must have weight-sorted adjacency
  /// unless opts.edge_limit covers every arc.
  const Ball& ball(const Graph& g, Vertex source, const BallOptions& opts) {
    workspace_.run(g, source, opts, ball_);
    return ball_;
  }

  /// Shortcut selection over `ball` with pooled scratch; returns the
  /// reusable index list (valid until the next select() call).
  const std::vector<std::uint32_t>& select(const Ball& ball, Vertex k,
                                           ShortcutHeuristic heuristic) {
    return select_shortcuts(ball, k, heuristic, select_);
  }

  /// Per-worker shortcut-edge staging buffer. preprocess() clears it
  /// (keeping capacity) at the start of a run and drains it at the end.
  std::vector<EdgeTriple>& staging() { return staging_; }

  /// Direct access to the embedded ball-search workspace (heap + stamp
  /// arrays) for callers that manage their own Ball storage.
  BallSearchWorkspace& workspace() { return workspace_; }

 private:
  BallSearchWorkspace workspace_;
  Ball ball_;
  ShortcutSelectScratch select_;
  std::vector<EdgeTriple> staging_;
};

/// Per-worker context pool, mirroring the query-side
/// WorkerPool<QueryContext>. ensure() before the parallel region; inside
/// it each worker touches only its own slot.
using PreprocessPool = WorkerPool<PreprocessContext>;

/// Pooled preprocess(): identical output to the plain overload, but all
/// per-ball scratch is drawn from `pool` (grown to num_workers() slots).
/// The second run on a warm pool performs zero heap allocations per ball.
PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options,
                            PreprocessPool& pool);

/// Pooled all_radii(): rho-nearest radii with ball scratch from `pool`.
std::vector<Dist> all_radii(const Graph& g, Vertex rho, PreprocessPool& pool);

}  // namespace rs
