// Exact k-radius computation — the O(nm)-work quantity the paper avoids
// computing directly (Section 4). Used as the test oracle validating that
// preprocessing really produces (k, rho)-graphs. Small graphs only.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "shortcut/preprocess_context.hpp"

namespace rs {

/// Exact r̄_k(source): the closest distance to `source` among vertices whose
/// min-hop shortest path uses more than k edges (Definition 2); kInfDist if
/// no such vertex exists.
Dist k_radius_exact(const Graph& g, Vertex source, Vertex k);

/// Context-reusing form: the full min-hop search runs on `ctx`'s ball
/// scratch (an unrestricted ball search IS the min-hop Dijkstra tree), so
/// n-source sweeps perform no per-source allocations once warm.
Dist k_radius_exact(const Graph& g, Vertex source, Vertex k,
                    PreprocessContext& ctx);

/// r̄_k for all vertices (n single-source runs, parallelized).
std::vector<Dist> all_k_radii_exact(const Graph& g, Vertex k);

/// Pooled form: per-worker search state drawn from `pool`.
std::vector<Dist> all_k_radii_exact(const Graph& g, Vertex k,
                                    PreprocessPool& pool);

/// Verifies the (k, rho)-graph property (Definition 4): r_rho(v) <= r̄_k(v)
/// for every v. `radius` must hold r_rho values measured on `g`.
bool is_k_rho_graph(const Graph& g, const std::vector<Dist>& radius, Vertex k);

}  // namespace rs
