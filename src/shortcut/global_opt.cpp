#include "shortcut/global_opt.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"
#include "shortcut/preprocess_context.hpp"

namespace rs {

namespace {

/// Committed shortcut edges, addressable from both endpoints.
class ExtraEdges {
 public:
  explicit ExtraEdges(Vertex n) : adj_(n) {}

  void add(Vertex u, Vertex v, Weight w) {
    adj_[u].push_back({v, w});
    adj_[v].push_back({u, w});
    triples_.push_back({u, v, w});
  }

  const std::vector<std::pair<Vertex, Weight>>& of(Vertex v) const {
    return adj_[v];
  }

  std::vector<EdgeTriple> take_triples() { return std::move(triples_); }
  std::size_t count() const { return triples_.size(); }

 private:
  std::vector<std::vector<std::pair<Vertex, Weight>>> adj_;
  std::vector<EdgeTriple> triples_;
};

}  // namespace

PreprocessResult preprocess_global(const Graph& g,
                                   const PreprocessOptions& options) {
  if (options.rho == 0) throw std::invalid_argument("preprocess_global: rho");
  if (options.k == 0) throw std::invalid_argument("preprocess_global: k");
  const Vertex n = g.num_vertices();
  const Vertex k = options.k;
  const Graph gw = g.with_weight_sorted_adjacency();

  PreprocessResult result;
  result.options = options;
  result.radius.assign(n, 0);

  ExtraEdges extra(n);
  PreprocessContext ctx(n);
  const BallOptions ball_opts{options.rho, 0, options.settle_ties};

  // Scratch: global vertex -> position in the current ball (stamped), plus
  // the per-ball hop/pred arrays — all hoisted so the source loop performs
  // no per-ball allocations beyond the committed-edge growth.
  std::vector<std::uint32_t> pos(n, 0);
  std::vector<std::uint32_t> pos_stamp(n, 0);
  std::uint32_t stamp = 0;
  std::vector<Vertex> hop;
  std::vector<std::uint32_t> pred;

  for (Vertex s = 0; s < n; ++s) {
    const Ball& ball = ctx.ball(gw, s, ball_opts);
    result.radius[s] = ball.radius;
    const std::size_t b = ball.vertices.size();
    ++stamp;
    for (std::size_t i = 0; i < b; ++i) {
      pos[ball.vertices[i].v] = static_cast<std::uint32_t>(i);
      pos_stamp[ball.vertices[i].v] = stamp;
    }
    auto in_ball = [&](Vertex v) { return pos_stamp[v] == stamp; };

    // Hop depth of each member along shortest paths, using original AND
    // committed edges. Members are in settle order, so every shortest-path
    // predecessor (strictly smaller distance; weights >= 1) is already
    // labelled. hop[i] also tracks the argmin predecessor for the cover
    // rule's climb.
    hop.assign(b, 0);
    pred.assign(b, 0);
    for (std::size_t i = 1; i < b; ++i) {
      const BallVertex& bv = ball.vertices[i];
      Vertex best_hop = std::numeric_limits<Vertex>::max();
      std::uint32_t best_pred = 0;
      auto consider = [&](Vertex u, Weight w) {
        if (!in_ball(u)) return;
        const std::uint32_t pi = pos[u];
        if (pi >= i) return;  // only settled-earlier members are final
        if (ball.vertices[pi].dist + w != bv.dist) return;
        if (hop[pi] + 1 < best_hop) {
          best_hop = hop[pi] + 1;
          best_pred = pi;
        }
      };
      for (EdgeId e = g.first_arc(bv.v); e < g.last_arc(bv.v); ++e) {
        consider(g.arc_target(e), g.arc_weight(e));
      }
      for (const auto& [u, w] : extra.of(bv.v)) consider(u, w);

      const bool orphan = best_hop == std::numeric_limits<Vertex>::max();
      // `orphan` is possible only under the exactly-rho tie variant, where
      // a same-distance predecessor may have been cut from the ball.
      hop[i] = orphan ? k + 1 : best_hop;
      pred[i] = best_pred;

      if (hop[i] > k) {
        // Cover rule: shortcut the ancestor at depth k on the min-hop
        // chain, resetting it to depth 1 (this vertex then sits at depth
        // 2, and the whole sibling fan below that ancestor is fixed for
        // free). For k == 1 — or when no usable chain exists — depth 2 is
        // already too deep, so shortcut the vertex itself.
        std::uint32_t a = static_cast<std::uint32_t>(i);
        if (k > 1 && !orphan) {
          a = pred[i];  // hop[pred] == hop[i] - 1 == k exactly
        }
        const BallVertex& target = ball.vertices[a];
        if (target.dist > std::numeric_limits<Weight>::max()) {
          throw std::overflow_error("preprocess_global: weight overflow");
        }
        extra.add(s, target.v, static_cast<Weight>(target.dist));
        hop[a] = 1;
        if (a != static_cast<std::uint32_t>(i)) hop[i] = 2;
      }
    }
  }

  const EdgeId before = g.num_undirected_edges();
  const std::size_t raw = extra.count();
  result.graph = merge_edges(g, extra.take_triples());
  result.added_edges = result.graph.num_undirected_edges() - before;
  result.added_factor =
      before == 0 ? 0.0
                  : static_cast<double>(raw) / static_cast<double>(before);
  return result;
}

}  // namespace rs
