// Global shortcut selection — a heuristic answer to the paper's open
// problem ("we leave open the question of finding a globally-optimal way to
// add shortcut edges for k > 1", Section 7).
//
// The per-tree heuristics (Section 4.2) optimize every source's ball in
// isolation, so two overlapping balls pay for the same coverage twice. This
// pass processes sources sequentially and re-derives each ball's hop depths
// against ALL edges committed so far — original edges, other sources'
// shortcuts, and its own — adding a shortcut only when a member would
// otherwise exceed k hops. The cover rule shortcuts the violating vertex's
// min-hop predecessor (depth k), which fixes the whole sibling fan at once
// (optimal on paths and brooms, matching the tree DP there).
//
// Soundness: edges are only ever added, so a ball validated at commit time
// stays valid in the final graph; the result is a (k, rho)-graph exactly
// like preprocess()'s.
#pragma once

#include "shortcut/shortcut.hpp"

namespace rs {

/// Like preprocess() with kGreedy/kDP, but globally shared: typically adds
/// noticeably fewer edges on graphs with overlapping balls. Sequential over
/// sources (the sharing is inherently order-dependent), deterministic.
PreprocessResult preprocess_global(const Graph& g,
                                   const PreprocessOptions& options);

}  // namespace rs
