#include "shortcut/tuning.hpp"

#include <algorithm>

#include <omp.h>

#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"
#include "shortcut/ball_search.hpp"

namespace rs {

double estimate_added_factor(const Graph& g, Vertex rho, Vertex k,
                             ShortcutHeuristic heuristic, Vertex sample_size,
                             std::uint64_t seed, PreprocessPool& pool) {
  if (heuristic == ShortcutHeuristic::kNone) return 0.0;
  const Vertex n = g.num_vertices();
  if (n == 0 || g.num_undirected_edges() == 0) return 0.0;
  sample_size = std::min<Vertex>(sample_size, n);
  const Graph gw = g.with_weight_sorted_adjacency();
  const SplitRng rng(seed);

  const int nw = num_workers();
  pool.ensure(static_cast<std::size_t>(nw));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nw), 0);
  const BallOptions opts{rho, 0, /*settle_ties=*/false};
#pragma omp parallel num_threads(nw)
  {
    PreprocessContext& ctx =
        pool.at(static_cast<std::size_t>(omp_get_thread_num()));
    ctx.reserve(n);
    std::uint64_t mine = 0;
#pragma omp for schedule(dynamic, 4)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(sample_size); ++i) {
      const Vertex src = static_cast<Vertex>(
          rng.bounded(0, static_cast<std::uint64_t>(i), n));
      const Ball& ball = ctx.ball(gw, src, opts);
      mine += ctx.select(ball, k, heuristic).size();
    }
    counts[static_cast<std::size_t>(omp_get_thread_num())] = mine;
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  const double per_source = static_cast<double>(total) / sample_size;
  return per_source * static_cast<double>(n) /
         static_cast<double>(g.num_undirected_edges());
}

double estimate_added_factor(const Graph& g, Vertex rho, Vertex k,
                             ShortcutHeuristic heuristic, Vertex sample_size,
                             std::uint64_t seed) {
  PreprocessPool pool;
  return estimate_added_factor(g, rho, k, heuristic, sample_size, seed, pool);
}

TuningAdvice choose_parameters(const Graph& g, double budget_factor, Vertex k,
                               ShortcutHeuristic heuristic, Vertex max_rho,
                               Vertex sample_size, std::uint64_t seed) {
  // One pool across the whole rho ladder: every rung after the first runs
  // its sampled balls allocation-free.
  PreprocessPool pool;
  TuningAdvice advice;
  advice.k = k;
  advice.heuristic = heuristic;
  advice.rho = 8;
  advice.estimated_factor = estimate_added_factor(g, advice.rho, k, heuristic,
                                                  sample_size, seed, pool);
  for (Vertex rho = 16; rho <= max_rho && rho < g.num_vertices(); rho *= 2) {
    const double f =
        estimate_added_factor(g, rho, k, heuristic, sample_size, seed, pool);
    if (f > budget_factor) break;
    advice.rho = rho;
    advice.estimated_factor = f;
  }
  return advice;
}

}  // namespace rs
