// Parameter selection, automating Section 5.4's guidance: "the total number
// of edges should be around O(m); k = 3 or 4 works reasonably well; rho in
// 50-100 yields the best bang for the buck; raise rho when preprocessing is
// amortized over many sources."
//
// The added-edge cost of a (k, rho) choice is estimated by running the
// shortcut heuristic on a random sample of ball trees — O(sample * rho^2)
// instead of the full O(n rho^2) — then rho is chosen as the largest rung
// of a geometric ladder whose estimate fits the caller's edge budget.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "shortcut/preprocess_context.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

/// Estimated added-edge factor (added / m) for preprocessing `g` with
/// (rho, k, heuristic), from `sample_size` sampled sources. Ignores global
/// deduplication, so it slightly overestimates — a safe direction for
/// budgeting.
double estimate_added_factor(const Graph& g, Vertex rho, Vertex k,
                             ShortcutHeuristic heuristic,
                             Vertex sample_size = 64,
                             std::uint64_t seed = 7);

/// Pooled form: ball + selection scratch drawn from `pool`, so repeated
/// estimates (the tuning ladder, sweeps) run allocation-free per ball once
/// the pool is warm.
double estimate_added_factor(const Graph& g, Vertex rho, Vertex k,
                             ShortcutHeuristic heuristic, Vertex sample_size,
                             std::uint64_t seed, PreprocessPool& pool);

struct TuningAdvice {
  Vertex rho = 0;
  Vertex k = 0;
  ShortcutHeuristic heuristic = ShortcutHeuristic::kDP;
  /// Estimated added-edge factor at the chosen parameters.
  double estimated_factor = 0.0;
};

/// Largest rho from {8, 16, 32, ..., max_rho} whose estimated added-edge
/// factor stays within `budget_factor` (the paper suggests ~1.0, i.e. at
/// most doubling the graph). k defaults to the paper's recommendation.
TuningAdvice choose_parameters(
    const Graph& g, double budget_factor = 1.0, Vertex k = 3,
    ShortcutHeuristic heuristic = ShortcutHeuristic::kDP,
    Vertex max_rho = 1024, Vertex sample_size = 64, std::uint64_t seed = 7);

}  // namespace rs
