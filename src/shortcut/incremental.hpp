/// \file
/// Incremental re-preprocessing after weight updates (dynamic graphs).
///
/// A cold preprocess() runs one truncated-Dijkstra ball per vertex. After
/// a small weight-update batch almost all of those balls are unchanged:
/// the ball search from s only ever scans out-arcs of vertices it has
/// SETTLED, so ball(s) can change only when some changed arc's TAIL is
/// among s's settled vertices. IncrementalPreprocessor keeps, per ball,
/// the settled member list plus the chosen shortcut triples, and an
/// inverted index member_of_[v] = { s : v settled in ball(s) }. A batch
/// then recomputes exactly the dirty balls — on the warm per-worker
/// context pool — and splices the reused balls' shortcuts with the fresh
/// ones into a new PreprocessResult.
///
/// The splice is BIT-IDENTICAL to a cold rebuild on the updated graph:
/// build_graph() sorts all edge triples by (u, v, w) and dedups keeping
/// the minimum per (u, v), so its output is insensitive to the order the
/// triples are concatenated in, and the per-ball triples themselves are
/// recomputed with the same BallOptions/heuristic as the cold path. The
/// churn suite (tests/test_incremental.cpp) pins result() == cold
/// preprocess() with Graph::operator== after randomized batches.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "graph/update.hpp"
#include "shortcut/preprocess_context.hpp"
#include "shortcut/shortcut.hpp"

namespace rs {

/// Work accounting for one IncrementalPreprocessor::apply() call.
struct IncrementalUpdateStats {
  /// Directed arcs whose weight actually changed (no-ops excluded).
  std::size_t updated_arcs = 0;
  /// Balls recomputed — the ones whose settled set contained a changed
  /// arc's tail.
  std::size_t dirty_balls = 0;
  /// Total balls (= vertices); dirty_balls / total_balls is the fraction
  /// of cold-rebuild work the batch actually cost.
  std::size_t total_balls = 0;
};

/// Maintains a PreprocessResult across weight-update batches by
/// recomputing only the balls a batch invalidates (see file comment).
///
/// Typical lifecycle: construct once (cost of a cold preprocess), then
/// alternate apply() — cheap for small batches — and result() — splices a
/// fresh PreprocessResult for SsspEngine::next_epoch(). The per-worker
/// scratch pool stays warm across batches, so steady-state apply() does
/// no per-ball allocation.
class IncrementalPreprocessor {
 public:
  /// Cold-builds all balls for `g` under `options`. Throws
  /// std::invalid_argument for rho or k < 1 and std::overflow_error when
  /// a shortcut weight exceeds the Weight range (same contract as
  /// preprocess()).
  IncrementalPreprocessor(const Graph& g, const PreprocessOptions& options);

  IncrementalPreprocessor(const IncrementalPreprocessor&) = delete;
  IncrementalPreprocessor& operator=(const IncrementalPreprocessor&) = delete;

  /// Applies a weight-update batch: re-weights the graph
  /// (apply_weight_updates()), recomputes every dirty ball in parallel,
  /// and commits. Strongly exception-safe: on throw
  /// (std::invalid_argument from a bad update, std::overflow_error from
  /// shortcut overflow) the preprocessor still describes the PRE-batch
  /// graph. A no-op batch (all updates re-state current weights) dirties
  /// nothing.
  IncrementalUpdateStats apply(const std::vector<WeightUpdate>& updates);

  /// Counts the balls a batch WOULD dirty, without applying it: every ball
  /// whose settled set contains an updated edge's endpoint (an undirected
  /// update re-weights both directions, so both endpoints are arc tails).
  /// Upper bound on apply()'s dirty_balls — no-op updates are not filtered
  /// out here because that would need the arc lookup apply() does. O(sum
  /// of member_of_ lists touched); never throws for in-range vertices.
  /// Drives the dirty-fraction flush trigger in serve::DynamicSsspService.
  std::size_t count_dirty(const std::vector<WeightUpdate>& updates) const;

  /// Splices the current balls into a full PreprocessResult for the
  /// current graph — bit-identical to cold preprocess(graph(), options())
  /// (graph, radius, added_edges, added_factor all match).
  PreprocessResult result() const;

  /// The current (post-all-applied-batches) base graph.
  const Graph& graph() const { return graph_; }

  /// The options every ball is computed under.
  const PreprocessOptions& options() const { return options_; }

  /// Current r_rho radii, maintained incrementally.
  const std::vector<Dist>& radius() const { return radius_; }

 private:
  /// Recomputes balls for `sources` on `base` into the per-source slots of
  /// the out arrays (all sized sources.size()). Parallel; throws
  /// std::overflow_error on shortcut weight overflow (out arrays then
  /// undefined, nothing committed).
  void compute_balls(const Graph& base, const std::vector<Vertex>& sources,
                     std::vector<std::vector<Vertex>>& out_members,
                     std::vector<std::vector<EdgeTriple>>& out_shortcuts,
                     std::vector<Dist>& out_radius);

  Graph graph_;
  PreprocessOptions options_;
  PreprocessPool pool_;
  /// r_rho(s) per ball source.
  std::vector<Dist> radius_;
  /// Settled vertices of each ball, in settled order ([0] is the source).
  std::vector<std::vector<Vertex>> members_;
  /// Shortcut triples each ball contributes (empty under kNone).
  std::vector<std::vector<EdgeTriple>> shortcuts_;
  /// Inverted index: member_of_[v] = ball sources whose settled set
  /// contains v. Drives dirty detection from changed-arc tails.
  std::vector<std::vector<Vertex>> member_of_;
};

}  // namespace rs
