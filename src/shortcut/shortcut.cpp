#include "shortcut/shortcut.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include <omp.h>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"

namespace rs {

namespace {

/// Child adjacency of a ball's shortest-path tree, in local ball indices
/// (index into ball.vertices; 0 is the source/root). Settle order is a
/// valid topological order: parents always precede children.
struct BallTree {
  std::vector<std::uint32_t> parent;         // local parent index (root: 0 -> itself)
  std::vector<std::uint32_t> child_offsets;  // CSR over children
  std::vector<std::uint32_t> children;
};

BallTree build_tree(const Ball& ball) {
  const std::size_t b = ball.vertices.size();
  BallTree tree;
  tree.parent.assign(b, 0);
  std::unordered_map<Vertex, std::uint32_t> local;
  local.reserve(2 * b);
  for (std::size_t i = 0; i < b; ++i) local[ball.vertices[i].v] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> child_count(b, 0);
  for (std::size_t i = 1; i < b; ++i) {
    const auto it = local.find(ball.vertices[i].parent);
    // Parents of settled vertices are themselves settled ball members.
    tree.parent[i] = it->second;
    ++child_count[it->second];
  }
  tree.child_offsets.assign(b + 1, 0);
  for (std::size_t i = 0; i < b; ++i) {
    tree.child_offsets[i + 1] = tree.child_offsets[i] + child_count[i];
  }
  tree.children.assign(ball.vertices.empty() ? 0 : tree.child_offsets[b], 0);
  std::vector<std::uint32_t> cursor(tree.child_offsets.begin(),
                                    tree.child_offsets.end() - 1);
  for (std::size_t i = 1; i < b; ++i) {
    tree.children[cursor[tree.parent[i]]++] = static_cast<std::uint32_t>(i);
  }
  return tree;
}

std::vector<std::uint32_t> select_full(const Ball& ball) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    if (ball.vertices[i].hops > 1) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> select_greedy(const Ball& ball, Vertex k) {
  // Shortcut tree depths k+1, 2k+1, 3k+1, ... — every node then lies within
  // k hops: a node at depth ki+1+j (0 <= j < k) reaches the shortcut at
  // depth ki+1 in j extra hops after the 1-hop shortcut.
  std::vector<std::uint32_t> out;
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    const Vertex h = ball.vertices[i].hops;
    if (h > k && (h - 1) % k == 0) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> select_dp(const Ball& ball, Vertex k) {
  const std::size_t b = ball.vertices.size();
  if (b <= 1) return {};
  const BallTree tree = build_tree(ball);

  // F[i * (k+1) + t] = min edges into the subtree of local node i so that
  // every node there sits within k hops of the root, given parent(i) is t
  // hops from the root (paper §4.2.2). S[i] = cost when i is shortcut:
  // 1 + sum_child F(child, 1).
  const std::size_t kk = static_cast<std::size_t>(k) + 1;
  std::vector<std::uint32_t> F(b * kk, 0);
  std::vector<std::uint32_t> S(b, 0);

  // Bottom-up: reverse settle order visits children before parents.
  for (std::size_t i = b; i-- > 1;) {
    std::uint32_t shortcut_cost = 1;
    for (std::uint32_t c = tree.child_offsets[i]; c < tree.child_offsets[i + 1];
         ++c) {
      shortcut_cost += F[tree.children[c] * kk + 1];
    }
    S[i] = shortcut_cost;
    for (std::size_t t = 0; t < kk; ++t) {
      if (t == k) {
        F[i * kk + t] = shortcut_cost;
        continue;
      }
      std::uint32_t no_shortcut = 0;
      for (std::uint32_t c = tree.child_offsets[i];
           c < tree.child_offsets[i + 1]; ++c) {
        no_shortcut += F[tree.children[c] * kk + (t + 1)];
      }
      F[i * kk + t] = std::min(shortcut_cost, no_shortcut);
    }
  }

  // Trace back top-down. Pairs (node, t); root children start at t = 0.
  std::vector<std::uint32_t> out;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  for (std::uint32_t c = tree.child_offsets[0]; c < tree.child_offsets[1]; ++c) {
    stack.push_back({tree.children[c], 0});
  }
  while (!stack.empty()) {
    const auto [i, t] = stack.back();
    stack.pop_back();
    bool shortcut = false;
    if (t == k) {
      shortcut = true;
    } else {
      std::uint32_t no_shortcut = 0;
      for (std::uint32_t c = tree.child_offsets[i];
           c < tree.child_offsets[i + 1]; ++c) {
        no_shortcut += F[tree.children[c] * kk + (t + 1)];
      }
      shortcut = S[i] < no_shortcut;
    }
    if (shortcut) out.push_back(i);
    const std::uint32_t child_t = shortcut ? 1 : t + 1;
    for (std::uint32_t c = tree.child_offsets[i]; c < tree.child_offsets[i + 1];
         ++c) {
      stack.push_back({tree.children[c], child_t});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

const char* to_string(ShortcutHeuristic h) {
  switch (h) {
    case ShortcutHeuristic::kNone:
      return "none";
    case ShortcutHeuristic::kFull1Rho:
      return "full(1,rho)";
    case ShortcutHeuristic::kGreedy:
      return "greedy";
    case ShortcutHeuristic::kDP:
      return "dp";
  }
  return "?";
}

std::vector<std::uint32_t> select_shortcuts(const Ball& ball, Vertex k,
                                            ShortcutHeuristic heuristic) {
  switch (heuristic) {
    case ShortcutHeuristic::kNone:
      return {};
    case ShortcutHeuristic::kFull1Rho:
      return select_full(ball);
    case ShortcutHeuristic::kGreedy:
      return select_greedy(ball, k);
    case ShortcutHeuristic::kDP:
      return select_dp(ball, k);
  }
  return {};
}

std::size_t min_shortcuts_bruteforce(const Ball& ball, Vertex k) {
  const std::size_t b = ball.vertices.size();
  if (b <= 1) return 0;
  if (b > 20) throw std::invalid_argument("bruteforce: ball too large");
  const BallTree tree = build_tree(ball);

  std::size_t best = b;  // full shortcutting always works
  const std::size_t subsets = std::size_t{1} << (b - 1);  // nodes 1..b-1
  std::vector<Vertex> depth(b, 0);
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    const std::size_t count = static_cast<std::size_t>(__builtin_popcountll(mask));
    if (count >= best) continue;
    bool ok = true;
    for (std::size_t i = 1; i < b && ok; ++i) {
      const bool has_shortcut = (mask >> (i - 1)) & 1;
      depth[i] = has_shortcut
                     ? 1
                     : static_cast<Vertex>(depth[tree.parent[i]] + 1);
      if (depth[i] > k) ok = false;
    }
    if (ok) best = count;
  }
  return best;
}

PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options) {
  if (options.rho == 0) throw std::invalid_argument("preprocess: rho >= 1");
  if (options.k == 0) throw std::invalid_argument("preprocess: k >= 1");
  const Vertex n = g.num_vertices();
  const Graph gw = g.with_weight_sorted_adjacency();

  PreprocessResult result;
  result.options = options;
  result.radius.assign(n, 0);

  const int nw = num_workers();
  std::vector<std::vector<EdgeTriple>> shortcuts(static_cast<std::size_t>(nw));
  const BallOptions ball_opts{options.rho, 0, options.settle_ties};
#pragma omp parallel num_threads(nw)
  {
    BallSearchWorkspace ws(n);
    auto& mine = shortcuts[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t sv = 0; sv < static_cast<std::int64_t>(n); ++sv) {
      const Vertex s = static_cast<Vertex>(sv);
      const Ball ball = ws.run(gw, s, ball_opts);
      result.radius[s] = ball.radius;
      for (const std::uint32_t idx :
           select_shortcuts(ball, options.k, options.heuristic)) {
        const BallVertex& bv = ball.vertices[idx];
        if (bv.dist > std::numeric_limits<Weight>::max()) {
          throw std::overflow_error("preprocess: shortcut weight overflow");
        }
        mine.push_back(EdgeTriple{s, bv.v, static_cast<Weight>(bv.dist)});
      }
    }
  }

  std::vector<EdgeTriple> all;
  std::size_t total = 0;
  for (const auto& v : shortcuts) total += v.size();
  all.reserve(total);
  for (auto& v : shortcuts) {
    all.insert(all.end(), v.begin(), v.end());
    v.clear();
  }

  const EdgeId before = g.num_undirected_edges();
  result.graph = (options.heuristic == ShortcutHeuristic::kNone)
                     ? g
                     : merge_edges(g, std::move(all));
  result.added_edges = result.graph.num_undirected_edges() - before;
  result.added_factor =
      before == 0 ? 0.0
                  : static_cast<double>(result.added_edges) /
                        static_cast<double>(before);
  return result;
}

}  // namespace rs
