#include "shortcut/shortcut.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/builder.hpp"
#include "shortcut/preprocess_context.hpp"

namespace rs {

namespace {

/// Builds the child adjacency of `ball`'s shortest-path tree into `s`
/// (s.parent / s.child_offsets / s.children), in local ball indices (index
/// into ball.vertices; 0 is the source/root). Settle order is a valid
/// topological order: parents always precede children. All storage is
/// drawn from the scratch — the global->local map replaces the per-ball
/// hash map, so a warm scratch builds trees allocation-free.
void build_tree(const Ball& ball, ShortcutSelectScratch& s) {
  const std::size_t b = ball.vertices.size();
  Vertex max_v = 0;
  for (const BallVertex& bv : ball.vertices) max_v = std::max(max_v, bv.v);
  if (b != 0) s.reserve(max_v + 1);

  for (std::size_t i = 0; i < b; ++i) {
    s.local[ball.vertices[i].v] = static_cast<std::uint32_t>(i);
  }

  s.parent.assign(b, 0);
  s.child_count.assign(b, 0);
  for (std::size_t i = 1; i < b; ++i) {
    // Parents of settled vertices are themselves settled ball members.
    const std::uint32_t p = s.local[ball.vertices[i].parent];
    s.parent[i] = p;
    ++s.child_count[p];
  }
  s.child_offsets.assign(b + 1, 0);
  for (std::size_t i = 0; i < b; ++i) {
    s.child_offsets[i + 1] = s.child_offsets[i] + s.child_count[i];
  }
  s.children.assign(b == 0 ? 0 : s.child_offsets[b], 0);
  // Reuse child_count as the fill cursor.
  for (std::size_t i = 0; i < b; ++i) s.child_count[i] = s.child_offsets[i];
  for (std::size_t i = 1; i < b; ++i) {
    s.children[s.child_count[s.parent[i]]++] = static_cast<std::uint32_t>(i);
  }
}

void select_full(const Ball& ball, std::vector<std::uint32_t>& out) {
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    if (ball.vertices[i].hops > 1) out.push_back(static_cast<std::uint32_t>(i));
  }
}

void select_greedy(const Ball& ball, Vertex k,
                   std::vector<std::uint32_t>& out) {
  // Shortcut tree depths k+1, 2k+1, 3k+1, ... — every node then lies within
  // k hops: a node at depth ki+1+j (0 <= j < k) reaches the shortcut at
  // depth ki+1 in j extra hops after the 1-hop shortcut.
  for (std::size_t i = 1; i < ball.vertices.size(); ++i) {
    const Vertex h = ball.vertices[i].hops;
    if (h > k && (h - 1) % k == 0) out.push_back(static_cast<std::uint32_t>(i));
  }
}

void select_dp(const Ball& ball, Vertex k, ShortcutSelectScratch& s) {
  const std::size_t b = ball.vertices.size();
  if (b <= 1) return;
  build_tree(ball, s);

  // F[i * (k+1) + t] = min edges into the subtree of local node i so that
  // every node there sits within k hops of the root, given parent(i) is t
  // hops from the root (paper §4.2.2). S[i] = cost when i is shortcut:
  // 1 + sum_child F(child, 1).
  const std::size_t kk = static_cast<std::size_t>(k) + 1;
  s.dp_f.assign(b * kk, 0);
  s.dp_s.assign(b, 0);

  // Bottom-up: reverse settle order visits children before parents.
  for (std::size_t i = b; i-- > 1;) {
    std::uint32_t shortcut_cost = 1;
    for (std::uint32_t c = s.child_offsets[i]; c < s.child_offsets[i + 1];
         ++c) {
      shortcut_cost += s.dp_f[s.children[c] * kk + 1];
    }
    s.dp_s[i] = shortcut_cost;
    for (std::size_t t = 0; t < kk; ++t) {
      if (t == k) {
        s.dp_f[i * kk + t] = shortcut_cost;
        continue;
      }
      std::uint32_t no_shortcut = 0;
      for (std::uint32_t c = s.child_offsets[i]; c < s.child_offsets[i + 1];
           ++c) {
        no_shortcut += s.dp_f[s.children[c] * kk + (t + 1)];
      }
      s.dp_f[i * kk + t] = std::min(shortcut_cost, no_shortcut);
    }
  }

  // Trace back top-down. Pairs (node, t); root children start at t = 0.
  s.stack.clear();
  for (std::uint32_t c = s.child_offsets[0]; c < s.child_offsets[1]; ++c) {
    s.stack.push_back({s.children[c], 0});
  }
  while (!s.stack.empty()) {
    const auto [i, t] = s.stack.back();
    s.stack.pop_back();
    bool shortcut = false;
    if (t == k) {
      shortcut = true;
    } else {
      std::uint32_t no_shortcut = 0;
      for (std::uint32_t c = s.child_offsets[i]; c < s.child_offsets[i + 1];
           ++c) {
        no_shortcut += s.dp_f[s.children[c] * kk + (t + 1)];
      }
      shortcut = s.dp_s[i] < no_shortcut;
    }
    if (shortcut) s.selected.push_back(i);
    const std::uint32_t child_t = shortcut ? 1 : t + 1;
    for (std::uint32_t c = s.child_offsets[i]; c < s.child_offsets[i + 1];
         ++c) {
      s.stack.push_back({s.children[c], child_t});
    }
  }
  std::sort(s.selected.begin(), s.selected.end());
}

}  // namespace

void ShortcutSelectScratch::reserve(Vertex n) {
  if (local.size() < n) local.resize(n, 0);
}

const char* to_string(ShortcutHeuristic h) {
  switch (h) {
    case ShortcutHeuristic::kNone:
      return "none";
    case ShortcutHeuristic::kFull1Rho:
      return "full(1,rho)";
    case ShortcutHeuristic::kGreedy:
      return "greedy";
    case ShortcutHeuristic::kDP:
      return "dp";
  }
  return "?";
}

const std::vector<std::uint32_t>& select_shortcuts(
    const Ball& ball, Vertex k, ShortcutHeuristic heuristic,
    ShortcutSelectScratch& scratch) {
  scratch.selected.clear();  // keeps capacity
  switch (heuristic) {
    case ShortcutHeuristic::kNone:
      break;
    case ShortcutHeuristic::kFull1Rho:
      select_full(ball, scratch.selected);
      break;
    case ShortcutHeuristic::kGreedy:
      select_greedy(ball, k, scratch.selected);
      break;
    case ShortcutHeuristic::kDP:
      select_dp(ball, k, scratch);
      break;
  }
  return scratch.selected;
}

std::vector<std::uint32_t> select_shortcuts(const Ball& ball, Vertex k,
                                            ShortcutHeuristic heuristic) {
  ShortcutSelectScratch scratch;
  return select_shortcuts(ball, k, heuristic, scratch);
}

std::size_t min_shortcuts_bruteforce(const Ball& ball, Vertex k) {
  const std::size_t b = ball.vertices.size();
  if (b <= 1) return 0;
  if (b > 20) throw std::invalid_argument("bruteforce: ball too large");
  ShortcutSelectScratch tree;
  build_tree(ball, tree);

  std::size_t best = b;  // full shortcutting always works
  const std::size_t subsets = std::size_t{1} << (b - 1);  // nodes 1..b-1
  std::vector<Vertex> depth(b, 0);
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    const std::size_t count =
        static_cast<std::size_t>(__builtin_popcountll(mask));
    if (count >= best) continue;
    bool ok = true;
    for (std::size_t i = 1; i < b && ok; ++i) {
      const bool has_shortcut = (mask >> (i - 1)) & 1;
      depth[i] = has_shortcut
                     ? 1
                     : static_cast<Vertex>(depth[tree.parent[i]] + 1);
      if (depth[i] > k) ok = false;
    }
    if (ok) best = count;
  }
  return best;
}

PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options) {
  PreprocessPool pool;
  return preprocess(g, options, pool);
}

}  // namespace rs
