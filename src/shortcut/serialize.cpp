#include "shortcut/serialize.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

namespace rs {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'P', 'P'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void put_vec(std::ostream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_preprocessing: truncated input");
  return value;
}

template <typename T>
std::vector<T> get_vec(std::istream& in, std::size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("load_preprocessing: truncated input");
  return v;
}

/// Bytes left in `in` from the current position, or nullopt when the
/// stream is not seekable. Restores the read position.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (!in || end == std::istream::pos_type(-1) || end < cur) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - cur);
}

}  // namespace

void save_preprocessing(const PreprocessResult& pre, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put(out, pre.options.rho);
  put(out, pre.options.k);
  put(out, static_cast<std::uint8_t>(pre.options.heuristic));
  put(out, static_cast<std::uint8_t>(pre.options.settle_ties));
  put(out, pre.added_edges);
  put(out, pre.added_factor);
  const Graph& g = pre.graph;
  put(out, g.num_vertices());
  put(out, g.num_edges());
  put_vec(out, g.offsets());
  put_vec(out, g.targets());
  put_vec(out, g.weights());
  put_vec(out, pre.radius);
  if (!out) throw std::runtime_error("save_preprocessing: write failed");
}

void save_preprocessing_file(const PreprocessResult& pre,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_preprocessing: cannot open " + path);
  save_preprocessing(pre, out);
}

PreprocessResult load_preprocessing(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_preprocessing: bad magic");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_preprocessing: unsupported version");
  }
  PreprocessResult pre;
  pre.options.rho = get<Vertex>(in);
  pre.options.k = get<Vertex>(in);
  const auto heuristic = get<std::uint8_t>(in);
  if (heuristic > static_cast<std::uint8_t>(ShortcutHeuristic::kDP)) {
    throw std::runtime_error("load_preprocessing: bad heuristic tag");
  }
  pre.options.heuristic = static_cast<ShortcutHeuristic>(heuristic);
  pre.options.settle_ties = get<std::uint8_t>(in) != 0;
  pre.added_edges = get<EdgeId>(in);
  pre.added_factor = get<double>(in);
  const Vertex n = get<Vertex>(in);
  const EdgeId m = get<EdgeId>(in);
  // The header counts are untrusted: bound them BEFORE allocating. The CSR
  // re-validation below never runs if a corrupt `n`/`m` wraps `n + 1` or
  // requests absurd buffers first (a memory bomb / bad_alloc, not a clean
  // parse error).
  if (n >= kNoVertex) {
    throw std::runtime_error("load_preprocessing: corrupt vertex count");
  }
  constexpr std::uint64_t kArcBytes = sizeof(Vertex) + sizeof(Weight);
  if (m > std::numeric_limits<std::uint64_t>::max() / kArcBytes) {
    throw std::runtime_error("load_preprocessing: corrupt edge count");
  }
  if (const auto remaining = remaining_bytes(in)) {
    // Every count must fit in the bytes the stream actually has left;
    // checked term by term so the running sum cannot overflow.
    std::uint64_t budget = *remaining;
    const auto take = [&budget](std::uint64_t bytes) {
      if (bytes > budget) {
        throw std::runtime_error(
            "load_preprocessing: header counts exceed input size");
      }
      budget -= bytes;
    };
    take((static_cast<std::uint64_t>(n) + 1) * sizeof(EdgeId));
    take(m * sizeof(Vertex));
    take(m * sizeof(Weight));
    take(static_cast<std::uint64_t>(n) * sizeof(Dist));
  }
  auto offsets = get_vec<EdgeId>(in, static_cast<std::size_t>(n) + 1);
  auto targets = get_vec<Vertex>(in, m);
  auto weights = get_vec<Weight>(in, m);
  pre.radius = get_vec<Dist>(in, n);
  // Graph's constructor re-validates the CSR invariants.
  pre.graph = Graph(std::move(offsets), std::move(targets), std::move(weights));
  return pre;
}

PreprocessResult load_preprocessing_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_preprocessing: cannot open " + path);
  return load_preprocessing(in);
}

}  // namespace rs
