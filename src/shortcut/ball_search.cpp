#include "shortcut/ball_search.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "parallel/primitives.hpp"

namespace rs {

void BallSearchWorkspace::reserve(Vertex n) {
  if (n <= capacity()) return;
  dist_.resize(n, 0);
  hops_.resize(n, 0);
  parent_.resize(n, kNoVertex);
  stamp_.resize(n, 0);  // 0 != epoch_ once any search ran: entries are fresh
  heap_.reserve(n);
}

void BallSearchWorkspace::run(const Graph& g, Vertex source,
                              const BallOptions& opts, Ball& out) {
  const Vertex rho = opts.rho;
  if (rho == 0) throw std::invalid_argument("ball_search: rho must be >= 1");
  const Vertex edge_limit = opts.edge_limit == 0 ? rho : opts.edge_limit;
  reserve(g.num_vertices());
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrap: force-reset once every 2^32 searches
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  heap_.clear();

  Ball& ball = out;
  ball.source = source;
  ball.vertices.clear();  // keeps capacity: warm reruns don't reallocate
  ball.radius = 0;
  ball.arcs_scanned = 0;
  ball.vertices.reserve(rho + 4);

  auto touch = [&](Vertex v, Dist d, Vertex h, Vertex p) {
    dist_[v] = d;
    hops_[v] = h;
    parent_[v] = p;
    stamp_[v] = epoch_;
  };
  touch(source, 0, 0, kNoVertex);
  heap_.insert_or_decrease(source, Key{0, 0});

  Dist r_rho = 0;
  bool radius_fixed = false;
  while (!heap_.empty()) {
    const auto [key, u] = heap_.min();
    if (radius_fixed && key.d > r_rho) break;
    heap_.extract_min();
    ball.vertices.push_back(BallVertex{u, key.d, key.h, parent_[u]});
    if (!radius_fixed && ball.vertices.size() >= rho) {
      r_rho = key.d;
      radius_fixed = true;
      if (!opts.settle_ties) break;  // exactly-rho variant: stop here
    }
    const EdgeId lo = g.first_arc(u);
    const EdgeId hi =
        std::min(g.last_arc(u), lo + static_cast<EdgeId>(edge_limit));
    for (EdgeId e = lo; e < hi; ++e) {
      ++ball.arcs_scanned;
      const Vertex v = g.arc_target(e);
      const Key cand{key.d + g.arc_weight(e), static_cast<Vertex>(key.h + 1)};
      if (fresh(v)) {
        touch(v, cand.d, cand.h, u);
        heap_.insert_or_decrease(v, cand);
      } else if (heap_.contains(v)) {
        const Key cur{dist_[v], hops_[v]};
        if (cand < cur) {
          touch(v, cand.d, cand.h, u);
          heap_.insert_or_decrease(v, cand);
        }
      }
      // Settled vertices (stamped, not in heap) are final: skip.
    }
  }
  ball.radius = radius_fixed ? r_rho
                             : (ball.vertices.empty()
                                    ? 0
                                    : ball.vertices.back().dist);
  heap_.clear();
}

Ball ball_search(const Graph& g, Vertex source, Vertex rho, Vertex edge_limit) {
  BallSearchWorkspace ws(g.num_vertices());
  return ws.run(g, source, rho, edge_limit);
}

bool radii_enclose_rho(const Graph& g, const std::vector<Dist>& radius,
                       Vertex rho) {
  const Vertex n = g.num_vertices();
  if (radius.size() != n) return false;
  const Graph gw = g.with_weight_sorted_adjacency();
  std::atomic<bool> ok{true};
#pragma omp parallel num_threads(num_workers())
  {
    BallSearchWorkspace ws(n);
    Ball ball;
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      if (!ok.load(std::memory_order_relaxed)) continue;
      // Unrestricted edge limit (max Vertex, not n — multigraph vertices
      // can carry more than n parallel arcs): the check must count the
      // true ball, and settle_ties makes the count include the whole
      // boundary class.
      ws.run(gw, static_cast<Vertex>(v),
             BallOptions{rho, std::numeric_limits<Vertex>::max(),
                         /*settle_ties=*/true},
             ball);
      // Members within radius[v]:
      std::size_t inside = 0;
      for (const BallVertex& bv : ball.vertices) {
        if (bv.dist <= radius[static_cast<std::size_t>(v)]) ++inside;
      }
      if (inside < rho) ok.store(false, std::memory_order_relaxed);
    }
  }
  return ok.load();
}

}  // namespace rs
