// Shortcut construction: turns any graph into a (k, rho)-graph (Section 4).
//
// For every vertex the rho-nearest ball is computed (ball_search); then a
// heuristic picks which ball members get a direct shortcut edge from the
// ball's source so that every member lies within k hops:
//
//  * kFull1Rho  — shortcut every member beyond 1 hop (the k = 1 scheme;
//                 up to n*rho edges, fewest needed for k = 1);
//  * kGreedy    — shortcut members at tree depth k+1, 2k+1, ... (§4.2.1);
//  * kDP        — per-tree optimal selection via the F(u, t) dynamic
//                 program (§4.2.2);
//  * kNone      — add nothing (radii only). Step counts of Radius-Stepping
//                 depend on rho alone (§5.3), so the step-count experiments
//                 can run without materializing shortcuts.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "shortcut/ball_search.hpp"

namespace rs {

enum class ShortcutHeuristic : std::uint8_t { kNone, kFull1Rho, kGreedy, kDP };

const char* to_string(ShortcutHeuristic h);

struct PreprocessOptions {
  Vertex rho = 64;
  Vertex k = 3;  // ignored by kFull1Rho (k = 1) and kNone
  ShortcutHeuristic heuristic = ShortcutHeuristic::kDP;
  /// Paper §5.1 tie protocol (settle the whole distance class of the
  /// rho-th vertex). Set false for the exactly-rho footnote variant —
  /// needed to keep unweighted hub graphs tractable at large rho.
  bool settle_ties = true;
};

struct PreprocessResult {
  /// Original graph plus shortcut edges (merged, deduplicated).
  Graph graph;
  /// r(v) = r_rho(v), valid radii for Radius-Stepping on `graph`.
  std::vector<Dist> radius;
  /// Unique new undirected edges contributed by shortcutting.
  EdgeId added_edges = 0;
  /// added_edges / original undirected m — the paper's Tables 2-3 metric.
  double added_factor = 0.0;
  PreprocessOptions options;
};

/// Runs ball searches from every vertex in parallel and applies the chosen
/// shortcut heuristic. The result satisfies r(v) <= r̄_k(v) and
/// |B(v, r(v))| >= rho on the returned graph (Lemma 4.1), with k = 1 for
/// kFull1Rho and k = options.k for kGreedy / kDP.
PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options);

/// Reusable scratch for shortcut selection: the ball's shortest-path-tree
/// CSR, the DP tables, the traceback stack, a global->local index map,
/// and the output index list. Everything keeps its capacity across balls,
/// so a warm scratch selects with zero heap allocations. The map needs no
/// stamping: every slot read (a settled vertex's parent, itself a ball
/// member) is written earlier in the same call, so stale entries — from
/// other balls or other graphs — are never consulted.
struct ShortcutSelectScratch {
  /// Grows the per-vertex map to cover `n` vertices; never shrinks.
  void reserve(Vertex n);

  // Ball tree (local ball indices; 0 is the source/root).
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> child_offsets;  // CSR over children
  std::vector<std::uint32_t> children;
  std::vector<std::uint32_t> child_count;
  // DP tables and traceback stack (kDP).
  std::vector<std::uint32_t> dp_f;
  std::vector<std::uint32_t> dp_s;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  // Global vertex -> ball index map (replaces a per-ball hash map).
  std::vector<std::uint32_t> local;
  // Selected ball-vertex indices, reused across calls.
  std::vector<std::uint32_t> selected;
};

/// Shortcut targets for one ball under a heuristic: ball-vertex indices
/// (into ball.vertices) that receive a direct edge from ball.source.
/// Exposed for unit tests; preprocess() uses it internally.
std::vector<std::uint32_t> select_shortcuts(const Ball& ball, Vertex k,
                                            ShortcutHeuristic heuristic);

/// Scratch-reusing form: returns `scratch.selected` (valid until the next
/// call on the same scratch). The serving shape of the selection step — a
/// warm scratch performs zero heap allocations per ball.
const std::vector<std::uint32_t>& select_shortcuts(
    const Ball& ball, Vertex k, ShortcutHeuristic heuristic,
    ShortcutSelectScratch& scratch);

/// Minimum number of shortcut edges for one shortest-path tree so that all
/// members sit within k hops — exhaustive search over subsets, exponential;
/// test oracle for the DP's per-tree optimality.
std::size_t min_shortcuts_bruteforce(const Ball& ball, Vertex k);

}  // namespace rs
