// Shortcut construction: turns any graph into a (k, rho)-graph (Section 4).
//
// For every vertex the rho-nearest ball is computed (ball_search); then a
// heuristic picks which ball members get a direct shortcut edge from the
// ball's source so that every member lies within k hops:
//
//  * kFull1Rho  — shortcut every member beyond 1 hop (the k = 1 scheme;
//                 up to n*rho edges, fewest needed for k = 1);
//  * kGreedy    — shortcut members at tree depth k+1, 2k+1, ... (§4.2.1);
//  * kDP        — per-tree optimal selection via the F(u, t) dynamic
//                 program (§4.2.2);
//  * kNone      — add nothing (radii only). Step counts of Radius-Stepping
//                 depend on rho alone (§5.3), so the step-count experiments
//                 can run without materializing shortcuts.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "shortcut/ball_search.hpp"

namespace rs {

enum class ShortcutHeuristic : std::uint8_t { kNone, kFull1Rho, kGreedy, kDP };

const char* to_string(ShortcutHeuristic h);

struct PreprocessOptions {
  Vertex rho = 64;
  Vertex k = 3;  // ignored by kFull1Rho (k = 1) and kNone
  ShortcutHeuristic heuristic = ShortcutHeuristic::kDP;
  /// Paper §5.1 tie protocol (settle the whole distance class of the
  /// rho-th vertex). Set false for the exactly-rho footnote variant —
  /// needed to keep unweighted hub graphs tractable at large rho.
  bool settle_ties = true;
};

struct PreprocessResult {
  /// Original graph plus shortcut edges (merged, deduplicated).
  Graph graph;
  /// r(v) = r_rho(v), valid radii for Radius-Stepping on `graph`.
  std::vector<Dist> radius;
  /// Unique new undirected edges contributed by shortcutting.
  EdgeId added_edges = 0;
  /// added_edges / original undirected m — the paper's Tables 2-3 metric.
  double added_factor = 0.0;
  PreprocessOptions options;
};

/// Runs ball searches from every vertex in parallel and applies the chosen
/// shortcut heuristic. The result satisfies r(v) <= r̄_k(v) and
/// |B(v, r(v))| >= rho on the returned graph (Lemma 4.1), with k = 1 for
/// kFull1Rho and k = options.k for kGreedy / kDP.
PreprocessResult preprocess(const Graph& g, const PreprocessOptions& options);

/// Shortcut targets for one ball under a heuristic: ball-vertex indices
/// (into ball.vertices) that receive a direct edge from ball.source.
/// Exposed for unit tests; preprocess() uses it internally.
std::vector<std::uint32_t> select_shortcuts(const Ball& ball, Vertex k,
                                            ShortcutHeuristic heuristic);

/// Minimum number of shortcut edges for one shortest-path tree so that all
/// members sit within k hops — exhaustive search over subsets, exponential;
/// test oracle for the DP's per-tree optimality.
std::size_t min_shortcuts_bruteforce(const Ball& ball, Vertex k);

}  // namespace rs
