#include "shortcut/incremental.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>
#include <utility>

#include <omp.h>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"

namespace rs {

IncrementalPreprocessor::IncrementalPreprocessor(
    const Graph& g, const PreprocessOptions& options)
    : graph_(g), options_(options) {
  if (options.rho == 0) throw std::invalid_argument("preprocess: rho >= 1");
  if (options.k == 0) throw std::invalid_argument("preprocess: k >= 1");
  const Vertex n = graph_.num_vertices();

  std::vector<Vertex> all(n);
  for (Vertex v = 0; v < n; ++v) all[v] = v;
  members_.resize(n);
  shortcuts_.resize(n);
  radius_.assign(n, 0);
  compute_balls(graph_, all, members_, shortcuts_, radius_);

  member_of_.resize(n);
  for (Vertex s = 0; s < n; ++s) {
    for (const Vertex v : members_[s]) member_of_[v].push_back(s);
  }
}

void IncrementalPreprocessor::compute_balls(
    const Graph& base, const std::vector<Vertex>& sources,
    std::vector<std::vector<Vertex>>& out_members,
    std::vector<std::vector<EdgeTriple>>& out_shortcuts,
    std::vector<Dist>& out_radius) {
  const Vertex n = base.num_vertices();
  const Graph gw = base.with_weight_sorted_adjacency();
  const BallOptions ball_opts{options_.rho, 0, options_.settle_ties};

  const int nw = num_workers();
  pool_.ensure(static_cast<std::size_t>(nw));
  // Exceptions may not escape an OpenMP region: record overflow in a flag
  // and throw after the join instead of aborting the process.
  std::atomic<bool> overflow{false};
#pragma omp parallel num_threads(nw)
  {
    PreprocessContext& ctx =
        pool_.at(static_cast<std::size_t>(omp_get_thread_num()));
    ctx.reserve(n);
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(sources.size());
         ++i) {
      const std::size_t slot = static_cast<std::size_t>(i);
      const Vertex s = sources[slot];
      const Ball& ball = ctx.ball(gw, s, ball_opts);
      out_radius[slot] = ball.radius;

      auto& mem = out_members[slot];
      mem.clear();
      mem.reserve(ball.vertices.size());
      for (const BallVertex& bv : ball.vertices) mem.push_back(bv.v);

      auto& sc = out_shortcuts[slot];
      sc.clear();
      for (const std::uint32_t idx :
           ctx.select(ball, options_.k, options_.heuristic)) {
        const BallVertex& bv = ball.vertices[idx];
        if (bv.dist > std::numeric_limits<Weight>::max()) {
          overflow.store(true, std::memory_order_relaxed);
          continue;
        }
        sc.push_back(EdgeTriple{s, bv.v, static_cast<Weight>(bv.dist)});
      }
    }
  }
  if (overflow.load()) {
    throw std::overflow_error("preprocess: shortcut weight overflow");
  }
}

IncrementalUpdateStats IncrementalPreprocessor::apply(
    const std::vector<WeightUpdate>& updates) {
  IncrementalUpdateStats stats;
  stats.total_balls = graph_.num_vertices();

  UpdateApplication app = apply_weight_updates(graph_, updates);
  stats.updated_arcs = app.changes.size();
  if (app.changes.empty()) {
    graph_ = std::move(app.graph);  // weights identical; keep arrays shared
    return stats;
  }

  // A ball search scans out-arcs of settled vertices only, so ball(s) can
  // change only when a changed arc's TAIL is settled in ball(s). Each
  // direction of an undirected update is its own ArcChange, so tails alone
  // are precise AND sound.
  std::vector<std::uint8_t> is_dirty(graph_.num_vertices(), 0);
  std::vector<Vertex> dirty;
  for (const ArcChange& c : app.changes) {
    for (const Vertex s : member_of_[c.u]) {
      if (!is_dirty[s]) {
        is_dirty[s] = 1;
        dirty.push_back(s);
      }
    }
  }
  stats.dirty_balls = dirty.size();

  // Recompute into temporaries first: nothing is committed until the whole
  // batch survived (strong exception safety vs overflow).
  std::vector<std::vector<Vertex>> new_members(dirty.size());
  std::vector<std::vector<EdgeTriple>> new_shortcuts(dirty.size());
  std::vector<Dist> new_radius(dirty.size(), 0);
  compute_balls(app.graph, dirty, new_members, new_shortcuts, new_radius);

  graph_ = std::move(app.graph);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const Vertex s = dirty[i];
    for (const Vertex v : members_[s]) {
      auto& owners = member_of_[v];
      owners.erase(std::remove(owners.begin(), owners.end(), s),
                   owners.end());
    }
    members_[s] = std::move(new_members[i]);
    for (const Vertex v : members_[s]) member_of_[v].push_back(s);
    shortcuts_[s] = std::move(new_shortcuts[i]);
    radius_[s] = new_radius[i];
  }
  return stats;
}

std::size_t IncrementalPreprocessor::count_dirty(
    const std::vector<WeightUpdate>& updates) const {
  std::vector<std::uint8_t> seen(graph_.num_vertices(), 0);
  std::size_t dirty = 0;
  const auto mark = [&](const Vertex t) {
    if (static_cast<std::size_t>(t) >= member_of_.size()) return;
    for (const Vertex s : member_of_[t]) {
      if (!seen[s]) {
        seen[s] = 1;
        ++dirty;
      }
    }
  };
  for (const WeightUpdate& up : updates) {
    mark(up.u);
    if (up.v != up.u) mark(up.v);
  }
  return dirty;
}

PreprocessResult IncrementalPreprocessor::result() const {
  PreprocessResult out;
  out.options = options_;
  out.radius = radius_;

  const EdgeId before = graph_.num_undirected_edges();
  if (options_.heuristic == ShortcutHeuristic::kNone) {
    out.graph = graph_;
  } else {
    std::size_t total = 0;
    for (const auto& sc : shortcuts_) total += sc.size();
    std::vector<EdgeTriple> all;
    all.reserve(total);
    for (const auto& sc : shortcuts_) {
      all.insert(all.end(), sc.begin(), sc.end());
    }
    // build_graph sorts by (u, v, w) and keeps the per-(u, v) minimum, so
    // concatenation order is irrelevant: this is bit-identical to the cold
    // path's per-worker staging drain.
    out.graph = merge_edges(graph_, std::move(all));
  }
  out.added_edges = out.graph.num_undirected_edges() - before;
  out.added_factor = before == 0 ? 0.0
                                 : static_cast<double>(out.added_edges) /
                                       static_cast<double>(before);
  return out;
}

}  // namespace rs
