// Graph serialization: DIMACS shortest-path (.gr) and plain edge lists.
// Lets users run the library on the SNAP/DIMACS datasets the paper used
// when those files are available locally.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rs::io {

/// Reads the 9th DIMACS Implementation Challenge ".gr" format:
///   c <comment>
///   p sp <n> <m>
///   a <u> <v> <w>     (1-based vertex ids)
/// Arcs are symmetrized and deduplicated. Throws std::runtime_error on
/// malformed input.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

/// Writes the graph in DIMACS format (each undirected edge emitted once).
void write_dimacs(const Graph& g, std::ostream& out);
void write_dimacs_file(const Graph& g, const std::string& path);

/// Reads whitespace-separated "u v [w]" lines (0-based; missing w = 1).
/// Lines starting with '#' or '%' are comments. Vertex count is
/// 1 + max id unless `n_hint` is larger.
Graph read_edge_list(std::istream& in, Vertex n_hint = 0);
Graph read_edge_list_file(const std::string& path, Vertex n_hint = 0);

void write_edge_list(const Graph& g, std::ostream& out);

}  // namespace rs::io
