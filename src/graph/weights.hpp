// Weight assignment, matching the paper's experimental protocol (§5.1):
// graphs without native weights get a uniform random integer in [1, 10^4]
// per undirected edge.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace rs {

inline constexpr Weight kPaperMaxWeight = 10'000;  // the paper's L

/// Returns a copy of `g` where every undirected edge carries an independent
/// uniform weight in [lo, hi]. Both arc directions of an edge receive the
/// same weight (the weight is a pure hash of the unordered endpoint pair).
Graph assign_uniform_weights(const Graph& g, std::uint64_t seed,
                             Weight lo = 1, Weight hi = kPaperMaxWeight);

/// Returns a copy of `g` with all weights set to 1 (the unweighted setting).
Graph assign_unit_weights(const Graph& g);

}  // namespace rs
