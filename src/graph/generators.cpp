#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs::gen {

namespace {

/// Union-find used when a generator must guarantee connectivity.
class UnionFind {
 public:
  explicit UnionFind(Vertex n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), Vertex{0});
  }
  Vertex find(Vertex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(Vertex a, Vertex b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<Vertex> parent_;
};

}  // namespace

Graph grid2d(Vertex rows, Vertex cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid2d: empty");
  const Vertex n = rows * cols;
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<std::size_t>(2) * n);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      const Vertex v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, 1});
      if (r + 1 < rows) edges.push_back({v, v + cols, 1});
    }
  }
  return build_graph(n, std::move(edges));
}

Graph grid3d(Vertex nx, Vertex ny, Vertex nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("grid3d: empty");
  }
  const Vertex n = nx * ny * nz;
  auto id = [&](Vertex x, Vertex y, Vertex z) { return (z * ny + y) * nx + x; };
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<std::size_t>(3) * n);
  for (Vertex z = 0; z < nz; ++z) {
    for (Vertex y = 0; y < ny; ++y) {
      for (Vertex x = 0; x < nx; ++x) {
        const Vertex v = id(x, y, z);
        if (x + 1 < nx) edges.push_back({v, id(x + 1, y, z), 1});
        if (y + 1 < ny) edges.push_back({v, id(x, y + 1, z), 1});
        if (z + 1 < nz) edges.push_back({v, id(x, y, z + 1), 1});
      }
    }
  }
  return build_graph(n, std::move(edges));
}

Graph road_network(Vertex rows, Vertex cols, std::uint64_t seed,
                   double keep_prob, double diag_prob) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("road_network: too small");
  }
  const Vertex n = rows * cols;
  const SplitRng rng(seed);

  // Candidate lattice edges (+ diagonals), each tagged with a random rank.
  struct Cand {
    EdgeTriple e;
    std::uint64_t rank;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<std::size_t>(3) * n);
  std::uint64_t idx = 0;
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      const Vertex v = r * cols + c;
      if (c + 1 < cols) cands.push_back({{v, v + 1, 1}, rng.get(0, idx++)});
      if (r + 1 < rows) cands.push_back({{v, v + cols, 1}, rng.get(0, idx++)});
      if (r + 1 < rows && c + 1 < cols && rng.uniform(1, v) < diag_prob) {
        cands.push_back({{v, v + cols + 1, 1}, rng.get(0, idx++)});
      }
    }
  }
  // Random spanning tree first (randomized Kruskal over rank order), then
  // keep each remaining edge independently with keep_prob.
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.rank < b.rank; });
  UnionFind uf(n);
  std::vector<EdgeTriple> edges;
  edges.reserve(cands.size());
  std::uint64_t i = 0;
  for (const Cand& c : cands) {
    if (uf.unite(c.e.u, c.e.v)) {
      edges.push_back(c.e);
    } else if (rng.uniform(2, i) < keep_prob) {
      edges.push_back(c.e);
    }
    ++i;
  }
  return build_graph(n, std::move(edges));
}

Graph barabasi_albert(Vertex n, Vertex edges_per_vertex, std::uint64_t seed) {
  const Vertex m0 = std::max<Vertex>(edges_per_vertex, 1);
  if (n <= m0) throw std::invalid_argument("barabasi_albert: n too small");
  const SplitRng rng(seed);

  // Standard endpoint-list trick: sampling a uniform element of `endpoints`
  // is sampling a vertex proportionally to its degree.
  std::vector<Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * m0);
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<std::size_t>(n) * m0);

  // Seed clique over the first m0 + 1 vertices keeps the graph connected.
  for (Vertex u = 0; u <= m0; ++u) {
    for (Vertex v = u + 1; v <= m0; ++v) {
      edges.push_back({u, v, 1});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::uint64_t draw = 0;
  std::vector<Vertex> picked;
  for (Vertex u = m0 + 1; u < n; ++u) {
    picked.clear();
    while (picked.size() < m0) {
      const Vertex t = endpoints[rng.bounded(0, draw++, endpoints.size())];
      if (t != u &&
          std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (const Vertex t : picked) {
      edges.push_back({u, t, 1});
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return build_graph(n, std::move(edges));
}

Graph web_graph(Vertex n, Vertex core_deg, std::uint64_t seed,
                double core_fraction, double chain_prob) {
  if (n < 16) throw std::invalid_argument("web_graph: n too small");
  const Vertex core_n =
      std::max<Vertex>(core_deg + 2, static_cast<Vertex>(n * core_fraction));
  if (core_n >= n) {
    return barabasi_albert(n, core_deg, seed);
  }
  Graph core = barabasi_albert(core_n, core_deg, seed);
  std::vector<EdgeTriple> edges = core.to_triples();
  // to_triples holds both arc directions; keep one per undirected edge.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const EdgeTriple& t) { return t.u > t.v; }),
              edges.end());

  // Degree-biased endpoint list for the periphery's attachment choices.
  std::vector<Vertex> endpoints;
  endpoints.reserve(2 * edges.size());
  for (const EdgeTriple& t : edges) {
    endpoints.push_back(t.u);
    endpoints.push_back(t.v);
  }
  const SplitRng rng(seed ^ 0xabcdef1234ull);
  Vertex prev = 0;
  for (Vertex v = core_n; v < n; ++v) {
    const bool chain = v > core_n && rng.uniform(0, v) < chain_prob;
    const Vertex target =
        chain ? prev
              : endpoints[rng.bounded(1, v, endpoints.size())];
    edges.push_back({v, target, 1});
    prev = v;
  }
  return build_graph(n, std::move(edges));
}

Graph rmat(std::uint32_t scale, EdgeId edge_factor, std::uint64_t seed,
           double a, double b, double c) {
  if (scale == 0 || scale > 30) throw std::invalid_argument("rmat: bad scale");
  const Vertex n = Vertex{1} << scale;
  const EdgeId m = edge_factor * n;
  const SplitRng rng(seed);
  std::vector<EdgeTriple> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    Vertex u = 0;
    Vertex v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double p = rng.uniform(i, bit);
      if (p < a) {
        // top-left: nothing set
      } else if (p < a + b) {
        v |= Vertex{1} << bit;
      } else if (p < a + b + c) {
        u |= Vertex{1} << bit;
      } else {
        u |= Vertex{1} << bit;
        v |= Vertex{1} << bit;
      }
    }
    edges[i] = EdgeTriple{u, v, 1};
  });
  return build_graph(n, std::move(edges));
}

Graph erdos_renyi(Vertex n, EdgeId m_edges, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: n too small");
  const SplitRng rng(seed);
  std::vector<EdgeTriple> edges(m_edges);
  parallel_for(0, m_edges, [&](std::size_t i) {
    const Vertex u = static_cast<Vertex>(rng.bounded(0, 2 * i, n));
    Vertex v = static_cast<Vertex>(rng.bounded(0, 2 * i + 1, n));
    if (v == u) v = (v + 1) % n;
    edges[i] = EdgeTriple{u, v, 1};
  });
  return build_graph(n, std::move(edges));
}

Graph random_geometric(Vertex n, double radius, std::uint64_t seed,
                       Weight weight_scale) {
  if (n < 2 || radius <= 0 || radius > 1.0) {
    throw std::invalid_argument("random_geometric: bad parameters");
  }
  const SplitRng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (Vertex v = 0; v < n; ++v) {
    x[v] = rng.uniform(0, v);
    y[v] = rng.uniform(1, v);
  }
  // Bucket grid with cell side = radius: candidates live in the 3x3
  // neighbourhood, giving expected O(n) work at the connectivity radius.
  const std::uint32_t cells =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(1.0 / radius));
  const double cell = 1.0 / cells;
  std::vector<std::vector<Vertex>> grid(static_cast<std::size_t>(cells) *
                                        cells);
  auto cell_of = [&](double c) {
    return std::min<std::uint32_t>(cells - 1,
                                   static_cast<std::uint32_t>(c / cell));
  };
  for (Vertex v = 0; v < n; ++v) {
    grid[cell_of(y[v]) * cells + cell_of(x[v])].push_back(v);
  }

  const double r2 = radius * radius;
  std::vector<EdgeTriple> edges;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t cx = cell_of(x[v]);
    const std::uint32_t cy = cell_of(y[v]);
    for (std::uint32_t gy = cy == 0 ? 0 : cy - 1;
         gy <= std::min(cells - 1, cy + 1); ++gy) {
      for (std::uint32_t gx = cx == 0 ? 0 : cx - 1;
           gx <= std::min(cells - 1, cx + 1); ++gx) {
        for (const Vertex u : grid[gy * cells + gx]) {
          if (u <= v) continue;  // one direction; builder symmetrizes
          const double dx = x[u] - x[v];
          const double dy = y[u] - y[v];
          const double d2 = dx * dx + dy * dy;
          if (d2 > r2) continue;
          const double d = std::sqrt(d2) / radius;  // (0, 1]
          const Weight w = std::max<Weight>(
              1, static_cast<Weight>(d * weight_scale));
          edges.push_back({v, u, w});
        }
      }
    }
  }
  return build_graph(n, std::move(edges));
}

Graph chain(Vertex n) {
  if (n == 0) throw std::invalid_argument("chain: empty");
  std::vector<EdgeTriple> edges;
  edges.reserve(n);
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  return build_graph(n, std::move(edges));
}

Graph star(Vertex n) {
  if (n == 0) throw std::invalid_argument("star: empty");
  std::vector<EdgeTriple> edges;
  edges.reserve(n);
  for (Vertex v = 1; v < n; ++v) edges.push_back({0, v, 1});
  return build_graph(n, std::move(edges));
}

Graph complete(Vertex n) {
  if (n == 0) throw std::invalid_argument("complete: empty");
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) edges.push_back({u, v, 1});
  }
  return build_graph(n, std::move(edges));
}

Graph bipartite_chain(Vertex groups, Vertex d) {
  if (groups < 2 || d == 0) {
    throw std::invalid_argument("bipartite_chain: need >= 2 groups");
  }
  const Vertex n = groups * d;
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<std::size_t>(groups - 1) * d * d);
  for (Vertex g = 0; g + 1 < groups; ++g) {
    for (Vertex i = 0; i < d; ++i) {
      for (Vertex j = 0; j < d; ++j) {
        edges.push_back({g * d + i, (g + 1) * d + j, 1});
      }
    }
  }
  return build_graph(n, std::move(edges));
}

}  // namespace rs::gen
