// Vertex partitioner for the fragment-partitioned graph substrate.
//
// A Partition assigns every vertex of a flat Graph to exactly one of F
// fragments (its OWNER) and gives each vertex a dense LOCAL id within its
// fragment. Two assignment modes cover the workloads we care about:
//
//  * kContiguous — fragment f owns a contiguous global-id range (sizes
//    differ by at most one). Generators emit locality-friendly ids (grid
//    rows, BFS orders), so contiguous ranges keep most arcs inner; this is
//    the default and the mode NUMA placement wants.
//  * kHash — owner(v) = hash64(v) mod F. Destroys locality on purpose:
//    the adversarial mode for tests (maximal ghost traffic) and the
//    balanced mode for graphs whose id order is pathological.
//
// The maps are plain arrays both ways — owner()/local_id() are O(1) loads,
// global_id() is an indexed read of the fragment's sorted inner list — so
// engines translate ids in their hot loops without hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace rs {

/// How vertices are assigned to fragments.
enum class PartitionMode : std::uint8_t {
  kContiguous,  // fragment f owns one contiguous global-id range
  kHash,        // owner(v) = hash64(v) mod F (locality-free, balanced)
};

class Partition {
 public:
  Partition() = default;

  /// Contiguous-range partition of [0, n) into `fragments` ranges whose
  /// sizes differ by at most one (the first n % F ranges get the extra
  /// vertex). `fragments` is clamped to >= 1; fragments beyond n are empty.
  static Partition contiguous(Vertex n, std::size_t fragments);

  /// Hash partition: owner(v) = hash64(v) mod F. Same clamping.
  static Partition by_hash(Vertex n, std::size_t fragments);

  /// Dispatch on `mode`.
  static Partition make(Vertex n, std::size_t fragments, PartitionMode mode);

  PartitionMode mode() const { return mode_; }
  std::size_t num_fragments() const { return inner_.size(); }
  Vertex num_vertices() const { return n_; }

  /// Fragment owning global vertex `v`.
  std::uint32_t owner(Vertex v) const { return owner_[v]; }

  /// Dense id of `v` within its owner fragment (== its rank among the
  /// owner's inner vertices in ascending global order).
  Vertex local_id(Vertex v) const { return local_[v]; }

  /// Global id of local vertex `local` of fragment `f`.
  Vertex global_id(std::size_t f, Vertex local) const {
    return inner_[f][local];
  }

  /// The inner vertices of fragment `f`, ascending global ids. local_id()
  /// indexes into exactly this list.
  const std::vector<Vertex>& inner(std::size_t f) const { return inner_[f]; }

  Vertex fragment_size(std::size_t f) const {
    return static_cast<Vertex>(inner_[f].size());
  }

 private:
  Partition(Vertex n, std::size_t fragments, PartitionMode mode);

  PartitionMode mode_ = PartitionMode::kContiguous;
  Vertex n_ = 0;
  std::vector<std::uint32_t> owner_;       // global id -> fragment
  std::vector<Vertex> local_;              // global id -> local id
  std::vector<std::vector<Vertex>> inner_;  // fragment -> sorted global ids
};

/// Default in-process fragment count: RS_FRAGMENTS if set and valid
/// (parsed with the same discipline as RS_THREADS — garbage warns and
/// falls back), otherwise the worker count clamped to [1, 8].
int default_num_fragments();

/// Parses an RS_FRAGMENTS-style value; exposed for tests. Unset/empty
/// returns `fallback` silently; garbage or out-of-range warns on stderr
/// and returns `fallback`.
int parse_fragment_count(const char* value, int fallback);

}  // namespace rs
