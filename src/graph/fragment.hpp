// FragmentedGraph: the partition-aware view of a flat Graph that the
// fragment-parallel engine (core/rs_fragment.hpp) executes over.
//
// The model is the libgrape-lite inner/outer split: every vertex is INNER
// in exactly one fragment (its owner, per the Partition); a fragment
// additionally knows, as GHOSTS, the foreign vertices its arcs point at.
// Each fragment holds a local CSR over its inner vertices — every arc of
// the flat graph appears in exactly one fragment, the one owning its
// SOURCE — whose arc heads are "universe indices":
//
//   head <  num_inner()  : an inner vertex, == its local id
//   head >= num_inner()  : ghost index (head - num_inner()) into the
//                          ghost_global()/ghost_owner() tables
//
// so the relax loop branches once per arc to decide "relax locally" vs
// "stage a boundary message", with no hashing anywhere on the hot path.
// Ghost tables are sorted by global id, built once at construction.
//
// Construction verifies arc coverage (per-row degrees match the flat
// graph) and throws std::logic_error on any mismatch, so a FragmentedGraph
// that exists is known to cover every arc exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace rs {

class FragmentedGraph {
 public:
  /// One fragment's local CSR plus its ghost tables.
  struct Fragment {
    /// Inner vertices, ascending global id; local id == index.
    /// (Shared view: == partition().inner(f).)
    std::vector<Vertex> inner_global;
    /// Local CSR over the inner vertices: row `lu` holds the out-arcs of
    /// inner_global[lu]; heads are universe indices (see file comment).
    std::vector<EdgeId> offsets;   // num_inner + 1 entries
    std::vector<Vertex> heads;     // universe indices
    std::vector<Weight> weights;   // parallel to heads
    /// Ghost tables: global id and owner fragment of each ghost, indexed
    /// by (universe index - num_inner). Sorted by global id.
    std::vector<Vertex> ghost_global;
    std::vector<std::uint32_t> ghost_owner;

    Vertex num_inner() const {
      return static_cast<Vertex>(inner_global.size());
    }
    Vertex num_ghosts() const {
      return static_cast<Vertex>(ghost_global.size());
    }
    EdgeId first_arc(Vertex lu) const { return offsets[lu]; }
    EdgeId last_arc(Vertex lu) const { return offsets[lu + 1]; }
    bool is_inner_head(Vertex head) const { return head < num_inner(); }
    /// Global id of any universe index (inner or ghost head).
    Vertex to_global(Vertex head) const {
      return head < num_inner() ? inner_global[head]
                                : ghost_global[head - num_inner()];
    }
  };

  FragmentedGraph() = default;

  /// Partitions `g` with `fragments` fragments in `mode` and builds the
  /// per-fragment CSRs. `fragments` == 0 means default_num_fragments().
  FragmentedGraph(const Graph& g, std::size_t fragments,
                  PartitionMode mode = PartitionMode::kContiguous);

  /// Builds over a caller-supplied partition (must cover g's vertices).
  FragmentedGraph(const Graph& g, Partition partition);

  std::size_t num_fragments() const { return fragments_.size(); }
  Vertex num_vertices() const { return partition_.num_vertices(); }
  EdgeId num_edges() const { return num_edges_; }

  const Partition& partition() const { return partition_; }
  const Fragment& fragment(std::size_t f) const { return fragments_[f]; }

  /// Every arc as a global (source, target, weight) triple, grouped by
  /// fragment then by local row. Order differs from Graph::to_triples();
  /// compare as multisets. (Test/debug aid, not a hot path.)
  std::vector<EdgeTriple> to_triples() const;

 private:
  void build(const Graph& g);

  Partition partition_;
  std::vector<Fragment> fragments_;
  EdgeId num_edges_ = 0;
};

}  // namespace rs
