#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "parallel/primitives.hpp"

namespace rs {

Graph build_graph(Vertex n, std::vector<EdgeTriple> triples,
                  const BuildOptions& opts) {
  for (const EdgeTriple& t : triples) {
    if (t.u >= n || t.v >= n) {
      throw std::invalid_argument("build_graph: endpoint out of range");
    }
  }
  if (opts.remove_self_loops) {
    triples.erase(
        std::remove_if(triples.begin(), triples.end(),
                       [](const EdgeTriple& t) { return t.u == t.v; }),
        triples.end());
  }
  if (opts.symmetrize) {
    const std::size_t m = triples.size();
    triples.resize(2 * m);
    parallel_for(0, m, [&](std::size_t i) {
      const EdgeTriple& t = triples[i];
      triples[m + i] = EdgeTriple{t.v, t.u, t.w};
    });
  }
  parallel_sort(triples, [](const EdgeTriple& a, const EdgeTriple& b) {
    return std::tuple(a.u, a.v, a.w) < std::tuple(b.u, b.v, b.w);
  });
  if (opts.dedup) {
    // Sorted by (u, v, w): the first triple of each (u, v) group carries the
    // minimum weight, so unique-by-endpoint keeps exactly that one.
    auto last = std::unique(triples.begin(), triples.end(),
                            [](const EdgeTriple& a, const EdgeTriple& b) {
                              return a.u == b.u && a.v == b.v;
                            });
    triples.erase(last, triples.end());
  }

  const std::size_t m = triples.size();
  std::vector<EdgeId> counts(n, 0);
  for (const EdgeTriple& t : triples) ++counts[t.u];
  std::vector<EdgeId> offsets(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + counts[v];

  std::vector<Vertex> targets(m);
  std::vector<Weight> weights(m);
  parallel_for(0, m, [&](std::size_t i) {
    // Triples are sorted by u, so arcs of u occupy a contiguous range that
    // starts at offsets[u]; index i within the range is i - (first index of
    // u's group) == i - (offsets[u] of the sorted order). Because the sort
    // is global we can address directly: position i in the sorted array IS
    // the CSR slot.
    targets[i] = triples[i].v;
    weights[i] = triples[i].w;
  });
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

Graph merge_edges(const Graph& g, std::vector<EdgeTriple> extra,
                  const BuildOptions& opts) {
  std::vector<EdgeTriple> all = g.to_triples();
  all.insert(all.end(), extra.begin(), extra.end());
  // The base graph already stores both arc directions; symmetrizing again
  // only duplicates them, and dedup removes the copies. Extra arcs do need
  // symmetrizing, which this achieves in one pass.
  return build_graph(g.num_vertices(), std::move(all), opts);
}

}  // namespace rs
