#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "parallel/primitives.hpp"

namespace rs {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<Vertex> targets,
             std::vector<Weight> weights)
    : n_(offsets.empty() ? 0 : static_cast<Vertex>(offsets.size() - 1)),
      offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)) {
  if (offsets_.empty()) {
    offsets_.push_back(0);
  }
  if (offsets_.front() != 0 || offsets_.back() != targets_.size() ||
      targets_.size() != weights_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR arrays");
  }
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::invalid_argument("Graph: offsets not monotone");
  }
  for (const Vertex t : targets_) {
    if (t >= n_) throw std::invalid_argument("Graph: target out of range");
  }
}

Weight Graph::max_weight() const {
  if (weights_.empty()) return 1;
  return parallel_reduce(
      std::size_t{0}, weights_.size(), Weight{0},
      [&](std::size_t i) { return weights_[i]; },
      [](Weight a, Weight b) { return a > b ? a : b; });
}

Weight Graph::min_weight() const {
  Weight best = std::numeric_limits<Weight>::max();
  for (const Weight w : weights_) {
    if (w > 0 && w < best) best = w;
  }
  return best == std::numeric_limits<Weight>::max() ? 1 : best;
}

EdgeId Graph::max_degree() const {
  EdgeId best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

template <typename Cmp>
Graph Graph::with_sorted_adjacency(Cmp cmp) const {
  std::vector<Vertex> targets(targets_.size());
  std::vector<Weight> weights(weights_.size());
  parallel_for(0, n_, [&](std::size_t v) {
    const EdgeId lo = offsets_[v];
    const EdgeId hi = offsets_[v + 1];
    std::vector<std::pair<Weight, Vertex>> adj;
    adj.reserve(static_cast<std::size_t>(hi - lo));
    for (EdgeId e = lo; e < hi; ++e) adj.emplace_back(weights_[e], targets_[e]);
    std::sort(adj.begin(), adj.end(), cmp);
    for (EdgeId e = lo; e < hi; ++e) {
      const auto& [w, t] = adj[static_cast<std::size_t>(e - lo)];
      weights[e] = w;
      targets[e] = t;
    }
  }, /*grain=*/64);
  return Graph(offsets_, std::move(targets), std::move(weights));
}

Graph Graph::with_weight_sorted_adjacency() const {
  return with_sorted_adjacency([](const std::pair<Weight, Vertex>& a,
                                  const std::pair<Weight, Vertex>& b) {
    return a < b;
  });
}

Graph Graph::with_target_sorted_adjacency() const {
  return with_sorted_adjacency([](const std::pair<Weight, Vertex>& a,
                                  const std::pair<Weight, Vertex>& b) {
    return std::pair(a.second, a.first) < std::pair(b.second, b.first);
  });
}

Graph Graph::transposed() const {
  const EdgeId m = num_edges();
  // Counting sort by arc target: offsets first, then a stable placement
  // pass, so the transposed adjacency lists come out sorted by source id.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    ++offsets[static_cast<std::size_t>(targets_[e]) + 1];
  }
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<Vertex> targets(targets_.size());
  std::vector<Weight> weights(weights_.size());
  for (Vertex u = 0; u < n_; ++u) {
    for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      const EdgeId pos = cursor[targets_[e]]++;
      targets[pos] = u;
      weights[pos] = weights_[e];
    }
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

std::vector<EdgeTriple> Graph::to_triples() const {
  std::vector<EdgeTriple> out(targets_.size());
  parallel_for(0, n_, [&](std::size_t v) {
    for (EdgeId e = offsets_[v]; e < offsets_[v + 1]; ++e) {
      out[e] = EdgeTriple{static_cast<Vertex>(v), targets_[e], weights_[e]};
    }
  }, /*grain=*/256);
  return out;
}

}  // namespace rs
