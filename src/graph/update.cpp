#include "graph/update.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace rs {

namespace {

/// Sets every arc u->v in `weights` to `w`; records each touched arc's
/// pre-BATCH weight into `first_old` (insert-if-absent, so repeated
/// updates to one edge keep the original). Returns the number of arcs hit.
std::size_t rewrite_arcs(const Graph& g, std::vector<Weight>& weights,
                         Vertex u, Vertex v, Weight w,
                         std::map<EdgeId, Weight>& first_old) {
  std::size_t hit = 0;
  for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
    if (g.arc_target(e) != v) continue;
    first_old.emplace(e, weights[e]);
    weights[e] = w;
    ++hit;
  }
  return hit;
}

}  // namespace

UpdateApplication apply_weight_updates(
    const Graph& g, const std::vector<WeightUpdate>& updates) {
  const Vertex n = g.num_vertices();
  std::vector<Weight> weights = g.weights();
  std::map<EdgeId, Weight> first_old;  // ordered: changes come out sorted

  for (const WeightUpdate& up : updates) {
    if (up.u >= n || up.v >= n) {
      throw std::invalid_argument("apply_weight_updates: vertex out of range");
    }
    if (up.w < 1) {
      throw std::invalid_argument("apply_weight_updates: weight must be >= 1");
    }
    std::size_t hit = rewrite_arcs(g, weights, up.u, up.v, up.w, first_old);
    if (up.u != up.v) {
      hit += rewrite_arcs(g, weights, up.v, up.u, up.w, first_old);
    }
    if (hit == 0) {
      throw std::invalid_argument(
          "apply_weight_updates: no arc between " + std::to_string(up.u) +
          " and " + std::to_string(up.v));
    }
  }

  UpdateApplication out;
  out.changes.reserve(first_old.size());
  for (const auto& [arc, w_old] : first_old) {
    if (weights[arc] == w_old) continue;  // batch-level no-op
    ArcChange c;
    c.arc = arc;
    c.v = g.arc_target(arc);
    c.w_old = w_old;
    c.w_new = weights[arc];
    out.changes.push_back(c);
  }
  // Fill tails with one offsets sweep instead of a per-arc binary search.
  if (!out.changes.empty()) {
    std::size_t i = 0;
    for (Vertex u = 0; u < n && i < out.changes.size(); ++u) {
      while (i < out.changes.size() && out.changes[i].arc < g.last_arc(u)) {
        out.changes[i].u = u;
        ++i;
      }
    }
  }
  out.graph = Graph(g.offsets(), g.targets(), std::move(weights));
  return out;
}

}  // namespace rs
