#include "graph/stats.hpp"

#include <algorithm>
#include <atomic>
#include <queue>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"

namespace rs {

std::vector<Vertex> connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> comp(n, kNoVertex);
  std::vector<Vertex> stack;
  Vertex next_id = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != kNoVertex) continue;
    const Vertex id = next_id++;
    comp[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Vertex v : g.neighbors(u)) {
        if (comp[v] == kNoVertex) {
          comp[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return comp;
}

std::vector<Vertex> connected_components_parallel(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<std::atomic<Vertex>> label(n);
  parallel_for(0, n, [&](std::size_t i) {
    label[i].store(static_cast<Vertex>(i), std::memory_order_relaxed);
  });
  // Min-label propagation with pointer-jumping-style shortcutting: each
  // round pushes the minimum over neighbours, then compresses label chains.
  bool changed = true;
  while (changed) {
    std::atomic<bool> any{false};
    parallel_for(0, n, [&](std::size_t vi) {
      const Vertex v = static_cast<Vertex>(vi);
      Vertex best = label[v].load(std::memory_order_relaxed);
      for (const Vertex u : g.neighbors(v)) {
        best = std::min(best, label[u].load(std::memory_order_relaxed));
      }
      Vertex cur = label[v].load(std::memory_order_relaxed);
      while (best < cur) {
        if (label[v].compare_exchange_weak(cur, best,
                                           std::memory_order_relaxed)) {
          any.store(true, std::memory_order_relaxed);
          break;
        }
      }
    }, /*grain=*/512);
    // Shortcut: label[v] <- label[label[v]] until stable (cheap compression
    // pass; safe because labels only decrease).
    parallel_for(0, n, [&](std::size_t vi) {
      Vertex l = label[vi].load(std::memory_order_relaxed);
      Vertex ll = label[l].load(std::memory_order_relaxed);
      while (ll < l) {
        l = ll;
        ll = label[l].load(std::memory_order_relaxed);
      }
      label[vi].store(l, std::memory_order_relaxed);
    }, /*grain=*/512);
    changed = any.load(std::memory_order_relaxed);
  }
  // Densify: first-seen order over vertex ids, matching the sequential
  // routine's numbering (component of vertex 0 is 0, etc.).
  std::vector<Vertex> out(n);
  std::vector<Vertex> dense(n, kNoVertex);
  Vertex next = 0;
  for (Vertex v = 0; v < n; ++v) {
    const Vertex root = label[v].load(std::memory_order_relaxed);
    if (dense[root] == kNoVertex) dense[root] = next++;
    out[v] = dense[root];
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const std::vector<Vertex> comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](Vertex c) { return c == 0; });
}

Graph largest_component(const Graph& g, std::vector<Vertex>* old_to_new) {
  const Vertex n = g.num_vertices();
  const std::vector<Vertex> comp = connected_components(g);
  const Vertex num_comp =
      comp.empty() ? 0 : *std::max_element(comp.begin(), comp.end()) + 1;
  std::vector<EdgeId> size(num_comp, 0);
  for (const Vertex c : comp) ++size[c];
  const Vertex best = static_cast<Vertex>(
      std::max_element(size.begin(), size.end()) - size.begin());

  std::vector<Vertex> map(n, kNoVertex);
  Vertex next = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (comp[v] == best) map[v] = next++;
  }
  std::vector<EdgeTriple> edges;
  edges.reserve(g.num_edges());
  for (Vertex u = 0; u < n; ++u) {
    if (map[u] == kNoVertex) continue;
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      if (u < v) edges.push_back({map[u], map[v], g.arc_weight(e)});
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return build_graph(next, std::move(edges));
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const Vertex n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (Vertex v = 0; v < n; ++v) {
    const EdgeId d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = static_cast<double>(g.num_edges()) / n;
  return s;
}

Vertex bfs_eccentricity(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> level(n, kNoVertex);
  std::queue<Vertex> q;
  level[source] = 0;
  q.push(source);
  Vertex ecc = 0;
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    for (const Vertex v : g.neighbors(u)) {
      if (level[v] == kNoVertex) {
        level[v] = level[u] + 1;
        ecc = std::max(ecc, level[v]);
        q.push(v);
      }
    }
  }
  return ecc;
}

Vertex approx_diameter(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  if (n == 0) return 0;
  // Double sweep: BFS to the farthest vertex, then BFS again from it.
  std::vector<Vertex> level(n, kNoVertex);
  std::queue<Vertex> q;
  level[source] = 0;
  q.push(source);
  Vertex far = source;
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    for (const Vertex v : g.neighbors(u)) {
      if (level[v] == kNoVertex) {
        level[v] = level[u] + 1;
        if (level[v] > level[far]) far = v;
        q.push(v);
      }
    }
  }
  return bfs_eccentricity(g, far);
}

}  // namespace rs
