#include "graph/fragment.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/primitives.hpp"

namespace rs {

FragmentedGraph::FragmentedGraph(const Graph& g, std::size_t fragments,
                                 PartitionMode mode)
    : partition_(Partition::make(
          g.num_vertices(),
          fragments == 0 ? static_cast<std::size_t>(default_num_fragments())
                         : fragments,
          mode)) {
  build(g);
}

FragmentedGraph::FragmentedGraph(const Graph& g, Partition partition)
    : partition_(std::move(partition)) {
  if (partition_.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument(
        "FragmentedGraph: partition does not cover the graph");
  }
  build(g);
}

void FragmentedGraph::build(const Graph& g) {
  const std::size_t nf = partition_.num_fragments();
  const Vertex n = g.num_vertices();
  fragments_.resize(nf);
  num_edges_ = g.num_edges();

  // Build fragments independently (one worker each): every pass below only
  // reads the shared flat CSR and writes fragment f's own tables.
  const auto build_one = [&](std::size_t f) {
    Fragment& frag = fragments_[f];
    frag.inner_global = partition_.inner(f);
    const Vertex ni = frag.num_inner();

    // Pass 1: per-row arc counts and ghost discovery. `slot` maps a global
    // id to its universe index within this fragment; kNoVertex = unseen
    // ghost. O(n) scratch per fragment, build-time only.
    std::vector<Vertex> slot(n, kNoVertex);
    for (Vertex lu = 0; lu < ni; ++lu) slot[frag.inner_global[lu]] = lu;

    EdgeId arcs = 0;
    for (Vertex lu = 0; lu < ni; ++lu) {
      const Vertex u = frag.inner_global[lu];
      arcs += g.last_arc(u) - g.first_arc(u);
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        if (slot[v] == kNoVertex) {
          frag.ghost_global.push_back(v);
          slot[v] = 0;  // seen; the final index is assigned after sorting
        }
      }
    }
    // Ghost tables sorted by global id, then final universe indices.
    std::sort(frag.ghost_global.begin(), frag.ghost_global.end());
    frag.ghost_owner.resize(frag.ghost_global.size());
    for (Vertex i = 0; i < frag.num_ghosts(); ++i) {
      const Vertex v = frag.ghost_global[i];
      frag.ghost_owner[i] = partition_.owner(v);
      slot[v] = ni + i;
    }

    // Pass 2: fill the local CSR in flat-graph arc order per row.
    frag.offsets.assign(static_cast<std::size_t>(ni) + 1, 0);
    frag.heads.resize(arcs);
    frag.weights.resize(arcs);
    EdgeId out = 0;
    for (Vertex lu = 0; lu < ni; ++lu) {
      frag.offsets[lu] = out;
      const Vertex u = frag.inner_global[lu];
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        frag.heads[out] = slot[g.arc_target(e)];
        frag.weights[out] = g.arc_weight(e);
        ++out;
      }
    }
    frag.offsets[ni] = out;
    if (out != arcs) {
      throw std::logic_error("FragmentedGraph: arc count drifted");
    }
  };
  if (num_workers() > 1 && nf > 1) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t f = 0; f < static_cast<std::int64_t>(nf); ++f) {
      build_one(static_cast<std::size_t>(f));
    }
  } else {
    for (std::size_t f = 0; f < nf; ++f) build_one(f);
  }

  // Coverage verification: every vertex inner exactly once is the
  // Partition's invariant; every ARC exactly once is checked here — each
  // inner row must match the flat row's degree, and the fragment totals
  // must sum to the flat arc count.
  EdgeId total = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    const Fragment& frag = fragments_[f];
    for (Vertex lu = 0; lu < frag.num_inner(); ++lu) {
      const Vertex u = frag.inner_global[lu];
      if (frag.last_arc(lu) - frag.first_arc(lu) !=
          g.last_arc(u) - g.first_arc(u)) {
        throw std::logic_error("FragmentedGraph: row degree mismatch");
      }
    }
    total += frag.offsets[frag.num_inner()];
  }
  if (total != g.num_edges()) {
    throw std::logic_error("FragmentedGraph: arc coverage mismatch");
  }
}

std::vector<EdgeTriple> FragmentedGraph::to_triples() const {
  std::vector<EdgeTriple> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (const Fragment& frag : fragments_) {
    for (Vertex lu = 0; lu < frag.num_inner(); ++lu) {
      const Vertex u = frag.inner_global[lu];
      for (EdgeId e = frag.first_arc(lu); e < frag.last_arc(lu); ++e) {
        out.push_back(EdgeTriple{u, frag.to_global(frag.heads[e]),
                                 frag.weights[e]});
      }
    }
  }
  return out;
}

}  // namespace rs
