// Fundamental scalar types shared by every module.
//
// The paper's experiments use integer weights in [1, 10^4] with the minimum
// nonzero weight normalized to 1 and L = max weight. Integer weights keep
// all distance arithmetic exact and make the atomic WriteMin used by the
// parallel relaxation a single CAS on a uint64_t.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rs {

/// Minimal C++17 stand-in for std::span<const T>: a non-owning view over a
/// contiguous run of elements (adjacency lists into the CSR arrays).
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, std::size_t size) : data_(data), size_(size) {}

  constexpr const T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](std::size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

using Vertex = std::uint32_t;
using Weight = std::uint32_t;
using Dist = std::uint64_t;
using EdgeId = std::uint64_t;

/// Sentinel for "unreached". Large enough that dist + weight never wraps.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max() / 4;

/// Sentinel for "no vertex" (parents, leads, ...).
inline constexpr Vertex kNoVertex = std::numeric_limits<Vertex>::max();

/// A weighted directed arc; undirected graphs store both directions.
struct EdgeTriple {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 1;

  friend bool operator==(const EdgeTriple& a, const EdgeTriple& b) {
    return a.u == b.u && a.v == b.v && a.w == b.w;
  }
  friend bool operator!=(const EdgeTriple& a, const EdgeTriple& b) {
    return !(a == b);
  }
};

}  // namespace rs
