// Fundamental scalar types shared by every module.
//
// The paper's experiments use integer weights in [1, 10^4] with the minimum
// nonzero weight normalized to 1 and L = max weight. Integer weights keep
// all distance arithmetic exact and make the atomic WriteMin used by the
// parallel relaxation a single CAS on a uint64_t.
#pragma once

#include <cstdint>
#include <limits>

namespace rs {

using Vertex = std::uint32_t;
using Weight = std::uint32_t;
using Dist = std::uint64_t;
using EdgeId = std::uint64_t;

/// Sentinel for "unreached". Large enough that dist + weight never wraps.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max() / 4;

/// Sentinel for "no vertex" (parents, leads, ...).
inline constexpr Vertex kNoVertex = std::numeric_limits<Vertex>::max();

/// A weighted directed arc; undirected graphs store both directions.
struct EdgeTriple {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 1;

  friend bool operator==(const EdgeTriple&, const EdgeTriple&) = default;
};

}  // namespace rs
