/// \file
/// Epoch/RCU-style snapshot swap: readers pin, a writer publishes.
///
/// Dynamic weight updates must not stall serving: while a new graph (or a
/// whole new engine) is prepared, every in-flight query keeps running
/// against the old snapshot. SnapshotSwap<T> is the tiny synchronization
/// core that makes this safe without a reader-side lock:
///
///  * readers call pin() and get a shared_ptr that keeps THEIR snapshot
///    alive for as long as they hold it — a micro-batch pins once and
///    serves every request in the batch from one consistent snapshot;
///  * the writer prepares the replacement off to the side, then publishes
///    it with a single atomic pointer store. Readers that pinned before
///    the publish finish on the old snapshot; readers that pin after get
///    the new one. Nobody ever observes a half-swapped state, and the old
///    snapshot is reclaimed when its last reader drops out (classic RCU
///    grace period via shared_ptr reference counting).
///
/// Implemented with the C++17 std::atomic_load/atomic_store overloads for
/// shared_ptr, so the swap is lock-free on mainstream implementations and
/// correct everywhere. The serving daemon instantiates this over
/// SsspEngine (serve/server.hpp); GraphSwap is the graph-level alias.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

#include "graph/graph.hpp"

namespace rs {

/// Single-writer/multi-reader atomic snapshot holder (see file comment).
/// T is the immutable snapshot type (Graph, SsspEngine, ...). Concurrent
/// publish() calls are individually atomic; last writer wins.
template <typename T>
class SnapshotSwap {
 public:
  /// Starts empty: pin() returns null until the first publish().
  SnapshotSwap() = default;

  /// Starts with `initial` as the current snapshot.
  explicit SnapshotSwap(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {}

  SnapshotSwap(const SnapshotSwap&) = delete;
  SnapshotSwap& operator=(const SnapshotSwap&) = delete;

  /// Pins the current snapshot: the returned shared_ptr stays valid (and
  /// the snapshot alive) however many publish() calls race past. Null only
  /// when nothing has been published yet.
  std::shared_ptr<const T> pin() const {
    return std::atomic_load_explicit(&current_, std::memory_order_acquire);
  }

  /// Publishes `next` as the new current snapshot. Readers pinned to the
  /// old snapshot are unaffected; the old snapshot is destroyed when the
  /// last such pin is dropped.
  void publish(std::shared_ptr<const T> next) {
    std::atomic_store_explicit(&current_, std::move(next),
                               std::memory_order_release);
  }

 private:
  std::shared_ptr<const T> current_;
};

/// Graph-level snapshot swap: the substrate for serving layers that hold
/// a raw Graph rather than a full engine.
using GraphSwap = SnapshotSwap<Graph>;

}  // namespace rs
