// Edge-list -> CSR construction with the clean-ups every generator needs.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace rs {

struct BuildOptions {
  /// Add the reverse arc of every triple (undirected graphs; the paper's
  /// setting). Reverse arcs carry the same weight.
  bool symmetrize = true;
  /// Drop u == v arcs (the paper assumes simple graphs).
  bool remove_self_loops = true;
  /// Collapse parallel arcs, keeping the minimum weight.
  bool dedup = true;
};

/// Builds a CSR graph on `n` vertices from arc triples. Adjacency lists come
/// out sorted by (target, weight). Work is O(m log m) via a parallel sort.
Graph build_graph(Vertex n, std::vector<EdgeTriple> triples,
                  const BuildOptions& opts = {});

/// Merges extra arcs (e.g. shortcut edges from preprocessing) into an
/// existing graph, symmetrizing and deduplicating by minimum weight.
Graph merge_edges(const Graph& g, std::vector<EdgeTriple> extra,
                  const BuildOptions& opts = {});

}  // namespace rs
