#include "graph/weights.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs {

Graph assign_uniform_weights(const Graph& g, std::uint64_t seed, Weight lo,
                             Weight hi) {
  if (lo == 0 || lo > hi) {
    throw std::invalid_argument("assign_uniform_weights: bad range");
  }
  const SplitRng rng(seed);
  const Vertex n = g.num_vertices();
  std::vector<Weight> weights(g.num_edges());
  parallel_for(0, n, [&](std::size_t u) {
    for (EdgeId e = g.first_arc(static_cast<Vertex>(u));
         e < g.last_arc(static_cast<Vertex>(u)); ++e) {
      const Vertex v = g.arc_target(e);
      const std::uint64_t a = std::min<std::uint64_t>(u, v);
      const std::uint64_t b = std::max<std::uint64_t>(u, v);
      const std::uint64_t key = a * 0x100000001ull + b;
      weights[e] = lo + static_cast<Weight>(
                            rng.bounded(key, 0, hi - lo + std::uint64_t{1}));
    }
  }, /*grain=*/256);
  return Graph(g.offsets(), g.targets(), std::move(weights));
}

Graph assign_unit_weights(const Graph& g) {
  return Graph(g.offsets(), g.targets(),
               std::vector<Weight>(g.num_edges(), 1));
}

}  // namespace rs
