#include "graph/partition.hpp"

#include <algorithm>
#include <cstdlib>

#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs {

Partition::Partition(Vertex n, std::size_t fragments, PartitionMode mode)
    : mode_(mode),
      n_(n),
      owner_(n),
      local_(n),
      inner_(fragments < 1 ? 1 : fragments) {}

Partition Partition::contiguous(Vertex n, std::size_t fragments) {
  if (fragments < 1) fragments = 1;
  Partition p(n, fragments, PartitionMode::kContiguous);
  const auto f32 = static_cast<Vertex>(fragments);
  const Vertex base = n / f32;
  const Vertex extra = n % f32;  // the first `extra` ranges get one more
  Vertex next = 0;
  for (std::size_t f = 0; f < fragments; ++f) {
    const Vertex len = base + (static_cast<Vertex>(f) < extra ? 1 : 0);
    auto& list = p.inner_[f];
    list.reserve(len);
    for (Vertex i = 0; i < len; ++i) {
      const Vertex v = next + i;
      p.owner_[v] = static_cast<std::uint32_t>(f);
      p.local_[v] = i;
      list.push_back(v);
    }
    next += len;
  }
  return p;
}

Partition Partition::by_hash(Vertex n, std::size_t fragments) {
  if (fragments < 1) fragments = 1;
  Partition p(n, fragments, PartitionMode::kHash);
  for (Vertex v = 0; v < n; ++v) {
    const auto f = static_cast<std::uint32_t>(
        hash64(static_cast<std::uint64_t>(v)) %
        static_cast<std::uint64_t>(fragments));
    p.owner_[v] = f;
    p.local_[v] = static_cast<Vertex>(p.inner_[f].size());
    p.inner_[f].push_back(v);  // ascending v => ascending global order
  }
  return p;
}

Partition Partition::make(Vertex n, std::size_t fragments,
                          PartitionMode mode) {
  return mode == PartitionMode::kHash ? by_hash(n, fragments)
                                      : contiguous(n, fragments);
}

int parse_fragment_count(const char* value, int fallback) {
  return parse_count_env("RS_FRAGMENTS", value, fallback);
}

int default_num_fragments() {
  const int fallback = std::min(8, std::max(1, num_workers()));
  return parse_fragment_count(std::getenv("RS_FRAGMENTS"), fallback);
}

}  // namespace rs
