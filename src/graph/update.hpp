/// \file
/// Live edge-weight updates over the immutable CSR Graph.
///
/// The Graph class is deliberately immutable — every engine, fragment
/// substrate, and cached row assumes the CSR it was built from never
/// changes under it. Dynamic traffic (road congestion, link cost churn)
/// is therefore modeled as a BATCH transformation: apply_weight_updates()
/// takes the current graph plus a list of WeightUpdate records and
/// returns a NEW graph with identical topology (same offsets/targets
/// arrays, so every EdgeId keeps its meaning) and the requested weights,
/// together with the exact per-arc delta list (ArcChange) that the
/// incremental re-preprocessing (shortcut/incremental.hpp) and the online
/// correction kernel (core/dyn_sssp.hpp) consume.
///
/// Semantics follow the paper's undirected setting: an update (u, v, w)
/// re-weights EVERY arc u->v and every arc v->u (parallel arcs collapse
/// onto the same new weight — consistent with the builder's
/// dedup-by-minimum rule). On a directed graph only the directions that
/// actually exist are touched. Weight updates never add or remove arcs,
/// so reachability is invariant — only distances move.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace rs {

/// One requested edge re-weight: set the weight of edge {u, v} to `w`.
/// Within a batch, later updates to the same edge win.
struct WeightUpdate {
  /// One endpoint of the edge to re-weight.
  Vertex u = kNoVertex;
  /// The other endpoint (u == v re-weights a self-loop).
  Vertex v = kNoVertex;
  /// New weight; must be >= 1 (the paper normalizes min weight to 1).
  Weight w = 1;
};

/// One DIRECTED arc whose weight actually changed, with both the pre- and
/// post-batch weight. apply_weight_updates() emits one record per touched
/// arc (so an undirected update normally yields two, one per direction)
/// and drops no-ops — consumers can classify increase vs decrease by
/// comparing the two weights.
struct ArcChange {
  /// Arc tail in the CSR (the vertex whose adjacency list holds `arc`).
  Vertex u = kNoVertex;
  /// Arc head.
  Vertex v = kNoVertex;
  /// Weight before the batch.
  Weight w_old = 0;
  /// Weight after the batch (never equal to w_old).
  Weight w_new = 0;
  /// The arc's EdgeId — stable across the update because the CSR layout
  /// (offsets/targets) is untouched; indexes both the old and new graph.
  EdgeId arc = 0;
};

/// Result of apply_weight_updates(): the re-weighted graph plus the exact
/// arc-level delta.
struct UpdateApplication {
  /// The new graph: identical offsets/targets, updated weights.
  Graph graph;
  /// Every arc whose weight changed, in ascending EdgeId order. Empty when
  /// the batch was a no-op (all updates re-stated current weights).
  std::vector<ArcChange> changes;
};

/// Applies a batch of weight updates to `g` and returns the new graph plus
/// the per-arc change list. Throws std::invalid_argument when an update
/// names an out-of-range vertex, a weight < 1, or an edge with no arc in
/// either direction. Within the batch, later updates to the same edge win;
/// `changes` always reports the pre-batch weight as w_old and the final
/// weight as w_new, with unchanged arcs omitted.
UpdateApplication apply_weight_updates(
    const Graph& g, const std::vector<WeightUpdate>& updates);

}  // namespace rs
