// Compressed-sparse-row graph: the storage format every algorithm runs on.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace rs {

/// Immutable CSR graph. For undirected graphs both arc directions are
/// stored, so `num_edges()` counts directed arcs (2x the undirected count).
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeId> offsets, std::vector<Vertex> targets,
        std::vector<Weight> weights);

  Vertex num_vertices() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(targets_.size()); }
  /// Number of undirected edges (arcs / 2) — what the paper calls m.
  EdgeId num_undirected_edges() const { return num_edges() / 2; }

  EdgeId degree(Vertex v) const {
    assert(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }

  EdgeId first_arc(Vertex v) const { return offsets_[v]; }
  EdgeId last_arc(Vertex v) const { return offsets_[v + 1]; }

  Vertex arc_target(EdgeId e) const { return targets_[e]; }
  Weight arc_weight(EdgeId e) const { return weights_[e]; }

  Span<Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }
  Span<Weight> neighbor_weights(Vertex v) const {
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(degree(v))};
  }

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<Vertex>& targets() const { return targets_; }
  const std::vector<Weight>& weights() const { return weights_; }

  /// Largest edge weight (the paper's L); 1 for an edgeless graph.
  Weight max_weight() const;
  /// Smallest nonzero edge weight; the paper normalizes this to 1.
  Weight min_weight() const;
  EdgeId max_degree() const;

  /// Copy of this graph with each adjacency list sorted by ascending weight
  /// (tie-break by target id). Preprocessing's truncated Dijkstra relies on
  /// this to consider only the lightest rho edges per vertex (Lemma 4.2).
  Graph with_weight_sorted_adjacency() const;

  /// Copy with each adjacency list sorted by target id (canonical form,
  /// handy for equality checks in tests).
  Graph with_target_sorted_adjacency() const;

  /// All arcs as triples (u, v, w); order follows the CSR layout.
  std::vector<EdgeTriple> to_triples() const;

  /// Copy with every arc reversed (u->v becomes v->u, weight kept). For a
  /// symmetric (undirected) graph this holds the same arc multiset; for a
  /// directed graph it is the in-adjacency view path reconstruction needs.
  Graph transposed() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.n_ == b.n_ && a.offsets_ == b.offsets_ &&
           a.targets_ == b.targets_ && a.weights_ == b.weights_;
  }
  friend bool operator!=(const Graph& a, const Graph& b) { return !(a == b); }

 private:
  template <typename Cmp>
  Graph with_sorted_adjacency(Cmp cmp) const;

  Vertex n_ = 0;
  std::vector<EdgeId> offsets_;   // size n_ + 1
  std::vector<Vertex> targets_;   // size m
  std::vector<Weight> weights_;   // size m
};

}  // namespace rs
