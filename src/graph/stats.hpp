// Structural queries: connectivity, components, degree statistics,
// eccentricity estimates. Used for sanity checks, test oracles, and bench
// reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rs {

/// Component id per vertex, ids dense in [0, #components).
std::vector<Vertex> connected_components(const Graph& g);

/// Parallel label propagation: each round every vertex adopts the minimum
/// label in its closed neighbourhood until a fixed point. Labels are then
/// densified. Same output as connected_components (component ids may map
/// differently but partition identically; this one guarantees the minimum
/// vertex id semantics internally and densifies in first-seen order).
std::vector<Vertex> connected_components_parallel(const Graph& g);

bool is_connected(const Graph& g);

/// Induced subgraph of the largest connected component. `old_to_new` (if
/// non-null) receives the vertex mapping (kNoVertex for dropped vertices).
Graph largest_component(const Graph& g,
                        std::vector<Vertex>* old_to_new = nullptr);

struct DegreeStats {
  EdgeId min = 0;
  EdgeId max = 0;
  double mean = 0.0;
};
DegreeStats degree_stats(const Graph& g);

/// Hop eccentricity of `source` (longest BFS distance in its component).
Vertex bfs_eccentricity(const Graph& g, Vertex source);

/// Lower bound on hop diameter via a double BFS sweep from `source`.
Vertex approx_diameter(const Graph& g, Vertex source = 0);

}  // namespace rs
