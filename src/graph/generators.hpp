// Synthetic graph generators.
//
// These stand in for the paper's SNAP datasets (see DESIGN.md §3): the
// jittered road network replaces the Pennsylvania/Texas road maps, the
// scale-free generators (Barabási–Albert, R-MAT) replace the Notre Dame /
// Stanford webgraphs, and the grids match the paper's synthetic grids
// exactly. All generators are deterministic in their seed and produce
// connected, simple, undirected graphs unless noted.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace rs::gen {

/// rows x cols 4-neighbour lattice (the paper's 2-D grid). Unit weights.
Graph grid2d(Vertex rows, Vertex cols);

/// x*y*z 6-neighbour lattice (the paper's 3-D grid). Unit weights.
Graph grid3d(Vertex nx, Vertex ny, Vertex nz);

/// Road-network stand-in: a 2-D lattice whose non-tree edges survive with
/// probability `keep_prob`, plus occasional diagonal "highway ramps"
/// (probability `diag_prob`). A random spanning tree is always kept, so the
/// result is connected with average degree ~2.5-3.5, near-planar, and
/// Theta(sqrt(n)) hop diameter — the properties the paper's road-map
/// experiments exercise. Unit weights.
Graph road_network(Vertex rows, Vertex cols, std::uint64_t seed,
                   double keep_prob = 0.55, double diag_prob = 0.05);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices weighted by degree. Scale-free with
/// hub vertices, connected by construction. Stand-in for webgraphs.
Graph barabasi_albert(Vertex n, Vertex edges_per_vertex, std::uint64_t seed);

/// Webgraph stand-in with both of the structures real web crawls have: a
/// preferential-attachment core (fraction `core_fraction` of n, attachment
/// degree `core_deg`) producing hubs, plus a low-degree periphery whose
/// vertices attach by a single edge — to the core (degree-biased) or, with
/// probability `chain_prob`, to the previous periphery vertex, forming the
/// thin "tendrils" that make shortest-path trees deep. Connected.
Graph web_graph(Vertex n, Vertex core_deg, std::uint64_t seed,
                double core_fraction = 0.6, double chain_prob = 0.4);

/// R-MAT recursive-matrix graph (Chakrabarti et al.) on 2^scale vertices
/// with `edge_factor * 2^scale` sampled edges and quadrant probabilities
/// (a, b, c, 1-a-b-c). May be disconnected; callers typically extract the
/// largest component (stats::largest_component). Unit weights.
Graph rmat(std::uint32_t scale, EdgeId edge_factor, std::uint64_t seed,
           double a = 0.57, double b = 0.19, double c = 0.19);

/// Erdős–Rényi G(n, m_edges) multigraph sample (deduplicated). May be
/// disconnected for small average degree.
Graph erdos_renyi(Vertex n, EdgeId m_edges, std::uint64_t seed);

/// Random geometric graph: n points uniform in the unit square, each
/// connected to every point within `radius` (grid-bucket search). Weights
/// are Euclidean distances scaled to integers in [1, weight_scale]. The
/// standard model for wireless meshes and another credible road-network
/// stand-in. May be disconnected for small radius — callers can take
/// largest_component, or pass connect_radius_factor > 0... connectivity is
/// whp for radius >= sqrt(2 ln n / (pi n)).
Graph random_geometric(Vertex n, double radius, std::uint64_t seed,
                       Weight weight_scale = 1000);

/// Path 0-1-2-...-(n-1). The highest-diameter graph; worst case for step
/// counts. Unit weights.
Graph chain(Vertex n);

/// Star with center 0. Unit weights.
Graph star(Vertex n);

/// Complete graph K_n (small n only). Unit weights.
Graph complete(Vertex n);

/// The Figure-2 worst case: `groups` groups of `d` vertices where
/// consecutive groups are completely bipartitely connected. Reaching more
/// than 3d vertices from any vertex forces a search to scan Theta(d^2)
/// edges, showing the O(rho^2) ball-search bound is tight. Unit weights.
Graph bipartite_chain(Vertex groups, Vertex d);

}  // namespace rs::gen
