// Ullman–Yannakakis-style randomized shortcutting (Section 6 of the paper;
// Ullman & Yannakakis 1991, extended to weights by Klein & Subramanian):
// the classic pre-Radius-Stepping technique for trading work for depth.
//
//   1. sample a hub set S of size `num_hubs` (plus the query source);
//   2. from every hub run Bellman–Ford limited to `hop_limit` rounds and
//      add shortcut edges hub -> reached vertices with the exact limited-
//      hop distances;
//   3. answer a query with a `hop_limit`-round Bellman–Ford on the
//      augmented graph.
//
// If every shortest path can be split into segments of at most `hop_limit`
// hops between consecutive hubs, the answer is exact; random hubs achieve
// that w.h.p. when num_hubs * hop_limit >~ n log n. This implementation
// exposes the knobs so benches can chart the exactness/work trade-off
// against Radius-Stepping's deterministic guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rs {

struct UYShortcutResult {
  Graph graph;          // original + hub shortcut edges
  std::vector<Vertex> hubs;
  EdgeId added_edges = 0;
};

/// Builds the hub shortcut structure. `hop_limit = 0` picks
/// ceil(2 n ln n / num_hubs), the w.h.p. correctness setting.
UYShortcutResult uy_preprocess(const Graph& g, Vertex num_hubs,
                               std::uint64_t seed, std::size_t hop_limit = 0);

/// Hop-limited Bellman–Ford SSSP on the augmented graph. Exact whenever
/// every source-to-v shortest path decomposes into <= hop_limit segments
/// between hubs (always true for hop_limit >= n). `rounds_out` reports the
/// rounds actually used (early exit on convergence).
std::vector<Dist> uy_query(const UYShortcutResult& pre, Vertex source,
                           std::size_t hop_limit = 0,
                           std::size_t* rounds_out = nullptr);

}  // namespace rs
