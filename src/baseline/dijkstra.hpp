// Sequential Dijkstra — the work-efficiency yardstick every parallel SSSP
// in the paper is measured against, and the correctness oracle for all
// tests in this repository.
#pragma once

#include <vector>

#include "core/query_context.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Shortest-path distances from `source` (kInfDist when unreachable).
/// Indexed 4-ary heap; O((n + m) log n).
std::vector<Dist> dijkstra(const Graph& g, Vertex source);

/// Context-reusing form: identical results; the distance array and the
/// heap live in `ctx`, so a warm context serves queries with zero heap
/// allocations in the engine.
void dijkstra(const Graph& g, Vertex source, QueryContext& ctx,
              std::vector<Dist>& out);

/// Same, with a pairing heap (O(1) amortized decrease-key — the
/// Fibonacci-heap cost profile the paper's analysis assumes).
std::vector<Dist> dijkstra_pairing(const Graph& g, Vertex source);

struct ShortestPathTreeResult {
  std::vector<Dist> dist;
  std::vector<Vertex> parent;  // kNoVertex for source / unreachable
  std::vector<Vertex> hops;    // hop length of the min-hop shortest path
};

/// Dijkstra that also returns a shortest-path tree. Among equal-distance
/// predecessors the minimum-hop one wins (relax on (dist, hops)
/// lexicographically), giving the tree the DP shortcut heuristic needs
/// (Section 4.2: "one where every path has the smallest hop count").
ShortestPathTreeResult dijkstra_min_hop_tree(const Graph& g, Vertex source);

/// Number of distinct finite distance values — what Dijkstra-with-batched-
/// extraction (Radius-Stepping at rho = 1) uses as its step count.
std::size_t count_distinct_distances(const std::vector<Dist>& dist);

}  // namespace rs
