#include "baseline/dijkstra.hpp"

#include <algorithm>
#include <atomic>

#include "pq/binary_heap.hpp"
#include "pq/pairing_heap.hpp"

namespace rs {

std::vector<Dist> dijkstra(const Graph& g, Vertex source) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  dijkstra(g, source, ctx, out);
  return out;
}

void dijkstra(const Graph& g, Vertex source, QueryContext& ctx,
              std::vector<Dist>& out) {
  const Vertex n = g.num_vertices();
  ctx.begin_query(n);
  std::atomic<Dist>* dist = ctx.dist();
  IndexedHeap<Dist>& heap = ctx.heap();
  dist[source].store(0, std::memory_order_relaxed);
  heap.insert_or_decrease(source, 0);
  while (!heap.empty()) {
    const auto [d, u] = heap.extract_min();
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = d + g.arc_weight(e);
      if (nd < dist[v].load(std::memory_order_relaxed)) {
        dist[v].store(nd, std::memory_order_relaxed);
        heap.insert_or_decrease(v, nd);
      }
    }
  }
  ctx.finish_query(n, out);
}

std::vector<Dist> dijkstra_pairing(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  PairingHeap<Dist> heap(n);
  dist[source] = 0;
  heap.insert_or_decrease(source, 0);
  while (!heap.empty()) {
    const auto [d, u] = heap.extract_min();
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = d + g.arc_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_decrease(v, nd);
      }
    }
  }
  return dist;
}

ShortestPathTreeResult dijkstra_min_hop_tree(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  ShortestPathTreeResult out;
  out.dist.assign(n, kInfDist);
  out.parent.assign(n, kNoVertex);
  out.hops.assign(n, 0);
  std::vector<Vertex>& hops = out.hops;

  // Key = (distance, hop count): extraction order is still by distance, and
  // among equal distances the fewest-hops path is locked in first.
  struct Key {
    Dist d;
    Vertex h;
    bool operator<(const Key& o) const {
      return d != o.d ? d < o.d : h < o.h;
    }
    bool operator<=(const Key& o) const { return !(o < *this); }
    bool operator>=(const Key& o) const { return !(*this < o); }
  };
  IndexedHeap<Key> heap(n);
  out.dist[source] = 0;
  heap.insert_or_decrease(source, Key{0, 0});
  while (!heap.empty()) {
    const auto [key, u] = heap.extract_min();
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Key cand{key.d + g.arc_weight(e),
                     static_cast<Vertex>(key.h + 1)};
      const Key cur{out.dist[v], hops[v]};
      const bool unseen = out.dist[v] == kInfDist;
      if (unseen || cand < cur) {
        out.dist[v] = cand.d;
        hops[v] = cand.h;
        out.parent[v] = u;
        heap.insert_or_decrease(v, cand);
      }
    }
  }
  return out;
}

std::size_t count_distinct_distances(const std::vector<Dist>& dist) {
  std::vector<Dist> finite;
  finite.reserve(dist.size());
  for (const Dist d : dist) {
    if (d != kInfDist && d != 0) finite.push_back(d);
  }
  std::sort(finite.begin(), finite.end());
  finite.erase(std::unique(finite.begin(), finite.end()), finite.end());
  return finite.size();
}

}  // namespace rs
