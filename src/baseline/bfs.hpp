// Breadth-first search: the unweighted baseline (Radius-Stepping at rho = 1
// on an unweighted graph degenerates to level-synchronous BFS, which is how
// Table 5 computes its reduction factors).
#pragma once

#include <cstddef>
#include <vector>

#include "core/query_context.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Sequential BFS hop distances (kInfDist when unreachable).
/// `rounds_out` receives the number of levels (= eccentricity of source).
std::vector<Dist> bfs(const Graph& g, Vertex source,
                      std::size_t* rounds_out = nullptr);

/// Context-reusing form: identical results, scratch state in `ctx`.
void bfs(const Graph& g, Vertex source, QueryContext& ctx,
         std::vector<Dist>& out, std::size_t* rounds_out = nullptr);

/// Level-synchronous parallel BFS: each level expands the frontier in
/// parallel, claiming vertices with a CAS.
std::vector<Dist> bfs_parallel(const Graph& g, Vertex source,
                               std::size_t* rounds_out = nullptr);

/// Direction-optimizing BFS (Beamer et al.): switches from top-down
/// frontier expansion to bottom-up "every unvisited vertex probes its
/// neighbours" when the frontier grows past `alpha` of the remaining
/// graph's arcs — the standard optimization for low-diameter graphs where
/// one level spans most of the graph. Identical output to bfs().
std::vector<Dist> bfs_direction_optimizing(const Graph& g, Vertex source,
                                           std::size_t* rounds_out = nullptr,
                                           double alpha = 0.05);

}  // namespace rs
