#include "baseline/bellman_ford.hpp"

#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

std::vector<Dist> bellman_ford(const Graph& g, Vertex source,
                               std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<std::uint8_t> in_frontier(n, 0);
  std::vector<Vertex> frontier{source};
  dist[source] = 0;
  in_frontier[source] = 1;
  std::size_t rounds = 0;
  std::vector<Vertex> next;
  while (!frontier.empty()) {
    ++rounds;
    next.clear();
    for (const Vertex u : frontier) in_frontier[u] = 0;
    for (const Vertex u : frontier) {
      const Dist du = dist[u];
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        const Dist nd = du + g.arc_weight(e);
        if (nd < dist[v]) {
          dist[v] = nd;
          if (!in_frontier[v]) {
            in_frontier[v] = 1;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return dist;
}

std::vector<Dist> bellman_ford_parallel(const Graph& g, Vertex source,
                                        std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<std::atomic<std::uint8_t>> updated(n);
  parallel_for(0, n, [&](std::size_t i) {
    updated[i].store(0, std::memory_order_relaxed);
  });

  std::vector<Vertex> frontier{source};
  std::size_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    parallel_for(0, frontier.size(), [&](std::size_t i) {
      const Vertex u = frontier[i];
      const Dist du = dist[u].load(std::memory_order_relaxed);
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        if (write_min(dist[v], du + g.arc_weight(e))) {
          updated[v].store(1, std::memory_order_relaxed);
        }
      }
    }, /*grain=*/64);
    // Next frontier = vertices whose distance improved this round. A vertex
    // can be flagged by several relaxations; exchanging the flag to 0
    // dedups on take.
    std::vector<Vertex> next;
    for (const Vertex u : frontier) {
      for (const Vertex v : g.neighbors(u)) {
        if (updated[v].exchange(0, std::memory_order_relaxed)) {
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;

  std::vector<Dist> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace rs
