#include "baseline/bellman_ford.hpp"

#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

std::vector<Dist> bellman_ford(const Graph& g, Vertex source,
                               std::size_t* rounds_out) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  bellman_ford(g, source, ctx, out, rounds_out);
  return out;
}

void bellman_ford(const Graph& g, Vertex source, QueryContext& ctx,
                  std::vector<Dist>& out, std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  ctx.begin_query(n);
  std::atomic<Dist>* dist = ctx.dist();
  std::vector<Vertex>& frontier = ctx.frontier();
  std::vector<Vertex>& next = ctx.next();
  frontier.clear();
  frontier.push_back(source);
  dist[source].store(0, std::memory_order_relaxed);
  std::size_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    // One claim epoch per round dedups membership in the next frontier —
    // the in_frontier byte array of the allocating form, reset in O(1).
    ctx.next_claim_epoch();
    next.clear();
    for (const Vertex u : frontier) {
      const Dist du = dist[u].load(std::memory_order_relaxed);
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        const Dist nd = du + g.arc_weight(e);
        if (nd < dist[v].load(std::memory_order_relaxed)) {
          dist[v].store(nd, std::memory_order_relaxed);
          if (ctx.claim_sequential(v)) next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  ctx.finish_query(n, out);
}

std::vector<Dist> bellman_ford_parallel(const Graph& g, Vertex source,
                                        std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<std::atomic<std::uint8_t>> updated(n);
  parallel_for(0, n, [&](std::size_t i) {
    updated[i].store(0, std::memory_order_relaxed);
  });

  std::vector<Vertex> frontier{source};
  std::size_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    parallel_for(0, frontier.size(), [&](std::size_t i) {
      const Vertex u = frontier[i];
      const Dist du = dist[u].load(std::memory_order_relaxed);
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        if (write_min(dist[v], du + g.arc_weight(e))) {
          updated[v].store(1, std::memory_order_relaxed);
        }
      }
    }, /*grain=*/64);
    // Next frontier = vertices whose distance improved this round. A vertex
    // can be flagged by several relaxations; exchanging the flag to 0
    // dedups on take.
    std::vector<Vertex> next;
    for (const Vertex u : frontier) {
      for (const Vertex v : g.neighbors(u)) {
        if (updated[v].exchange(0, std::memory_order_relaxed)) {
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;

  std::vector<Dist> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace rs
