// Bellman–Ford: the all-substeps extreme of the Dijkstra/Bellman-Ford
// spectrum Radius-Stepping interpolates (r ≡ ∞ makes Radius-Stepping run
// one step of pure Bellman–Ford substeps).
#pragma once

#include <cstddef>
#include <vector>

#include "core/query_context.hpp"
#include "graph/graph.hpp"

namespace rs {

/// Sequential frontier-based Bellman–Ford. `rounds_out` (if non-null)
/// receives the number of relaxation rounds executed.
std::vector<Dist> bellman_ford(const Graph& g, Vertex source,
                               std::size_t* rounds_out = nullptr);

/// Context-reusing form of the sequential engine: identical results, all
/// scratch state (distances, frontier lists, dedup flags) lives in `ctx`.
void bellman_ford(const Graph& g, Vertex source, QueryContext& ctx,
                  std::vector<Dist>& out, std::size_t* rounds_out = nullptr);

/// Parallel round-synchronous Bellman–Ford: each round relaxes, in
/// parallel with atomic WriteMin, every out-arc of the vertices whose
/// distance changed in the previous round. Round count equals the maximum
/// hop length of a shortest path — the depth the paper charges it.
std::vector<Dist> bellman_ford_parallel(const Graph& g, Vertex source,
                                        std::size_t* rounds_out = nullptr);

}  // namespace rs
