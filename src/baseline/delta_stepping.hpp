// Meyer & Sanders' Delta-stepping (J. Algorithms 2003) — the practical
// baseline Radius-Stepping is designed to out-bound: fixed step width
// Delta, light/heavy edge split, bucketed frontier.
#pragma once

#include <cstddef>
#include <vector>

#include "core/query_context.hpp"
#include "graph/graph.hpp"

namespace rs {

struct DeltaSteppingStats {
  std::size_t buckets_processed = 0;  // outer steps (nonempty buckets)
  std::size_t phases = 0;             // inner light-edge substeps
  std::size_t relaxations = 0;        // arcs relaxed (attempted)
};

/// Delta-stepping SSSP. Relaxations within a phase run in parallel with
/// atomic WriteMin; bucket bookkeeping is sequential (the standard
/// shared-memory formulation). `delta = 0` picks the common heuristic
/// Delta = max(1, L / max_degree).
std::vector<Dist> delta_stepping(const Graph& g, Vertex source,
                                 Dist delta = 0,
                                 DeltaSteppingStats* stats = nullptr);

/// Context-reusing form: identical results; distances, bucket slots,
/// frontier lists, and per-phase collection buffers all live in `ctx`.
/// Honors ctx.sequential() (single-threaded phases, no OpenMP regions).
void delta_stepping(const Graph& g, Vertex source, QueryContext& ctx,
                    std::vector<Dist>& out, Dist delta = 0,
                    DeltaSteppingStats* stats = nullptr);

}  // namespace rs
