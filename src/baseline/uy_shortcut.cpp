#include "baseline/uy_shortcut.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "graph/builder.hpp"
#include "parallel/primitives.hpp"
#include "parallel/rng.hpp"

namespace rs {

namespace {

/// Bellman–Ford from `source` limited to `hop_limit` rounds; distances are
/// exact for vertices whose shortest path uses <= hop_limit edges.
/// Frontier-based; stops early on convergence.
std::vector<Dist> limited_bellman_ford(const Graph& g, Vertex source,
                                       std::size_t hop_limit,
                                       std::size_t* rounds_out = nullptr) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<std::uint8_t> queued(n, 0);
  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  std::size_t rounds = 0;
  while (!frontier.empty() && rounds < hop_limit) {
    ++rounds;
    next.clear();
    for (const Vertex u : frontier) queued[u] = 0;
    for (const Vertex u : frontier) {
      const Dist du = dist[u];
      for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
        const Vertex v = g.arc_target(e);
        const Dist nd = du + g.arc_weight(e);
        if (nd < dist[v]) {
          dist[v] = nd;
          if (!queued[v]) {
            queued[v] = 1;
            next.push_back(v);
          }
        }
      }
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return dist;
}

std::size_t default_hop_limit(Vertex n, Vertex num_hubs) {
  const double ln_n = std::log(std::max<double>(2.0, n));
  return static_cast<std::size_t>(
      std::ceil(2.0 * static_cast<double>(n) * ln_n / num_hubs));
}

}  // namespace

UYShortcutResult uy_preprocess(const Graph& g, Vertex num_hubs,
                               std::uint64_t seed, std::size_t hop_limit) {
  const Vertex n = g.num_vertices();
  if (num_hubs == 0 || num_hubs > n) {
    throw std::invalid_argument("uy_preprocess: bad hub count");
  }
  if (hop_limit == 0) hop_limit = default_hop_limit(n, num_hubs);

  // Distinct random hubs via hash-ranked selection.
  const SplitRng rng(seed);
  std::vector<std::pair<std::uint64_t, Vertex>> ranked(n);
  parallel_for(0, n, [&](std::size_t v) {
    ranked[v] = {rng.get(0, v), static_cast<Vertex>(v)};
  });
  std::nth_element(ranked.begin(), ranked.begin() + num_hubs, ranked.end());
  UYShortcutResult out;
  out.hubs.reserve(num_hubs);
  for (Vertex i = 0; i < num_hubs; ++i) out.hubs.push_back(ranked[i].second);
  std::sort(out.hubs.begin(), out.hubs.end());

  // Limited searches from every hub, in parallel across hubs.
  const int nw = num_workers();
  std::vector<std::vector<EdgeTriple>> shortcuts(static_cast<std::size_t>(nw));
#pragma omp parallel num_threads(nw)
  {
    auto& mine = shortcuts[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t hi = 0; hi < static_cast<std::int64_t>(num_hubs); ++hi) {
      const Vertex hub = out.hubs[static_cast<std::size_t>(hi)];
      const std::vector<Dist> dist = limited_bellman_ford(g, hub, hop_limit);
      for (Vertex v = 0; v < n; ++v) {
        if (v == hub || dist[v] == kInfDist) continue;
        if (dist[v] > std::numeric_limits<Weight>::max()) continue;
        mine.push_back({hub, v, static_cast<Weight>(dist[v])});
      }
    }
  }
  std::vector<EdgeTriple> all;
  for (auto& s : shortcuts) {
    all.insert(all.end(), s.begin(), s.end());
    s.clear();
  }
  const EdgeId before = g.num_undirected_edges();
  out.graph = merge_edges(g, std::move(all));
  out.added_edges = out.graph.num_undirected_edges() - before;
  return out;
}

std::vector<Dist> uy_query(const UYShortcutResult& pre, Vertex source,
                           std::size_t hop_limit, std::size_t* rounds_out) {
  const Vertex n = pre.graph.num_vertices();
  if (source >= n) throw std::invalid_argument("uy_query: bad source");
  if (hop_limit == 0) {
    hop_limit = default_hop_limit(
        n, static_cast<Vertex>(std::max<std::size_t>(1, pre.hubs.size())));
    // One extra hop to reach the first hub segment from the source, plus
    // hub->hub->...->target segments collapse to single shortcut arcs.
    hop_limit += 2;
  }
  return limited_bellman_ford(pre.graph, source, hop_limit, rounds_out);
}

}  // namespace rs
