#include "baseline/delta_stepping.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

namespace {

/// Lazy cyclic bucket array: duplicates allowed, staleness checked on pop
/// against the authoritative distance array. Live keys stay within L of the
/// cursor, so ceil(L/delta)+3 cyclic slots suffice. Slot storage is
/// borrowed from the QueryContext so a warm context re-serves queries
/// without reallocating it.
class LazyBuckets {
 public:
  /// Cyclic slots needed for edge weights up to `max_edge_weight`: live
  /// keys stay within L of the cursor. Single source of truth for both
  /// the constructor and the caller sizing the borrowed storage.
  static std::size_t slot_count(Dist delta, Dist max_edge_weight) {
    return static_cast<std::size_t>(max_edge_weight / delta) + 3;
  }

  LazyBuckets(Dist delta, Dist max_edge_weight,
              std::vector<std::vector<Vertex>>& slots)
      : delta_(delta),
        num_slots_(slot_count(delta, max_edge_weight)),
        slots_(slots) {}

  void push(Vertex v, Dist key) {
    const std::size_t b = std::max<std::size_t>(
        static_cast<std::size_t>(key / delta_), cursor_);
    slots_[b % num_slots_].push_back(v);
    ++count_;
  }

  bool empty() const { return count_ == 0; }

  std::size_t cursor() const { return cursor_; }

  /// Advances to the next non-empty slot and returns its bucket index.
  std::size_t next_bucket() {
    while (slots_[cursor_ % num_slots_].empty()) ++cursor_;
    return cursor_;
  }

  /// Drains slot `b` into `out` in O(1): the buffers swap roles, so both
  /// capacities keep circulating between the slot and the caller's list.
  void take(std::size_t b, std::vector<Vertex>& out) {
    std::vector<Vertex>& src = slots_[b % num_slots_];
    out.swap(src);
    src.clear();
    count_ -= out.size();
  }

 private:
  Dist delta_;
  std::size_t num_slots_;
  std::vector<std::vector<Vertex>>& slots_;
  std::size_t cursor_ = 0;
  std::size_t count_ = 0;
};

}  // namespace

void delta_stepping(const Graph& g, Vertex source, QueryContext& ctx,
                    std::vector<Dist>& out, Dist delta,
                    DeltaSteppingStats* stats) {
  const Vertex n = g.num_vertices();
  const Dist max_w = g.max_weight();
  if (delta == 0) {
    const EdgeId dmax = std::max<EdgeId>(g.max_degree(), 1);
    delta = std::max<Dist>(1, max_w / dmax);
  }

  ctx.begin_query(n);
  std::atomic<Dist>* dist = ctx.dist();
  dist[source].store(0, std::memory_order_relaxed);

  // Arc partition: light (w <= delta) relaxed iteratively inside a bucket,
  // heavy (w > delta) relaxed once when the bucket settles.
  LazyBuckets buckets(
      delta, max_w,
      ctx.bucket_slots(LazyBuckets::slot_count(delta, max_w)));
  buckets.push(source, 0);

  DeltaSteppingStats local_stats;
  std::vector<Vertex>& settled_list = ctx.active();
  std::vector<Vertex>& frontier = ctx.frontier();
  std::vector<Vertex>& taken = ctx.updated();
  std::vector<Vertex>& reenter = ctx.scratch();

  // Collected improvements of one phase: (vertex, new distance) pairs
  // gathered per thread, applied to the bucket structure sequentially.
  const int nw = ctx.sequential() ? 1 : num_workers();
  auto& found = ctx.pair_buckets(nw);

  auto relax_frontier = [&](const std::vector<Vertex>& front, bool light) {
    for (auto& f : found) f.clear();
    if (nw == 1) {
      auto& mine = found[0];
      for (const Vertex u : front) {
        const Dist du = dist[u].load(std::memory_order_relaxed);
        for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
          const Weight w = g.arc_weight(e);
          if (light ? (w > delta) : (w <= delta)) continue;
          const Vertex v = g.arc_target(e);
          const Dist nd = du + w;
          if (nd < dist[v].load(std::memory_order_relaxed)) {
            dist[v].store(nd, std::memory_order_relaxed);
            mine.push_back({v, nd});
          }
        }
      }
    } else {
#pragma omp parallel num_threads(nw)
      {
        auto& mine = found[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(front.size());
             ++i) {
          const Vertex u = front[static_cast<std::size_t>(i)];
          const Dist du = dist[u].load(std::memory_order_relaxed);
          for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
            const Weight w = g.arc_weight(e);
            if (light ? (w > delta) : (w <= delta)) continue;
            const Vertex v = g.arc_target(e);
            const Dist nd = du + w;
            if (write_min(dist[v], nd)) mine.push_back({v, nd});
          }
        }
      }
    }
    std::size_t relaxed = 0;
    for (const auto& f : found) relaxed += f.size();
    local_stats.relaxations += relaxed;
  };

  auto flush_found = [&](std::size_t current_bucket,
                         std::vector<Vertex>* reenter_out) {
    for (const auto& f : found) {
      for (const auto& [v, nd] : f) {
        // Only the final distance matters; stale pairs are filtered by the
        // pop-time check. Pairs landing back in the current bucket feed the
        // next light phase directly.
        const Dist dv = dist[v].load(std::memory_order_relaxed);
        if (dv != nd) continue;  // superseded within the phase
        const std::size_t b = static_cast<std::size_t>(dv / delta);
        if (reenter_out != nullptr && b <= current_bucket) {
          // Fresh vertices get settled by the caller; already-settled ones
          // whose distance improved re-run their light edges (Meyer-Sanders
          // re-inserts them into the current bucket).
          reenter_out->push_back(v);
        } else {
          buckets.push(v, dv);
        }
      }
    }
  };

  while (!buckets.empty()) {
    const std::size_t b = buckets.next_bucket();
    ++local_stats.buckets_processed;
    settled_list.clear();
    // One claim epoch per bucket: "settled in this bucket" dedup flags,
    // reset in O(1) instead of unmarking the settled list.
    ctx.next_claim_epoch();

    buckets.take(b, taken);
    frontier.clear();
    for (const Vertex v : taken) {
      const Dist dv = dist[v].load(std::memory_order_relaxed);
      if (static_cast<std::size_t>(dv / delta) != b) continue;  // stale
      if (!ctx.claim_sequential(v)) continue;                   // duplicate
      settled_list.push_back(v);
      frontier.push_back(v);
    }

    // Light-edge phases: iterate until no new vertex re-enters this bucket.
    while (!frontier.empty()) {
      ++local_stats.phases;
      relax_frontier(frontier, /*light=*/true);
      reenter.clear();
      flush_found(b, &reenter);
      frontier.clear();
      for (const Vertex v : reenter) {
        if (ctx.claim_sequential(v)) {
          settled_list.push_back(v);
          frontier.push_back(v);
        }
      }
      // Vertices already settled in this bucket whose distance improved
      // again still need their light edges re-relaxed: Meyer-Sanders
      // re-inserts them. Catch them here.
      for (const Vertex v : reenter) {
        if (std::find(frontier.begin(), frontier.end(), v) == frontier.end()) {
          frontier.push_back(v);
        }
      }
    }

    // One heavy-edge phase over everything settled in this bucket.
    if (!settled_list.empty()) {
      ++local_stats.phases;
      relax_frontier(settled_list, /*light=*/false);
      flush_found(b, nullptr);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  ctx.finish_query(n, out);
}

std::vector<Dist> delta_stepping(const Graph& g, Vertex source, Dist delta,
                                 DeltaSteppingStats* stats) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  delta_stepping(g, source, ctx, out, delta, stats);
  return out;
}

}  // namespace rs
