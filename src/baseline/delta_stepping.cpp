#include "baseline/delta_stepping.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/primitives.hpp"
#include "parallel/write_min.hpp"

namespace rs {

namespace {

/// Lazy cyclic bucket array: duplicates allowed, staleness checked on pop
/// against the authoritative distance array. Live keys stay within L of the
/// cursor, so ceil(L/delta)+3 cyclic slots suffice.
class LazyBuckets {
 public:
  LazyBuckets(Dist delta, Dist max_edge_weight)
      : delta_(delta),
        num_slots_(static_cast<std::size_t>(max_edge_weight / delta) + 3),
        slots_(num_slots_) {}

  void push(Vertex v, Dist key) {
    const std::size_t b = std::max<std::size_t>(
        static_cast<std::size_t>(key / delta_), cursor_);
    slots_[b % num_slots_].push_back(v);
    ++count_;
  }

  bool empty() const { return count_ == 0; }

  std::size_t cursor() const { return cursor_; }

  /// Advances to the next non-empty slot and returns its bucket index.
  std::size_t next_bucket() {
    while (slots_[cursor_ % num_slots_].empty()) ++cursor_;
    return cursor_;
  }

  std::vector<Vertex> take(std::size_t b) {
    std::vector<Vertex>& src = slots_[b % num_slots_];
    std::vector<Vertex> out;
    out.swap(src);
    count_ -= out.size();
    return out;
  }

 private:
  Dist delta_;
  std::size_t num_slots_;
  std::vector<std::vector<Vertex>> slots_;
  std::size_t cursor_ = 0;
  std::size_t count_ = 0;
};

}  // namespace

std::vector<Dist> delta_stepping(const Graph& g, Vertex source, Dist delta,
                                 DeltaSteppingStats* stats) {
  const Vertex n = g.num_vertices();
  const Dist max_w = g.max_weight();
  if (delta == 0) {
    const EdgeId dmax = std::max<EdgeId>(g.max_degree(), 1);
    delta = std::max<Dist>(1, max_w / dmax);
  }

  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  // Arc partition: light (w <= delta) relaxed iteratively inside a bucket,
  // heavy (w > delta) relaxed once when the bucket settles.
  LazyBuckets buckets(delta, max_w);
  buckets.push(source, 0);

  DeltaSteppingStats local_stats;
  std::vector<std::uint8_t> settled_in_bucket(n, 0);
  std::vector<Vertex> settled_list;

  // Collected improvements of one phase: (vertex, new distance) pairs
  // gathered per thread, applied to the bucket structure sequentially.
  const int nw = num_workers();
  std::vector<std::vector<std::pair<Vertex, Dist>>> found(
      static_cast<std::size_t>(nw));

  auto relax_frontier = [&](const std::vector<Vertex>& frontier, bool light) {
    for (auto& f : found) f.clear();
#pragma omp parallel num_threads(nw)
    {
      auto& mine = found[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const Vertex u = frontier[static_cast<std::size_t>(i)];
        const Dist du = dist[u].load(std::memory_order_relaxed);
        for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
          const Weight w = g.arc_weight(e);
          if (light ? (w > delta) : (w <= delta)) continue;
          const Vertex v = g.arc_target(e);
          const Dist nd = du + w;
          if (write_min(dist[v], nd)) mine.push_back({v, nd});
        }
      }
    }
    std::size_t relaxed = 0;
    for (const auto& f : found) relaxed += f.size();
    local_stats.relaxations += relaxed;
  };

  auto flush_found = [&](std::size_t current_bucket,
                         std::vector<Vertex>* reenter) {
    for (const auto& f : found) {
      for (const auto& [v, nd] : f) {
        // Only the final distance matters; stale pairs are filtered by the
        // pop-time check. Pairs landing back in the current bucket feed the
        // next light phase directly.
        const Dist dv = dist[v].load(std::memory_order_relaxed);
        if (dv != nd) continue;  // superseded within the phase
        const std::size_t b = static_cast<std::size_t>(dv / delta);
        if (reenter != nullptr && b <= current_bucket) {
          // Fresh vertices get settled by the caller; already-settled ones
          // whose distance improved re-run their light edges (Meyer-Sanders
          // re-inserts them into the current bucket).
          reenter->push_back(v);
        } else {
          buckets.push(v, dv);
        }
      }
    }
  };

  while (!buckets.empty()) {
    const std::size_t b = buckets.next_bucket();
    ++local_stats.buckets_processed;
    settled_list.clear();

    std::vector<Vertex> frontier;
    for (const Vertex v : buckets.take(b)) {
      const Dist dv = dist[v].load(std::memory_order_relaxed);
      if (static_cast<std::size_t>(dv / delta) != b) continue;  // stale
      if (settled_in_bucket[v]) continue;                       // duplicate
      settled_in_bucket[v] = 1;
      settled_list.push_back(v);
      frontier.push_back(v);
    }

    // Light-edge phases: iterate until no new vertex re-enters this bucket.
    while (!frontier.empty()) {
      ++local_stats.phases;
      relax_frontier(frontier, /*light=*/true);
      std::vector<Vertex> reenter;
      flush_found(b, &reenter);
      frontier.clear();
      for (const Vertex v : reenter) {
        if (!settled_in_bucket[v]) {
          settled_in_bucket[v] = 1;
          settled_list.push_back(v);
          frontier.push_back(v);
        }
      }
      // Vertices already settled in this bucket whose distance improved
      // again still need their light edges re-relaxed: Meyer-Sanders
      // re-inserts them. Catch them here.
      for (const Vertex v : reenter) {
        if (std::find(frontier.begin(), frontier.end(), v) == frontier.end()) {
          frontier.push_back(v);
        }
      }
    }

    // One heavy-edge phase over everything settled in this bucket.
    if (!settled_list.empty()) {
      ++local_stats.phases;
      relax_frontier(settled_list, /*light=*/false);
      flush_found(b, nullptr);
    }
    for (const Vertex v : settled_list) settled_in_bucket[v] = 0;
  }

  if (stats != nullptr) *stats = local_stats;
  std::vector<Dist> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace rs
