#include "baseline/bfs.hpp"

#include <atomic>
#include <queue>

#include "parallel/primitives.hpp"

namespace rs {

std::vector<Dist> bfs(const Graph& g, Vertex source, std::size_t* rounds_out) {
  QueryContext ctx(g.num_vertices());
  std::vector<Dist> out;
  bfs(g, source, ctx, out, rounds_out);
  return out;
}

void bfs(const Graph& g, Vertex source, QueryContext& ctx,
         std::vector<Dist>& out, std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  ctx.begin_query(n);
  std::atomic<Dist>* dist = ctx.dist();
  std::vector<Vertex>& frontier = ctx.frontier();
  std::vector<Vertex>& next = ctx.next();
  frontier.clear();
  frontier.push_back(source);
  dist[source].store(0, std::memory_order_relaxed);
  std::size_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    next.clear();
    for (const Vertex u : frontier) {
      const Dist du = dist[u].load(std::memory_order_relaxed);
      for (const Vertex v : g.neighbors(u)) {
        if (dist[v].load(std::memory_order_relaxed) == kInfDist) {
          dist[v].store(du + 1, std::memory_order_relaxed);
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  // The last round is the empty expansion.
  if (rounds_out != nullptr) *rounds_out = rounds - 1;
  ctx.finish_query(n, out);
}

std::vector<Dist> bfs_direction_optimizing(const Graph& g, Vertex source,
                                           std::size_t* rounds_out,
                                           double alpha) {
  const Vertex n = g.num_vertices();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<std::uint8_t> in_frontier(n, 0);
  dist[source] = 0;
  in_frontier[source] = 1;
  std::vector<Vertex> frontier{source};
  std::size_t rounds = 0;
  Dist level = 0;

  // Arcs hanging off the current frontier vs arcs of still-unvisited
  // vertices: the Beamer switch heuristic.
  auto frontier_arcs = [&](const std::vector<Vertex>& f) {
    EdgeId total = 0;
    for (const Vertex v : f) total += g.degree(v);
    return total;
  };

  const int nw = num_workers();
  std::vector<std::vector<Vertex>> local(static_cast<std::size_t>(nw));
  while (!frontier.empty()) {
    ++rounds;
    ++level;
    const bool bottom_up =
        frontier_arcs(frontier) >
        static_cast<EdgeId>(alpha * static_cast<double>(g.num_edges()));
    for (auto& l : local) l.clear();
    if (bottom_up) {
      // Every unvisited vertex scans its own neighbours for a frontier
      // member; no CAS needed (each vertex writes only itself).
#pragma omp parallel num_threads(nw)
      {
        auto& mine = local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 256)
        for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
          const Vertex v = static_cast<Vertex>(vi);
          if (dist[v] != kInfDist) continue;
          for (const Vertex u : g.neighbors(v)) {
            if (in_frontier[u]) {
              mine.push_back(v);
              break;
            }
          }
        }
      }
    } else {
      // Top-down with a claim byte (single writer per vertex wins).
      std::vector<std::atomic<std::uint8_t>> claimed(n);
      parallel_for(0, n, [&](std::size_t i) {
        claimed[i].store(dist[i] != kInfDist ? 1 : 0,
                         std::memory_order_relaxed);
      });
#pragma omp parallel num_threads(nw)
      {
        auto& mine = local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
             ++i) {
          const Vertex u = frontier[static_cast<std::size_t>(i)];
          for (const Vertex v : g.neighbors(u)) {
            if (claimed[v].exchange(1, std::memory_order_relaxed) == 0) {
              mine.push_back(v);
            }
          }
        }
      }
    }
    for (const Vertex v : frontier) in_frontier[v] = 0;
    std::vector<Vertex> next;
    for (const auto& l : local) next.insert(next.end(), l.begin(), l.end());
    for (const Vertex v : next) {
      dist[v] = level;
      in_frontier[v] = 1;
    }
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds - 1;
  return dist;
}

std::vector<Dist> bfs_parallel(const Graph& g, Vertex source,
                               std::size_t* rounds_out) {
  const Vertex n = g.num_vertices();
  std::vector<std::atomic<Vertex>> owner(n);
  parallel_for(0, n, [&](std::size_t i) {
    owner[i].store(kNoVertex, std::memory_order_relaxed);
  });
  std::vector<Dist> dist(n, kInfDist);
  owner[source].store(source, std::memory_order_relaxed);
  dist[source] = 0;

  const int nw = num_workers();
  std::vector<std::vector<Vertex>> local(static_cast<std::size_t>(nw));
  std::vector<Vertex> frontier{source};
  std::size_t rounds = 0;
  Dist level = 0;
  while (!frontier.empty()) {
    ++rounds;
    ++level;
    for (auto& l : local) l.clear();
#pragma omp parallel num_threads(nw)
    {
      auto& mine = local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const Vertex u = frontier[static_cast<std::size_t>(i)];
        for (const Vertex v : g.neighbors(u)) {
          Vertex expect = kNoVertex;
          if (owner[v].compare_exchange_strong(expect, u,
                                               std::memory_order_relaxed)) {
            mine.push_back(v);
          }
        }
      }
    }
    std::vector<Vertex> next;
    std::size_t total = 0;
    for (const auto& l : local) total += l.size();
    next.reserve(total);
    for (const auto& l : local) next.insert(next.end(), l.begin(), l.end());
    for (const Vertex v : next) dist[v] = level;
    frontier.swap(next);
  }
  if (rounds_out != nullptr) *rounds_out = rounds - 1;
  return dist;
}

}  // namespace rs
