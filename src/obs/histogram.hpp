// Fixed-bucket log-linear histogram (HDR-histogram style) — the one
// distribution type of the observability subsystem (obs/metrics.hpp).
//
// Grown out of serve/latency_histogram.hpp (which now just aliases this
// class): the serving daemon records end-to-end latency here, but the
// registry can hold a Histogram for any magnitude-style quantity.
//
// The record path is the constraint: it runs once per served request, from
// the batcher thread, and must never allocate or take a lock — one bucket
// index computation (a bit-scan and a shift) and three relaxed fetch_adds
// (bucket, total, sum). All storage is a fixed std::array of atomic
// counters sized at compile time, so a histogram is ~15 KiB and records
// values across the full uint64 range with bounded relative error.
//
// Bucketing: values below 2^kSubBits (32) are exact; above that, each
// power-of-two range is split into 32 equal sub-buckets, so any recorded
// value is off by at most 1/32 (~3.1%) of its magnitude — tight enough to
// gate p99 regressions on, with no coordination between recorders.
//
// Quantile reads (p50/p99/p999) take a snapshot — a plain copy of the
// counters — and scan cumulative counts; reads are control-path only
// (stats endpoints, exporters, BENCH emission), so their allocation is
// fine. merge() folds another histogram in bucket-wise, which is how the
// registry aggregates per-batcher (or per-shard) histograms into one
// exported distribution.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per power of two
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // One linear segment [0, 32) plus 32 sub-buckets for each of the 59
  // power-of-two decades a uint64 value above 31 can start in.
  static constexpr std::size_t kBuckets =
      kSubBuckets * (64 - kSubBits + 1);

  /// Bucket index of `value` (stable across calls; exposed for tests).
  static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    // Position of the most significant bit, 0-based (value >= 32 here).
    const int msb = 63 - __builtin_clzll(value);
    const int decade = msb - kSubBits + 1;  // >= 1
    const std::uint64_t sub = (value >> (decade - 1)) & (kSubBuckets - 1);
    return static_cast<std::size_t>(decade) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket `index` — what quantiles report, so
  /// the estimate is a conservative (upper) bound of the true quantile.
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t decade = index >> kSubBits;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    const std::uint64_t low = (kSubBuckets + sub) << (decade - 1);
    return low + ((1ull << (decade - 1)) - 1);
  }

  /// Records one observation. Wait-free, allocation-free: relaxed
  /// fetch_adds on the bucket, the total, and the running sum.
  void record(std::uint64_t value) noexcept {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Sum of every recorded value (saturation-free for realistic loads:
  /// 2^64 microseconds is half a million years). Exporters emit this as
  /// the Prometheus `_sum` series.
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// A consistent-enough copy for multi-quantile reads (concurrent
  /// records may straddle the copy; each observation is counted at most
  /// once and quantiles of a live histogram are approximations anyway).
  struct Snapshot {
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;

    /// Upper bound of the bucket holding the q-quantile observation
    /// (q in [0, 1]); 0 when empty. Overestimates by at most 1/32.
    std::uint64_t value_at_quantile(double q) const {
      if (total == 0) return 0;
      if (q < 0.0) q = 0.0;
      if (q > 1.0) q = 1.0;
      const auto rank_raw = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total)));
      const std::uint64_t rank = rank_raw == 0 ? 1 : rank_raw;
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank) return bucket_upper(i);
      }
      return bucket_upper(counts.size() - 1);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.counts.resize(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  /// Convenience single-quantile read (snapshots internally).
  std::uint64_t value_at_quantile(double q) const {
    return snapshot().value_at_quantile(q);
  }

  /// Folds `other` into this histogram bucket-wise — how the registry
  /// aggregates per-batcher histograms into one exported distribution.
  /// Concurrent record()s on either side land in one histogram or the
  /// other but are never lost or double-counted.
  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c =
          other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace rs::obs
