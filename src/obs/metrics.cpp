#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace rs::obs {

std::string MetricsRegistry::series_key(const std::string& name,
                                        const std::vector<Label>& labels) {
  // Label order must not matter for identity: sort a copy of the keys.
  std::vector<const Label*> sorted;
  sorted.reserve(labels.size());
  for (const Label& l : labels) sorted.push_back(&l);
  std::sort(sorted.begin(), sorted.end(),
            [](const Label* a, const Label* b) { return a->key < b->key; });
  std::string key = name;
  for (const Label* l : sorted) {
    key += '\x1f';  // unit separator: cannot appear in a metric name
    key += l->key;
    key += '\x1e';
    key += l->value;
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, std::vector<Label> labels,
    const std::string& help, MetricKind kind) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument(
          "MetricsRegistry: series '" + name +
          "' already registered as a different kind");
    }
    return e;
  }
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name = name;
  e.labels = std::move(labels);
  e.help = help;
  e.kind = kind;
  index_.emplace(key, entries_.size() - 1);
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  std::vector<Label> labels,
                                  const std::string& help) {
  return find_or_create(name, std::move(labels), help, MetricKind::kCounter)
      .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              std::vector<Label> labels,
                              const std::string& help) {
  return find_or_create(name, std::move(labels), help, MetricKind::kGauge)
      .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<Label> labels,
                                      const std::string& help) {
  return find_or_create(name, std::move(labels), help,
                        MetricKind::kHistogram)
      .histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter.value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge.value();
        break;
      case MetricKind::kHistogram:
        s.hist = e.histogram.snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace rs::obs
