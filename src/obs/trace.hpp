/// \file
/// Per-request trace spans: where did this request's latency go?
///
/// A TraceBuffer is a fixed-capacity, allocation-free array of spans that
/// rides inside QueryResponse. When tracing is on for a request, the
/// serving stack stamps one span per station of the request's life:
///
///   depth 0 (contiguous — they tile the end-to-end latency exactly):
///     admission    validate + cache consult + enqueue, on the client
///                  thread
///     queue_wait   enqueued -> popped by a batcher
///     batch_form   popped -> micro-batch handed to the engine (the
///                  coalescing window this request waited through)
///     engine       SsspEngine::serve_batch for the request's batch
///     respond      engine done -> promise fulfilled (cache publication,
///                  row reads, completion bookkeeping)
///   depth 1 (inside `engine`; duration-only — their start is the engine
///   span's start, and they need not tile it):
///     relax        relaxation substeps (Algorithm 1's inner loop)
///     exchange     fragment ghost exchange (kFragment only)
///     partition    frontier drain + A_i/B_i partitioning
///   cache-hit requests replace queue_wait..respond with:
///     cache_hit    answered synchronously from a cached row at submit
///
/// Sampling: ServerOptions::trace_sample = N traces every Nth admitted
/// request (0 = off). `RS_TRACE` / `--trace-sample N` wire it up from the
/// environment/CLI. With tracing off the buffer's `enabled` flag is
/// false, every add() is a single predictable branch, and nothing else is
/// touched — the disabled path stays allocation-free and unmeasurable.
///
/// The buffer is POD (std::array storage, trivially copyable) so moving a
/// QueryResponse moves it by memcpy and the zero-allocation warm-path
/// guarantee (tests/test_alloc_free.cpp) is untouched.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace rs::obs {

/// Station identifiers — the span vocabulary of the serving stack.
/// docs/OPERATIONS.md keeps the operator-facing reference table.
enum class SpanId : std::uint8_t {
  kAdmission,  ///< submit(): validate + cache consult + enqueue.
  kQueueWait,  ///< BoundedQueue residence time.
  kBatchForm,  ///< Micro-batch coalescing window.
  kEngine,     ///< serve_batch for the request's micro-batch.
  kRespond,    ///< Engine done -> promise fulfilled.
  kCacheHit,   ///< Synchronous cached answer at submit time.
  kRelax,      ///< Engine detail: relaxation substeps.
  kExchange,   ///< Engine detail: fragment ghost exchange.
  kPartition,  ///< Engine detail: frontier drain + partition.
};

/// Stable lowercase token for a SpanId (the slow-query-log / JSON
/// spelling).
inline const char* to_string(SpanId id) {
  switch (id) {
    case SpanId::kAdmission:
      return "admission";
    case SpanId::kQueueWait:
      return "queue_wait";
    case SpanId::kBatchForm:
      return "batch_form";
    case SpanId::kEngine:
      return "engine";
    case SpanId::kRespond:
      return "respond";
    case SpanId::kCacheHit:
      return "cache_hit";
    case SpanId::kRelax:
      return "relax";
    case SpanId::kExchange:
      return "exchange";
    case SpanId::kPartition:
      return "partition";
  }
  return "unknown";
}

/// One stamped span. start_ns is relative to the request's admission
/// (TraceBuffer::origin_ns), so spans are meaningful after the response
/// leaves the server.
struct TraceSpan {
  SpanId id = SpanId::kAdmission;
  std::uint8_t depth = 0;  ///< 0 = station, 1 = engine phase detail.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Fixed-capacity span log (see file comment). POD; ~400 bytes.
struct TraceBuffer {
  static constexpr std::size_t kCapacity = 16;

  bool enabled = false;
  std::uint8_t size = 0;
  std::uint64_t origin_ns = 0;  ///< steady-clock ns at admission.
  std::array<TraceSpan, kCapacity> spans{};

  /// Appends a span; silently drops past capacity (a truncated trace is
  /// better than an allocation or a crash on the hot path).
  void add(SpanId id, std::uint8_t depth, std::uint64_t start_ns,
           std::uint64_t duration_ns) noexcept {
    if (!enabled || size >= kCapacity) return;
    spans[size] = TraceSpan{id, depth, start_ns, duration_ns};
    ++size;
  }

  /// Sum of depth-0 span durations — the stations tile the request, so
  /// this equals the end-to-end latency (acceptance: within 10%).
  std::uint64_t station_total_ns() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if (spans[i].depth == 0) total += spans[i].duration_ns;
    }
    return total;
  }
};

/// Parses the RS_TRACE environment knob: unset/0 = off, N = trace every
/// Nth request. Mirrors the RS_THREADS/RS_FRAGMENTS convention.
inline std::uint32_t trace_sample_from_env() {
  const char* env = std::getenv("RS_TRACE");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::uint32_t>(v) : 0;
}

}  // namespace rs::obs
