/// \file
/// Exporters: render a MetricsRegistry snapshot as Prometheus text
/// exposition or JSON.
///
/// Prometheus (exposition format 0.0.4, the text format every scraper
/// speaks): counters and gauges emit `# HELP` / `# TYPE` headers and one
/// `name{labels} value` sample; histograms emit a summary — quantile
/// samples (p50/p90/p99/p999), `_sum`, and `_count` — because the
/// log-linear buckets are an implementation detail and the quantiles are
/// what dashboards plot.
///
/// JSON: one array of objects, `{"name":..., "labels":{...},
/// "kind":"counter|gauge|histogram", "value":...}` with histograms
/// carrying `{"count":..., "sum":..., "p50":..., "p90":..., "p99":...,
/// "p999":...}` — the shape bench tooling and the daemon's `metrics json`
/// verb emit.
///
/// Both are control-path renderers: they allocate freely and take the
/// registry mutex once (inside snapshot()).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rs::obs {

/// Prometheus text exposition of `samples` (see file comment).
std::string to_prometheus(const std::vector<MetricSample>& samples);

/// JSON rendering of `samples` (see file comment).
std::string to_json(const std::vector<MetricSample>& samples);

/// Convenience overloads: snapshot + render.
std::string to_prometheus(const MetricsRegistry& registry);
std::string to_json(const MetricsRegistry& registry);

}  // namespace rs::obs
