#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

namespace rs::obs {

namespace {

/// Shortest faithful rendering of a metric value: integral doubles print
/// as integers (counters, epochs), everything else as %.6g.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// `{k1="v1",k2="v2"}` or "" when label-free; `extra` appends one more
/// pair (the quantile label on summary samples).
std::string prom_labels(const std::vector<Label>& labels,
                        const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](const Label& l) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    out += l.value;
    out += '"';
  };
  for (const Label& l : labels) append(l);
  if (extra != nullptr) append(*extra);
  out += '}';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
constexpr const char* kQuantileNames[] = {"0.5", "0.9", "0.99", "0.999"};
constexpr const char* kJsonQuantileKeys[] = {"p50", "p90", "p99", "p999"};

}  // namespace

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  // HELP/TYPE must appear once per metric NAME even when several labeled
  // series share it (the exposition format rejects repeats). The registry
  // snapshots in registration order, so same-name series are expected to
  // be adjacent; `last_name` suppresses the repeats.
  std::string last_name;
  for (const MetricSample& s : samples) {
    const bool headed = s.name == last_name;
    last_name = s.name;
    if (!headed && !s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        if (!headed) out += "# TYPE " + s.name + " counter\n";
        out += s.name + prom_labels(s.labels) + " " +
               format_value(s.value) + "\n";
        break;
      case MetricKind::kGauge:
        if (!headed) out += "# TYPE " + s.name + " gauge\n";
        out += s.name + prom_labels(s.labels) + " " +
               format_value(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        if (!headed) out += "# TYPE " + s.name + " summary\n";
        for (std::size_t q = 0; q < 4; ++q) {
          Label quant{"quantile", kQuantileNames[q]};
          out += s.name + prom_labels(s.labels, &quant) + " " +
                 format_value(static_cast<double>(
                     s.hist.value_at_quantile(kQuantiles[q]))) +
                 "\n";
        }
        out += s.name + "_sum" + prom_labels(s.labels) + " " +
               format_value(static_cast<double>(s.hist.sum)) + "\n";
        out += s.name + "_count" + prom_labels(s.labels) + " " +
               format_value(static_cast<double>(s.hist.total)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const std::vector<MetricSample>& samples) {
  std::string out = "[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":{";
    bool lf = true;
    for (const Label& l : s.labels) {
      if (!lf) out += ',';
      lf = false;
      out += "\"" + json_escape(l.key) + "\":\"" + json_escape(l.value) +
             "\"";
    }
    out += "},";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "\"kind\":\"counter\",\"value\":" + format_value(s.value);
        break;
      case MetricKind::kGauge:
        out += "\"kind\":\"gauge\",\"value\":" + format_value(s.value);
        break;
      case MetricKind::kHistogram: {
        out += "\"kind\":\"histogram\",\"value\":{\"count\":" +
               format_value(static_cast<double>(s.hist.total)) +
               ",\"sum\":" + format_value(static_cast<double>(s.hist.sum));
        for (std::size_t q = 0; q < 4; ++q) {
          out += ",\"";
          out += kJsonQuantileKeys[q];
          out += "\":" + format_value(static_cast<double>(
                             s.hist.value_at_quantile(kQuantiles[q])));
        }
        out += "}";
        break;
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

std::string to_json(const MetricsRegistry& registry) {
  return to_json(registry.snapshot());
}

}  // namespace rs::obs
