/// \file
/// MetricsRegistry: the one place every layer of the serving stack
/// registers its counters, gauges, and histograms.
///
/// Design split: REGISTRATION is slow-path (a mutex, string keys, heap
/// nodes) and happens once per metric, at construction time of whatever
/// owns the registry. UPDATES are hot-path and go through the returned
/// handle — a stable reference to an atomic cell that never moves for the
/// registry's lifetime — so recording is one relaxed fetch_add with no
/// lock, no lookup, and no allocation. SNAPSHOTS walk the registry under
/// the mutex and copy every value out; they are control-path only (the
/// `stats`/`metrics` verbs, shutdown prints, exporters).
///
/// Metrics are keyed by name + label set (Prometheus-style: the same name
/// may be registered with different labels, e.g.
/// `rs_requests_rejected_total{reason="queue_full"}` vs
/// `{reason="invalid"}`). Registering the same name+labels twice returns
/// the SAME handle, so independent components can share a series.
///
///   obs::MetricsRegistry reg;
///   obs::Counter& hits = reg.counter("rs_cache_hits_total",
///                                    {}, "Cache row hits");
///   hits.add();                       // hot path: one relaxed fetch_add
///   for (const obs::MetricSample& s : reg.snapshot()) { ... }
///
/// Exporters (obs/export.hpp) render a snapshot as Prometheus text
/// exposition or JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace rs::obs {

/// Monotonic counter. add() is wait-free and allocation-free. The
/// memory-order parameters exist for callers whose counter doubles as a
/// synchronization edge (e.g. the server's accepted/completed pair that
/// drives drain()); everyone else uses the relaxed defaults.
class Counter {
 public:
  void add(std::uint64_t n = 1,
           std::memory_order order = std::memory_order_relaxed) noexcept {
    v_.fetch_add(n, order);
  }
  std::uint64_t value(
      std::memory_order order = std::memory_order_relaxed) const noexcept {
    return v_.load(order);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (may go down). Doubles cover both integral gauges
/// (epochs, widths) and fractional ones (dirty fraction) — Prometheus
/// gauges are doubles anyway.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Monotone-max update (CAS loop; wait-free in the common no-update
  /// case) — for high-watermark gauges like the widest micro-batch.
  void record_max(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> v_{0.0};
};

/// One name="value" pair attached to a metric series.
struct Label {
  std::string key;
  std::string value;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One series in a registry snapshot. Counters and gauges fill `value`;
/// histograms fill `hist` (counts/total/sum, quantile-queryable).
struct MetricSample {
  std::string name;
  std::vector<Label> labels;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  Histogram::Snapshot hist;
};

/// The registry (see file comment). Thread-safe: registration and
/// snapshotting lock; handle updates never do.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the counter `name` with `labels`. The returned
  /// reference is stable for the registry's lifetime. Throws
  /// std::invalid_argument when the same name+labels is already
  /// registered as a different kind.
  Counter& counter(const std::string& name, std::vector<Label> labels = {},
                   const std::string& help = "");
  /// Same contract for gauges.
  Gauge& gauge(const std::string& name, std::vector<Label> labels = {},
               const std::string& help = "");
  /// Same contract for histograms.
  Histogram& histogram(const std::string& name,
                       std::vector<Label> labels = {},
                       const std::string& help = "");

  /// Copies every registered series out, in registration order (stable —
  /// exporters and fixture tests rely on it).
  std::vector<MetricSample> snapshot() const;

  /// Number of registered series.
  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::vector<Label> labels;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    // Exactly one of these is engaged, per kind. deque storage keeps the
    // Entry (and thus the atomic cells inside) at a stable address.
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& find_or_create(const std::string& name, std::vector<Label> labels,
                        const std::string& help, MetricKind kind);
  static std::string series_key(const std::string& name,
                                const std::vector<Label>& labels);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // stable addresses across growth
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace rs::obs
