// Join-based treap: the balanced-BST substrate Algorithm 2 charges its
// bookkeeping to.
//
// The paper assumes ordered sets supporting split, union, and difference in
// O(p log q) work and O(log q) depth (Section 2, citing join-based parallel
// BSTs). This treap provides exactly that interface: all operations are
// expressed through split/join, priorities are a hash of the key (so a key
// set has one canonical shape, independent of insertion order — handy for
// determinism tests), and bulk union/difference recurse in parallel via
// OpenMP tasks on large inputs.
//
// Union and difference are destructive (they consume both operands), which
// matches how Algorithm 2 uses them: batches are built, merged into Q/R,
// and never reused.
//
// Allocation: a Treap owns its nodes individually (new/delete, the
// default), draws them from a single TreapArena — a freelist-backed pool
// that recycles nodes across treaps and across queries — or draws them
// from a TreapArenaPool of per-worker arenas. The serving hot path
// (core/rs_bst_impl.hpp) keeps one pool per QueryContext, so a warm
// context answers kBst queries without touching the heap: every erase,
// split-discard, and subtract-consumed skeleton splices straight back onto
// a freelist instead of running delete.
//
// Parallelism rules: single-arena treaps run their bulk operations
// sequentially (one freelist, single-owner — the mode the strictly
// sequential engine twin uses, since it must not open OpenMP regions).
// Arena-less AND pool-backed treaps keep the parallel task recursion: in a
// pool, OpenMP thread t only ever touches arena t (tasks are tied, so the
// executing thread is stable across an acquire/release site), which keeps
// every freelist single-owner while split/union/difference recurse in
// parallel — restoring the paper's set-op depth bound for the recycling
// path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include <omp.h>

#include "parallel/rng.hpp"

namespace rs {

namespace treap_detail {

/// Mixes arbitrary key bytes into a treap priority.
template <typename Key>
std::uint64_t priority_of(const Key& key) {
  if constexpr (std::is_integral_v<Key>) {
    return hash64(static_cast<std::uint64_t>(key));
  } else {
    // Pair-like keys (first, second) — the shapes used in this library.
    return hash64(hash64(static_cast<std::uint64_t>(key.first)) ^
                  static_cast<std::uint64_t>(key.second));
  }
}

constexpr std::size_t kParallelCutoff = 4096;

template <typename Key>
struct Node {
  Node() = default;
  explicit Node(const Key& k) : key(k), prio(priority_of(k)) {}
  Key key{};
  std::uint64_t prio = 0;
  Node* left = nullptr;
  Node* right = nullptr;
  std::size_t size = 1;
};

}  // namespace treap_detail

/// Freelist-backed node pool shared by any number of (non-concurrent)
/// treaps over the same key type. Nodes are carved from geometrically
/// growing chunks and never returned to the OS until the arena dies;
/// release() pushes a node onto the freelist in O(1), so steady-state
/// treap churn performs zero heap allocations once the pool has reached
/// its high-water mark. Single-owner: not thread-safe.
template <typename Key>
class TreapArena {
 public:
  using Node = treap_detail::Node<Key>;

  TreapArena() = default;
  TreapArena(const TreapArena&) = delete;
  TreapArena& operator=(const TreapArena&) = delete;
  TreapArena(TreapArena&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        chunk_used_(std::exchange(other.chunk_used_, 0)),
        chunk_capacity_(std::exchange(other.chunk_capacity_, 0)),
        free_(std::exchange(other.free_, nullptr)),
        total_(std::exchange(other.total_, 0)),
        free_count_(std::exchange(other.free_count_, 0)) {}
  TreapArena& operator=(TreapArena&& other) noexcept {
    if (this != &other) {
      chunks_ = std::move(other.chunks_);
      chunk_used_ = std::exchange(other.chunk_used_, 0);
      chunk_capacity_ = std::exchange(other.chunk_capacity_, 0);
      free_ = std::exchange(other.free_, nullptr);
      total_ = std::exchange(other.total_, 0);
      free_count_ = std::exchange(other.free_count_, 0);
    }
    return *this;
  }

  /// Hands out an initialized leaf node for `key`: freelist pop when a
  /// recycled node exists, bump allocation from the current chunk
  /// otherwise. Allocates only when the pool is exhausted (warm-up).
  Node* acquire(const Key& key) {
    Node* node;
    if (free_ != nullptr) {
      node = free_;
      free_ = node->right;  // right doubles as the freelist link
      --free_count_;
    } else {
      node = fresh_node();
    }
    node->key = key;
    node->prio = treap_detail::priority_of(key);
    node->left = nullptr;
    node->right = nullptr;
    node->size = 1;
    return node;
  }

  /// Returns one node to the freelist. O(1), never frees memory.
  void release(Node* node) {
    node->right = free_;
    free_ = node;
    ++free_count_;
  }

  /// Splices a whole subtree onto the freelist (the "reclaim the skeleton"
  /// path of subtract and treap destruction).
  void release_tree(Node* t) {
    if (t == nullptr) return;
    release_tree(t->left);
    release_tree(t->right);
    release(t);
  }

  /// Nodes ever carved from the chunks (the pool's high-water mark).
  std::size_t total_nodes() const { return total_; }
  /// Nodes currently parked on the freelist.
  std::size_t free_nodes() const { return free_count_; }

 private:
  Node* fresh_node() {
    if (chunk_used_ == chunk_capacity_) {
      // Geometric growth keeps warm-up to O(log n) allocations.
      chunk_capacity_ = total_ == 0 ? kFirstChunk : total_;
      chunks_.push_back(std::make_unique<Node[]>(chunk_capacity_));
      chunk_used_ = 0;
    }
    ++total_;
    return &chunks_.back()[chunk_used_++];
  }

  static constexpr std::size_t kFirstChunk = 64;

  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_capacity_ = 0;
  Node* free_ = nullptr;
  std::size_t total_ = 0;
  std::size_t free_count_ = 0;
};

/// Per-worker arena set for parallel bulk operations over recycled nodes.
/// arena(t) is only ever touched by OpenMP thread t of the team running
/// the operation (current() indexes by omp_get_thread_num()), so each
/// freelist stays single-owner without locks. Nodes migrate freely between
/// the per-worker freelists as releases land on whichever thread ran the
/// subtask — total_nodes() aggregates the high-water mark across arenas.
/// ensure() must cover the largest team any operation will run with
/// BEFORE that operation starts (growth is not thread-safe).
template <typename Key>
class TreapArenaPool {
 public:
  /// Grows the pool to at least `workers` arenas. Not thread-safe; call
  /// from sequential sections only.
  void ensure(std::size_t workers) {
    while (arenas_.size() < workers) arenas_.emplace_back();
  }
  std::size_t size() const { return arenas_.size(); }
  TreapArena<Key>& arena(std::size_t w) { return arenas_[w]; }
  /// The calling OpenMP thread's arena.
  TreapArena<Key>& current() {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    assert(tid < arenas_.size());
    return arenas_[tid];
  }
  /// Aggregates across arenas (tests pin recycling with these).
  std::size_t total_nodes() const {
    std::size_t sum = 0;
    for (const auto& a : arenas_) sum += a.total_nodes();
    return sum;
  }
  std::size_t free_nodes() const {
    std::size_t sum = 0;
    for (const auto& a : arenas_) sum += a.free_nodes();
    return sum;
  }

 private:
  std::deque<TreapArena<Key>> arenas_;  // deque: growth never moves arenas
};

/// Ordered set of unique keys with join-based split/union/difference.
template <typename Key>
class Treap {
 public:
  Treap() = default;
  /// Arena-backed treap: nodes come from (and return to) `arena`. All
  /// treaps an operation touches must share one arena (or be arena-less):
  /// union/subtract splice nodes between operands. nullptr = own nodes.
  explicit Treap(TreapArena<Key>* arena) : arena_(arena) {}
  /// Pool-backed treap: nodes come from (and return to) the per-worker
  /// arenas of `pool` — acquire/release always hit the executing thread's
  /// arena. Same sharing rule: all operands of one operation must use the
  /// same pool.
  explicit Treap(TreapArenaPool<Key>* pool) : pool_(pool) {}
  ~Treap() { destroy(root_); }

  Treap(Treap&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        arena_(other.arena_),
        pool_(other.pool_) {}
  Treap& operator=(Treap&& other) noexcept {
    if (this != &other) {
      destroy(root_);
      root_ = std::exchange(other.root_, nullptr);
      arena_ = other.arena_;
      pool_ = other.pool_;
    }
    return *this;
  }
  Treap(const Treap&) = delete;
  Treap& operator=(const Treap&) = delete;

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_of(root_); }

  bool contains(const Key& key) const {
    const Node* cur = root_;
    while (cur != nullptr) {
      if (key < cur->key) {
        cur = cur->left;
      } else if (cur->key < key) {
        cur = cur->right;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Inserts `key`; returns false if already present.
  bool insert(const Key& key) {
    if (contains(key)) return false;
    auto [lo, hi] = split_raw(root_, key);
    Node* mid = make_node(key);
    root_ = join(join(lo, mid), hi);
    return true;
  }

  /// Removes `key`; returns false if absent.
  bool erase(const Key& key) {
    bool removed = false;
    root_ = erase_rec(root_, key, removed);
    return removed;
  }

  /// Smallest key. Pre: !empty().
  const Key& min() const {
    assert(!empty());
    const Node* cur = root_;
    while (cur->left != nullptr) cur = cur->left;
    return cur->key;
  }

  /// Removes and returns the smallest key. Pre: !empty().
  Key extract_min() {
    Key out = min();
    erase(out);
    return out;
  }

  /// Splits off and returns all keys <= pivot; this treap keeps keys > pivot.
  /// O(log n). The result shares this treap's allocation source.
  Treap split_leq(const Key& pivot) {
    auto [lo, hi] = split_raw(root_, pivot, /*leq=*/true);
    root_ = hi;
    Treap out;
    out.arena_ = arena_;
    out.pool_ = pool_;
    out.root_ = lo;
    return out;
  }

  /// Destructive union: this := this U other, other becomes empty.
  /// O(p log(q/p + 1)) work, polylog depth (parallel tasks on large
  /// arena-less or pool-backed inputs; single-arena treaps merge
  /// sequentially).
  void union_with(Treap&& other) {
    assert(arena_ == other.arena_ && pool_ == other.pool_);
    Node* b = std::exchange(other.root_, nullptr);
    if (parallel_ok() &&
        size_of(root_) + size_of(b) >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      root_ = union_rec(root_, b);
    } else {
      root_ = union_rec(root_, b);
    }
  }

  /// Destructive difference: this := this \ other, other becomes empty.
  void subtract(Treap&& other) {
    assert(arena_ == other.arena_ && pool_ == other.pool_);
    Node* b = std::exchange(other.root_, nullptr);
    if (parallel_ok() &&
        size_of(root_) + size_of(b) >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      root_ = diff_rec(root_, b);
    } else {
      root_ = diff_rec(root_, b);
    }
    destroy(b);  // diff_rec leaves `b`'s skeleton; reclaim or freelist it
  }

  /// Builds from strictly-increasing sorted keys in O(n) work, O(log n)
  /// depth (arena-less; single-arena builds are sequential).
  static Treap from_sorted(const std::vector<Key>& sorted,
                           TreapArena<Key>* arena = nullptr) {
    Treap t(arena);
    t.build_from_sorted(sorted);
    return t;
  }

  /// Pool-backed build: parallel task recursion with per-worker node
  /// acquisition.
  static Treap from_sorted(const std::vector<Key>& sorted,
                           TreapArenaPool<Key>* pool) {
    Treap t(pool);
    t.build_from_sorted(sorted);
    return t;
  }

  /// In-order (sorted) key dump.
  std::vector<Key> to_vector() const {
    std::vector<Key> out;
    out.reserve(size());
    append_inorder(root_, out);
    return out;
  }

  /// Allocation-free variant: clears `out` and appends in order, keeping
  /// the vector's capacity (the hot-path form).
  void to_vector(std::vector<Key>& out) const {
    out.clear();
    append_inorder(root_, out);
  }

  /// Maximum node depth; exposed so tests can check balance (O(log n) w.h.p).
  std::size_t height() const { return height_rec(root_); }

 private:
  using Node = treap_detail::Node<Key>;

  static std::size_t size_of(const Node* t) { return t ? t->size : 0; }

  static void update(Node* t) {
    t->size = 1 + size_of(t->left) + size_of(t->right);
  }

  /// Bulk ops may open OpenMP regions / spawn tasks unless the nodes live
  /// in a single-owner arena (whose one freelist forbids concurrent
  /// release). Pool-backed treaps are safe: every acquire/release goes to
  /// the executing thread's own arena.
  bool parallel_ok() const { return arena_ == nullptr; }

  Node* make_node(const Key& key) {
    if (pool_ != nullptr) return pool_->current().acquire(key);
    if (arena_ != nullptr) return arena_->acquire(key);
    return new Node(key);
  }

  void release_node(Node* t) {
    if (pool_ != nullptr) {
      pool_->current().release(t);
    } else if (arena_ != nullptr) {
      arena_->release(t);
    } else {
      delete t;
    }
  }

  void destroy(Node* t) {
    if (t == nullptr) return;
    if (arena_ != nullptr) {
      arena_->release_tree(t);
      return;
    }
    destroy(t->left);
    destroy(t->right);
    release_node(t);
  }

  void build_from_sorted(const std::vector<Key>& sorted) {
    if (parallel_ok() && sorted.size() >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      root_ = build_rec(sorted, 0, sorted.size());
    } else {
      root_ = build_rec(sorted, 0, sorted.size());
    }
  }

  /// Joins two treaps where all keys in `lo` < all keys in `hi`.
  static Node* join(Node* lo, Node* hi) {
    if (lo == nullptr) return hi;
    if (hi == nullptr) return lo;
    if (lo->prio > hi->prio) {
      lo->right = join(lo->right, hi);
      update(lo);
      return lo;
    }
    hi->left = join(lo, hi->left);
    update(hi);
    return hi;
  }

  /// Splits by pivot. With leq=true the left part receives keys == pivot.
  static std::pair<Node*, Node*> split_raw(Node* t, const Key& pivot,
                                           bool leq = false) {
    if (t == nullptr) return {nullptr, nullptr};
    const bool go_left = leq ? (pivot < t->key) : !(t->key < pivot);
    if (go_left) {
      auto [lo, hi] = split_raw(t->left, pivot, leq);
      t->left = hi;
      update(t);
      return {lo, t};
    }
    auto [lo, hi] = split_raw(t->right, pivot, leq);
    t->right = lo;
    update(t);
    return {t, hi};
  }

  Node* erase_rec(Node* t, const Key& key, bool& removed) {
    if (t == nullptr) return nullptr;
    if (key < t->key) {
      t->left = erase_rec(t->left, key, removed);
    } else if (t->key < key) {
      t->right = erase_rec(t->right, key, removed);
    } else {
      Node* merged = join(t->left, t->right);
      release_node(t);
      removed = true;
      return merged;
    }
    update(t);
    return t;
  }

  Node* union_rec(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->prio < b->prio) std::swap(a, b);
    // a's root wins; partition b around it. split_raw puts keys >= pivot on
    // the right, so a duplicate of a->key (if b held one) is hi's minimum.
    auto [lo, hi] = split_raw(b, a->key);
    {
      bool removed = false;
      hi = erase_rec(hi, a->key, removed);
    }
    Node* left = nullptr;
    Node* right = nullptr;
    const bool parallel =
        parallel_ok() &&
        size_of(a) + size_of(lo) + size_of(hi) >= treap_detail::kParallelCutoff;
    if (parallel) {
#pragma omp task shared(left)
      left = union_rec(a->left, lo);
      right = union_rec(a->right, hi);
#pragma omp taskwait
    } else {
      left = union_rec(a->left, lo);
      right = union_rec(a->right, hi);
    }
    a->left = left;
    a->right = right;
    update(a);
    return a;
  }

  /// a \ b, built from a's nodes. `b` is only read; the caller reclaims it.
  Node* diff_rec(Node* a, const Node* b) {
    if (a == nullptr || b == nullptr) return a;
    // Partition a around b's root key; the match (if present) is the
    // minimum of the >=-side. Remove it.
    auto [lo, hi] = split_raw(a, b->key);
    {
      bool removed = false;
      hi = erase_rec(hi, b->key, removed);
    }
    Node* left = nullptr;
    Node* right = nullptr;
    const bool parallel =
        parallel_ok() &&
        size_of(lo) + size_of(hi) + size_of(b) >= treap_detail::kParallelCutoff;
    if (parallel) {
#pragma omp task shared(left)
      left = diff_rec(lo, b->left);
      right = diff_rec(hi, b->right);
#pragma omp taskwait
    } else {
      left = diff_rec(lo, b->left);
      right = diff_rec(hi, b->right);
    }
    return join(left, right);
  }

  Node* build_rec(const std::vector<Key>& sorted, std::size_t lo,
                  std::size_t hi) {
    if (lo >= hi) return nullptr;
    // Root = max priority in range; recursing on the midpoint instead would
    // break the heap property, so find the max-priority element. For O(n)
    // total work we use the standard trick: build by divide-and-conquer on
    // position, then fix the heap property with joins.
    const std::size_t mid = lo + (hi - lo) / 2;
    Node* root = make_node(sorted[mid]);
    Node* left = nullptr;
    Node* right = nullptr;
    if (parallel_ok() && hi - lo >= treap_detail::kParallelCutoff) {
#pragma omp task shared(left, sorted)
      left = build_rec(sorted, lo, mid);
      right = build_rec(sorted, mid + 1, hi);
#pragma omp taskwait
    } else {
      left = build_rec(sorted, lo, mid);
      right = build_rec(sorted, mid + 1, hi);
    }
    // Rebalance to restore the priority heap order.
    return join(join_heapify(left, root), right);
  }

  /// Joins `left` (all keys < root->key) with the single node `root`,
  /// restoring the treap priority invariant.
  static Node* join_heapify(Node* left, Node* root) {
    root->left = nullptr;
    root->right = nullptr;
    root->size = 1;
    return join(left, root);
  }

  static void append_inorder(const Node* t, std::vector<Key>& out) {
    if (t == nullptr) return;
    append_inorder(t->left, out);
    out.push_back(t->key);
    append_inorder(t->right, out);
  }

  static std::size_t height_rec(const Node* t) {
    if (t == nullptr) return 0;
    return 1 + std::max(height_rec(t->left), height_rec(t->right));
  }

  Node* root_ = nullptr;
  TreapArena<Key>* arena_ = nullptr;
  TreapArenaPool<Key>* pool_ = nullptr;
};

}  // namespace rs
