// Join-based treap: the balanced-BST substrate Algorithm 2 charges its
// bookkeeping to.
//
// The paper assumes ordered sets supporting split, union, and difference in
// O(p log q) work and O(log q) depth (Section 2, citing join-based parallel
// BSTs). This treap provides exactly that interface: all operations are
// expressed through split/join, priorities are a hash of the key (so a key
// set has one canonical shape, independent of insertion order — handy for
// determinism tests), and bulk union/difference recurse in parallel via
// OpenMP tasks on large inputs.
//
// Union and difference are destructive (they consume both operands), which
// matches how Algorithm 2 uses them: batches are built, merged into Q/R,
// and never reused.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include <omp.h>

#include "parallel/rng.hpp"

namespace rs {

namespace treap_detail {

/// Mixes arbitrary key bytes into a treap priority.
template <typename Key>
std::uint64_t priority_of(const Key& key) {
  if constexpr (std::is_integral_v<Key>) {
    return hash64(static_cast<std::uint64_t>(key));
  } else {
    // Pair-like keys (first, second) — the shapes used in this library.
    return hash64(hash64(static_cast<std::uint64_t>(key.first)) ^
                  static_cast<std::uint64_t>(key.second));
  }
}

constexpr std::size_t kParallelCutoff = 4096;

}  // namespace treap_detail

/// Ordered set of unique keys with join-based split/union/difference.
template <typename Key>
class Treap {
 public:
  Treap() = default;
  ~Treap() { destroy(root_); }

  Treap(Treap&& other) noexcept : root_(std::exchange(other.root_, nullptr)) {}
  Treap& operator=(Treap&& other) noexcept {
    if (this != &other) {
      destroy(root_);
      root_ = std::exchange(other.root_, nullptr);
    }
    return *this;
  }
  Treap(const Treap&) = delete;
  Treap& operator=(const Treap&) = delete;

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return size_of(root_); }

  bool contains(const Key& key) const {
    const Node* cur = root_;
    while (cur != nullptr) {
      if (key < cur->key) {
        cur = cur->left;
      } else if (cur->key < key) {
        cur = cur->right;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Inserts `key`; returns false if already present.
  bool insert(const Key& key) {
    if (contains(key)) return false;
    auto [lo, hi] = split_raw(root_, key);
    Node* mid = new Node(key);
    root_ = join(join(lo, mid), hi);
    return true;
  }

  /// Removes `key`; returns false if absent.
  bool erase(const Key& key) {
    bool removed = false;
    root_ = erase_rec(root_, key, removed);
    return removed;
  }

  /// Smallest key. Pre: !empty().
  const Key& min() const {
    assert(!empty());
    const Node* cur = root_;
    while (cur->left != nullptr) cur = cur->left;
    return cur->key;
  }

  /// Removes and returns the smallest key. Pre: !empty().
  Key extract_min() {
    Key out = min();
    erase(out);
    return out;
  }

  /// Splits off and returns all keys <= pivot; this treap keeps keys > pivot.
  /// O(log n).
  Treap split_leq(const Key& pivot) {
    auto [lo, hi] = split_raw(root_, pivot, /*leq=*/true);
    root_ = hi;
    Treap out;
    out.root_ = lo;
    return out;
  }

  /// Destructive union: this := this U other, other becomes empty.
  /// O(p log(q/p + 1)) work, polylog depth (parallel tasks on large inputs).
  void union_with(Treap&& other) {
    Node* b = std::exchange(other.root_, nullptr);
    if (size_of(root_) + size_of(b) >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      root_ = union_rec(root_, b);
    } else {
      root_ = union_rec(root_, b);
    }
  }

  /// Destructive difference: this := this \ other, other becomes empty.
  void subtract(Treap&& other) {
    Node* b = std::exchange(other.root_, nullptr);
    if (size_of(root_) + size_of(b) >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      root_ = diff_rec(root_, b);
    } else {
      root_ = diff_rec(root_, b);
    }
    destroy(b);  // diff_rec leaves `b`'s skeleton; reclaim it
  }

  /// Builds from strictly-increasing sorted keys in O(n) work, O(log n) depth.
  static Treap from_sorted(const std::vector<Key>& sorted) {
    Treap t;
    if (sorted.size() >= treap_detail::kParallelCutoff) {
#pragma omp parallel
#pragma omp single
      t.root_ = build_rec(sorted, 0, sorted.size());
    } else {
      t.root_ = build_rec(sorted, 0, sorted.size());
    }
    return t;
  }

  /// In-order (sorted) key dump.
  std::vector<Key> to_vector() const {
    std::vector<Key> out;
    out.reserve(size());
    append_inorder(root_, out);
    return out;
  }

  /// Maximum node depth; exposed so tests can check balance (O(log n) w.h.p).
  std::size_t height() const { return height_rec(root_); }

 private:
  struct Node {
    explicit Node(const Key& k)
        : key(k), prio(treap_detail::priority_of(k)) {}
    Key key;
    std::uint64_t prio;
    Node* left = nullptr;
    Node* right = nullptr;
    std::size_t size = 1;
  };

  static std::size_t size_of(const Node* t) { return t ? t->size : 0; }

  static void update(Node* t) {
    t->size = 1 + size_of(t->left) + size_of(t->right);
  }

  static void destroy(Node* t) {
    if (t == nullptr) return;
    destroy(t->left);
    destroy(t->right);
    delete t;
  }

  /// Joins two treaps where all keys in `lo` < all keys in `hi`.
  static Node* join(Node* lo, Node* hi) {
    if (lo == nullptr) return hi;
    if (hi == nullptr) return lo;
    if (lo->prio > hi->prio) {
      lo->right = join(lo->right, hi);
      update(lo);
      return lo;
    }
    hi->left = join(lo, hi->left);
    update(hi);
    return hi;
  }

  /// Splits by pivot. With leq=true the left part receives keys == pivot.
  static std::pair<Node*, Node*> split_raw(Node* t, const Key& pivot,
                                           bool leq = false) {
    if (t == nullptr) return {nullptr, nullptr};
    const bool go_left = leq ? (pivot < t->key) : !(t->key < pivot);
    if (go_left) {
      auto [lo, hi] = split_raw(t->left, pivot, leq);
      t->left = hi;
      update(t);
      return {lo, t};
    }
    auto [lo, hi] = split_raw(t->right, pivot, leq);
    t->right = lo;
    update(t);
    return {t, hi};
  }

  static Node* erase_rec(Node* t, const Key& key, bool& removed) {
    if (t == nullptr) return nullptr;
    if (key < t->key) {
      t->left = erase_rec(t->left, key, removed);
    } else if (t->key < key) {
      t->right = erase_rec(t->right, key, removed);
    } else {
      Node* merged = join(t->left, t->right);
      delete t;
      removed = true;
      return merged;
    }
    update(t);
    return t;
  }

  static Node* union_rec(Node* a, Node* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->prio < b->prio) std::swap(a, b);
    // a's root wins; partition b around it. split_raw puts keys >= pivot on
    // the right, so a duplicate of a->key (if b held one) is hi's minimum.
    auto [lo, hi] = split_raw(b, a->key);
    {
      bool removed = false;
      hi = erase_rec(hi, a->key, removed);
    }
    Node* left = nullptr;
    Node* right = nullptr;
    const bool parallel =
        size_of(a) + size_of(lo) + size_of(hi) >= treap_detail::kParallelCutoff;
    if (parallel) {
#pragma omp task shared(left)
      left = union_rec(a->left, lo);
      right = union_rec(a->right, hi);
#pragma omp taskwait
    } else {
      left = union_rec(a->left, lo);
      right = union_rec(a->right, hi);
    }
    a->left = left;
    a->right = right;
    update(a);
    return a;
  }

  /// a \ b, built from a's nodes. `b` is only read; the caller reclaims it.
  static Node* diff_rec(Node* a, const Node* b) {
    if (a == nullptr || b == nullptr) return a;
    // Partition a around b's root key; the match (if present) is the
    // minimum of the >=-side. Remove it.
    auto [lo, hi] = split_raw(a, b->key);
    {
      bool removed = false;
      hi = erase_rec(hi, b->key, removed);
    }
    Node* left = nullptr;
    Node* right = nullptr;
    const bool parallel =
        size_of(lo) + size_of(hi) + size_of(b) >= treap_detail::kParallelCutoff;
    if (parallel) {
#pragma omp task shared(left)
      left = diff_rec(lo, b->left);
      right = diff_rec(hi, b->right);
#pragma omp taskwait
    } else {
      left = diff_rec(lo, b->left);
      right = diff_rec(hi, b->right);
    }
    return join(left, right);
  }

  static Node* build_rec(const std::vector<Key>& sorted, std::size_t lo,
                         std::size_t hi) {
    if (lo >= hi) return nullptr;
    // Root = max priority in range; recursing on the midpoint instead would
    // break the heap property, so find the max-priority element. For O(n)
    // total work we use the standard trick: build by divide-and-conquer on
    // position, then fix the heap property with joins.
    const std::size_t mid = lo + (hi - lo) / 2;
    Node* root = new Node(sorted[mid]);
    Node* left = nullptr;
    Node* right = nullptr;
    if (hi - lo >= treap_detail::kParallelCutoff) {
#pragma omp task shared(left, sorted)
      left = build_rec(sorted, lo, mid);
      right = build_rec(sorted, mid + 1, hi);
#pragma omp taskwait
    } else {
      left = build_rec(sorted, lo, mid);
      right = build_rec(sorted, mid + 1, hi);
    }
    // Rebalance to restore the priority heap order.
    return join(join_heapify(left, root), right);
  }

  /// Joins `left` (all keys < root->key) with the single node `root`,
  /// restoring the treap priority invariant.
  static Node* join_heapify(Node* left, Node* root) {
    root->left = nullptr;
    root->right = nullptr;
    root->size = 1;
    return join(left, root);
  }

  static void append_inorder(const Node* t, std::vector<Key>& out) {
    if (t == nullptr) return;
    append_inorder(t->left, out);
    out.push_back(t->key);
    append_inorder(t->right, out);
  }

  static std::size_t height_rec(const Node* t) {
    if (t == nullptr) return 0;
    return 1 + std::max(height_rec(t->left), height_rec(t->right));
  }

  Node* root_ = nullptr;
};

}  // namespace rs
