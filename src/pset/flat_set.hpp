// Flat ordered set: a sorted vector with merge-based bulk operations.
//
// The contrast substrate to the join-based treap. Same interface, very
// different cost profile: split/union/difference are O(n) copies instead
// of O(p log q) pointer surgery — better constants on small sets (cache
// contiguity), asymptotically worse on large ones. Algorithm 2 runs
// unchanged on either (core/rs_bst_impl.hpp is templated over the set),
// which demonstrates that the paper's analysis depends only on the ordered
// -set interface; gb_pq_micro and gb_engines quantify the crossover.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace rs {

template <typename Key>
class FlatSet {
 public:
  FlatSet() = default;

  bool empty() const { return keys_.empty(); }
  std::size_t size() const { return keys_.size(); }

  bool contains(const Key& key) const {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }

  bool insert(const Key& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && !(key < *it)) return false;
    keys_.insert(it, key);
    return true;
  }

  bool erase(const Key& key) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || key < *it) return false;
    keys_.erase(it);
    return true;
  }

  const Key& min() const {
    assert(!empty());
    return keys_.front();
  }

  Key extract_min() {
    assert(!empty());
    Key out = keys_.front();
    keys_.erase(keys_.begin());
    return out;
  }

  /// Splits off and returns all keys <= pivot; this set keeps keys > pivot.
  FlatSet split_leq(const Key& pivot) {
    const auto it = std::upper_bound(keys_.begin(), keys_.end(), pivot);
    FlatSet out;
    out.keys_.assign(keys_.begin(), it);
    keys_.erase(keys_.begin(), it);
    return out;
  }

  /// Destructive union (other becomes empty). Linear merge.
  void union_with(FlatSet&& other) {
    if (other.empty()) return;
    if (empty()) {
      keys_ = std::move(other.keys_);
      return;
    }
    std::vector<Key> merged;
    merged.reserve(keys_.size() + other.keys_.size());
    std::set_union(keys_.begin(), keys_.end(), other.keys_.begin(),
                   other.keys_.end(), std::back_inserter(merged));
    keys_ = std::move(merged);
    other.keys_.clear();
  }

  /// Destructive difference (other becomes empty). Linear merge.
  void subtract(FlatSet&& other) {
    if (other.empty() || empty()) {
      other.keys_.clear();
      return;
    }
    std::vector<Key> out;
    out.reserve(keys_.size());
    std::set_difference(keys_.begin(), keys_.end(), other.keys_.begin(),
                        other.keys_.end(), std::back_inserter(out));
    keys_ = std::move(out);
    other.keys_.clear();
  }

  /// Builds from strictly-increasing sorted keys. O(n).
  static FlatSet from_sorted(std::vector<Key> sorted) {
    assert(std::is_sorted(sorted.begin(), sorted.end()));
    FlatSet out;
    out.keys_ = std::move(sorted);
    return out;
  }

  std::vector<Key> to_vector() const { return keys_; }

  /// Capacity-keeping variant (interface parity with Treap): clears `out`
  /// and appends the sorted keys.
  void to_vector(std::vector<Key>& out) const {
    out.assign(keys_.begin(), keys_.end());
  }

 private:
  std::vector<Key> keys_;
};

}  // namespace rs
