#include "serve/server.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/export.hpp"

namespace rs::serve {

namespace {

/// Pin-once helpers: all engine/oracle access funnels through these so
/// every code path uses the same acquire loads.
std::shared_ptr<const SsspEngine> pin(
    const std::shared_ptr<const SsspEngine>& slot) {
  return std::atomic_load_explicit(&slot, std::memory_order_acquire);
}

std::shared_ptr<const LandmarkOracle> pin(
    const std::shared_ptr<const LandmarkOracle>& slot) {
  return std::atomic_load_explicit(&slot, std::memory_order_acquire);
}

}  // namespace

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue_full";
    case SubmitStatus::kShuttingDown:
      return "shutting_down";
    case SubmitStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

SsspServer::SsspServer(const SsspEngine& engine, ServerOptions opts)
    // Non-owning alias: the caller guarantees the engine outlives the
    // server, so the deleter is a no-op. swap_engine() may later publish
    // an owning successor over this.
    : SsspServer(std::shared_ptr<const SsspEngine>(&engine,
                                                   [](const SsspEngine*) {}),
                 std::move(opts)) {}

SsspServer::SsspServer(std::shared_ptr<const SsspEngine> engine,
                       ServerOptions opts)
    : engine_(std::move(engine)),
      opts_(opts),
      accepted_(metrics_.counter("rs_requests_accepted_total", {},
                                 "Requests admitted into the queue")),
      completed_(metrics_.counter("rs_requests_completed_total", {},
                                  "Promises fulfilled")),
      rejected_full_(metrics_.counter("rs_requests_rejected_total",
                                      {{"reason", "queue_full"}},
                                      "Rejected requests by reason")),
      rejected_invalid_(metrics_.counter("rs_requests_rejected_total",
                                         {{"reason", "invalid"}},
                                         "Rejected requests by reason")),
      rejected_shutdown_(metrics_.counter("rs_requests_rejected_total",
                                          {{"reason", "shutdown"}},
                                          "Rejected requests by reason")),
      batches_(metrics_.counter("rs_batches_total", {},
                                "serve_batch calls issued")),
      max_batch_(metrics_.gauge("rs_batch_max_width", {},
                                "Widest micro-batch so far")),
      cache_hits_(metrics_.counter("rs_cache_hits_total", {},
                                   "Requests answered from a cached row")),
      cache_misses_(metrics_.counter(
          "rs_cache_misses_total", {},
          "Cache-eligible requests that had to compute (owners + "
          "single-flight waiters)")),
      lb_exits_(metrics_.counter(
          "rs_lower_bound_exits_total", {},
          "Targets proven settled by an ALT lower bound")),
      swaps_(metrics_.counter("rs_engine_swaps_total", {},
                              "swap_engine() publications")),
      traced_(metrics_.counter("rs_traced_requests_total", {},
                               "Requests sampled for a span breakdown")),
      slow_queries_(metrics_.counter(
          "rs_slow_queries_total", {},
          "Requests at or over the slow-query threshold")),
      epoch_gauge_(metrics_.gauge("rs_graph_epoch", {},
                                  "Published engine snapshot epoch")),
      in_flight_gauge_(metrics_.gauge(
          "rs_in_flight", {}, "Requests admitted but not yet completed")),
      latency_(metrics_.histogram("rs_request_latency_us", {},
                                  "End-to-end request latency "
                                  "(microseconds, submit to completion)")),
      marks_enabled_(opts.trace_sample != 0 || opts.slow_query_us != 0),
      queue_(opts.queue_capacity) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("SsspServer: null engine");
  }
  epoch_gauge_.set(static_cast<double>(engine_->graph_epoch()));
  if (opts_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(opts_.cache);
  }
  if (opts_.enable_landmarks) {
    // Built before the batchers start, so the rows never race a serve.
    oracle_ = std::make_shared<const LandmarkOracle>(*engine_,
                                                     opts_.landmarks);
  }
  paused_ = opts_.start_paused;
  const int n = opts_.batchers < 1 ? 1 : opts_.batchers;
  batchers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batchers_.emplace_back([this] { batcher_loop(); });
  }
}

SsspServer::~SsspServer() { shutdown(); }

SubmitStatus SsspServer::submit(QueryRequest req,
                                std::future<QueryResponse>& result) {
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_shutdown_.add();
    return SubmitStatus::kShuttingDown;
  }
  // One pin for the whole admission path: validation and the cache key
  // come from the same snapshot even if a swap lands mid-submit.
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  // Validate at the edge: a bad request is rejected on its own, before it
  // can be coalesced into (and poison) a micro-batch.
  try {
    eng->validate(req);
  } catch (const std::invalid_argument&) {
    rejected_invalid_.add();
    return SubmitStatus::kInvalid;
  }

  Pending pending;
  pending.request = std::move(req);
  pending.accepted_at = std::chrono::steady_clock::now();
  // Trace sampling: every Nth validated request gets the span treatment.
  // With the knob off this is one load and one branch — no clock, no
  // sequence bump, and the request flag stays false all the way down.
  if (opts_.trace_sample != 0) {
    const std::uint64_t seq =
        trace_seq_.fetch_add(1, std::memory_order_relaxed);
    if (seq % opts_.trace_sample == 0) {
      pending.traced = true;
      pending.request.trace = true;
      traced_.add();
    }
  }
  std::future<QueryResponse> fut = pending.promise.get_future();

  // Cache fast path: a hit is answered HERE, on the client thread —
  // O(|targets|) straight off the cached row, skipping the queue, the
  // batching budget, and the engine entirely. Misses enter the queue
  // carrying their single-flight role.
  if (cache_ != nullptr && cache_eligible(pending.request)) {
    const CacheKey key = key_for(*eng, pending.request);
    RowPtr row;
    std::shared_future<RowPtr> pending_row;
    switch (cache_->acquire(key, row, pending_row)) {
      case CacheAcquire::kHit: {
        cache_hits_.add();
        accepted_.add(1, std::memory_order_release);
        QueryResponse resp;
        answer_from_row(pending.request, *row, resp);
        complete(pending, std::move(resp));
        result = std::move(fut);
        return SubmitStatus::kAccepted;
      }
      case CacheAcquire::kOwner:
        cache_misses_.add();
        pending.role = CacheRole::kOwner;
        pending.key = key;
        break;
      case CacheAcquire::kWaiter:
        cache_misses_.add();
        pending.role = CacheRole::kWaiter;
        pending.key = key;
        pending.pending_row = std::move(pending_row);
        break;
    }
  }

  const CacheRole role = pending.role;
  const CacheKey key = pending.key;
  if (marks_enabled_) pending.t_enqueued = std::chrono::steady_clock::now();
  if (!queue_.try_push(std::move(pending))) {
    // An owner that never enters the queue would park its waiters
    // forever; release the in-flight entry before rejecting.
    if (role == CacheRole::kOwner) {
      cache_->fail(key, std::make_exception_ptr(std::runtime_error(
                            "SsspServer: owning request rejected")));
    }
    // A closed queue and a full queue both fail the push; report the one
    // the caller can act on.
    if (stopping_.load(std::memory_order_acquire)) {
      rejected_shutdown_.add();
      return SubmitStatus::kShuttingDown;
    }
    rejected_full_.add();
    return SubmitStatus::kQueueFull;
  }
  accepted_.add(1, std::memory_order_release);
  result = std::move(fut);
  return SubmitStatus::kAccepted;
}

QueryResponse SsspServer::serve_sync(QueryRequest req) {
  std::future<QueryResponse> fut;
  const SubmitStatus status = submit(std::move(req), fut);
  if (status != SubmitStatus::kAccepted) {
    throw std::runtime_error(std::string("SsspServer: request rejected: ") +
                             to_string(status));
  }
  return fut.get();
}

void SsspServer::pause() {
  std::lock_guard<std::mutex> lock(pause_mutex_);
  paused_ = true;
}

void SsspServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void SsspServer::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return completed_.value(std::memory_order_acquire) ==
           accepted_.value(std::memory_order_acquire);
  });
}

void SsspServer::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    // Unpark the batchers so a paused server still drains its backlog.
    resume();
    // close() stops pushes but pops keep draining the buffer, so every
    // accepted request is served before the batchers see "closed+empty".
    queue_.close();
    for (std::thread& t : batchers_) t.join();
    batchers_.clear();
  });
}

ServerStats SsspServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.value(std::memory_order_acquire);
  s.rejected_full = rejected_full_.value();
  s.rejected_invalid = rejected_invalid_.value();
  s.rejected_shutdown = rejected_shutdown_.value();
  s.completed = completed_.value(std::memory_order_acquire);
  s.batches = batches_.value();
  s.max_batch = static_cast<std::uint64_t>(max_batch_.value());
  s.cache_hits = cache_hits_.value();
  s.cache_misses = cache_misses_.value();
  s.lower_bound_exits = lb_exits_.value();
  s.epoch = pin(engine_)->graph_epoch();
  s.swaps = swaps_.value();
  s.traced = traced_.value();
  s.slow_queries = slow_queries_.value();
  return s;
}

std::string SsspServer::export_metrics(MetricsFormat format) const {
  // Refresh the live gauges so a scrape is current: the epoch of the
  // currently-published snapshot and the admitted-minus-completed gap.
  // (Reference members make this legal from a const method; the gauges
  // are registry cells, not server state.)
  epoch_gauge_.set(static_cast<double>(pin(engine_)->graph_epoch()));
  in_flight_gauge_.set(
      static_cast<double>(accepted_.value(std::memory_order_acquire) -
                          completed_.value(std::memory_order_acquire)));
  return format == MetricsFormat::kJson ? obs::to_json(metrics_)
                                        : obs::to_prometheus(metrics_);
}

ResultCacheStats SsspServer::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ResultCacheStats{};
}

std::shared_ptr<const LandmarkOracle> SsspServer::oracle() const {
  return pin(oracle_);
}

std::shared_ptr<const SsspEngine> SsspServer::engine_snapshot() const {
  return pin(engine_);
}

void SsspServer::swap_engine(std::shared_ptr<const SsspEngine> next) {
  if (next == nullptr) {
    throw std::invalid_argument("SsspServer::swap_engine: null engine");
  }
  const std::uint64_t epoch = next->graph_epoch();
  // Rebuild the oracle BEFORE publishing the engine: once batchers can
  // pin the new engine, the matching oracle is already there (the brief
  // window where the old oracle fails valid_for() just skips annotation).
  if (opts_.enable_landmarks) {
    auto fresh = std::make_shared<const LandmarkOracle>(*next,
                                                        opts_.landmarks);
    std::atomic_store_explicit(&oracle_, std::move(fresh),
                               std::memory_order_release);
  }
  std::atomic_store_explicit(&engine_, std::move(next),
                             std::memory_order_release);
  // Rows keyed to older epochs can never match again (epochs only grow);
  // reclaim their memory eagerly.
  if (cache_ != nullptr) cache_->purge_stale(epoch);
  epoch_gauge_.set(static_cast<double>(epoch));
  swaps_.add();
}

void SsspServer::on_graph_replaced() {
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  if (cache_ != nullptr) cache_->purge_stale(eng->graph_epoch());
  if (opts_.enable_landmarks) {
    auto fresh = std::make_shared<const LandmarkOracle>(*eng,
                                                        opts_.landmarks);
    std::atomic_store_explicit(&oracle_, std::move(fresh),
                               std::memory_order_release);
  }
}

bool SsspServer::wait_not_paused() {
  std::unique_lock<std::mutex> lock(pause_mutex_);
  pause_cv_.wait(lock, [&] {
    return !paused_ || stopping_.load(std::memory_order_acquire);
  });
  return !stopping_.load(std::memory_order_acquire);
}

void SsspServer::batcher_loop() {
  std::vector<Pending> batch;
  batch.reserve(opts_.max_batch);
  for (;;) {
    // Parked while paused — but once stopping, fall through and keep
    // draining: pop() below returns false only when closed AND empty.
    wait_not_paused();

    Pending first;
    if (!queue_.pop(first)) break;  // closed and fully drained
    if (marks_enabled_) first.t_popped = std::chrono::steady_clock::now();
    batch.clear();
    batch.push_back(std::move(first));

    // Coalesce: keep collecting until the budget expires or the batch is
    // full. A zero budget turns the timed pop into a non-blocking drain
    // of whatever is already buffered.
    if (opts_.max_batch > 1) {
      const auto deadline =
          std::chrono::steady_clock::now() + opts_.batch_budget;
      Pending more;
      while (batch.size() < opts_.max_batch &&
             queue_.try_pop_until(more, deadline)) {
        if (marks_enabled_) {
          more.t_popped = std::chrono::steady_clock::now();
        }
        batch.push_back(std::move(more));
      }
    }

    execute(batch);
  }
}

void SsspServer::assemble_trace(Pending& p, QueryResponse& resp,
                                std::chrono::steady_clock::time_point now,
                                std::uint64_t e2e_us) {
  using std::chrono::duration_cast;
  using std::chrono::nanoseconds;
  const auto ns_between = [](std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
    return b <= a ? std::uint64_t{0}
                  : static_cast<std::uint64_t>(
                        duration_cast<nanoseconds>(b - a).count());
  };
  const auto rel = [&](std::chrono::steady_clock::time_point t) {
    return ns_between(p.accepted_at, t);
  };
  // The synchronous cache-hit path never stamped queue marks: one span
  // covers the whole request. Otherwise the five stations tile
  // [accepted_at, now] back to back, so depth-0 durations sum to the
  // end-to-end latency exactly.
  obs::TraceBuffer tb;
  tb.enabled = true;
  tb.origin_ns = static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(p.accepted_at.time_since_epoch()).count());
  const bool queued =
      p.t_enqueued != std::chrono::steady_clock::time_point{};
  if (!queued) {
    tb.add(obs::SpanId::kCacheHit, 0, 0, ns_between(p.accepted_at, now));
  } else {
    tb.add(obs::SpanId::kAdmission, 0, 0,
           ns_between(p.accepted_at, p.t_enqueued));
    tb.add(obs::SpanId::kQueueWait, 0, rel(p.t_enqueued),
           ns_between(p.t_enqueued, p.t_popped));
    tb.add(obs::SpanId::kBatchForm, 0, rel(p.t_popped),
           ns_between(p.t_popped, p.t_exec));
    tb.add(obs::SpanId::kEngine, 0, rel(p.t_exec),
           ns_between(p.t_exec, p.t_engine_done));
    tb.add(obs::SpanId::kRespond, 0, rel(p.t_engine_done),
           ns_between(p.t_engine_done, now));
    // Engine-phase detail (duration-only; anchored at the engine span's
    // start) from the RunStats hooks the engines filled for this traced
    // run.
    if (resp.stats.relax_ns != 0) {
      tb.add(obs::SpanId::kRelax, 1, rel(p.t_exec), resp.stats.relax_ns);
    }
    if (resp.stats.exchange_ns != 0) {
      tb.add(obs::SpanId::kExchange, 1, rel(p.t_exec),
             resp.stats.exchange_ns);
    }
    if (resp.stats.partition_ns != 0) {
      tb.add(obs::SpanId::kPartition, 1, rel(p.t_exec),
             resp.stats.partition_ns);
    }
  }
  if (p.traced) resp.trace = tb;
  if (opts_.slow_query_us != 0 && e2e_us >= opts_.slow_query_us) {
    slow_queries_.add();
    // One line per slow request, greppable, spans in microseconds. The
    // playbook (docs/OPERATIONS.md) reads these.
    char buf[512];
    int off = std::snprintf(
        buf, sizeof(buf), "rs_slow_query source=%llu e2e_us=%llu",
        static_cast<unsigned long long>(resp.source),
        static_cast<unsigned long long>(e2e_us));
    for (std::size_t i = 0; i < tb.size && off > 0 &&
                            static_cast<std::size_t>(off) < sizeof(buf);
         ++i) {
      off += std::snprintf(
          buf + off, sizeof(buf) - static_cast<std::size_t>(off),
          " %s_us=%llu", obs::to_string(tb.spans[i].id),
          static_cast<unsigned long long>(tb.spans[i].duration_ns / 1000));
    }
    std::fprintf(stderr, "%s\n", buf);
  }
}

void SsspServer::complete(Pending& p, QueryResponse&& resp) {
  const auto now = std::chrono::steady_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      now - p.accepted_at);
  latency_.record(static_cast<std::uint64_t>(us.count()));
  if (resp.lower_bound_exits != 0) {
    lb_exits_.add(resp.lower_bound_exits);
  }
  if (p.traced || opts_.slow_query_us != 0) {
    assemble_trace(p, resp, now, static_cast<std::uint64_t>(us.count()));
  }
  p.promise.set_value(std::move(resp));
  // Advance completed_ under the drain mutex so a drainer that just
  // checked the counters cannot go to sleep and miss this notification.
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    completed_.add(1, std::memory_order_release);
  }
  drain_cv_.notify_all();
}

void SsspServer::execute(std::vector<Pending>& batch) {
  // One pin per micro-batch: every request in the batch is served from
  // the same engine snapshot (a swap mid-batch affects only later
  // batches), and the oracle is only consulted when it matches THAT
  // snapshot's epoch — never a cross-epoch bound.
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  const std::shared_ptr<const LandmarkOracle> orc = pin(oracle_);
  // Assemble the engine batch: direct requests as-is (ALT-annotated when
  // the oracle matches the current epoch), cache OWNERS upgraded to
  // full-distance runs so their row can be published for every waiter.
  // Waiters run nothing — their row is coming from an owner.
  const bool use_oracle = orc != nullptr && orc->valid_for(*eng);
  std::vector<QueryRequest> requests;
  std::vector<std::size_t> exec_idx;  // batch index per engine request
  requests.reserve(batch.size());
  exec_idx.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    switch (p.role) {
      case CacheRole::kWaiter:
        break;
      case CacheRole::kOwner: {
        QueryRequest full;
        full.source = p.request.source;
        full.engine = p.request.engine;
        full.want_full_distances = true;
        full.trace = p.request.trace;
        exec_idx.push_back(i);
        requests.push_back(std::move(full));
        break;
      }
      case CacheRole::kDirect: {
        if (use_oracle) orc->annotate(p.request);
        exec_idx.push_back(i);
        requests.push_back(std::move(p.request));
        break;
      }
    }
  }

  const auto finish_error = [&](Pending& p, std::exception_ptr err) {
    if (p.role == CacheRole::kOwner) cache_->fail(p.key, err);
    p.promise.set_exception(err);
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      completed_.add(1, std::memory_order_release);
    }
    drain_cv_.notify_all();
  };

  if (marks_enabled_) {
    const auto t_exec = std::chrono::steady_clock::now();
    for (Pending& p : batch) p.t_exec = t_exec;
  }
  std::vector<QueryResponse> responses;
  bool failed = false;
  if (!requests.empty()) {
    try {
      responses = eng->serve_batch(requests);
    } catch (...) {
      // Requests were validated at admission, so this is unexpected (e.g.
      // bad_alloc) — but every promise must still be completed, and every
      // owned in-flight cache entry released (its waiters — here or in
      // other batches — inherit the failure through the shared future).
      failed = true;
      const std::exception_ptr err = std::current_exception();
      for (const std::size_t i : exec_idx) finish_error(batch[i], err);
    }
    batches_.add();
    max_batch_.record_max(static_cast<double>(requests.size()));
  }
  if (marks_enabled_) {
    const auto t_done = std::chrono::steady_clock::now();
    for (Pending& p : batch) p.t_engine_done = t_done;
  }

  if (!failed) {
    for (std::size_t j = 0; j < exec_idx.size(); ++j) {
      Pending& p = batch[exec_idx[j]];
      QueryResponse& r = responses[j];
      if (p.role == CacheRole::kOwner) {
        // Publish the row FIRST (waiters in this very batch read it just
        // below), then answer the owner's original targeted request from
        // it — the owner computed, so served_from_cache stays false.
        auto row = std::make_shared<CachedRow>();
        row->source = p.request.source;
        row->graph_epoch = r.graph_epoch;
        row->dist = std::move(r.dist);
        row->stats = r.stats;
        cache_->fulfill(p.key, row);
        QueryResponse resp;
        answer_from_row(p.request, *row, resp);
        resp.served_from_cache = false;
        complete(p, std::move(resp));
      } else {
        complete(p, std::move(r));
      }
    }
  }

  // Waiters last: their owner was either fulfilled above or lives in
  // another micro-batch. A ready future is the single-flight win; a
  // non-ready one means the owner is still queued — possibly behind THIS
  // batcher — so blocking could deadlock: serve directly instead (the
  // duplicated computation is the price of never stalling the pipeline).
  for (Pending& p : batch) {
    if (p.role != CacheRole::kWaiter) continue;
    try {
      if (p.pending_row.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        const RowPtr row = p.pending_row.get();  // rethrows owner failure
        QueryResponse resp;
        answer_from_row(p.request, *row, resp);
        // The shared row replaced the engine run: zero-width engine span,
        // the row read lands in `respond`.
        if (marks_enabled_) {
          p.t_engine_done = p.t_exec = std::chrono::steady_clock::now();
        }
        complete(p, std::move(resp));
      } else {
        if (marks_enabled_) p.t_exec = std::chrono::steady_clock::now();
        QueryResponse resp = eng->serve(p.request);
        if (marks_enabled_) {
          p.t_engine_done = std::chrono::steady_clock::now();
        }
        complete(p, std::move(resp));
      }
    } catch (...) {
      finish_error(p, std::current_exception());
    }
  }
}

std::string format_stats_line(const SsspServer& server) {
  const ServerStats s = server.stats();
  const auto snap = server.latency().snapshot();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "accepted=%llu completed=%llu shed=%llu invalid=%llu shutdown=%llu "
      "batches=%llu mean_batch=%.2f max_batch=%llu cache_hits=%llu "
      "cache_misses=%llu lower_bound_exits=%llu epoch=%llu swaps=%llu "
      "in_flight=%llu p50_us=%llu p99_us=%llu p999_us=%llu traced=%llu "
      "slow=%llu",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected_full),
      static_cast<unsigned long long>(s.rejected_invalid),
      static_cast<unsigned long long>(s.rejected_shutdown),
      static_cast<unsigned long long>(s.batches), s.mean_batch(),
      static_cast<unsigned long long>(s.max_batch),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.lower_bound_exits),
      static_cast<unsigned long long>(s.epoch),
      static_cast<unsigned long long>(s.swaps),
      static_cast<unsigned long long>(s.in_flight()),
      static_cast<unsigned long long>(snap.value_at_quantile(0.50)),
      static_cast<unsigned long long>(snap.value_at_quantile(0.99)),
      static_cast<unsigned long long>(snap.value_at_quantile(0.999)),
      static_cast<unsigned long long>(s.traced),
      static_cast<unsigned long long>(s.slow_queries));
  return std::string(buf);
}

}  // namespace rs::serve
