#include "serve/server.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace rs::serve {

namespace {

/// Pin-once helpers: all engine/oracle access funnels through these so
/// every code path uses the same acquire loads.
std::shared_ptr<const SsspEngine> pin(
    const std::shared_ptr<const SsspEngine>& slot) {
  return std::atomic_load_explicit(&slot, std::memory_order_acquire);
}

std::shared_ptr<const LandmarkOracle> pin(
    const std::shared_ptr<const LandmarkOracle>& slot) {
  return std::atomic_load_explicit(&slot, std::memory_order_acquire);
}

}  // namespace

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue_full";
    case SubmitStatus::kShuttingDown:
      return "shutting_down";
    case SubmitStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

SsspServer::SsspServer(const SsspEngine& engine, ServerOptions opts)
    // Non-owning alias: the caller guarantees the engine outlives the
    // server, so the deleter is a no-op. swap_engine() may later publish
    // an owning successor over this.
    : SsspServer(std::shared_ptr<const SsspEngine>(&engine,
                                                   [](const SsspEngine*) {}),
                 std::move(opts)) {}

SsspServer::SsspServer(std::shared_ptr<const SsspEngine> engine,
                       ServerOptions opts)
    : engine_(std::move(engine)), opts_(opts), queue_(opts.queue_capacity) {
  if (engine_ == nullptr) {
    throw std::invalid_argument("SsspServer: null engine");
  }
  if (opts_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(opts_.cache);
  }
  if (opts_.enable_landmarks) {
    // Built before the batchers start, so the rows never race a serve.
    oracle_ = std::make_shared<const LandmarkOracle>(*engine_,
                                                     opts_.landmarks);
  }
  paused_ = opts_.start_paused;
  const int n = opts_.batchers < 1 ? 1 : opts_.batchers;
  batchers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batchers_.emplace_back([this] { batcher_loop(); });
  }
}

SsspServer::~SsspServer() { shutdown(); }

SubmitStatus SsspServer::submit(QueryRequest req,
                                std::future<QueryResponse>& result) {
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kShuttingDown;
  }
  // One pin for the whole admission path: validation and the cache key
  // come from the same snapshot even if a swap lands mid-submit.
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  // Validate at the edge: a bad request is rejected on its own, before it
  // can be coalesced into (and poison) a micro-batch.
  try {
    eng->validate(req);
  } catch (const std::invalid_argument&) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kInvalid;
  }

  Pending pending;
  pending.request = std::move(req);
  pending.accepted_at = std::chrono::steady_clock::now();
  std::future<QueryResponse> fut = pending.promise.get_future();

  // Cache fast path: a hit is answered HERE, on the client thread —
  // O(|targets|) straight off the cached row, skipping the queue, the
  // batching budget, and the engine entirely. Misses enter the queue
  // carrying their single-flight role.
  if (cache_ != nullptr && cache_eligible(pending.request)) {
    const CacheKey key = key_for(*eng, pending.request);
    RowPtr row;
    std::shared_future<RowPtr> pending_row;
    switch (cache_->acquire(key, row, pending_row)) {
      case CacheAcquire::kHit: {
        accepted_.fetch_add(1, std::memory_order_release);
        QueryResponse resp;
        answer_from_row(pending.request, *row, resp);
        complete(pending, std::move(resp));
        result = std::move(fut);
        return SubmitStatus::kAccepted;
      }
      case CacheAcquire::kOwner:
        pending.role = CacheRole::kOwner;
        pending.key = key;
        break;
      case CacheAcquire::kWaiter:
        pending.role = CacheRole::kWaiter;
        pending.key = key;
        pending.pending_row = std::move(pending_row);
        break;
    }
  }

  const CacheRole role = pending.role;
  const CacheKey key = pending.key;
  if (!queue_.try_push(std::move(pending))) {
    // An owner that never enters the queue would park its waiters
    // forever; release the in-flight entry before rejecting.
    if (role == CacheRole::kOwner) {
      cache_->fail(key, std::make_exception_ptr(std::runtime_error(
                            "SsspServer: owning request rejected")));
    }
    // A closed queue and a full queue both fail the push; report the one
    // the caller can act on.
    if (stopping_.load(std::memory_order_acquire)) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      return SubmitStatus::kShuttingDown;
    }
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kQueueFull;
  }
  accepted_.fetch_add(1, std::memory_order_release);
  result = std::move(fut);
  return SubmitStatus::kAccepted;
}

QueryResponse SsspServer::serve_sync(QueryRequest req) {
  std::future<QueryResponse> fut;
  const SubmitStatus status = submit(std::move(req), fut);
  if (status != SubmitStatus::kAccepted) {
    throw std::runtime_error(std::string("SsspServer: request rejected: ") +
                             to_string(status));
  }
  return fut.get();
}

void SsspServer::pause() {
  std::lock_guard<std::mutex> lock(pause_mutex_);
  paused_ = true;
}

void SsspServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void SsspServer::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) ==
           accepted_.load(std::memory_order_acquire);
  });
}

void SsspServer::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    // Unpark the batchers so a paused server still drains its backlog.
    resume();
    // close() stops pushes but pops keep draining the buffer, so every
    // accepted request is served before the batchers see "closed+empty".
    queue_.close();
    for (std::thread& t : batchers_) t.join();
    batchers_.clear();
  });
}

ServerStats SsspServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_acquire);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_acquire);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.lower_bound_exits = lb_exits_.load(std::memory_order_relaxed);
  s.epoch = pin(engine_)->graph_epoch();
  s.swaps = swaps_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    const ResultCacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses + cs.single_flight_waits;
  }
  return s;
}

ResultCacheStats SsspServer::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ResultCacheStats{};
}

std::shared_ptr<const LandmarkOracle> SsspServer::oracle() const {
  return pin(oracle_);
}

std::shared_ptr<const SsspEngine> SsspServer::engine_snapshot() const {
  return pin(engine_);
}

void SsspServer::swap_engine(std::shared_ptr<const SsspEngine> next) {
  if (next == nullptr) {
    throw std::invalid_argument("SsspServer::swap_engine: null engine");
  }
  const std::uint64_t epoch = next->graph_epoch();
  // Rebuild the oracle BEFORE publishing the engine: once batchers can
  // pin the new engine, the matching oracle is already there (the brief
  // window where the old oracle fails valid_for() just skips annotation).
  if (opts_.enable_landmarks) {
    auto fresh = std::make_shared<const LandmarkOracle>(*next,
                                                        opts_.landmarks);
    std::atomic_store_explicit(&oracle_, std::move(fresh),
                               std::memory_order_release);
  }
  std::atomic_store_explicit(&engine_, std::move(next),
                             std::memory_order_release);
  // Rows keyed to older epochs can never match again (epochs only grow);
  // reclaim their memory eagerly.
  if (cache_ != nullptr) cache_->purge_stale(epoch);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

void SsspServer::on_graph_replaced() {
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  if (cache_ != nullptr) cache_->purge_stale(eng->graph_epoch());
  if (opts_.enable_landmarks) {
    auto fresh = std::make_shared<const LandmarkOracle>(*eng,
                                                        opts_.landmarks);
    std::atomic_store_explicit(&oracle_, std::move(fresh),
                               std::memory_order_release);
  }
}

bool SsspServer::wait_not_paused() {
  std::unique_lock<std::mutex> lock(pause_mutex_);
  pause_cv_.wait(lock, [&] {
    return !paused_ || stopping_.load(std::memory_order_acquire);
  });
  return !stopping_.load(std::memory_order_acquire);
}

void SsspServer::batcher_loop() {
  std::vector<Pending> batch;
  batch.reserve(opts_.max_batch);
  for (;;) {
    // Parked while paused — but once stopping, fall through and keep
    // draining: pop() below returns false only when closed AND empty.
    wait_not_paused();

    Pending first;
    if (!queue_.pop(first)) break;  // closed and fully drained
    batch.clear();
    batch.push_back(std::move(first));

    // Coalesce: keep collecting until the budget expires or the batch is
    // full. A zero budget turns the timed pop into a non-blocking drain
    // of whatever is already buffered.
    if (opts_.max_batch > 1) {
      const auto deadline =
          std::chrono::steady_clock::now() + opts_.batch_budget;
      Pending more;
      while (batch.size() < opts_.max_batch &&
             queue_.try_pop_until(more, deadline)) {
        batch.push_back(std::move(more));
      }
    }

    execute(batch);
  }
}

void SsspServer::complete(Pending& p, QueryResponse&& resp) {
  const auto now = std::chrono::steady_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      now - p.accepted_at);
  latency_.record(static_cast<std::uint64_t>(us.count()));
  if (resp.lower_bound_exits != 0) {
    lb_exits_.fetch_add(resp.lower_bound_exits, std::memory_order_relaxed);
  }
  p.promise.set_value(std::move(resp));
  // Advance completed_ under the drain mutex so a drainer that just
  // checked the counters cannot go to sleep and miss this notification.
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    completed_.fetch_add(1, std::memory_order_release);
  }
  drain_cv_.notify_all();
}

void SsspServer::execute(std::vector<Pending>& batch) {
  // One pin per micro-batch: every request in the batch is served from
  // the same engine snapshot (a swap mid-batch affects only later
  // batches), and the oracle is only consulted when it matches THAT
  // snapshot's epoch — never a cross-epoch bound.
  const std::shared_ptr<const SsspEngine> eng = pin(engine_);
  const std::shared_ptr<const LandmarkOracle> orc = pin(oracle_);
  // Assemble the engine batch: direct requests as-is (ALT-annotated when
  // the oracle matches the current epoch), cache OWNERS upgraded to
  // full-distance runs so their row can be published for every waiter.
  // Waiters run nothing — their row is coming from an owner.
  const bool use_oracle = orc != nullptr && orc->valid_for(*eng);
  std::vector<QueryRequest> requests;
  std::vector<std::size_t> exec_idx;  // batch index per engine request
  requests.reserve(batch.size());
  exec_idx.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    switch (p.role) {
      case CacheRole::kWaiter:
        break;
      case CacheRole::kOwner: {
        QueryRequest full;
        full.source = p.request.source;
        full.engine = p.request.engine;
        full.want_full_distances = true;
        exec_idx.push_back(i);
        requests.push_back(std::move(full));
        break;
      }
      case CacheRole::kDirect: {
        if (use_oracle) orc->annotate(p.request);
        exec_idx.push_back(i);
        requests.push_back(std::move(p.request));
        break;
      }
    }
  }

  const auto finish_error = [&](Pending& p, std::exception_ptr err) {
    if (p.role == CacheRole::kOwner) cache_->fail(p.key, err);
    p.promise.set_exception(err);
    {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      completed_.fetch_add(1, std::memory_order_release);
    }
    drain_cv_.notify_all();
  };

  std::vector<QueryResponse> responses;
  bool failed = false;
  if (!requests.empty()) {
    try {
      responses = eng->serve_batch(requests);
    } catch (...) {
      // Requests were validated at admission, so this is unexpected (e.g.
      // bad_alloc) — but every promise must still be completed, and every
      // owned in-flight cache entry released (its waiters — here or in
      // other batches — inherit the failure through the shared future).
      failed = true;
      const std::exception_ptr err = std::current_exception();
      for (const std::size_t i : exec_idx) finish_error(batch[i], err);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t width = requests.size();
    std::uint64_t cur = max_batch_.load(std::memory_order_relaxed);
    while (width > cur &&
           !max_batch_.compare_exchange_weak(cur, width,
                                             std::memory_order_relaxed)) {
    }
  }

  if (!failed) {
    for (std::size_t j = 0; j < exec_idx.size(); ++j) {
      Pending& p = batch[exec_idx[j]];
      QueryResponse& r = responses[j];
      if (p.role == CacheRole::kOwner) {
        // Publish the row FIRST (waiters in this very batch read it just
        // below), then answer the owner's original targeted request from
        // it — the owner computed, so served_from_cache stays false.
        auto row = std::make_shared<CachedRow>();
        row->source = p.request.source;
        row->graph_epoch = r.graph_epoch;
        row->dist = std::move(r.dist);
        row->stats = r.stats;
        cache_->fulfill(p.key, row);
        QueryResponse resp;
        answer_from_row(p.request, *row, resp);
        resp.served_from_cache = false;
        complete(p, std::move(resp));
      } else {
        complete(p, std::move(r));
      }
    }
  }

  // Waiters last: their owner was either fulfilled above or lives in
  // another micro-batch. A ready future is the single-flight win; a
  // non-ready one means the owner is still queued — possibly behind THIS
  // batcher — so blocking could deadlock: serve directly instead (the
  // duplicated computation is the price of never stalling the pipeline).
  for (Pending& p : batch) {
    if (p.role != CacheRole::kWaiter) continue;
    try {
      if (p.pending_row.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        const RowPtr row = p.pending_row.get();  // rethrows owner failure
        QueryResponse resp;
        answer_from_row(p.request, *row, resp);
        complete(p, std::move(resp));
      } else {
        QueryResponse resp = eng->serve(p.request);
        complete(p, std::move(resp));
      }
    } catch (...) {
      finish_error(p, std::current_exception());
    }
  }
}

std::string format_stats_line(const SsspServer& server) {
  const ServerStats s = server.stats();
  const auto snap = server.latency().snapshot();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "accepted=%llu completed=%llu shed=%llu invalid=%llu shutdown=%llu "
      "batches=%llu mean_batch=%.2f max_batch=%llu cache_hits=%llu "
      "cache_misses=%llu lower_bound_exits=%llu epoch=%llu swaps=%llu "
      "in_flight=%llu p50_us=%llu p99_us=%llu p999_us=%llu",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.rejected_full),
      static_cast<unsigned long long>(s.rejected_invalid),
      static_cast<unsigned long long>(s.rejected_shutdown),
      static_cast<unsigned long long>(s.batches), s.mean_batch(),
      static_cast<unsigned long long>(s.max_batch),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.lower_bound_exits),
      static_cast<unsigned long long>(s.epoch),
      static_cast<unsigned long long>(s.swaps),
      static_cast<unsigned long long>(s.in_flight()),
      static_cast<unsigned long long>(snap.value_at_quantile(0.50)),
      static_cast<unsigned long long>(snap.value_at_quantile(0.99)),
      static_cast<unsigned long long>(snap.value_at_quantile(0.999)));
  return std::string(buf);
}

}  // namespace rs::serve
