#include "serve/server.hpp"

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace rs::serve {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue_full";
    case SubmitStatus::kShuttingDown:
      return "shutting_down";
    case SubmitStatus::kInvalid:
      return "invalid";
  }
  return "unknown";
}

SsspServer::SsspServer(const SsspEngine& engine, ServerOptions opts)
    : engine_(engine), opts_(opts), queue_(opts.queue_capacity) {
  paused_ = opts_.start_paused;
  const int n = opts_.batchers < 1 ? 1 : opts_.batchers;
  batchers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batchers_.emplace_back([this] { batcher_loop(); });
  }
}

SsspServer::~SsspServer() { shutdown(); }

SubmitStatus SsspServer::submit(QueryRequest req,
                                std::future<QueryResponse>& result) {
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kShuttingDown;
  }
  // Validate at the edge: a bad request is rejected on its own, before it
  // can be coalesced into (and poison) a micro-batch.
  try {
    engine_.validate(req);
  } catch (const std::invalid_argument&) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kInvalid;
  }

  Pending pending;
  pending.request = std::move(req);
  pending.accepted_at = std::chrono::steady_clock::now();
  std::future<QueryResponse> fut = pending.promise.get_future();

  if (!queue_.try_push(std::move(pending))) {
    // A closed queue and a full queue both fail the push; report the one
    // the caller can act on.
    if (stopping_.load(std::memory_order_acquire)) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      return SubmitStatus::kShuttingDown;
    }
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kQueueFull;
  }
  accepted_.fetch_add(1, std::memory_order_release);
  result = std::move(fut);
  return SubmitStatus::kAccepted;
}

QueryResponse SsspServer::serve_sync(QueryRequest req) {
  std::future<QueryResponse> fut;
  const SubmitStatus status = submit(std::move(req), fut);
  if (status != SubmitStatus::kAccepted) {
    throw std::runtime_error(std::string("SsspServer: request rejected: ") +
                             to_string(status));
  }
  return fut.get();
}

void SsspServer::pause() {
  std::lock_guard<std::mutex> lock(pause_mutex_);
  paused_ = true;
}

void SsspServer::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mutex_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void SsspServer::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) ==
           accepted_.load(std::memory_order_acquire);
  });
}

void SsspServer::shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    // Unpark the batchers so a paused server still drains its backlog.
    resume();
    // close() stops pushes but pops keep draining the buffer, so every
    // accepted request is served before the batchers see "closed+empty".
    queue_.close();
    for (std::thread& t : batchers_) t.join();
    batchers_.clear();
  });
}

ServerStats SsspServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_acquire);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_acquire);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  return s;
}

bool SsspServer::wait_not_paused() {
  std::unique_lock<std::mutex> lock(pause_mutex_);
  pause_cv_.wait(lock, [&] {
    return !paused_ || stopping_.load(std::memory_order_acquire);
  });
  return !stopping_.load(std::memory_order_acquire);
}

void SsspServer::batcher_loop() {
  std::vector<Pending> batch;
  batch.reserve(opts_.max_batch);
  for (;;) {
    // Parked while paused — but once stopping, fall through and keep
    // draining: pop() below returns false only when closed AND empty.
    wait_not_paused();

    Pending first;
    if (!queue_.pop(first)) break;  // closed and fully drained
    batch.clear();
    batch.push_back(std::move(first));

    // Coalesce: keep collecting until the budget expires or the batch is
    // full. A zero budget turns the timed pop into a non-blocking drain
    // of whatever is already buffered.
    if (opts_.max_batch > 1) {
      const auto deadline =
          std::chrono::steady_clock::now() + opts_.batch_budget;
      Pending more;
      while (batch.size() < opts_.max_batch &&
             queue_.try_pop_until(more, deadline)) {
        batch.push_back(std::move(more));
      }
    }

    execute(batch);
  }
}

void SsspServer::execute(std::vector<Pending>& batch) {
  std::vector<QueryRequest> requests;
  requests.reserve(batch.size());
  for (Pending& p : batch) requests.push_back(std::move(p.request));

  std::vector<QueryResponse> responses;
  bool failed = false;
  try {
    responses = engine_.serve_batch(requests);
  } catch (...) {
    // Requests were validated at admission, so this is unexpected (e.g.
    // bad_alloc) — but every promise must still be completed.
    failed = true;
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : batch) p.promise.set_exception(err);
  }

  if (!failed) {
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          now - batch[i].accepted_at);
      latency_.record(static_cast<std::uint64_t>(us.count()));
      batch[i].promise.set_value(std::move(responses[i]));
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t width = batch.size();
  std::uint64_t cur = max_batch_.load(std::memory_order_relaxed);
  while (width > cur &&
         !max_batch_.compare_exchange_weak(cur, width,
                                           std::memory_order_relaxed)) {
  }

  // Advance completed_ under the drain mutex so a drainer that just
  // checked the counters cannot go to sleep and miss this notification.
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    completed_.fetch_add(batch.size(), std::memory_order_release);
  }
  drain_cv_.notify_all();
}

}  // namespace rs::serve
