#include "serve/landmark_oracle.hpp"

#include <algorithm>
#include <utility>

namespace rs::serve {

namespace {

/// Per-landmark contribution to the bound on d(s, t). Unreachability is
/// informative, not just skippable: d(L,t) == inf with d(L,s) finite
/// proves t unreachable from s (a path s -> t would extend L -> s into
/// L -> t), so the bound is itself kInfDist. All arithmetic stays off the
/// sentinel.
Dist bound_term(Dist ds, Dist dt, bool symmetric) {
  Dist b = 0;
  if (ds != kInfDist) {
    if (dt == kInfDist) return kInfDist;
    if (dt > ds) b = dt - ds;
  }
  if (symmetric && dt != kInfDist) {
    if (ds == kInfDist) return kInfDist;  // mirrored unreachability proof
    if (ds > dt) b = std::max(b, ds - dt);
  }
  return b;
}

}  // namespace

LandmarkOracle::LandmarkOracle(const SsspEngine& engine, LandmarkOptions opts)
    : opts_(opts) {
  rebuild(engine);
}

void LandmarkOracle::rebuild(const SsspEngine& engine) {
  const Vertex n = engine.original_graph().num_vertices();
  n_ = n;
  graph_epoch_ = engine.graph_epoch();
  landmarks_.clear();
  rows_.clear();
  if (n == 0 || opts_.count == 0) return;

  const std::size_t count = std::min<std::size_t>(opts_.count, n);
  landmarks_.reserve(count);
  rows_.reserve(count);

  QueryContext ctx(n);
  QueryRequest req;
  req.engine = opts_.engine;
  req.want_full_distances = true;

  // min_dist[v] = min over chosen landmarks of d(L, v); the farthest-point
  // rule picks the vertex maximizing it (reachable vertices only, ties to
  // the smallest id so selection is deterministic).
  std::vector<Dist> min_dist(n, kInfDist);
  Vertex pick = opts_.seed % n;
  for (std::size_t i = 0; i < count; ++i) {
    landmarks_.push_back(pick);
    req.source = pick;
    QueryResponse resp = engine.serve(req, ctx);
    rows_.push_back(std::move(resp.dist));
    const std::vector<Dist>& row = rows_.back();

    Vertex best = kNoVertex;
    Dist best_d = 0;
    for (Vertex v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], row[v]);
      if (min_dist[v] != kInfDist && min_dist[v] > best_d) {
        best_d = min_dist[v];
        best = v;
      }
    }
    // best_d == 0 (or no reachable candidate) means every reachable
    // vertex IS a landmark already; further landmarks add nothing.
    if (best == kNoVertex || best_d == 0) break;
    pick = best;
  }
}

Dist LandmarkOracle::lower_bound(Vertex s, Vertex t) const {
  if (s == t) return 0;
  Dist best = 0;
  for (const std::vector<Dist>& row : rows_) {
    best = std::max(best, bound_term(row[s], row[t], opts_.assume_symmetric));
    if (best == kInfDist) break;
  }
  return best;
}

void LandmarkOracle::lower_bounds(Vertex s,
                                  const std::vector<Vertex>& targets,
                                  std::vector<Dist>& out) const {
  out.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    out[i] = lower_bound(s, targets[i]);
  }
}

void LandmarkOracle::annotate(QueryRequest& req) const {
  if (req.kind != RequestKind::kTargets || req.targets.empty() ||
      req.want_full_distances) {
    return;
  }
  lower_bounds(req.source, req.targets, req.target_lower_bounds);
}

}  // namespace rs::serve
