#include "serve/landmark_oracle.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

namespace rs::serve {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'L', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void put_vec(std::ostream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("LandmarkOracle::load: truncated input");
  return value;
}

template <typename T>
std::vector<T> get_vec(std::istream& in, std::size_t count) {
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("LandmarkOracle::load: truncated input");
  return v;
}

/// Bytes left in `in` from the current position, or nullopt when the
/// stream is not seekable. Restores the read position.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (!in || end == std::istream::pos_type(-1) || end < cur) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - cur);
}

/// Per-landmark contribution to the bound on d(s, t). Unreachability is
/// informative, not just skippable: d(L,t) == inf with d(L,s) finite
/// proves t unreachable from s (a path s -> t would extend L -> s into
/// L -> t), so the bound is itself kInfDist. All arithmetic stays off the
/// sentinel.
Dist bound_term(Dist ds, Dist dt, bool symmetric) {
  Dist b = 0;
  if (ds != kInfDist) {
    if (dt == kInfDist) return kInfDist;
    if (dt > ds) b = dt - ds;
  }
  if (symmetric && dt != kInfDist) {
    if (ds == kInfDist) return kInfDist;  // mirrored unreachability proof
    if (ds > dt) b = std::max(b, ds - dt);
  }
  return b;
}

}  // namespace

LandmarkOracle::LandmarkOracle(const SsspEngine& engine, LandmarkOptions opts)
    : opts_(opts) {
  rebuild(engine);
}

void LandmarkOracle::rebuild(const SsspEngine& engine) {
  const Vertex n = engine.original_graph().num_vertices();
  n_ = n;
  graph_epoch_ = engine.graph_epoch();
  landmarks_.clear();
  rows_.clear();
  if (n == 0 || opts_.count == 0) return;

  const std::size_t count = std::min<std::size_t>(opts_.count, n);
  landmarks_.reserve(count);
  rows_.reserve(count);

  QueryContext ctx(n);
  QueryRequest req;
  req.engine = opts_.engine;
  req.want_full_distances = true;

  // min_dist[v] = min over chosen landmarks of d(L, v); the farthest-point
  // rule picks the vertex maximizing it (reachable vertices only, ties to
  // the smallest id so selection is deterministic).
  std::vector<Dist> min_dist(n, kInfDist);
  Vertex pick = opts_.seed % n;
  for (std::size_t i = 0; i < count; ++i) {
    landmarks_.push_back(pick);
    req.source = pick;
    QueryResponse resp = engine.serve(req, ctx);
    rows_.push_back(std::move(resp.dist));
    const std::vector<Dist>& row = rows_.back();

    Vertex best = kNoVertex;
    Dist best_d = 0;
    for (Vertex v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], row[v]);
      if (min_dist[v] != kInfDist && min_dist[v] > best_d) {
        best_d = min_dist[v];
        best = v;
      }
    }
    // best_d == 0 (or no reachable candidate) means every reachable
    // vertex IS a landmark already; further landmarks add nothing.
    if (best == kNoVertex || best_d == 0) break;
    pick = best;
  }
}

Dist LandmarkOracle::lower_bound(Vertex s, Vertex t) const {
  if (s == t) return 0;
  Dist best = 0;
  for (const std::vector<Dist>& row : rows_) {
    best = std::max(best, bound_term(row[s], row[t], opts_.assume_symmetric));
    if (best == kInfDist) break;
  }
  return best;
}

void LandmarkOracle::lower_bounds(Vertex s,
                                  const std::vector<Vertex>& targets,
                                  std::vector<Dist>& out) const {
  out.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    out[i] = lower_bound(s, targets[i]);
  }
}

void LandmarkOracle::save(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put(out, graph_epoch_);
  put(out, n_);
  put(out, static_cast<std::uint64_t>(landmarks_.size()));
  put(out, static_cast<std::uint8_t>(opts_.assume_symmetric));
  put_vec(out, landmarks_);
  for (const std::vector<Dist>& row : rows_) put_vec(out, row);
  if (!out) throw std::runtime_error("LandmarkOracle::save: write failed");
}

void LandmarkOracle::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("LandmarkOracle::save: cannot open " + path);
  }
  save(out);
}

LandmarkOracle LandmarkOracle::load(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("LandmarkOracle::load: bad magic");
  }
  if (get<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("LandmarkOracle::load: unsupported version");
  }
  LandmarkOracle oracle;
  oracle.graph_epoch_ = get<std::uint64_t>(in);
  oracle.n_ = get<Vertex>(in);
  const std::uint64_t count = get<std::uint64_t>(in);
  oracle.opts_.assume_symmetric = get<std::uint8_t>(in) != 0;
  // Untrusted counts: bound them BEFORE allocating (same discipline as
  // load_preprocessing — a corrupt header must fail as a clean parse
  // error, not a memory bomb). Landmarks are vertices, so count can
  // never legitimately exceed n.
  if (oracle.n_ >= kNoVertex) {
    throw std::runtime_error("LandmarkOracle::load: corrupt vertex count");
  }
  if (count > oracle.n_) {
    throw std::runtime_error("LandmarkOracle::load: corrupt landmark count");
  }
  if (const auto remaining = remaining_bytes(in)) {
    // Checked term by term so the running sum cannot overflow; count <= n
    // < kNoVertex keeps each product well inside 64 bits.
    std::uint64_t budget = *remaining;
    const auto take = [&budget](std::uint64_t bytes) {
      if (bytes > budget) {
        throw std::runtime_error(
            "LandmarkOracle::load: header counts exceed input size");
      }
      budget -= bytes;
    };
    take(count * sizeof(Vertex));
    for (std::uint64_t i = 0; i < count; ++i) {
      take(static_cast<std::uint64_t>(oracle.n_) * sizeof(Dist));
    }
  }
  oracle.landmarks_ = get_vec<Vertex>(in, count);
  for (const Vertex l : oracle.landmarks_) {
    if (l >= oracle.n_) {
      throw std::runtime_error("LandmarkOracle::load: landmark out of range");
    }
  }
  oracle.rows_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    oracle.rows_.push_back(get_vec<Dist>(in, oracle.n_));
  }
  // Keep opts_ coherent with the loaded state so a later rebuild() against
  // a changed graph selects the same number of landmarks.
  oracle.opts_.count = count;
  return oracle;
}

LandmarkOracle LandmarkOracle::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LandmarkOracle::load: cannot open " + path);
  }
  return load(in);
}

void LandmarkOracle::annotate(QueryRequest& req) const {
  if (req.kind != RequestKind::kTargets || req.targets.empty() ||
      req.want_full_distances) {
    return;
  }
  lower_bounds(req.source, req.targets, req.target_lower_bounds);
}

}  // namespace rs::serve
