// Bounded MPMC queue: the admission buffer between client threads and the
// daemon's batcher threads (serve/server.hpp).
//
// The capacity bound IS the backpressure mechanism: try_push never blocks
// and never grows the buffer — when the ring is full the push fails and
// the server surfaces SubmitStatus::kQueueFull to the caller, which is the
// behavior a saturated daemon wants (shed load at the edge with a cheap
// status instead of queueing unboundedly and blowing the tail latency of
// everything behind it).
//
// Consumers get two pops: a blocking pop() for the first request of a
// micro-batch (nothing to do until work arrives) and a deadline-bounded
// try_pop_until() for the coalescing window (wait at most until the batch
// budget expires). close() wakes everyone; pops drain whatever is still
// buffered before reporting closed, so shutdown never drops an accepted
// request.
//
// A mutex + condvar ring, not a lock-free queue, on purpose: the critical
// section is a handful of instructions, contention is bounded by the
// request rate (thousands/s, not millions/s — each item is a full SSSP
// query), and the batchers need the timed wait that a condvar gives for
// free. The ring storage is allocated once at construction; push/pop move
// items in and out without allocating.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace rs::serve {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity is fixed for the queue's lifetime (minimum 1).
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `item` unless the queue is full or closed. Never blocks.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || count_ == ring_.size()) return false;
      ring_[(head_ + count_) % ring_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false). Buffered items are always drained before reporting
  /// closure.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    return pop_locked(out);
  }

  /// Like pop() but gives up at `deadline` (false, with `out` untouched).
  /// A deadline already in the past degrades to a non-blocking try-pop.
  template <typename Clock, typename Duration>
  bool try_pop_until(T& out,
                     const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [&] { return count_ > 0 || closed_; });
    return pop_locked(out);
  }

  /// Rejects all future pushes and wakes every blocked pop. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

 private:
  bool pop_locked(T& out) {
    if (count_ == 0) return false;
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;   // index of the oldest item
  std::size_t count_ = 0;  // number of buffered items
  bool closed_ = false;
};

}  // namespace rs::serve
