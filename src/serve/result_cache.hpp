/// \file
/// ResultCache: sharded LRU cache of completed full-distance rows with
/// single-flight deduplication of concurrent misses.
///
/// Millions of clients concentrate their queries on few sources (hub
/// airports, trending accounts). Radius-Stepping makes ONE query fast;
/// the cache makes the Nth query from the same source O(|targets|): a
/// completed full-distance row is kept keyed by (source, engine,
/// graph_epoch), and any later targeted request for that key is answered
/// by projecting the requested entries straight out of the row — no
/// engine run, no O(n) work, and (with a warm response) no heap
/// allocation.
///
/// Keying rules:
///  * `source` — rows are per-source by construction.
///  * `engine` — all engines produce bit-identical distances, but
///    RunStats differ per engine and callers compare them; keying on the
///    engine keeps a cached response bit-identical to the computed one.
///  * `graph_epoch` — SsspEngine::graph_epoch() at compute time. A graph
///    swap bumps the epoch, so every old row silently stops matching; the
///    stale entries are reclaimed by LRU pressure or purge_stale().
///
/// Single-flight: when a burst of requests misses the same key at once,
/// exactly one caller becomes the OWNER (computes the row) and the rest
/// become WAITERS on a shared future — one computation, N waiters,
/// instead of N identical engine runs. The owner MUST call fulfill() or
/// fail(); a forgotten in-flight entry would park its waiters forever.
///
/// Concurrency: keys hash onto independent shards, each a mutex + hash
/// map + intrusive LRU list of READY entries. A hit is a find + list
/// splice (allocation-free) under one shard lock. In-flight entries live
/// in the map but not in the LRU list and never count against capacity;
/// clear() and purge_stale() only touch ready entries, so a waiter's
/// future is never invalidated from under it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/request.hpp"
#include "core/stats.hpp"
#include "graph/types.hpp"

namespace rs::serve {

/// Sizing knobs for ResultCache.
struct ResultCacheOptions {
  /// Number of independent shards (rounded up to at least 1). More shards
  /// = less lock contention; capacity scales with the shard count.
  std::size_t shards = 8;
  /// Ready rows kept per shard (LRU eviction beyond it). Memory budget is
  /// roughly shards * capacity_per_shard * n * sizeof(Dist) when full.
  std::size_t capacity_per_shard = 64;
};

/// One completed full-distance row, immutable once published. Shared
/// ownership: an evicted row stays alive while any reader still holds it.
struct CachedRow {
  Vertex source = kNoVertex;      ///< The row's SSSP source.
  std::uint64_t graph_epoch = 0;  ///< Epoch the row was computed against.
  std::vector<Dist> dist;  ///< Full distance vector of the computing run.
  RunStats stats;          ///< The computing run's stats (engine-specific).
};
/// Shared handle to an immutable cached row.
using RowPtr = std::shared_ptr<const CachedRow>;

/// What a cached row is keyed by; see the file comment for the rules.
struct CacheKey {
  Vertex source = kNoVertex;                ///< Row source.
  QueryEngine engine = QueryEngine::kFlat;  ///< Engine that computed it.
  std::uint64_t graph_epoch = 0;            ///< Preprocessing generation.

  /// Field-wise equality.
  bool operator==(const CacheKey& o) const {
    return source == o.source && engine == o.engine &&
           graph_epoch == o.graph_epoch;
  }
};

/// Builds the cache key a request resolves to against `engine` right now.
inline CacheKey key_for(const SsspEngine& engine, const QueryRequest& req) {
  return CacheKey{req.source, req.engine, engine.graph_epoch()};
}

/// True when a request can be answered from / admitted into the cache:
/// kTargets without paths (both the targeted projection and the full
/// vector come straight from the row). Path expansion and top-k extraction
/// need engine machinery, so those requests bypass the cache.
inline bool cache_eligible(const QueryRequest& req) {
  return req.kind == RequestKind::kTargets && !req.want_paths;
}

/// Monotonic counters; snapshot via ResultCache::stats().
struct ResultCacheStats {
  std::uint64_t hits = 0;                 ///< Ready-row acquisitions.
  std::uint64_t misses = 0;               ///< Owner acquisitions.
  std::uint64_t single_flight_waits = 0;  ///< Waiter acquisitions.
  std::uint64_t evictions = 0;            ///< LRU evictions of ready rows.

  /// hits / (hits + misses + waits); 0 when nothing was acquired yet.
  double hit_rate() const {
    const std::uint64_t total = hits + misses + single_flight_waits;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Outcome of ResultCache::acquire.
enum class CacheAcquire : std::uint8_t {
  kHit,     ///< `row` is the ready row.
  kOwner,   ///< Caller must compute, then fulfill() or fail().
  kWaiter,  ///< `pending` resolves when the owner fulfills (or rethrows).
};

/// The sharded LRU + single-flight row cache (see the file comment).
class ResultCache {
 public:
  /// Builds an empty cache with the given sharding/capacity knobs.
  explicit ResultCache(ResultCacheOptions opts = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Hit / owner / waiter resolution for `key` (see CacheAcquire). On
  /// kHit, `row` is set; on kWaiter, `pending` is set; on kOwner the
  /// caller owes a fulfill() or fail() for this key.
  CacheAcquire acquire(const CacheKey& key, RowPtr& row,
                       std::shared_future<RowPtr>& pending);

  /// Publishes the owner's computed row: inserts it as a ready LRU entry
  /// (evicting beyond capacity) and wakes every waiter with it.
  void fulfill(const CacheKey& key, RowPtr row);

  /// Owner's failure path: drops the in-flight entry and propagates `err`
  /// to every waiter. The key is then missable again.
  void fail(const CacheKey& key, std::exception_ptr err);

  /// Ready-row lookup without single-flight bookkeeping (refreshes LRU
  /// position). Null on miss or while the key is only in flight.
  RowPtr lookup(const CacheKey& key);

  /// Drops every READY row with graph_epoch < min_epoch — the eager
  /// reclamation hook after SsspEngine::replace() (stale rows can never
  /// match again; this just frees their memory early). In-flight entries
  /// are left alone.
  void purge_stale(std::uint64_t min_epoch);

  /// Drops every ready row (in-flight entries are left for their owners).
  void clear();

  /// Snapshot of the monotonic hit/miss/wait/eviction counters.
  ResultCacheStats stats() const;

  /// Ready rows currently resident (in-flight entries excluded).
  std::size_t size() const;

 private:
  struct Entry {
    RowPtr row;  // non-null == ready
    // In-flight machinery; the promise is boxed so Entry stays movable.
    std::shared_ptr<std::promise<RowPtr>> promise;
    std::shared_future<RowPtr> future;
    std::list<CacheKey>::iterator lru_pos;  // valid iff ready
  };

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // splitmix64-style mixing over the three fields.
      std::uint64_t h =
          static_cast<std::uint64_t>(k.source) * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<std::uint64_t>(k.engine) + 1) * 0xbf58476d1ce4e5b9ull;
      h ^= k.graph_epoch * 0x94d049bb133111ebull;
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<CacheKey, Entry, KeyHash> map;
    std::list<CacheKey> lru;  // front == most recently used, ready only
  };

  Shard& shard_for(const CacheKey& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  std::size_t capacity_per_shard_;
  std::vector<Shard> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Projects a cache-eligible request's answer out of `row` into `resp`,
/// reusing the response's capacity: a warm targeted projection performs no
/// heap allocation. Marks the response served_from_cache.
void answer_from_row(const QueryRequest& req, const CachedRow& row,
                     QueryResponse& resp);

/// Blocking cache-aware serve: hit -> projection; owner -> one
/// full-distance engine run published for everyone; waiter -> block on the
/// owner's row. Non-eligible requests pass straight through to the
/// engine. This is the single-threaded / test-harness entry point; the
/// serving daemon (serve/server.hpp) integrates the same primitives
/// around its micro-batching instead.
void cached_serve(const SsspEngine& engine, ResultCache& cache,
                  const QueryRequest& req, QueryContext& ctx,
                  QueryResponse& resp);

}  // namespace rs::serve
