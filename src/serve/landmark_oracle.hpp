/// \file
/// LandmarkOracle: precomputed landmark distance rows feeding ALT-style
/// admissible lower bounds into the targeted early-termination machinery.
///
/// ALT (A* + Landmarks + Triangle inequality): with exact distances from
/// a landmark L, the triangle inequality d(L,t) <= d(L,s) + d(s,t) gives
/// the admissible lower bound
///
///     d(s,t) >= d(L,t) - d(L,s),
///
/// valid on ANY directed graph because both rows are distances FROM L. On
/// a symmetric graph (every arc paired with its reverse at equal weight)
/// the mirrored term d(L,s) - d(L,t) is admissible too — opting in via
/// LandmarkOptions::assume_symmetric doubles the bound's power, but on a
/// directed graph it is WRONG and silently produces wrong distances, so
/// the default is the safe one-sided form.
///
/// The serving engines consume the bounds through
/// QueryRequest::target_lower_bounds (annotate() fills them): a target
/// whose tentative distance reaches its bound is provably final
/// (tentative >= true >= bound forces equality), so a goal-directed
/// request can exit steps before the plain step-boundary check would fire
/// — the win is largest for far targets whose bound is tight, and zero
/// for landmarks that "see" source and target at similar distances. The
/// exit stays exact either way; a bound only ever ADDS early-exit
/// opportunities.
///
/// Landmark selection is the standard farthest-point heuristic: the first
/// landmark is seeded, each next one maximizes the minimum distance to
/// the chosen set — pushing landmarks toward the periphery, where the
/// triangle inequality is tightest. Rows are full-distance engine runs,
/// so building costs `count` SSSP computations; valid_for()/rebuild() tie
/// the rows to SsspEngine::graph_epoch() so a graph swap invalidates
/// them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/request.hpp"
#include "graph/types.hpp"

namespace rs::serve {

/// Selection and bound-form knobs for LandmarkOracle.
struct LandmarkOptions {
  /// Landmarks to select (each costs one full SSSP at build time and one
  /// O(n) distance row of memory).
  std::size_t count = 8;
  /// Vertex the farthest-point selection starts from (mod n).
  Vertex seed = 0;
  /// Engine used for the row computations.
  QueryEngine engine = QueryEngine::kFlat;
  /// Enable the mirrored bound term |d(L,s) - d(L,t)|. ONLY sound when
  /// the graph is symmetric (undirected); on directed inputs leave this
  /// false or distances will be silently wrong.
  bool assume_symmetric = false;
};

/// The ALT lower-bound oracle (see the file comment).
class LandmarkOracle {
 public:
  /// An empty oracle: valid_for() nothing, lower_bound() always 0.
  LandmarkOracle() = default;
  /// Builds rows immediately (count full SSSP runs).
  explicit LandmarkOracle(const SsspEngine& engine, LandmarkOptions opts = {});

  /// Recomputes landmarks + rows against the engine's CURRENT graph and
  /// stamps the oracle with its graph_epoch().
  void rebuild(const SsspEngine& engine);

  /// True when the rows were built against this engine's current
  /// preprocessing generation (epoch and vertex count both match).
  bool valid_for(const SsspEngine& engine) const {
    return !rows_.empty() && graph_epoch_ == engine.graph_epoch() &&
           n_ == engine.original_graph().num_vertices();
  }

  /// SsspEngine::graph_epoch() the rows were built against (0 = unbuilt).
  std::uint64_t graph_epoch() const { return graph_epoch_; }
  /// The selected landmark vertices, in selection order.
  const std::vector<Vertex>& landmarks() const { return landmarks_; }
  /// Per-landmark full distance rows; rows()[i][v] == d(landmarks()[i], v).
  const std::vector<std::vector<Dist>>& rows() const { return rows_; }

  /// Serializes epoch + landmark rows ("RSLM" header). Rows cost `count`
  /// full SSSP runs to build, so a serving daemon persists them next to
  /// the `.pre` file and a restart skips the rebuild entirely.
  void save(std::ostream& out) const;
  /// save() into the file at `path`; throws std::runtime_error on I/O
  /// failure.
  void save_file(const std::string& path) const;

  /// Inverse of save(). Header counts are untrusted and bounds-checked
  /// against the input size before any allocation; throws
  /// std::runtime_error on a bad magic/version, truncation, or counts
  /// that do not fit the stream. Pair with valid_for() after loading —
  /// a stale epoch means the graph changed since the rows were built.
  static LandmarkOracle load(std::istream& in);
  /// load() from the file at `path`; throws std::runtime_error on I/O
  /// failure or a malformed payload.
  static LandmarkOracle load_file(const std::string& path);

  /// Admissible lower bound on d(s, t); 0 when no landmark helps.
  Dist lower_bound(Vertex s, Vertex t) const;

  /// One bound per target into `out` (capacity reused; warm calls do not
  /// allocate beyond `out`'s growth).
  void lower_bounds(Vertex s, const std::vector<Vertex>& targets,
                    std::vector<Dist>& out) const;

  /// Fills req.target_lower_bounds for an early-terminating targeted
  /// request (kTargets, non-empty targets, no full distances); leaves any
  /// other request untouched.
  void annotate(QueryRequest& req) const;

 private:
  LandmarkOptions opts_;
  std::uint64_t graph_epoch_ = 0;
  Vertex n_ = 0;
  std::vector<Vertex> landmarks_;
  std::vector<std::vector<Dist>> rows_;  // rows_[i][v] == d(landmarks_[i], v)
};

}  // namespace rs::serve
