/// \file
/// DynamicSsspService: live weight updates over a serving daemon.
///
/// The dynamic-graph story has three gears, and this class drives all of
/// them from one place:
///
///  1. STAGE — apply_weight_updates() on a staged copy of the graph. The
///     daemon keeps serving the published (flushed) epoch untouched;
///     staged batches merge into one cumulative arc-delta.
///  2. CORRECT — serve_corrected() answers a targeted request EXACTLY
///     against the staged weights without any re-preprocessing: it runs a
///     full-distance serve on the published engine (old weights) and
///     repairs the row with the online kernel (core/dyn_sssp.hpp) over
///     the cumulative delta — decreases re-relax, increases invalidate
///     their dirty subtree through the cached transpose.
///  3. FLUSH — IncrementalPreprocessor recomputes exactly the balls the
///     batch dirtied, splices a fresh PreprocessResult (bit-identical to
///     a cold rebuild), wraps it in SsspEngine::next_epoch, and publishes
///     it through SsspServer::swap_engine — mid-traffic, no quiescent
///     point: in-flight queries finish on the old epoch, new ones start
///     on the new epoch.
///
/// apply_updates() = stage + flush, the one-call form the daemon's
/// `update` verb uses. Everything is serialized by one internal mutex;
/// queries through the server itself need no lock (they pin epochs).
///
/// FLUSH can also run unattended: Options::flush_interval_ms starts a
/// background flusher thread on a timer, and Options::flush_dirty_fraction
/// makes stage() trigger it early once the staged batch would dirty that
/// fraction of all balls (tracked by the rs_dyn_dirty_fraction gauge in
/// the daemon's metrics registry, via IncrementalPreprocessor::
/// count_dirty()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/request.hpp"
#include "graph/fragment.hpp"
#include "graph/graph.hpp"
#include "graph/update.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "shortcut/incremental.hpp"
#include "shortcut/shortcut.hpp"

namespace rs::serve {

/// What one stage()/flush()/apply_updates() call did.
struct UpdateReport {
  /// Directed arcs whose weight changed in this call's batch.
  std::size_t updated_arcs = 0;
  /// Balls the flush recomputed (0 for a pure stage()).
  std::size_t dirty_balls = 0;
  /// Total balls (= vertices) at flush time (0 for a pure stage()).
  std::size_t total_balls = 0;
  /// Engine epoch after the call (bumped by a flush that had changes).
  std::uint64_t epoch = 0;
  /// Raw updates still staged (0 right after a flush).
  std::size_t staged = 0;
  /// Wall time of the incremental re-preprocess + swap (flush only).
  double incremental_ms = 0.0;
};

/// Serving daemon + incremental preprocessor + online correction, wired
/// together (see file comment).
class DynamicSsspService {
 public:
  /// Construction-time configuration.
  struct Options {
    /// Ball/shortcut parameters for the (incremental) preprocessing.
    PreprocessOptions preprocess;
    /// Daemon configuration (queue, batching, cache, landmarks).
    ServerOptions server;
    /// Build the fragment substrate so kFragment requests work; carried
    /// across every epoch swap by next_epoch().
    bool enable_fragments = false;
    /// Fragment count (0 = default_num_fragments()).
    std::size_t fragments = 0;
    /// Partition mode for the fragment substrate.
    PartitionMode fragment_mode = PartitionMode::kContiguous;
    /// Background flush timer: when nonzero, a flusher thread wakes every
    /// this many milliseconds and flushes whatever is staged. 0 disables
    /// the timer (flushes still happen on explicit flush()/apply_updates()
    /// and on the dirty-fraction trigger below).
    std::uint32_t flush_interval_ms = 0;
    /// Background flush threshold: when > 0, stage() requests an immediate
    /// background flush once the staged batch would dirty at least this
    /// fraction of all balls (the rs_dyn_dirty_fraction gauge). 0 disables
    /// the trigger. The flusher thread starts iff either knob is nonzero.
    double flush_dirty_fraction = 0.0;
  };

  /// Cold-preprocesses `g`, builds the first engine (epoch 1), starts the
  /// daemon, and (when a flush_interval_ms / flush_dirty_fraction knob is
  /// set) the background flusher thread.
  explicit DynamicSsspService(Graph g, const Options& options);

  /// Stops the flusher thread (staged-but-unflushed updates stay staged —
  /// shutdown does NOT force a final flush), then tears down the daemon.
  ~DynamicSsspService();

  DynamicSsspService(const DynamicSsspService&) = delete;
  DynamicSsspService& operator=(const DynamicSsspService&) = delete;

  /// The daemon. Queries submitted here are answered from the PUBLISHED
  /// epoch — staged-but-unflushed updates are invisible to it (use
  /// serve_corrected() for staged-exact answers).
  SsspServer& server() { return *server_; }
  /// Const view of the daemon (stats, snapshots).
  const SsspServer& server() const { return *server_; }

  /// Stages a weight-update batch without republishing: the staged graph
  /// and cumulative delta advance, serving continues on the old epoch.
  /// Throws std::invalid_argument on a bad update (nothing staged).
  UpdateReport stage(const std::vector<WeightUpdate>& updates);

  /// Incrementally re-preprocesses everything staged and publishes the
  /// successor engine via swap_engine(). No-op (no epoch bump) when
  /// nothing is staged.
  UpdateReport flush();

  /// stage() + flush() in one critical section — the `update` verb.
  UpdateReport apply_updates(const std::vector<WeightUpdate>& updates);

  /// True when updates are staged but not yet flushed.
  bool has_staged() const;

  /// Answers a kTargets request EXACTLY against the staged weights (equal
  /// to Dijkstra on the staged graph): full serve on the published epoch,
  /// then the online repair kernel over the cumulative delta. With
  /// nothing staged this is a plain engine serve. Throws
  /// std::invalid_argument for kTopK or want_paths requests — the
  /// correction path repairs distance rows, not paths or rankings.
  QueryResponse serve_corrected(const QueryRequest& req);

 private:
  /// Merges `changes` (relative to the current staged graph) into the
  /// cumulative flushed->staged delta. Caller holds mu_.
  void merge_staged(const std::vector<ArcChange>& changes);

  /// Background flusher body: waits on the timer / threshold trigger and
  /// calls flush(). Runs only when one of the flush knobs is nonzero.
  void flusher_loop();

  Options options_;
  mutable std::mutex mu_;
  /// Balls + shortcuts for the FLUSHED graph (the published epoch's base).
  IncrementalPreprocessor incr_;
  /// Current true weights: flushed graph + every staged batch.
  Graph staged_graph_;
  /// staged_graph_.transposed(), kept in step for the repair kernel.
  Graph staged_transpose_;
  /// Cumulative per-arc delta flushed -> staged (w_old = flushed weight).
  std::vector<ArcChange> staged_changes_;
  /// arc -> index into staged_changes_, so re-updates merge in place.
  std::unordered_map<EdgeId, std::size_t> staged_index_;
  /// Raw staged updates, replayed into incr_ at flush time.
  std::vector<WeightUpdate> pending_updates_;
  std::unique_ptr<SsspServer> server_;
  /// rs_dyn_dirty_fraction in the daemon's registry: fraction of all balls
  /// the currently staged updates would dirty (count_dirty / total). Set
  /// on every stage(), reset to 0 by flush(). Bound after server_ exists.
  obs::Gauge* dirty_fraction_ = nullptr;
  /// Flusher-thread coordination (separate from mu_ so stage() can notify
  /// while holding mu_ and the flusher can flush() without deadlock).
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flush_requested_ = false;
  bool stop_flusher_ = false;
  std::thread flusher_;
};

}  // namespace rs::serve
