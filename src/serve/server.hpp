// SsspServer: the long-running serving daemon over an SsspEngine.
//
//   SsspEngine engine(graph, {.rho = 64, .k = 3});
//   SsspServer server(engine, {.queue_capacity = 1024,
//                              .max_batch = 64,
//                              .batch_budget = std::chrono::microseconds(200)});
//   std::future<QueryResponse> fut;
//   if (server.submit(std::move(req), fut) == SubmitStatus::kAccepted) {
//     QueryResponse resp = fut.get();
//   }
//   server.shutdown();  // stop accepting, drain in-flight, join batchers
//
// Architecture (one request's life):
//
//   client threads ──submit()──► BoundedQueue ──pop──► batcher thread(s)
//        │ validate + admission      (backpressure)        │ coalesce up to
//        │ control at the edge                             │ max_batch within
//        ▼                                                 ▼ batch_budget
//   SubmitStatus / future ◄──promise◄── engine.serve_batch(micro-batch)
//
// Micro-batching: a batcher blocks for the first request, then keeps
// collecting until the batch budget expires or max_batch is reached, and
// hands the whole batch to SsspEngine::serve_batch — which runs it
// request-parallel over a leased warm context pool. The budget trades a
// bounded latency add-on (at most batch_budget of waiting) for the batch
// throughput regime the paper's preprocessing is amortized over (§5.4):
// under load the window fills instantly and the budget costs nothing;
// when idle a lone request waits out at most one budget.
//
// Admission control: requests are validated at submit time (kInvalid) so a
// bad request is rejected alone instead of poisoning its micro-batch, and
// the bounded queue sheds load (kQueueFull) instead of queueing without
// limit. Both rejections are cheap constant-time paths.
//
// Lifecycle: counter-based in-flight tracking (accepted vs completed)
// drives drain() — block until everything admitted so far has completed —
// and shutdown() = stop admitting, close the queue (buffered requests
// still drain), join the batchers. A request's promise is always
// completed: with a response, or with an exception if its batch failed.
//
// Every completion records end-to-end latency (submit to promise
// fulfillment, queueing and coalescing included — the number a client
// actually experiences) into an allocation-free LatencyHistogram.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/request.hpp"
#include "serve/landmark_oracle.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_cache.hpp"

namespace rs::serve {

/// Outcome of SsspServer::submit. Only kAccepted produces a future.
enum class SubmitStatus : std::uint8_t {
  kAccepted,      // admitted; the future will be fulfilled
  kQueueFull,     // backpressure: queue at capacity, try again later
  kShuttingDown,  // server no longer admits requests
  kInvalid,       // request failed SsspEngine::validate (bad source/target/
                  // engine); see error() text via serve_sync or validate
};

const char* to_string(SubmitStatus status);

struct ServerOptions {
  /// Admission buffer depth; pushes beyond it are rejected kQueueFull.
  std::size_t queue_capacity = 1024;

  /// Micro-batch size cap. 1 disables coalescing entirely.
  std::size_t max_batch = 64;

  /// How long a batcher keeps collecting after the first request of a
  /// micro-batch. Zero means "grab whatever is already queued, never
  /// wait" — coalescing without any latency add-on.
  std::chrono::microseconds batch_budget{200};

  /// Number of batcher threads pulling micro-batches concurrently. Each
  /// concurrent batch leases its own warm context pool inside the engine,
  /// so >1 batchers trade per-batch width for pipeline overlap.
  int batchers = 1;

  /// Start with batchers parked (see pause()). Requests queue but are not
  /// served until resume() — how tests set up deterministic queue-full
  /// and coalescing scenarios.
  bool start_paused = false;

  /// Hot-source result cache (serve/result_cache.hpp). Cache-eligible
  /// requests (kTargets, no paths) that hit a cached full-distance row
  /// are answered synchronously AT SUBMIT TIME — no queue, no batching,
  /// no engine run: O(|targets|) per hit. Misses are computed once per
  /// (source, engine, graph_epoch) and shared single-flight: the first
  /// miss is upgraded to a full-distance run whose row every concurrent
  /// duplicate reuses.
  bool enable_cache = false;
  ResultCacheOptions cache;

  /// Landmark (ALT) oracle: built at server construction (count full SSSP
  /// runs) and used to annotate targeted requests with admissible
  /// per-target lower bounds, letting the engines prove far targets
  /// settled early. Only annotates while the oracle matches the engine's
  /// graph_epoch — see on_graph_replaced().
  bool enable_landmarks = false;
  LandmarkOptions landmarks;
};

/// Monotonic counters, readable at any time without stopping the server.
struct ServerStats {
  std::uint64_t accepted = 0;           // admitted into the queue
  std::uint64_t rejected_full = 0;      // kQueueFull rejections
  std::uint64_t rejected_invalid = 0;   // kInvalid rejections
  std::uint64_t rejected_shutdown = 0;  // kShuttingDown rejections
  std::uint64_t completed = 0;          // promises fulfilled
  std::uint64_t batches = 0;            // serve_batch calls issued
  std::uint64_t max_batch = 0;          // widest micro-batch so far
  std::uint64_t cache_hits = 0;         // answered from a cached row
  std::uint64_t cache_misses = 0;       // owner + single-flight-waiter
                                        // acquisitions (0 with cache off)

  /// Requests admitted but not yet completed (queued or being served).
  std::uint64_t in_flight() const { return accepted - completed; }
  /// Mean micro-batch width — the coalescing factor under load.
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class SsspServer {
 public:
  /// The engine must outlive the server. Batcher threads start
  /// immediately (parked if opts.start_paused).
  explicit SsspServer(const SsspEngine& engine, ServerOptions opts = {});

  /// shutdown() if the caller has not already.
  ~SsspServer();

  SsspServer(const SsspServer&) = delete;
  SsspServer& operator=(const SsspServer&) = delete;

  /// Admission: validates, then enqueues. On kAccepted, `result` is a
  /// future fulfilled when the request's micro-batch completes (with the
  /// response, or the batch's exception). On any rejection `result` is
  /// untouched and nothing was enqueued.
  SubmitStatus submit(QueryRequest req, std::future<QueryResponse>& result);

  /// Convenience blocking call: submit + wait. Throws std::runtime_error
  /// on admission rejection (message names the SubmitStatus).
  QueryResponse serve_sync(QueryRequest req);

  /// Parks the batchers after their current micro-batch: admitted
  /// requests keep queueing but none are served until resume(). The
  /// deterministic-test hook (fill the queue, assert coalescing) and an
  /// operational pressure valve (e.g. while swapping the engine).
  void pause();
  void resume();

  /// Blocks until in_flight() reaches zero — every request admitted
  /// before (or during) the drain has completed. Does not stop admission;
  /// call pause() or shutdown() first for a quiescent point. Self-
  /// deadlocks if the server is paused with requests buffered.
  void drain();

  /// Stops admission, lets the queue drain (buffered requests are still
  /// served), joins the batchers. Idempotent; safe to call concurrently.
  void shutdown();

  ServerStats stats() const;

  /// End-to-end request latency (microseconds, submit to completion).
  const LatencyHistogram& latency() const { return latency_; }

  const ServerOptions& options() const { return opts_; }

  /// Cache counters (all-zero when the cache is disabled).
  ResultCacheStats cache_stats() const;

  /// The landmark oracle, or null when disabled.
  const LandmarkOracle* oracle() const { return oracle_.get(); }

  /// Post-SsspEngine::replace() hook: purges cache rows of older epochs
  /// (they can never match again — this frees their memory eagerly) and
  /// rebuilds the landmark rows against the new preprocessing. Call at a
  /// quiescent point (paused or drained), like replace() itself.
  void on_graph_replaced();

 private:
  /// How a request's answer is produced. Cache hits never reach the
  /// queue; owners and waiters carry their single-flight obligations
  /// through the batcher.
  enum class CacheRole : std::uint8_t { kDirect, kOwner, kWaiter };

  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point accepted_at;
    CacheRole role = CacheRole::kDirect;
    CacheKey key;                              // kOwner/kWaiter
    std::shared_future<RowPtr> pending_row;    // kWaiter
  };

  void batcher_loop();
  /// Serves one micro-batch and fulfills its promises. Never throws.
  void execute(std::vector<Pending>& batch);
  /// Blocks while paused. Returns false when the server is stopping.
  bool wait_not_paused();

  /// Completes one request (latency record + promise + drain counters).
  void complete(Pending& p, QueryResponse&& resp);

  const SsspEngine& engine_;
  const ServerOptions opts_;

  // Caching/oracle layer (null when disabled).
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<LandmarkOracle> oracle_;
  // Oracle validity flag refreshed by on_graph_replaced(); checked by the
  // batchers without touching the engine's epoch counter mid-serve.
  std::atomic<bool> oracle_valid_{false};

  BoundedQueue<Pending> queue_;
  std::vector<std::thread> batchers_;

  // Admission gate. Set by shutdown() before the queue closes, so submit
  // can distinguish "full" from "shutting down".
  std::atomic<bool> stopping_{false};

  // Pause gate for the batchers.
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // In-flight tracking: accepted_ counts successful admissions,
  // completed_ counts fulfilled promises; drain() waits for the gap to
  // close. completed_ is only advanced under drain_mutex_ (then
  // notified), so a drainer cannot miss the final wakeup.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  // Stats counters (relaxed; read via stats()).
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_{0};

  LatencyHistogram latency_;

  std::once_flag shutdown_once_;
};

}  // namespace rs::serve
