/// \file
/// SsspServer: the long-running serving daemon over an SsspEngine.
///
/// \code
///   auto engine = std::make_shared<SsspEngine>(graph, opts);
///   SsspServer server(engine, {.queue_capacity = 1024,
///                              .max_batch = 64,
///                              .batch_budget = microseconds(200)});
///   std::future<QueryResponse> fut;
///   if (server.submit(std::move(req), fut) == SubmitStatus::kAccepted) {
///     QueryResponse resp = fut.get();
///   }
///   server.shutdown();  // stop accepting, drain in-flight, join batchers
/// \endcode
///
/// Architecture (one request's life):
///
/// \verbatim
///   client threads ──submit()──► BoundedQueue ──pop──► batcher thread(s)
///        │ validate + admission      (backpressure)      │ coalesce up to
///        │ control at the edge                           │ max_batch within
///        ▼                                               ▼ batch_budget
///   SubmitStatus / future ◄──promise◄── engine.serve_batch(micro-batch)
/// \endverbatim
///
/// Micro-batching: a batcher blocks for the first request, then keeps
/// collecting until the batch budget expires or max_batch is reached, and
/// hands the whole batch to SsspEngine::serve_batch — which runs it
/// request-parallel over a leased warm context pool. The budget trades a
/// bounded latency add-on (at most batch_budget of waiting) for the batch
/// throughput regime the paper's preprocessing is amortized over (§5.4):
/// under load the window fills instantly and the budget costs nothing;
/// when idle a lone request waits out at most one budget.
///
/// Admission control: requests are validated at submit time (kInvalid) so
/// a bad request is rejected alone instead of poisoning its micro-batch,
/// and the bounded queue sheds load (kQueueFull) instead of queueing
/// without limit. Both rejections are cheap constant-time paths.
///
/// Live graph swaps: the server holds its engine through an atomic
/// shared_ptr (the RCU pattern of graph/graph_swap.hpp). Every submit and
/// every micro-batch pins the pointer ONCE and serves entirely from that
/// snapshot, so swap_engine() can publish a successor (built with
/// SsspEngine::next_epoch) mid-traffic: in-flight work finishes on the
/// old epoch, new work starts on the new one, and no request ever
/// observes a torn state. The old engine is destroyed when its last pin
/// drops.
///
/// Lifecycle: counter-based in-flight tracking (accepted vs completed)
/// drives drain() — block until everything admitted so far has completed
/// — and shutdown() = stop admitting, close the queue (buffered requests
/// still drain), join the batchers. A request's promise is always
/// completed: with a response, or with an exception if its batch failed.
///
/// Every completion records end-to-end latency (submit to promise
/// fulfillment, queueing and coalescing included — the number a client
/// actually experiences) into an allocation-free LatencyHistogram.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/request.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/landmark_oracle.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/request_queue.hpp"
#include "serve/result_cache.hpp"

namespace rs::serve {

/// Outcome of SsspServer::submit. Only kAccepted produces a future.
enum class SubmitStatus : std::uint8_t {
  kAccepted,      ///< Admitted; the future will be fulfilled.
  kQueueFull,     ///< Backpressure: queue at capacity, try again later.
  kShuttingDown,  ///< Server no longer admits requests.
  kInvalid,       ///< Request failed SsspEngine::validate (bad source,
                  ///< target, or engine choice).
};

/// Stable lowercase token for a SubmitStatus ("accepted", "queue_full",
/// "shutting_down", "invalid") — the wire/protocol spelling.
const char* to_string(SubmitStatus status);

/// Construction-time configuration of an SsspServer.
struct ServerOptions {
  /// Admission buffer depth; pushes beyond it are rejected kQueueFull.
  std::size_t queue_capacity = 1024;

  /// Micro-batch size cap. 1 disables coalescing entirely.
  std::size_t max_batch = 64;

  /// How long a batcher keeps collecting after the first request of a
  /// micro-batch. Zero means "grab whatever is already queued, never
  /// wait" — coalescing without any latency add-on.
  std::chrono::microseconds batch_budget{200};

  /// Number of batcher threads pulling micro-batches concurrently. Each
  /// concurrent batch leases its own warm context pool inside the engine,
  /// so >1 batchers trade per-batch width for pipeline overlap.
  int batchers = 1;

  /// Start with batchers parked (see pause()). Requests queue but are not
  /// served until resume() — how tests set up deterministic queue-full
  /// and coalescing scenarios.
  bool start_paused = false;

  /// Hot-source result cache (serve/result_cache.hpp). Cache-eligible
  /// requests (kTargets, no paths) that hit a cached full-distance row
  /// are answered synchronously AT SUBMIT TIME — no queue, no batching,
  /// no engine run: O(|targets|) per hit. Misses are computed once per
  /// (source, engine, graph_epoch) and shared single-flight: the first
  /// miss is upgraded to a full-distance run whose row every concurrent
  /// duplicate reuses.
  bool enable_cache = false;
  /// Sharding/capacity knobs for the cache (used iff enable_cache).
  ResultCacheOptions cache;

  /// Landmark (ALT) oracle: built at server construction (count full SSSP
  /// runs) and used to annotate targeted requests with admissible
  /// per-target lower bounds, letting the engines prove far targets
  /// settled early. Only annotates while the oracle matches the engine's
  /// graph_epoch — see on_graph_replaced().
  bool enable_landmarks = false;
  /// Selection knobs for the oracle (used iff enable_landmarks).
  LandmarkOptions landmarks;

  /// Trace every Nth admitted request (0 = off): sampled requests get a
  /// per-request span breakdown in QueryResponse::trace (obs/trace.hpp)
  /// and the engines time their phases for them. The daemon wires
  /// `--trace-sample` / the RS_TRACE env into this.
  std::uint32_t trace_sample = 0;

  /// Slow-query log threshold in microseconds (0 = off): any request
  /// whose end-to-end latency reaches it dumps a one-line station
  /// breakdown to stderr and bumps rs_slow_queries_total. Works for
  /// untraced requests too (station marks are kept whenever either knob
  /// is on); traced requests add their engine-phase detail.
  std::uint64_t slow_query_us = 0;
};

/// Monotonic counters, readable at any time without stopping the server.
/// format_stats_line() renders every field; the daemon's `stats` verb and
/// the README metric table are generated from that single source.
struct ServerStats {
  std::uint64_t accepted = 0;           ///< Admitted into the queue.
  std::uint64_t rejected_full = 0;      ///< kQueueFull rejections (shed).
  std::uint64_t rejected_invalid = 0;   ///< kInvalid rejections.
  std::uint64_t rejected_shutdown = 0;  ///< kShuttingDown rejections.
  std::uint64_t completed = 0;          ///< Promises fulfilled.
  std::uint64_t batches = 0;            ///< serve_batch calls issued.
  std::uint64_t max_batch = 0;          ///< Widest micro-batch so far.
  std::uint64_t cache_hits = 0;         ///< Answered from a cached row.
  std::uint64_t cache_misses = 0;       ///< Owner + single-flight-waiter
                                        ///< acquisitions (0, cache off).
  /// Targets proven settled by an ALT lower bound across all completed
  /// requests (sum of QueryResponse::lower_bound_exits).
  std::uint64_t lower_bound_exits = 0;
  /// graph_epoch() of the currently-published engine snapshot.
  std::uint64_t epoch = 0;
  /// swap_engine() calls that have published a successor engine.
  std::uint64_t swaps = 0;

  /// Requests traced by the sampling knob (trace_sample).
  std::uint64_t traced = 0;
  /// Requests at or over the slow-query threshold (slow_query_us).
  std::uint64_t slow_queries = 0;

  /// Requests admitted but not yet completed (queued or being served).
  std::uint64_t in_flight() const { return accepted - completed; }
  /// Mean micro-batch width — the coalescing factor under load.
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

/// Which rendering SsspServer::export_metrics produces.
enum class MetricsFormat : std::uint8_t {
  kPrometheus,  ///< Text exposition format (scrapable; `metrics` verb).
  kJson,        ///< One-line JSON array (`metrics json` verb).
};

/// The serving daemon (see file comment for the architecture).
class SsspServer {
 public:
  /// Non-owning form: the engine must outlive the server and must not be
  /// mutated while serving. Batcher threads start immediately (parked if
  /// opts.start_paused). swap_engine() works from here too — it simply
  /// publishes an owning successor over the borrowed original.
  explicit SsspServer(const SsspEngine& engine, ServerOptions opts = {});

  /// Owning form — the one dynamic deployments use: the server shares
  /// ownership of the engine snapshot and swap_engine() can retire it
  /// safely once the last in-flight pin drops.
  explicit SsspServer(std::shared_ptr<const SsspEngine> engine,
                      ServerOptions opts = {});

  /// shutdown() if the caller has not already.
  ~SsspServer();

  SsspServer(const SsspServer&) = delete;
  SsspServer& operator=(const SsspServer&) = delete;

  /// Admission: validates, then enqueues. On kAccepted, `result` is a
  /// future fulfilled when the request's micro-batch completes (with the
  /// response, or the batch's exception). On any rejection `result` is
  /// untouched and nothing was enqueued.
  SubmitStatus submit(QueryRequest req, std::future<QueryResponse>& result);

  /// Convenience blocking call: submit + wait. Throws std::runtime_error
  /// on admission rejection (message names the SubmitStatus).
  QueryResponse serve_sync(QueryRequest req);

  /// Parks the batchers after their current micro-batch: admitted
  /// requests keep queueing but none are served until resume(). The
  /// deterministic-test hook (fill the queue, assert coalescing) and an
  /// operational pressure valve (e.g. while swapping the engine).
  void pause();
  /// Unparks the batchers; the inverse of pause().
  void resume();

  /// Blocks until in_flight() reaches zero — every request admitted
  /// before (or during) the drain has completed. Does not stop admission;
  /// call pause() or shutdown() first for a quiescent point. Self-
  /// deadlocks if the server is paused with requests buffered.
  void drain();

  /// Stops admission, lets the queue drain (buffered requests are still
  /// served), joins the batchers. Idempotent; safe to call concurrently.
  void shutdown();

  /// Snapshot of every monotonic counter (plus the live epoch). Reads the
  /// metrics registry — the same cells `stats` verb, shutdown print, and
  /// export_metrics() render, so the three can never disagree.
  ServerStats stats() const;

  /// The server's metrics registry: every counter above lives here, and
  /// co-located subsystems (DynamicSsspService) register their own series
  /// alongside so one scrape covers the whole deployment.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Renders the full registry — counters, gauges, the latency summary —
  /// as Prometheus text exposition or JSON. Live gauges (epoch, in-flight)
  /// are refreshed first, so a scrape is always current.
  std::string export_metrics(
      MetricsFormat format = MetricsFormat::kPrometheus) const;

  /// End-to-end request latency (microseconds, submit to completion).
  const LatencyHistogram& latency() const { return latency_; }

  /// The options the server was constructed with.
  const ServerOptions& options() const { return opts_; }

  /// Cache counters (all-zero when the cache is disabled).
  ResultCacheStats cache_stats() const;

  /// Pins the landmark oracle snapshot, or null when disabled. Like the
  /// engine, the oracle is epoch-swapped: the returned pointer stays
  /// valid across concurrent swap_engine() calls.
  std::shared_ptr<const LandmarkOracle> oracle() const;

  /// Pins the currently-published engine snapshot (never null). The
  /// engine stays alive for as long as the caller holds the pointer, no
  /// matter how many swaps race past — the way to stamp answers or read
  /// graph_epoch() consistently from outside.
  std::shared_ptr<const SsspEngine> engine_snapshot() const;

  /// Publishes `next` as the engine for all FUTURE work, mid-traffic and
  /// without a quiescent point: in-flight submits and micro-batches
  /// finish on the snapshot they pinned; the old engine is destroyed when
  /// its last pin drops. Purges cache rows of epochs older than `next`'s
  /// (a stale key can never match again — free its memory eagerly) and
  /// rebuilds the landmark oracle against `next`. Build `next` with
  /// SsspEngine::next_epoch so the epoch strictly increases.
  void swap_engine(std::shared_ptr<const SsspEngine> next);

  /// Post-SsspEngine::replace() hook for the legacy IN-PLACE mutation
  /// flow: purges stale cache rows and rebuilds the landmark rows against
  /// the (mutated) current engine. Call at a quiescent point (paused or
  /// drained), like replace() itself. New code should prefer
  /// swap_engine(), which needs no quiescent point.
  void on_graph_replaced();

 private:
  /// How a request's answer is produced. Cache hits never reach the
  /// queue; owners and waiters carry their single-flight obligations
  /// through the batcher.
  enum class CacheRole : std::uint8_t { kDirect, kOwner, kWaiter };

  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point accepted_at;
    CacheRole role = CacheRole::kDirect;
    CacheKey key;                              // kOwner/kWaiter
    std::shared_future<RowPtr> pending_row;    // kWaiter

    /// Sampled for a span breakdown (ServerOptions::trace_sample).
    bool traced = false;
    // Station marks, stamped only while tracing or the slow-query log is
    // on (marks_enabled_): the depth-0 spans tile [accepted_at, complete]
    // exactly, so their durations sum to the end-to-end latency. A
    // default (epoch-zero) t_enqueued means the request never entered the
    // queue — the synchronous cache-hit path.
    std::chrono::steady_clock::time_point t_enqueued{};
    std::chrono::steady_clock::time_point t_popped{};
    std::chrono::steady_clock::time_point t_exec{};
    std::chrono::steady_clock::time_point t_engine_done{};
  };

  void batcher_loop();
  /// Serves one micro-batch and fulfills its promises. Never throws.
  void execute(std::vector<Pending>& batch);
  /// Blocks while paused. Returns false when the server is stopping.
  bool wait_not_paused();

  /// Completes one request (latency record + promise + drain counters).
  void complete(Pending& p, QueryResponse&& resp);

  /// Builds the traced span breakdown (and serves the slow-query log)
  /// for one completing request. `now` is the completion instant.
  void assemble_trace(Pending& p, QueryResponse& resp,
                      std::chrono::steady_clock::time_point now,
                      std::uint64_t e2e_us);

  // The published engine snapshot, accessed only through the C++17
  // atomic shared_ptr free functions (the SnapshotSwap pattern): submit
  // pins once per request, execute pins once per micro-batch, and
  // swap_engine publishes a successor. Never null after construction.
  std::shared_ptr<const SsspEngine> engine_;
  const ServerOptions opts_;

  // THE counter source of truth: every ServerStats field is a registry
  // series, and stats()/format_stats_line/export_metrics all read these
  // same cells. Registration happens once, in the constructor; the
  // references below are stable handles whose updates are single relaxed
  // fetch_adds (no lock, no lookup, no allocation on the hot path).
  obs::MetricsRegistry metrics_;
  obs::Counter& accepted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_invalid_;
  obs::Counter& rejected_shutdown_;
  obs::Counter& batches_;
  obs::Gauge& max_batch_;  // high-watermark (record_max)
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& lb_exits_;
  obs::Counter& swaps_;
  obs::Counter& traced_;
  obs::Counter& slow_queries_;
  obs::Gauge& epoch_gauge_;      // refreshed on swap + export
  obs::Gauge& in_flight_gauge_;  // refreshed on export
  obs::Histogram& latency_;

  // Trace sampling state: request sequence number for the every-Nth
  // pick, and whether station marks are stamped at all.
  std::atomic<std::uint64_t> trace_seq_{0};
  const bool marks_enabled_;

  // Caching/oracle layer (null when disabled). The oracle is swapped
  // with the engine: batchers pin it alongside the engine snapshot and
  // check valid_for() against that same snapshot, so an oracle mid-
  // rebuild never annotates a request with cross-epoch bounds.
  std::unique_ptr<ResultCache> cache_;
  std::shared_ptr<const LandmarkOracle> oracle_;

  BoundedQueue<Pending> queue_;
  std::vector<std::thread> batchers_;

  // Admission gate. Set by shutdown() before the queue closes, so submit
  // can distinguish "full" from "shutting down".
  std::atomic<bool> stopping_{false};

  // Pause gate for the batchers.
  std::mutex pause_mutex_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // In-flight tracking: accepted_ counts successful admissions,
  // completed_ counts fulfilled promises (both registry counters, see
  // above); drain() waits for the gap to close. completed_ is only
  // advanced under drain_mutex_ (then notified), so a drainer cannot
  // miss the final wakeup.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::once_flag shutdown_once_;
};

/// Renders `server.stats()` (plus latency percentiles) as the daemon's
/// one-line `stats` verb output — every ServerStats counter appears as
/// `name=value`, making the line greppable and keeping the CLI, the
/// fixture tests, and the README metric table in lockstep:
///
///   accepted=5 completed=5 shed=0 invalid=0 shutdown=0 batches=2
///   mean_batch=2.50 max_batch=4 cache_hits=1 cache_misses=4
///   lower_bound_exits=0 epoch=1 swaps=0 in_flight=0 p50_us=42 p99_us=91
///   p999_us=91 traced=0 slow=0
///
/// Every value is read from the server's MetricsRegistry — the same cells
/// the `metrics` exposition renders — so the two can never disagree.
std::string format_stats_line(const SsspServer& server);

}  // namespace rs::serve
