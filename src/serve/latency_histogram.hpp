// The serving daemon's per-request latency histogram.
//
// The implementation moved to obs/histogram.hpp when the observability
// subsystem unified every distribution-shaped metric behind one type;
// this header remains so serve-layer code (and its tests) keep their
// historical spelling. rs::serve::LatencyHistogram IS rs::obs::Histogram.
#pragma once

#include "obs/histogram.hpp"

namespace rs::serve {

using LatencyHistogram = rs::obs::Histogram;

}  // namespace rs::serve
