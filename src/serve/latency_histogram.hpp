// Fixed-bucket log-linear latency histogram (HDR-histogram style) for the
// serving daemon's per-request latency tracking.
//
// The record path is the constraint: it runs once per served request, from
// the batcher thread, and must never allocate or take a lock — one bucket
// index computation (a bit-scan and a shift) and one relaxed fetch_add.
// All storage is a fixed std::array of atomic counters sized at compile
// time, so a histogram is ~15 KiB and records values across the full
// uint64 range with bounded relative error.
//
// Bucketing: values below 2^kSubBits (32) are exact; above that, each
// power-of-two range is split into 32 equal sub-buckets, so any recorded
// value is off by at most 1/32 (~3.1%) of its magnitude — tight enough to
// gate p99 regressions on, with no coordination between recorders.
//
// Quantile reads (p50/p99/p999) take a snapshot — a plain copy of the
// counters — and scan cumulative counts; reads are control-path only
// (stats endpoints, BENCH emission), so their allocation is fine.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs::serve {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per power of two
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // One linear segment [0, 32) plus 32 sub-buckets for each of the 59
  // power-of-two decades a uint64 value above 31 can start in.
  static constexpr std::size_t kBuckets =
      kSubBuckets * (64 - kSubBits + 1);

  /// Bucket index of `value` (stable across calls; exposed for tests).
  static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    // Position of the most significant bit, 0-based (value >= 32 here).
    const int msb = 63 - __builtin_clzll(value);
    const int decade = msb - kSubBits + 1;  // >= 1
    const std::uint64_t sub = (value >> (decade - 1)) & (kSubBuckets - 1);
    return static_cast<std::size_t>(decade) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping to bucket `index` — what quantiles report, so
  /// the estimate is a conservative (upper) bound of the true quantile.
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t decade = index >> kSubBits;
    const std::uint64_t sub = index & (kSubBuckets - 1);
    const std::uint64_t low = (kSubBuckets + sub) << (decade - 1);
    return low + ((1ull << (decade - 1)) - 1);
  }

  /// Records one observation. Wait-free, allocation-free: a relaxed
  /// fetch_add on the bucket and on the total.
  void record(std::uint64_t value) noexcept {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// A consistent-enough copy for multi-quantile reads (concurrent
  /// records may straddle the copy; each observation is counted at most
  /// once and quantiles of a live histogram are approximations anyway).
  struct Snapshot {
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;

    /// Upper bound of the bucket holding the q-quantile observation
    /// (q in [0, 1]); 0 when empty. Overestimates by at most 1/32.
    std::uint64_t value_at_quantile(double q) const {
      if (total == 0) return 0;
      if (q < 0.0) q = 0.0;
      if (q > 1.0) q = 1.0;
      const auto rank_raw = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(total)));
      const std::uint64_t rank = rank_raw == 0 ? 1 : rank_raw;
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank) return bucket_upper(i);
      }
      return bucket_upper(counts.size() - 1);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.counts.resize(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    return s;
  }

  /// Convenience single-quantile read (snapshots internally).
  std::uint64_t value_at_quantile(double q) const {
    return snapshot().value_at_quantile(q);
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace rs::serve
