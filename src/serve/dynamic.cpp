#include "serve/dynamic.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/dyn_sssp.hpp"

namespace rs::serve {

DynamicSsspService::DynamicSsspService(Graph g, const Options& options)
    : options_(options),
      incr_(g, options.preprocess),
      staged_graph_(incr_.graph()),
      staged_transpose_(staged_graph_.transposed()) {
  SsspEngine engine(incr_.graph(), incr_.result());
  if (options_.enable_fragments) {
    engine.enable_fragments(options_.fragments, options_.fragment_mode);
  }
  server_ = std::make_unique<SsspServer>(
      std::make_shared<const SsspEngine>(std::move(engine)), options_.server);
  dirty_fraction_ = &server_->metrics().gauge(
      "rs_dyn_dirty_fraction", {},
      "Fraction of balls the staged (unflushed) updates would dirty");
  if (options_.flush_interval_ms != 0 || options_.flush_dirty_fraction > 0) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

DynamicSsspService::~DynamicSsspService() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      stop_flusher_ = true;
    }
    flush_cv_.notify_all();
    flusher_.join();
  }
}

void DynamicSsspService::flusher_loop() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  // With no timer configured, wake only on the threshold trigger (or stop).
  const auto interval = options_.flush_interval_ms != 0
                            ? std::chrono::milliseconds(options_.flush_interval_ms)
                            : std::chrono::hours(24);
  while (!stop_flusher_) {
    const bool triggered = flush_cv_.wait_for(
        lock, interval, [this] { return stop_flusher_ || flush_requested_; });
    if (stop_flusher_) return;
    flush_requested_ = false;
    lock.unlock();
    // Timer expiry flushes whatever is staged; a threshold trigger always
    // flushes. flush() itself is a no-op when nothing is staged, so the
    // has_staged() check only avoids taking mu_ on idle ticks.
    if (triggered || has_staged()) flush();
    lock.lock();
  }
}

void DynamicSsspService::merge_staged(
    const std::vector<ArcChange>& changes) {
  for (const ArcChange& c : changes) {
    const auto it = staged_index_.find(c.arc);
    if (it == staged_index_.end()) {
      staged_index_.emplace(c.arc, staged_changes_.size());
      staged_changes_.push_back(c);
    } else {
      // Keep the FLUSHED weight as w_old; only the endpoint moves. A
      // net-zero entry (back to the flushed weight) is a no-op the repair
      // kernel classifies as neither increase nor decrease.
      staged_changes_[it->second].w_new = c.w_new;
    }
  }
}

UpdateReport DynamicSsspService::stage(
    const std::vector<WeightUpdate>& updates) {
  std::lock_guard<std::mutex> lock(mu_);
  UpdateApplication app = apply_weight_updates(staged_graph_, updates);
  UpdateReport report;
  report.updated_arcs = app.changes.size();
  merge_staged(app.changes);
  staged_graph_ = std::move(app.graph);
  staged_transpose_ = staged_graph_.transposed();
  pending_updates_.insert(pending_updates_.end(), updates.begin(),
                          updates.end());
  report.staged = pending_updates_.size();
  report.epoch = server_->engine_snapshot()->graph_epoch();

  // Publish how much re-preprocessing the staged set has accrued, and ask
  // the background flusher to run once it crosses the configured fraction.
  const std::size_t total = incr_.graph().num_vertices();
  const double fraction =
      total == 0 ? 0.0
                 : static_cast<double>(incr_.count_dirty(pending_updates_)) /
                       static_cast<double>(total);
  dirty_fraction_->set(fraction);
  if (flusher_.joinable() && options_.flush_dirty_fraction > 0 &&
      fraction >= options_.flush_dirty_fraction) {
    {
      std::lock_guard<std::mutex> flock(flush_mu_);
      flush_requested_ = true;
    }
    flush_cv_.notify_one();
  }
  return report;
}

UpdateReport DynamicSsspService::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  UpdateReport report;
  if (pending_updates_.empty()) {
    report.epoch = server_->engine_snapshot()->graph_epoch();
    return report;
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Replay the raw staged updates into the incremental preprocessor
  // (last-wins composition matches the staged graph's weights exactly),
  // splice the new PreprocessResult, and publish the successor epoch.
  const IncrementalUpdateStats stats = incr_.apply(pending_updates_);
  PreprocessResult pre = incr_.result();
  const std::shared_ptr<const SsspEngine> prior = server_->engine_snapshot();
  auto next = std::make_shared<const SsspEngine>(
      SsspEngine::next_epoch(*prior, incr_.graph(), std::move(pre)));
  server_->swap_engine(next);
  const auto t1 = std::chrono::steady_clock::now();

  pending_updates_.clear();
  staged_changes_.clear();
  staged_index_.clear();
  dirty_fraction_->set(0.0);

  report.updated_arcs = stats.updated_arcs;
  report.dirty_balls = stats.dirty_balls;
  report.total_balls = stats.total_balls;
  report.epoch = next->graph_epoch();
  report.incremental_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

UpdateReport DynamicSsspService::apply_updates(
    const std::vector<WeightUpdate>& updates) {
  const UpdateReport staged = stage(updates);
  UpdateReport report = flush();
  report.updated_arcs = staged.updated_arcs;
  return report;
}

bool DynamicSsspService::has_staged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pending_updates_.empty();
}

QueryResponse DynamicSsspService::serve_corrected(const QueryRequest& req) {
  if (req.kind != RequestKind::kTargets || req.want_paths) {
    throw std::invalid_argument(
        "serve_corrected: only kTargets requests without paths");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<const SsspEngine> eng = server_->engine_snapshot();
  eng->validate(req);
  if (staged_changes_.empty()) return eng->serve(req);

  // Exact old row on the published epoch, repaired to the staged weights.
  QueryRequest full;
  full.source = req.source;
  full.engine = req.engine;
  full.want_full_distances = true;
  QueryResponse resp = eng->serve(full);
  repair_distance_row(staged_graph_, staged_transpose_, req.source,
                      staged_changes_, resp.dist);

  resp.targets.reserve(req.targets.size());
  for (const Vertex t : req.targets) {
    TargetResult tr;
    tr.target = t;
    tr.dist = resp.dist[t];
    resp.targets.push_back(std::move(tr));
  }
  if (!req.want_full_distances) {
    resp.dist.clear();
    resp.dist.shrink_to_fit();
  }
  return resp;
}

}  // namespace rs::serve
