#include "serve/result_cache.hpp"

#include <utility>

namespace rs::serve {

ResultCache::ResultCache(ResultCacheOptions opts)
    : capacity_per_shard_(opts.capacity_per_shard < 1
                              ? 1
                              : opts.capacity_per_shard),
      shards_(opts.shards < 1 ? 1 : opts.shards) {}

CacheAcquire ResultCache::acquire(const CacheKey& key, RowPtr& row,
                                  std::shared_future<RowPtr>& pending) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    Entry& e = it->second;
    if (e.row != nullptr) {
      // Ready: refresh recency with a splice (allocation-free).
      shard.lru.splice(shard.lru.begin(), shard.lru, e.lru_pos);
      row = e.row;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return CacheAcquire::kHit;
    }
    // In flight: join the owner's computation.
    pending = e.future;
    waits_.fetch_add(1, std::memory_order_relaxed);
    return CacheAcquire::kWaiter;
  }
  // Miss: install the in-flight entry; the caller is now the owner.
  Entry e;
  e.promise = std::make_shared<std::promise<RowPtr>>();
  e.future = e.promise->get_future().share();
  shard.map.emplace(key, std::move(e));
  misses_.fetch_add(1, std::memory_order_relaxed);
  return CacheAcquire::kOwner;
}

void ResultCache::fulfill(const CacheKey& key, RowPtr row) {
  std::shared_ptr<std::promise<RowPtr>> promise;
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      // The entry vanished (possible only if the key was never acquired —
      // e.g. a warm-up publish): install directly as ready.
      Entry e;
      shard.lru.push_front(key);
      e.row = row;
      e.lru_pos = shard.lru.begin();
      shard.map.emplace(key, std::move(e));
    } else if (it->second.row != nullptr) {
      return;  // double fulfill: first publication wins
    } else {
      Entry& e = it->second;
      promise = std::move(e.promise);
      e.promise = nullptr;
      e.future = {};
      e.row = row;
      shard.lru.push_front(key);
      e.lru_pos = shard.lru.begin();
    }
    while (shard.lru.size() > capacity_per_shard_) {
      shard.map.erase(shard.lru.back());  // readers keep the row alive
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Wake waiters outside the shard lock.
  if (promise != nullptr) promise->set_value(std::move(row));
}

void ResultCache::fail(const CacheKey& key, std::exception_ptr err) {
  std::shared_ptr<std::promise<RowPtr>> promise;
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.row != nullptr) return;
    promise = std::move(it->second.promise);
    shard.map.erase(it);
  }
  if (promise != nullptr) promise->set_exception(err);
}

RowPtr ResultCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.row == nullptr) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.row;
}

void ResultCache::purge_stale(std::uint64_t min_epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->graph_epoch < min_epoch) {
        shard.map.erase(*it);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const CacheKey& key : shard.lru) shard.map.erase(key);
    shard.lru.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.single_flight_waits = waits_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

void answer_from_row(const QueryRequest& req, const CachedRow& row,
                     QueryResponse& resp) {
  resp.source = req.source;
  resp.stats = row.stats;
  resp.graph_epoch = row.graph_epoch;
  resp.served_from_cache = true;
  resp.lower_bound_exits = 0;
  resp.dist.clear();
  if (req.want_full_distances) {
    resp.dist = row.dist;
  }
  resp.targets.resize(req.targets.size());
  for (std::size_t i = 0; i < req.targets.size(); ++i) {
    TargetResult& tr = resp.targets[i];
    tr.target = req.targets[i];
    tr.dist = row.dist[tr.target];
    tr.path.clear();
  }
}

void cached_serve(const SsspEngine& engine, ResultCache& cache,
                  const QueryRequest& req, QueryContext& ctx,
                  QueryResponse& resp) {
  if (!cache_eligible(req)) {
    engine.serve(req, ctx, resp);
    return;
  }
  const CacheKey key = key_for(engine, req);
  RowPtr row;
  std::shared_future<RowPtr> pending;
  switch (cache.acquire(key, row, pending)) {
    case CacheAcquire::kHit:
      answer_from_row(req, *row, resp);
      return;
    case CacheAcquire::kWaiter:
      row = pending.get();  // rethrows the owner's failure
      answer_from_row(req, *row, resp);
      return;
    case CacheAcquire::kOwner:
      break;
  }
  try {
    QueryRequest full;
    full.source = req.source;
    full.engine = req.engine;
    full.want_full_distances = true;
    QueryResponse computed = engine.serve(full, ctx);
    auto owned = std::make_shared<CachedRow>();
    owned->source = req.source;
    owned->graph_epoch = computed.graph_epoch;
    owned->dist = std::move(computed.dist);
    owned->stats = computed.stats;
    row = std::move(owned);
  } catch (...) {
    cache.fail(key, std::current_exception());
    throw;
  }
  cache.fulfill(key, row);
  answer_from_row(req, *row, resp);
  // The owner computed rather than read; report it faithfully.
  resp.served_from_cache = false;
}

}  // namespace rs::serve
